"""Shared state for the benchmark suite.

The paper-scale dataset, its splits and a shared pipeline optimizer are
built once per session; modeling benches reuse the optimizer's cached
feature tensor and selection rankings the way the paper's greedy stages
do.

A session-scoped regression guard compares every ``BENCH_*.json`` metric
file written during the run against the last *committed* copy (via
``git show HEAD:...``) and emits a non-fatal warning when a metric
regressed by more than 25% — CI logs surface slowdowns without turning
machine-speed noise into hard failures.  Speedups past the same
threshold warn too (:class:`BenchImprovementWarning`): they mean the
committed baseline is stale and the refreshed ``BENCH_*.json`` should
be committed, otherwise the next real regression hides inside the
slack.
"""

from __future__ import annotations

import json
import subprocess
import warnings
from pathlib import Path

import pytest

from repro.bench.reporting import RESULTS_DIR, compare_bench_metrics_detailed
from repro.core import PipelineConfig, PipelineOptimizer
from repro.data import generate_dataset, split_dataset
from repro.ml import GbmParams

_REPO_ROOT = Path(__file__).resolve().parents[1]


def _committed_baseline(path: Path) -> dict | None:
    """The HEAD-committed content of ``path``, or None if never committed."""
    try:
        relative = path.resolve().relative_to(_REPO_ROOT).as_posix()
    except ValueError:
        return None
    try:
        proc = subprocess.run(
            ["git", "show", f"HEAD:{relative}"],
            cwd=_REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=30,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if proc.returncode != 0:
        return None
    try:
        return json.loads(proc.stdout)
    except json.JSONDecodeError:
        return None


class BenchRegressionWarning(UserWarning):
    """A benchmark metric regressed versus the committed baseline."""


class BenchImprovementWarning(UserWarning):
    """A benchmark metric beat the committed baseline — refresh it."""


@pytest.fixture(scope="session", autouse=True)
def bench_guard():
    """Compare freshly written BENCH_*.json files against HEAD at teardown."""
    yield
    for current_path in sorted(RESULTS_DIR.glob("BENCH_*.json")):
        baseline = _committed_baseline(current_path)
        if baseline is None:
            continue
        try:
            current = json.loads(current_path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            continue
        for delta in compare_bench_metrics_detailed(baseline, current, threshold=0.25):
            if delta.kind == "regression":
                warnings.warn(
                    f"{current_path.name}: {delta.message()}",
                    BenchRegressionWarning,
                    stacklevel=2,
                )
            else:
                warnings.warn(
                    f"{current_path.name}: {delta.message()} — baseline is "
                    "stale; commit the refreshed metrics file",
                    BenchImprovementWarning,
                    stacklevel=2,
                )


@pytest.fixture(scope="session")
def dataset():
    """Paper-scale synthetic NMD (73 / 187 / 52,959)."""
    return generate_dataset()


@pytest.fixture(scope="session")
def splits(dataset):
    return split_dataset(dataset)


@pytest.fixture(scope="session")
def base_config():
    """Pre-optimization defaults used by the Figure 6 sweeps."""
    return PipelineConfig(gbm=GbmParams(n_estimators=100))


@pytest.fixture(scope="session")
def optimizer(dataset, splits, base_config):
    return PipelineOptimizer(dataset, splits, base_config=base_config)
