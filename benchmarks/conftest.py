"""Shared state for the benchmark suite.

The paper-scale dataset, its splits and a shared pipeline optimizer are
built once per session; modeling benches reuse the optimizer's cached
feature tensor and selection rankings the way the paper's greedy stages
do.
"""

from __future__ import annotations

import pytest

from repro.core import PipelineConfig, PipelineOptimizer
from repro.data import generate_dataset, split_dataset
from repro.ml import GbmParams


@pytest.fixture(scope="session")
def dataset():
    """Paper-scale synthetic NMD (73 / 187 / 52,959)."""
    return generate_dataset()


@pytest.fixture(scope="session")
def splits(dataset):
    return split_dataset(dataset)


@pytest.fixture(scope="session")
def base_config():
    """Pre-optimization defaults used by the Figure 6 sweeps."""
    return PipelineConfig(gbm=GbmParams(n_estimators=100))


@pytest.fixture(scope="session")
def optimizer(dataset, splits, base_config):
    return PipelineOptimizer(dataset, splits, base_config=base_config)
