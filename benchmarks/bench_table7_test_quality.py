"""Table 7: estimation quality over the timeline on the held-out test set.

Runs the paper's final pipeline (Pearson k=60, GBM, non-stacked,
pseudo-Huber delta=18, average fusion) on the chronological 30% test
carve-out and reports MAE at the 80th/90th/100th percentile, MSE, RMSE
and R^2 at every 10% of planned duration plus the timeline average —
the exact rows of Table 7.

Paper averages: MAE80 19.99, MAE90 27.52, MAE100 38.97, MSE 3159.96,
RMSE 56.14, R^2 0.88.
"""

from repro.bench import emit_report, format_table
from repro.core import paper_final_config

PAPER_AVERAGE = {
    "mae_80": 19.99,
    "mae_90": 27.52,
    "mae_100": 38.97,
    "mse": 3159.96,
    "rmse": 56.14,
    "r2": 0.88,
}

_out = {}


def test_table7_final_pipeline(benchmark, optimizer):
    def run():
        return optimizer.test_evaluation(paper_final_config())

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    _out["table7"] = result
    assert len(result["rows"]) == optimizer.timeline.n_models


def test_table7_report(benchmark, optimizer):
    def run():
        return _out.get("table7") or optimizer.test_evaluation(paper_final_config())

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    headers = ["t*", "MAE 80th", "MAE 90th", "MAE 100th", "MSE", "RMSE", "R^2"]
    rows = []
    for row in result["rows"]:
        rows.append(
            [
                f"{row['t_star']:g}",
                f"{row['mae_80']:.2f}",
                f"{row['mae_90']:.2f}",
                f"{row['mae_100']:.2f}",
                f"{row['mse']:.2f}",
                f"{row['rmse']:.2f}",
                f"{row['r2']:.2f}",
            ]
        )
    avg = result["average"]
    rows.append(
        [
            "Average",
            f"{avg['mae_80']:.2f}",
            f"{avg['mae_90']:.2f}",
            f"{avg['mae_100']:.2f}",
            f"{avg['mse']:.2f}",
            f"{avg['rmse']:.2f}",
            f"{avg['r2']:.2f}",
        ]
    )
    rows.append(
        ["Paper avg"]
        + [f"{PAPER_AVERAGE[k]:.2f}" for k in ("mae_80", "mae_90", "mae_100", "mse", "rmse", "r2")]
    )
    table = format_table(headers, rows)
    emit_report("table7_test_quality", "Table 7: estimation quality on test set", table)
    # Paper-shape assertions: Navy milestone (MAE <= 30 days for 80% of
    # avails), strong fit, and error stabilising over the timeline.
    assert avg["mae_80"] <= 30.0
    assert avg["r2"] >= 0.75
    late = [row["mae_100"] for row in result["rows"][5:]]
    early = result["rows"][0]["mae_100"]
    assert max(late) <= early * 1.05
