"""Ablation: early-discovery share vs early-timeline predictability.

Table 7's flat error profile depends on RCC churn being informative soon
after work starts.  In the synthetic NMD that early information comes
from the "inspection phase" share of RCC creations (open-and-inspect
findings).  This ablation regenerates the dataset with the inspection
share scaled {0, 0.5x, 1x, 2x} and measures validation MAE at early
t* — quantifying exactly how much of the paper's early accuracy requires
early discovery in the underlying process.
"""

import numpy as np

from repro.bench import emit_report, format_table
from repro.core import PipelineConfig, PipelineOptimizer
from repro.data import SyntheticNmdConfig, generate_dataset, split_dataset
from repro.ml import GbmParams

MULTIPLIERS = (0.0, 0.5, 1.0, 2.0)


def test_ablation_early_signal(benchmark):
    def run():
        rows = []
        for multiplier in MULTIPLIERS:
            config = SyntheticNmdConfig(
                inspection_base=0.22 * multiplier,
                inspection_slope=0.18 * multiplier,
            )
            dataset = generate_dataset(config)
            splits = split_dataset(dataset)
            optimizer = PipelineOptimizer(
                dataset,
                splits,
                base_config=PipelineConfig(
                    selection_method="pearson", k=60, loss="pseudo_huber",
                    huber_delta=18.0, fusion="none",
                    gbm=GbmParams(n_estimators=80),
                ),
            )
            result = optimizer.evaluate(optimizer.config)
            by_t = result["val_mae_by_t"]
            rows.append(
                [
                    f"{multiplier:g}x",
                    f"{by_t[0]:.1f}",
                    f"{by_t[1]:.1f}",
                    f"{by_t[2]:.1f}",
                    f"{by_t[-1]:.1f}",
                    f"{result['val_mae']:.2f}",
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        ["inspection share", "MAE@0%", "MAE@10%", "MAE@20%", "MAE@100%", "mean"],
        rows,
    )
    emit_report(
        "ablation_early_signal",
        "Ablation: early-discovery share vs early-timeline MAE",
        table,
    )
    by_mult = {row[0]: row for row in rows}
    # Early windows benefit from early discovery; late windows see all
    # RCCs either way (weak dependence).
    assert float(by_mult["2x"][2]) <= float(by_mult["0x"][2])
