"""Figure 6c: stacked vs non-stacked architecture (Task 3b).

With GBM + Pearson k=60 fixed, compares the flat ("non-stacked") design
against the stacked design (static base model feeding a prediction into
each timeline model).  Paper result: non-stacked wins.
"""

from repro.bench import emit_report, format_table

_stage = {}


def test_fig6c_architecture(benchmark, optimizer):
    def run():
        optimizer.config = optimizer.config.evolve(
            selection_method="pearson", k=60, model_family="gbm",
            architecture="flat", loss="l2", fusion="none",
        )
        return optimizer.optimize_architecture()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    _stage["architecture"] = result
    assert {r["architecture"] for r in result.records} == {"flat", "stacked"}


def test_fig6c_report(benchmark, optimizer):
    def run():
        return _stage.get("architecture") or optimizer.optimize_architecture()

    stage = benchmark.pedantic(run, rounds=1, iterations=1)
    records = {r["architecture"]: r for r in stage.records}
    rows = []
    for ti, t_star in enumerate(optimizer.timeline.t_stars):
        rows.append(
            [
                f"{t_star:g}%",
                f"{records['flat']['val_mae_by_t'][ti]:.2f}",
                f"{records['stacked']['val_mae_by_t'][ti]:.2f}",
            ]
        )
    rows.append(
        ["mean", f"{records['flat']['val_mae']:.2f}", f"{records['stacked']['val_mae']:.2f}"]
    )
    table = format_table(["t*", "non-stacked (flat)", "stacked"], rows)
    emit_report(
        "fig6c_stacking",
        "Figure 6c: stacked vs non-stacked validation MAE",
        table + f"\nchosen: {stage.chosen['architecture']} (paper: non-stacked)",
    )
    assert records["flat"]["val_mae"] <= records["stacked"]["val_mae"] * 1.05
