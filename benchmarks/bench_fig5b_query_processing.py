"""Figure 5b: Status Query processing time over the logical timeline.

For each scale factor, a full DoMD-style sweep (Status Queries at every
10% of planned duration, grouped by RCC type x SWLIN level 1) is run in
four modes:

* ``merge``     — the pandas-style baseline: re-join avails x RCCs and
  full-scan the dates on *every* timestamp (no reuse).
* ``avl``       — AVL index, each timestamp answered from scratch.
* ``interval``  — interval-tree index, each timestamp from scratch.
* ``avl+incr``  — AVL design with Section 4.3's incremental computation
  (the paper's winner, ~5x faster than the merge baseline).
"""

import time

import pytest

from repro.bench import (
    SCALING_FACTORS,
    TIMELINE_10PCT,
    emit_report,
    format_table,
    logical_rcc_arrays,
    scaled_dataset,
)
from repro.index import StatusQuery, StatusQueryEngine

MODES = ("merge", "avl", "interval", "avl+incr")

_engines: dict[tuple[str, int], StatusQueryEngine] = {}
_times: dict[tuple[str, int], float] = {}


def engine_for(dataset, mode: str, factor: int) -> StatusQueryEngine:
    key = (mode, factor)
    if key not in _engines:
        engine_table = logical_rcc_arrays(dataset, factor)[3]
        design = {"merge": "naive", "avl": "avl", "interval": "interval", "avl+incr": "avl"}[mode]
        avails = scaled_dataset(dataset, factor).avails if mode == "merge" else None
        engine = StatusQueryEngine(engine_table, design=design, avails=avails)
        # Warm the group-assignment cache so every mode pays the
        # (identical, vectorised) grouping cost outside the timing.
        engine._group_assignment(StatusQuery(0.0))
        _engines[key] = engine
    return _engines[key]


def run_sweep(engine: StatusQueryEngine, mode: str):
    return engine.execute_sweep(TIMELINE_10PCT, incremental=(mode == "avl+incr"))


@pytest.mark.parametrize("factor", SCALING_FACTORS)
@pytest.mark.parametrize("mode", MODES)
def test_fig5b_query_sweep(benchmark, dataset, mode, factor):
    engine = engine_for(dataset, mode, factor)
    results = benchmark.pedantic(run_sweep, args=(engine, mode), rounds=1, iterations=1)
    assert len(results) == len(TIMELINE_10PCT)
    _times[(mode, factor)] = benchmark.stats.stats.mean


def test_fig5b_report(benchmark, dataset):
    def collect():
        for factor in SCALING_FACTORS:
            for mode in MODES:
                if (mode, factor) in _times:
                    continue
                engine = engine_for(dataset, mode, factor)
                tic = time.perf_counter()
                run_sweep(engine, mode)
                _times[(mode, factor)] = time.perf_counter() - tic
        return _times

    times = benchmark.pedantic(collect, rounds=1, iterations=1)
    rows = []
    for factor in SCALING_FACTORS:
        speedup = times[("merge", factor)] / max(times[("avl+incr", factor)], 1e-9)
        rows.append(
            [f"{factor}x"]
            + [f"{times[(mode, factor)]:.3f}s" for mode in MODES]
            + [f"{speedup:.1f}x"]
        )
    table = format_table(
        ["scale"] + list(MODES) + ["incr speedup vs merge"], rows
    )
    emit_report("fig5b_query_processing", "Figure 5b: query processing time", table)
    # Paper shape: incremental AVL beats the merge baseline severalfold at
    # scale (the paper reports 5x; uncontended runs here show 7-13x — the
    # 3x floor absorbs machine noise).
    assert times[("avl+incr", 20)] * 3 <= times[("merge", 20)]
    # And from-scratch tree retrieval also loses to incremental reuse.
    assert times[("avl+incr", 20)] < times[("avl", 20)]
