"""Figure 6e: AutoHPT — number of TPE optimization trials (Task 5).

With the previously chosen pipeline fixed, runs the TPE tuner with trial
budgets {10, 20, 30, 40, 50, 100, 200} and reports the validation MAE of
each tuned configuration.  Paper observation: MAE keeps declining with
more trials, but the authors stop at 30 citing overfitting risk on the
tiny validation set — the tolerance rule here encodes the same choice.
"""

from repro.bench import emit_report, format_table
from repro.core.pipeline import DEFAULT_TRIAL_COUNTS

_stage = {}


def test_fig6e_trials(benchmark, optimizer):
    def run():
        optimizer.config = optimizer.config.evolve(
            selection_method="pearson", k=60, model_family="gbm",
            architecture="flat", loss="pseudo_huber", huber_delta=18.0,
            fusion="none",
        )
        return optimizer.optimize_trials(DEFAULT_TRIAL_COUNTS)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    _stage["hpt"] = result
    assert [r["n_trials"] for r in result.records] == list(DEFAULT_TRIAL_COUNTS)


def test_fig6e_report(benchmark, optimizer):
    def run():
        return _stage.get("hpt") or optimizer.optimize_trials()

    stage = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [r["n_trials"], f"{r['subset_mae']:.2f}", f"{r['val_mae']:.2f}"]
        for r in stage.records
    ]
    table = format_table(
        ["# trials", "tuning-subset MAE", "full-timeline val MAE"], rows
    )
    footer = (
        f"chosen: {stage.chosen['n_trials']} trials (paper: 30; smallest budget "
        "within tolerance of the best)"
    )
    emit_report("fig6e_hpt_trials", "Figure 6e: TPE trial budget sweep", table + "\n" + footer)
    # The tuning objective improves (weakly) with budget.
    subset = [r["subset_mae"] for r in stage.records]
    assert subset[-1] <= subset[0]
