"""Figure 6f: fusion of per-window estimates (Task 6).

With the full upstream pipeline fixed (Pearson k=60, GBM, pseudo-Huber
delta=18), compares no fusion vs min fusion vs average fusion of all
predictions up to each t*.  Paper result: average fusion wins.
"""

from repro.bench import emit_report, format_table

_stage = {}


def test_fig6f_fusion(benchmark, optimizer):
    def run():
        optimizer.config = optimizer.config.evolve(
            selection_method="pearson", k=60, model_family="gbm",
            architecture="flat", loss="pseudo_huber", huber_delta=18.0,
            fusion="none",
        )
        return optimizer.optimize_fusion()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    _stage["fusion"] = result
    assert {r["fusion"] for r in result.records} == {"none", "min", "average"}


def test_fig6f_report(benchmark, optimizer):
    def run():
        return _stage.get("fusion") or optimizer.optimize_fusion()

    stage = benchmark.pedantic(run, rounds=1, iterations=1)
    records = {r["fusion"]: r for r in stage.records}
    rows = []
    for ti, t_star in enumerate(optimizer.timeline.t_stars):
        rows.append(
            [f"{t_star:g}%"]
            + [f"{records[m]['val_mae_by_t'][ti]:.2f}" for m in ("none", "min", "average")]
        )
    rows.append(
        ["mean"] + [f"{records[m]['val_mae']:.2f}" for m in ("none", "min", "average")]
    )
    table = format_table(["t*", "no fusion", "min fusion", "average fusion"], rows)
    emit_report(
        "fig6f_fusion",
        "Figure 6f: fusion technique sweep",
        table + f"\nchosen: {stage.chosen['fusion']} (paper: average)",
    )
    # Shape: some fusion of the timeline history beats using only the
    # newest model.
    assert min(records["average"]["val_mae"], records["min"]["val_mae"]) <= records[
        "none"
    ]["val_mae"] * 1.02
