"""Ablation: the vectorised sorted-array index vs the paper's trio.

The paper attributes the interval tree's poor showing to implementation
stack (pure Python vs C-optimised competitors).  This ablation completes
the picture with a fourth design built on numpy sorted arrays +
``searchsorted``: same asymptotics as the dual-AVL design for threshold
queries, but C-vectorised — at the cost of O(n) maintenance.
"""

import time

import pytest

from repro.bench import emit_report, format_table, logical_rcc_arrays
from repro.index import DualAvlIndex, IntervalTreeIndex, NaiveJoinIndex, SortedArrayIndex

DESIGNS = {
    "naive": NaiveJoinIndex,
    "avl": DualAvlIndex,
    "interval": IntervalTreeIndex,
    "sorted": SortedArrayIndex,
}

_rows: dict[str, tuple[float, float, float]] = {}


@pytest.mark.parametrize("design", list(DESIGNS))
def test_ablation_sorted_index(benchmark, dataset, design):
    starts, ends, ids = logical_rcc_arrays(dataset, 10)[:3]
    cls = DESIGNS[design]

    def build_and_query():
        index = cls(starts, ends, ids)
        tic = time.perf_counter()
        for t in (10.0, 30.0, 50.0, 70.0, 90.0):
            index.settled_ids(t)
            index.active_ids(t)
        query_s = time.perf_counter() - tic
        return index, query_s

    index, query_s = benchmark.pedantic(build_and_query, rounds=1, iterations=1)
    _rows[design] = (
        benchmark.stats.stats.mean - query_s,
        query_s,
        index.approx_nbytes() / 1e6,
    )


def test_ablation_sorted_index_report(benchmark, dataset):
    def collect():
        starts, ends, ids = logical_rcc_arrays(dataset, 10)[:3]
        for design, cls in DESIGNS.items():
            if design in _rows:
                continue
            tic = time.perf_counter()
            index = cls(starts, ends, ids)
            build_s = time.perf_counter() - tic
            tic = time.perf_counter()
            for t in (10.0, 30.0, 50.0, 70.0, 90.0):
                index.settled_ids(t)
                index.active_ids(t)
            _rows[design] = (build_s, time.perf_counter() - tic, index.approx_nbytes() / 1e6)
        return _rows

    rows_data = benchmark.pedantic(collect, rounds=1, iterations=1)
    rows = [
        [design, f"{b:.3f}s", f"{q:.3f}s", f"{m:.1f}"]
        for design, (b, q, m) in rows_data.items()
    ]
    table = format_table(["design", "build (10x)", "10 queries", "memory MB"], rows)
    emit_report(
        "ablation_sorted_index",
        "Ablation: numpy sorted-array index vs the paper's three designs",
        table,
    )
    # The vectorised design beats its pure-Python asymptotic twin (the
    # dual-AVL) on both build and query — the paper's "implementation
    # stack" observation, pushed to its numpy conclusion.
    assert rows_data["sorted"][0] < rows_data["avl"][0]
    assert rows_data["sorted"][1] < rows_data["avl"][1]
