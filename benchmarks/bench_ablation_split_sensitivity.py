"""Ablation: verdict stability of the fusion stage across split seeds.

EXPERIMENTS.md notes that the none-vs-average fusion verdict sits within
split noise on 187 avails.  This bench quantifies it with the
repeated-splits utility: the fusion stage is re-run over several
train/validation re-draws and the per-seed winners are tallied —
exactly the robustness analysis a reviewer would ask for.
"""

import numpy as np

from repro.bench import emit_report, format_table
from repro.core import PipelineConfig, PipelineOptimizer
from repro.ml import GbmParams
from repro.ml.validation import paired_comparison, repeated_split_scores

SEEDS = (1, 5, 13, 21, 42)


def test_ablation_fusion_split_sensitivity(benchmark, dataset):
    def run():
        def evaluate(splits):
            optimizer = PipelineOptimizer(
                dataset,
                splits,
                base_config=PipelineConfig(gbm=GbmParams(n_estimators=80)),
            )
            optimizer.config = optimizer.config.evolve(
                selection_method="pearson", k=60, model_family="gbm",
                architecture="flat", loss="pseudo_huber", huber_delta=18.0,
                fusion="none",
            )
            stage = optimizer.optimize_fusion()
            return {r["fusion"]: r["val_mae"] for r in stage.records}

        return repeated_split_scores(dataset, evaluate, seeds=SEEDS)

    scores = benchmark.pedantic(run, rounds=1, iterations=1)
    comparison = paired_comparison(scores, "average", "none")
    rows = [
        [f"seed {seed}"]
        + [f"{scores[m][i]:.2f}" for m in ("none", "min", "average")]
        + [min(("none", "min", "average"), key=lambda m: scores[m][i])]
        for i, seed in enumerate(SEEDS)
    ]
    rows.append(
        ["mean"]
        + [f"{scores[m].mean():.2f}" for m in ("none", "min", "average")]
        + ["-"]
    )
    table = format_table(["split", "none", "min", "average", "winner"], rows)
    emit_report(
        "ablation_split_sensitivity",
        "Ablation: fusion verdict across validation re-draws",
        table + "\n" + comparison.summary(),
    )
    # Robust findings: min fusion never wins; average at least ties none
    # on the majority of seeds (the paper's verdict).
    assert all(scores["min"][i] >= scores["average"][i] for i in range(len(SEEDS)))
    assert comparison.win_rate_a >= 0.5
    # And the mean-of-means ordering matches the paper.
    assert scores["average"].mean() <= scores["none"].mean()
