"""Figure 6a: feature-selection method x feature-set size (Task 2).

Sweeps Recursive Feature Elimination, Pearson, Spearman, Mutual
Information and Random selection over k = 20..100 (step 10), with the
default model (GBM, l2, flat, no fusion), reporting validation MAE at
50% planned duration (as the paper's figure does) plus the timeline
mean.  Paper result: Pearson wins, optimal at k = 60.
"""

import numpy as np

from repro.bench import emit_report, format_table
from repro.core.pipeline import DEFAULT_K_GRID
from repro.features import FEATURE_SELECTION_METHODS

_stage = {}


def test_fig6a_selection_sweep(benchmark, optimizer):
    def run():
        optimizer.config = optimizer.config.evolve(
            selection_method="pearson", k=60, model_family="gbm",
            architecture="flat", loss="l2", fusion="none",
        )
        return optimizer.optimize_selection(FEATURE_SELECTION_METHODS, DEFAULT_K_GRID)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    _stage["selection"] = result
    assert len(result.records) == len(FEATURE_SELECTION_METHODS) * len(DEFAULT_K_GRID)


def test_fig6a_report(benchmark, optimizer):
    def run():
        if "selection" not in _stage:
            _stage["selection"] = optimizer.optimize_selection()
        return _stage["selection"]

    stage = benchmark.pedantic(run, rounds=1, iterations=1)
    t50 = int(np.argmin(np.abs(optimizer.timeline.t_stars - 50.0)))
    headers = ["k"] + [m for m in FEATURE_SELECTION_METHODS]
    rows = []
    for k in DEFAULT_K_GRID:
        row = [k]
        for method in FEATURE_SELECTION_METHODS:
            record = next(
                r for r in stage.records if r["method"] == method and r["k"] == k
            )
            row.append(f"{record['val_mae_by_t'][t50]:.2f}")
        rows.append(row)
    table = format_table(headers, rows)
    chosen = stage.chosen
    footer = (
        f"chosen: {chosen['selection_method']} with k={chosen['k']} "
        f"(paper: pearson, k=60)"
    )
    emit_report(
        "fig6a_feature_selection",
        "Figure 6a: validation MAE at 50% duration by selection method and k",
        table + "\n" + footer,
    )
    # Shape: informed selection beats random on the timeline mean.
    def best_mae(method):
        return min(r["val_mae"] for r in stage.records if r["method"] == method)

    # Pearson beats random selection (small tolerance: on 33 validation
    # avails the random baseline occasionally gets lucky at one k).
    assert best_mae("pearson") <= best_mae("random") * 1.02
