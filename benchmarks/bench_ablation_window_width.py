"""Ablation: timeline window width x (model-count vs quality trade-off).

The paper fixes x = 10% (11 models).  This ablation sweeps
x in {25, 10, 5}: finer windows mean more models (and more Status Query
sweeps) but each model sees features closer to its decision point.
"""

import time

import numpy as np

from repro.bench import emit_report, format_table
from repro.core import PipelineConfig, PipelineOptimizer
from repro.ml import GbmParams

WIDTHS = (25.0, 10.0, 5.0)


def test_ablation_window_width_modeling(benchmark, dataset, splits):
    def run():
        rows = []
        for width in WIDTHS:
            config = PipelineConfig(
                window_pct=width,
                selection_method="pearson",
                k=60,
                loss="pseudo_huber",
                huber_delta=18.0,
                fusion="average",
                gbm=GbmParams(n_estimators=80),
            )
            tic = time.perf_counter()
            optimizer = PipelineOptimizer(dataset, splits, base_config=config)
            result = optimizer.evaluate(config)
            elapsed = time.perf_counter() - tic
            rows.append(
                [
                    f"{width:g}%",
                    optimizer.timeline.n_models,
                    f"{elapsed:.1f}s",
                    f"{result['val_mae']:.2f}",
                    f"{result['val_mae_by_t'][-1]:.2f}",
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        ["window x", "# models", "extract+fit+eval", "val MAE (mean)", "val MAE @100%"],
        rows,
    )
    emit_report(
        "ablation_window_width_modeling",
        "Ablation: window width vs estimation quality",
        table,
    )
    # All widths land in the same quality regime (estimates are robust to
    # the discretisation choice); cost grows with model count.
    maes = [float(row[3]) for row in rows]
    assert max(maes) <= min(maes) * 1.35
