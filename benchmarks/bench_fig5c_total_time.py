"""Figure 5c: index creation + query processing (total pipeline latency).

Combines the Figure 5a build cost with the Figure 5b sweep cost per
design, the way the paper's Figure 5c stacks them.
"""

import time

import pytest

from repro.bench import (
    SCALING_FACTORS,
    TIMELINE_10PCT,
    emit_report,
    format_table,
    logical_rcc_arrays,
    scaled_dataset,
)
from repro.index import StatusQuery, StatusQueryEngine

MODES = ("merge", "avl+incr", "interval+incr")

_totals: dict[tuple[str, int], float] = {}


def build_and_sweep(dataset, mode: str, factor: int):
    engine_table = logical_rcc_arrays(dataset, factor)[3]
    design = {"merge": "naive", "avl+incr": "avl", "interval+incr": "interval"}[mode]
    avails = scaled_dataset(dataset, factor).avails if mode == "merge" else None
    engine = StatusQueryEngine(engine_table, design=design, avails=avails)
    engine._group_assignment(StatusQuery(0.0))
    return engine.execute_sweep(
        TIMELINE_10PCT, incremental=mode.endswith("incr")
    )


@pytest.mark.parametrize("factor", SCALING_FACTORS)
@pytest.mark.parametrize("mode", MODES)
def test_fig5c_total(benchmark, dataset, mode, factor):
    results = benchmark.pedantic(
        build_and_sweep, args=(dataset, mode, factor), rounds=1, iterations=1
    )
    assert len(results) == len(TIMELINE_10PCT)
    _totals[(mode, factor)] = benchmark.stats.stats.mean


def test_fig5c_report(benchmark, dataset):
    def collect():
        for factor in SCALING_FACTORS:
            for mode in MODES:
                if (mode, factor) in _totals:
                    continue
                tic = time.perf_counter()
                build_and_sweep(dataset, mode, factor)
                _totals[(mode, factor)] = time.perf_counter() - tic
        return _totals

    totals = benchmark.pedantic(collect, rounds=1, iterations=1)
    rows = [
        [f"{factor}x"] + [f"{totals[(mode, factor)]:.3f}s" for mode in MODES]
        for factor in SCALING_FACTORS
    ]
    table = format_table(["scale"] + list(MODES), rows)
    emit_report("fig5c_total_time", "Figure 5c: index creation + query time", table)
    # AVL total stays below the interval tree's at scale (paper shape).
    assert totals[("avl+incr", 20)] < totals[("interval+incr", 20)]
