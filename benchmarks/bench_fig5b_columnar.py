"""Figure 5b companion: columnar vs scalar Status Query execution.

The columnar execution core (``repro.index.columnar``) replaces the
per-set scalar Algorithm-StatusQ path with fused batched kernels over a
struct-of-arrays frame.  This bench pins the payoff on the fig5b sweep
workload (Status Queries at every 10% of planned duration, grouped by
RCC type × SWLIN level 1):

* at every scale factor, the full timeline sweep runs once per executor
  per design, with the group-assignment cache warmed so the timing
  isolates the execution phase;
* at 20x the columnar sweep must beat the scalar incremental sweep by
  the committed speedup floor on the reference design;
* both executors must return identical tables (spot-checked here;
  byte-exact parity is pinned by the differential suite).

The speedup concentrates on the designs whose builds already pay the
stable event-time argsorts (``avl``, ``sorted_array``): they share the
permutations with the columnar frame (``event_time_orders``), so the
sweep skips the two O(n log n) sorts the scalar ``StatStructure``
re-derives per stat build.  ``naive`` has no build-time sort and
``interval``'s lexsort breaks ties differently (sharing it would break
byte parity), so those designs re-sort inside the frame and land near
1x — reported here, not asserted.

Metrics land in ``BENCH_fig5b_columnar.json`` so the session regression
guard watches both executors' wall times and the speedup ratio.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.bench import (
    TIMELINE_10PCT,
    emit_json,
    emit_report,
    format_table,
    logical_rcc_arrays,
)
from repro.index import StatusQuery, StatusQueryEngine

DESIGNS = ("naive", "avl", "interval", "sorted_array")
EXECUTORS = ("scalar", "columnar")
SCALES = (1, 20)
#: Reference design for the speedup assertion (the planner's sweep pick).
REFERENCE_DESIGN = "sorted_array"
#: Committed floor: columnar must finish the 20x sweep at least this many
#: times faster than the scalar incremental path on the reference design.
MIN_SWEEP_SPEEDUP_20X = 3.0

_times: dict[tuple[str, str, int], float] = {}


def timed_sweep(dataset, design: str, executor: str, factor: int) -> float:
    engine_table = logical_rcc_arrays(dataset, factor)[3]
    engine = StatusQueryEngine(engine_table, design=design, executor=executor)
    engine._group_assignment(StatusQuery(0.0))  # warm grouping cache
    tic = time.perf_counter()
    results = engine.execute_sweep(TIMELINE_10PCT, incremental=True)
    wall = time.perf_counter() - tic
    assert len(results) == len(TIMELINE_10PCT)
    return wall


def test_fig5b_columnar_vs_scalar(benchmark, dataset):
    def collect():
        for factor in SCALES:
            for design in DESIGNS:
                for executor in EXECUTORS:
                    _times[(design, executor, factor)] = timed_sweep(
                        dataset, design, executor, factor
                    )
        return _times

    times = benchmark.pedantic(collect, rounds=1, iterations=1)
    rows = []
    metrics: dict[str, float] = {}
    for factor in SCALES:
        for design in DESIGNS:
            scalar = times[(design, "scalar", factor)]
            columnar = times[(design, "columnar", factor)]
            speedup = scalar / max(columnar, 1e-9)
            rows.append(
                [
                    f"{factor}x",
                    design,
                    f"{scalar:.4f}s",
                    f"{columnar:.4f}s",
                    f"{speedup:.1f}x",
                ]
            )
            metrics[f"fig5b_columnar.{design}.scalar_s.{factor}x"] = scalar
            metrics[f"fig5b_columnar.{design}.columnar_s.{factor}x"] = columnar
    table = format_table(
        ["scale", "design", "scalar sweep", "columnar sweep", "speedup"], rows
    )
    emit_report(
        "fig5b_columnar",
        "Figure 5b companion: columnar vs scalar sweep execution",
        table,
    )
    emit_json("fig5b_columnar", metrics)
    reference_speedup = times[(REFERENCE_DESIGN, "scalar", 20)] / max(
        times[(REFERENCE_DESIGN, "columnar", 20)], 1e-9
    )
    assert reference_speedup >= MIN_SWEEP_SPEEDUP_20X, (
        f"columnar sweep speedup on {REFERENCE_DESIGN} at 20x is "
        f"{reference_speedup:.1f}x (floor {MIN_SWEEP_SPEEDUP_20X:.0f}x)"
    )


def test_columnar_scalar_results_identical(dataset):
    """1x smoke: both executors produce the same tables on this workload."""
    engine_table = logical_rcc_arrays(dataset, 1)[3]
    for design in DESIGNS:
        columnar = StatusQueryEngine(
            engine_table, design=design, executor="columnar"
        )
        scalar = StatusQueryEngine(engine_table, design=design, executor="scalar")
        for got, want in zip(
            columnar.execute_sweep(TIMELINE_10PCT),
            scalar.execute_sweep(TIMELINE_10PCT),
        ):
            for name in want.column_names:
                a, b = got[name], want[name]
                if a.dtype.kind == "O":
                    assert (a == b).all(), (design, name)
                else:
                    assert np.array_equal(a, b), (design, name)
