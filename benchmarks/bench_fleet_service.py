"""Sharded fleet service: scatter-gather throughput, saturation, durability.

Three phases over real spawned shard processes and real TCP:

1. **Throughput** — the same mixed workload (per-ship point DoMD
   queries, explanations, fleet status) is driven by concurrent socket
   clients against a 1-shard fleet and a 4-shard fleet.  Shard
   processes emulate a fixed backend I/O stall per request (the
   ``io_stall_ms`` spec knob — same technique as the pool throughput
   bench's ``IoStalledService``) so the measurement captures what
   sharding actually buys — overlapping request service across
   processes — independent of the host's core count.  The acceptance
   bar from the fleet-service issue is **at least 2.5x** single-shard
   throughput with 4 shards.
2. **Saturation** — a burst far past a deliberately tiny fleet's
   capacity must produce *immediate retryable* ``overloaded``
   envelopes, keeping the answered-request p99 bounded instead of
   queueing unboundedly.
3. **Durability** — ingest acknowledged over TCP, ``kill -9`` a shard,
   restart it: the WAL replay must restore the exact acknowledged
   watermark (zero acknowledged writes lost), and the recovery time is
   recorded.

Wall-times land in ``BENCH_fleet_service.json`` so the committed
baseline guards the scaling ratio run over run.
"""

from __future__ import annotations

import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.bench import emit_json, emit_report, format_table
from repro.core import DomdEstimator, PipelineConfig
from repro.data import (
    SyntheticNmdConfig,
    generate_dataset,
    save_dataset,
    split_dataset,
)
from repro.data.dates import day_to_iso
from repro.ml import GbmParams
from repro.persistence import save_estimator
from repro.serve.client import FrameClient
from repro.serve.fleet import FleetService
from repro.serve.ring import ConsistentHashRing

N_REQUESTS = 64
N_CLIENTS = 16
#: Emulated backend I/O per request in the throughput fleets; point
#: queries land on one shard each, so stalls overlap across shards.
IO_STALL_MS = 45.0
MIN_SPEEDUP = 2.5
SATURATION_BURST = 48
P99_BOUND_S = 2.0


@pytest.fixture(scope="module")
def artefacts(tmp_path_factory):
    """Fitted model + dataset saved to disk (shards load them by path)."""
    dataset = generate_dataset(
        SyntheticNmdConfig(
            n_ships=24,
            n_closed_avails=56,
            n_ongoing_avails=8,
            target_n_rccs=6_000,
            seed=11,
        )
    )
    splits = split_dataset(dataset)
    config = PipelineConfig(
        window_pct=25.0, k=8, fusion="average", gbm=GbmParams(n_estimators=20)
    )
    estimator = DomdEstimator(config).fit(dataset, splits.train_ids)
    root = tmp_path_factory.mktemp("fleet-bench")
    data_dir = root / "data"
    save_dataset(dataset, data_dir)
    model_path = root / "model.json"
    save_estimator(estimator, model_path)

    rng = np.random.default_rng(23)
    avail_ids = [int(a) for a in dataset.avails["avail_id"]]
    by_ship: dict[int, list[int]] = {}
    for avail_id, ship_id in zip(
        dataset.avails["avail_id"], dataset.avails["ship_id"]
    ):
        by_ship.setdefault(int(ship_id), []).append(int(avail_id))
    # Balanced capacity load: rotate point requests across the 4-shard
    # partition so every shard carries an equal share (partition-balance
    # itself is the ring property suite's concern, not this bench's).
    ring4 = ConsistentHashRing((0, 1, 2, 3))
    ships_by_shard: dict[int, list[int]] = {s: [] for s in ring4.shard_ids}
    for ship in sorted(by_ship):
        ships_by_shard[ring4.owner_of_ship(ship)].append(ship)
    shard_order = [s for s in sorted(ships_by_shard) if ships_by_shard[s]]

    def nth_ship(n: int) -> int:
        owned = ships_by_shard[shard_order[n % len(shard_order)]]
        return owned[(n // len(shard_order)) % len(owned)]

    some_day = int(np.min(np.asarray(dataset.avails["act_start"]))) + 40
    workload: list[dict] = []
    queries = 0
    for index in range(N_REQUESTS):
        kind = index % 16
        if kind <= 12:
            # The dominant production shape: all avails of one ship —
            # one owning shard per request.
            ship = nth_ship(queries)
            queries += 1
            workload.append(
                {
                    "type": "domd_query",
                    "avail_ids": by_ship[ship],
                    "t_star": float(rng.choice([10.0, 40.0, 70.0, 100.0])),
                }
            )
        elif kind <= 14:
            ship = nth_ship(queries)
            queries += 1
            workload.append(
                {
                    "type": "explain",
                    "avail_id": by_ship[ship][0],
                    "t_star": 50.0,
                }
            )
        else:
            workload.append(
                {"type": "fleet_status", "date": day_to_iso(some_day + index)}
            )
    return {
        "dataset": dataset,
        "data": str(data_dir),
        "model": str(model_path),
        "workload": workload,
        "root": root,
        "avail_ids": avail_ids,
    }


def drive_workload(
    port: int, workload: list[dict], n_clients: int = N_CLIENTS
) -> tuple[float, list[dict], list[float]]:
    """Concurrent clients drain the workload; returns (wall, responses,
    per-request latencies).  Responses keep workload order."""
    responses: list[dict | None] = [None] * len(workload)
    latencies: list[float] = [0.0] * len(workload)
    cursor = iter(range(len(workload)))
    lock = threading.Lock()

    def worker() -> None:
        with FrameClient("127.0.0.1", port, timeout=30.0) as client:
            while True:
                with lock:
                    index = next(cursor, None)
                if index is None:
                    return
                tic = time.perf_counter()
                responses[index] = client.request(workload[index])
                latencies[index] = time.perf_counter() - tic

    threads = [threading.Thread(target=worker) for _ in range(n_clients)]
    tic = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - tic
    assert all(response is not None for response in responses)
    return wall, responses, latencies


def query_answers(responses: list[dict]) -> list[tuple]:
    """The numeric answers of the domd_query responses, in order."""
    out = []
    for response in responses:
        if response.get("ok") and isinstance(response.get("result"), list):
            out.append(
                tuple(
                    (item.get("avail_id"), item.get("current"))
                    for item in response["result"]
                    if isinstance(item, dict) and "current" in item
                )
            )
    return out


def test_four_shards_beat_one(benchmark, artefacts):
    workload = artefacts["workload"]

    def run() -> dict[str, float]:
        times: dict[str, float] = {}
        answers: dict[int, list[tuple]] = {}
        for shards in (1, 4):
            fleet = FleetService(
                artefacts["model"],
                artefacts["data"],
                shards=shards,
                workers_per_shard=1,
                queue_depth=64,
                max_inflight=64,
                start_timeout=300.0,
                io_stall_ms=IO_STALL_MS,
            )
            port = fleet.start()
            try:
                # fleet_status scatters everywhere: warms every shard's
                # lazy feature materialisation before the clock starts.
                drive_workload(port, workload[15:16] * 2, n_clients=1)
                wall, responses, _ = drive_workload(port, workload)
                failed = [r for r in responses if not r.get("ok")]
                assert not failed, f"fleet x{shards}: {failed[:2]}"
                times[f"shard{shards}"] = wall
                answers[shards] = query_answers(responses)
            finally:
                fleet.stop(drain=False)
        # Same fleet, same answers — sharding must not change a number.
        assert answers[1] == answers[4], "sharded answers diverged"
        return times

    times = benchmark.pedantic(run, rounds=1, iterations=1)
    speedup = times["shard1"] / max(times["shard4"], 1e-9)
    rps1 = N_REQUESTS / times["shard1"]
    rps4 = N_REQUESTS / times["shard4"]
    table = format_table(
        ["fleet", "wall (s)", "req/s"],
        [
            ["1 shard", f"{times['shard1']:.3f}", f"{rps1:.1f}"],
            ["4 shards", f"{times['shard4']:.3f}", f"{rps4:.1f}"],
            ["speedup", f"{speedup:.2f}x", ""],
        ],
    )
    emit_report(
        "fleet_service",
        f"Sharded fleet service ({N_REQUESTS} mixed requests over TCP, "
        f"{N_CLIENTS} concurrent clients)",
        table,
    )
    emit_json(
        "fleet_service",
        {
            "serve.fleet.shard1": times["shard1"],
            "serve.fleet.shard4": times["shard4"],
        },
    )
    assert speedup >= MIN_SPEEDUP, (
        f"4-shard fleet managed only {speedup:.2f}x over a single shard "
        f"(floor {MIN_SPEEDUP}x)"
    )


def test_saturation_stays_bounded(artefacts):
    """A burst past capacity gets retryable overloaded envelopes fast."""
    fleet = FleetService(
        artefacts["model"],
        artefacts["data"],
        shards=1,
        workers_per_shard=1,
        queue_depth=1,  # the shard pool bounces almost everything
        max_inflight=4,  # ...and so does the front door
        start_timeout=300.0,
    )
    port = fleet.start()
    try:
        burst = [
            {
                "type": "domd_query",
                "avail_ids": artefacts["avail_ids"][:6],
                "t_star": 40.0,
            }
        ] * SATURATION_BURST
        _, responses, latencies = drive_workload(port, burst, n_clients=16)
    finally:
        fleet.stop(drain=False)
    overloaded = [
        r for r in responses if not r.get("ok")
        if r["error"]["code"] == "overloaded"
    ]
    unexpected = [
        r
        for r in responses
        if not r.get("ok") and r["error"]["code"] != "overloaded"
    ]
    assert not unexpected, unexpected[:2]
    assert overloaded, "burst never saturated the tiny fleet"
    assert all(r["error"]["retryable"] for r in overloaded)
    p99 = float(np.percentile(latencies, 99))
    assert p99 < P99_BOUND_S, (
        f"p99 {p99:.2f}s at saturation — backpressure is queueing, not"
        " shedding"
    )


def test_kill_restart_preserves_acked_writes(artefacts):
    """Ack = fsync: a SIGKILL + restart recovers the exact watermark."""
    wal_dir = Path(artefacts["root"]) / "wal"
    fleet = FleetService(
        artefacts["model"],
        artefacts["data"],
        shards=2,
        wal_dir=str(wal_dir),
        workers_per_shard=1,
        start_timeout=300.0,
    )
    port = fleet.start()
    try:
        with FrameClient("127.0.0.1", port, timeout=30.0) as client:
            dataset = artefacts["dataset"]
            by_shard: dict[int, list[int]] = {0: [], 1: []}
            for avail_id, ship_id in zip(
                dataset.avails["avail_id"], dataset.avails["ship_id"]
            ):
                by_shard[fleet.ring.owner_of_ship(int(ship_id))].append(
                    int(avail_id)
                )
            acked = {0: 0, 1: 0}
            for i in range(10):
                shard = i % 2
                response = client.request(
                    {
                        "type": "ingest",
                        "events": [
                            {
                                "kind": "rcc_created",
                                "rcc_id": 98_000_000 + i,
                                "avail_id": by_shard[shard][i // 2],
                                "rcc_type": "G",
                                "swlin": "111-22-333",
                                "create_date": 700,
                                "amount": 20.0,
                            }
                        ],
                    }
                )
                assert response["ok"], response
                acked[shard] += 1
            probe = {
                "type": "domd_query",
                "avail_ids": [by_shard[1][0]],
                "t_star": 30.0,
            }
            before = client.request(probe)
            assert before["ok"], before

            fleet.kill_shard(1)
            tic = time.perf_counter()
            fleet.restart_shard(1, graceful=False)
            recovery = time.perf_counter() - tic

            statuses = client.request({"type": "shard_status"})
            assert statuses["result"]["1"]["watermark"] == acked[1]
            after = client.request(probe)
            assert after["ok"], after
            assert (
                after["result"][0]["current"] == before["result"][0]["current"]
            ), "acknowledged write lost across kill -9"
    finally:
        fleet.stop(drain=False)
    emit_report(
        "fleet_service_recovery",
        "Shard kill -9 recovery (WAL replay, acked watermark restored)",
        format_table(
            ["metric", "value"],
            [["recovery wall (s)", f"{recovery:.3f}"]],
        ),
    )
