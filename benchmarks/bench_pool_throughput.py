"""Serving-pool throughput: 4 workers vs. sequential on a mixed workload.

The :class:`~repro.core.server.ServicePool` exists to overlap the
*waiting* in a serving stack — downstream data-store reads, socket
latency — with useful work on other requests.  This bench drives a
mixed request stream (DoMD queries, explanations, fleet status,
evaluation metrics) through a :class:`DomdService` whose ``handle``
emulates a fixed per-request downstream IO stall (a plain
``time.sleep``, which releases the GIL exactly like a blocking read
would), once sequentially and once through a 4-worker pool.

The acceptance bar from the serving-runtime issue: the pool must
sustain **at least 2.5x** the single-threaded throughput.  With a
15 ms stall per request the ideal 4-worker speedup is ~4x; the 2.5x
floor absorbs queue hand-off overhead and machine noise.

The observability issue adds a third mode: the same pooled run with the
always-on plane attached — a 50 ms :class:`TelemetrySampler` and a
20 ms :class:`StackProfiler` — which must stay within **2%** of the
plain pooled wall-time (plus a 10 ms absolute epsilon).  Both pooled
modes are timed as the min over three interleaved repetitions: a single
pooled run swings by ~15% under scheduler jitter, and only a *persistent*
cost — a real observability tax — survives the min on both sides.  All
three wall-times land in ``BENCH_pool_throughput.json`` so the committed
baseline guards the pool and the observability overhead alike.
"""

from __future__ import annotations

import json
import time

import numpy as np
import pytest

from repro.bench import emit_json, emit_report, format_table
from repro.core import DomdEstimator, PipelineConfig
from repro.core.server import ServicePool
from repro.core.service import DomdService
from repro.data import SyntheticNmdConfig, generate_dataset, split_dataset
from repro.data.dates import day_to_iso
from repro.ml import GbmParams
from repro.runtime.telemetry import StackProfiler, TelemetrySampler

N_WORKERS = 4
N_REQUESTS = 64
IO_STALL_S = 0.015  # emulated downstream read per request
MIN_SPEEDUP = 2.5
SAMPLER_INTERVAL_S = 0.05
PROFILER_INTERVAL_S = 0.02  # the serve CLI's --profile-interval-ms default
N_TIMING_REPS = 3  # min-of-N per pooled mode cancels scheduler jitter
MAX_OBS_OVERHEAD = 0.02  # observability must cost <2% of pooled wall-time
OBS_EPSILON_S = 0.010  # absolute slack: 2% of ~0.3s is below timer noise


class IoStalledService(DomdService):
    """DomdService with a fixed emulated IO stall before each dispatch."""

    def handle(self, request, parent=None):
        time.sleep(IO_STALL_S)
        return super().handle(request, parent=parent)


@pytest.fixture(scope="module")
def serving():
    """A fitted service over a miniature dataset plus its mixed workload."""
    dataset = generate_dataset(
        SyntheticNmdConfig(
            n_ships=10,
            n_closed_avails=28,
            n_ongoing_avails=2,
            target_n_rccs=2_500,
            seed=3,
        )
    )
    splits = split_dataset(dataset)
    config = PipelineConfig(
        window_pct=25.0, k=8, fusion="average", gbm=GbmParams(n_estimators=20)
    )
    estimator = DomdEstimator(config).fit(dataset, splits.train_ids)
    service = IoStalledService(estimator)
    service.handle({"type": "health"})  # warm lazy feature materialisation

    rng = np.random.default_rng(7)
    avail_ids = [int(a) for a in dataset.avails["avail_id"]]
    some_day = int(np.min(np.asarray(dataset.avails["act_start"]))) + 40
    workload: list[dict] = []
    for index in range(N_REQUESTS):
        kind = index % 8
        if kind <= 4:  # the dominant production type
            picked = rng.choice(avail_ids, size=2, replace=False)
            workload.append(
                {
                    "type": "domd_query",
                    "avail_ids": [int(a) for a in picked],
                    "t_star": float(rng.choice([10.0, 40.0, 70.0, 100.0])),
                }
            )
        elif kind == 5:
            workload.append(
                {"type": "explain", "avail_id": int(rng.choice(avail_ids)), "t_star": 50.0}
            )
        elif kind == 6:
            workload.append(
                {"type": "fleet_status", "date": day_to_iso(some_day + index)}
            )
        else:
            workload.append(
                {"type": "metrics", "avail_ids": [int(a) for a in splits.test_ids[:8]]}
            )
    return service, workload


def canonical_bytes(response: dict) -> bytes:
    """Encode a response with its only nondeterministic field removed.

    The provenance stamp's ``trace_id`` is a fresh correlation handle per
    request; every other byte must match across serving modes."""
    if isinstance(response.get("provenance"), dict):
        response = dict(response)
        provenance = dict(response["provenance"])
        provenance.pop("trace_id", None)
        response["provenance"] = provenance
    return json.dumps(response, sort_keys=True).encode()


def serve_sequential(service, workload) -> list[bytes]:
    return [canonical_bytes(service.handle(request)) for request in workload]


def serve_pooled(service, workload) -> list[bytes]:
    with ServicePool(service, workers=N_WORKERS, queue_depth=32) as pool:
        futures = [pool.submit(request, block=True) for request in workload]
        return [
            canonical_bytes(future.result(timeout=120)) for future in futures
        ]


def serve_pooled_observed(
    service, workload
) -> tuple[list[bytes], float, TelemetrySampler, StackProfiler]:
    """The pooled run with the always-on observability plane attached.

    The plane is *always-on*: its threads start before serving begins
    and outlive it, so the timed window covers steady-state sampling
    overhead, not thread startup or the final shutdown tick.
    """
    sampler = TelemetrySampler(
        service.context.metrics, interval=SAMPLER_INTERVAL_S, emit_events=False
    )
    profiler = StackProfiler(interval=PROFILER_INTERVAL_S)
    with sampler, profiler:
        tic = time.perf_counter()
        responses = serve_pooled(service, workload)
        elapsed = time.perf_counter() - tic
    return responses, elapsed, sampler, profiler


def test_pool_throughput_beats_sequential(benchmark, serving):
    service, workload = serving

    def run() -> dict[str, float]:
        tic = time.perf_counter()
        sequential = serve_sequential(service, workload)
        t_sequential = time.perf_counter() - tic
        t_pooled = t_observed = float("inf")
        for _ in range(N_TIMING_REPS):
            tic = time.perf_counter()
            pooled = serve_pooled(service, workload)
            t_pooled = min(t_pooled, time.perf_counter() - tic)
            observed, t_obs, sampler, profiler = serve_pooled_observed(
                service, workload
            )
            t_observed = min(t_observed, t_obs)
            assert pooled == sequential, "pooled responses must be byte-identical"
            assert observed == sequential, (
                "observability must not change a single response byte"
            )
            # The plane actually ran: the sampler filled request-rate
            # series and the profiler caught pool workers mid-request.
            assert sampler.ticks >= 2
            assert sampler.store.latest("counter.service.requests") is not None
            assert any("repro-pool" in line for line in profiler.collapsed())
        return {
            "sequential": t_sequential,
            "pooled": t_pooled,
            "observed": t_observed,
        }

    times = benchmark.pedantic(run, rounds=1, iterations=1)
    speedup = times["sequential"] / max(times["pooled"], 1e-9)
    overhead = times["observed"] / max(times["pooled"], 1e-9) - 1.0
    rps_seq = N_REQUESTS / times["sequential"]
    rps_pool = N_REQUESTS / times["pooled"]
    rps_obs = N_REQUESTS / times["observed"]
    table = format_table(
        ["mode", "wall (s)", "req/s"],
        [
            ["sequential", f"{times['sequential']:.3f}", f"{rps_seq:.1f}"],
            [f"pool x{N_WORKERS}", f"{times['pooled']:.3f}", f"{rps_pool:.1f}"],
            [
                f"pool x{N_WORKERS} + observability",
                f"{times['observed']:.3f}",
                f"{rps_obs:.1f}",
            ],
            ["speedup", f"{speedup:.2f}x", ""],
            ["observability overhead", f"{overhead * 100:+.1f}%", ""],
        ],
    )
    emit_report(
        "pool_throughput",
        f"Serving pool throughput ({N_REQUESTS} mixed requests, "
        f"{IO_STALL_S * 1e3:.0f} ms emulated IO)",
        table,
    )
    emit_json(
        "pool_throughput",
        {
            "serve.sequential": times["sequential"],
            f"serve.pool{N_WORKERS}": times["pooled"],
            f"serve.pool{N_WORKERS}.observed": times["observed"],
        },
    )
    assert speedup >= MIN_SPEEDUP, (
        f"{N_WORKERS}-worker pool managed only {speedup:.2f}x over sequential "
        f"(floor {MIN_SPEEDUP}x)"
    )
    assert times["observed"] <= times["pooled"] * (1.0 + MAX_OBS_OVERHEAD) + OBS_EPSILON_S, (
        f"sampler+profiler cost {overhead * 100:.1f}% of the pooled wall-time "
        f"(budget {MAX_OBS_OVERHEAD * 100:.0f}% + {OBS_EPSILON_S * 1e3:.0f} ms)"
    )
