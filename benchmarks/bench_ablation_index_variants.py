"""Ablation: incremental computation and index maintenance costs.

DESIGN.md calls out two design choices worth ablating beyond Figure 5:

1. **Incremental vs from-scratch sweeps at finer window widths** — the
   incremental advantage grows with the number of timeline queries
   (x = 20% -> 6 queries, x = 2% -> 51 queries) because delta work stays
   constant while from-scratch work scales with query count.
2. **Dynamic maintenance** — the AVL design supports O(log n)
   insert/delete after construction (the Navy deployment refreshes
   nightly); the naive design must rematerialize.
"""

import time

import numpy as np
import pytest

from repro.bench import emit_report, format_table, logical_rcc_arrays
from repro.index import DualAvlIndex, StatusQueryEngine

WINDOW_WIDTHS = (20.0, 10.0, 5.0, 2.0)

_sweeps: dict[tuple[float, bool], float] = {}


@pytest.mark.parametrize("width", WINDOW_WIDTHS)
@pytest.mark.parametrize("incremental", [True, False], ids=["incr", "scratch"])
def test_ablation_window_width(benchmark, dataset, width, incremental):
    engine_table = logical_rcc_arrays(dataset, 5)[3]
    engine = StatusQueryEngine(engine_table, design="avl")
    t_stars = [float(t) for t in np.arange(0.0, 100.0 + width, width)]

    def run():
        return engine.execute_sweep(t_stars, incremental=incremental)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    assert len(results) == len(t_stars)
    _sweeps[(width, incremental)] = benchmark.stats.stats.mean


def test_ablation_window_width_report(benchmark, dataset):
    def collect():
        engine_table = logical_rcc_arrays(dataset, 5)[3]
        for width in WINDOW_WIDTHS:
            for incremental in (True, False):
                if (width, incremental) in _sweeps:
                    continue
                engine = StatusQueryEngine(engine_table, design="avl")
                t_stars = [float(t) for t in np.arange(0.0, 100.0 + width, width)]
                tic = time.perf_counter()
                engine.execute_sweep(t_stars, incremental=incremental)
                _sweeps[(width, incremental)] = time.perf_counter() - tic
        return _sweeps

    sweeps = benchmark.pedantic(collect, rounds=1, iterations=1)
    rows = []
    for width in WINDOW_WIDTHS:
        n_queries = len(np.arange(0.0, 100.0 + width, width))
        inc = sweeps[(width, True)]
        scr = sweeps[(width, False)]
        rows.append(
            [f"{width:g}%", n_queries, f"{inc:.3f}s", f"{scr:.3f}s", f"{scr / max(inc, 1e-9):.1f}x"]
        )
    table = format_table(
        ["window x", "# queries", "incremental", "from scratch", "speedup"], rows
    )
    emit_report(
        "ablation_window_width",
        "Ablation: incremental advantage vs timeline resolution (5x RCCs)",
        table,
    )
    # Finer timelines widen the incremental advantage.
    speedup_coarse = sweeps[(20.0, False)] / max(sweeps[(20.0, True)], 1e-9)
    speedup_fine = sweeps[(2.0, False)] / max(sweeps[(2.0, True)], 1e-9)
    assert speedup_fine > speedup_coarse


def test_ablation_dynamic_maintenance(benchmark, dataset):
    """O(log n) AVL maintenance: 1000 inserts+deletes on the 5x index."""
    starts, ends, ids = logical_rcc_arrays(dataset, 5)[:3]
    index = DualAvlIndex(starts, ends, ids)
    rng = np.random.default_rng(0)
    new_starts = rng.uniform(0, 100, 1000)
    new_ends = new_starts + rng.gamma(2.0, 12.0, 1000)
    new_ids = np.arange(10_000_000, 10_001_000)

    def churn():
        for s, e, i in zip(new_starts, new_ends, new_ids):
            index._start_tree.insert(float(s), int(i))
            index._end_tree.insert(float(e), int(i))
        for s, e, i in zip(new_starts, new_ends, new_ids):
            index._start_tree.delete(float(s), int(i))
            index._end_tree.delete(float(e), int(i))

    benchmark.pedantic(churn, rounds=1, iterations=1)
    index._start_tree.validate()
    index._end_tree.validate()
