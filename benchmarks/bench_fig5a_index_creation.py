"""Figure 5a: index creation time vs RCC scaling factor.

Builds each of the three index designs at 1x..20x the base RCC table
(20x ~ 1.06M rows) and reports creation seconds.  Expected shape in this
pure-Python/numpy stack: the materialized-join baseline builds fastest
(numpy column copies), the AVL bulk build beats the interval-tree build
by ~2x — the paper saw its *interval tree* diverge for the mirrored
reason (its AVL and merge baselines were C-optimised; its interval tree
was pure Python).  EXPERIMENTS.md discusses the inversion.
"""

import time

import pytest

from repro.bench import (
    SCALING_FACTORS,
    emit_json,
    emit_report,
    format_table,
    logical_rcc_arrays,
)
from repro.index import index_designs

_results: dict[tuple[str, int], float] = {}


@pytest.mark.parametrize("factor", SCALING_FACTORS)
@pytest.mark.parametrize("design", list(index_designs()))
def test_fig5a_index_creation(benchmark, dataset, design, factor):
    starts, ends, ids = logical_rcc_arrays(dataset, factor)[:3]
    cls = index_designs()[design]

    def build():
        return cls(starts, ends, ids)

    built = benchmark.pedantic(build, rounds=1, iterations=1)
    assert len(built) == len(ids)
    _results[(design, factor)] = benchmark.stats.stats.mean


def test_fig5a_report(benchmark, dataset):
    def collect():
        # Fill any holes (e.g. single-test runs) by measuring directly.
        designs = index_designs()
        for factor in SCALING_FACTORS:
            starts, ends, ids = logical_rcc_arrays(dataset, factor)[:3]
            for name, cls in designs.items():
                if (name, factor) not in _results:
                    tic = time.perf_counter()
                    cls(starts, ends, ids)
                    _results[(name, factor)] = time.perf_counter() - tic
        return _results

    results = benchmark.pedantic(collect, rounds=1, iterations=1)
    rows = []
    for factor in SCALING_FACTORS:
        rows.append(
            [f"{factor}x"]
            + [f"{results[(name, factor)]:.3f}s" for name in index_designs()]
        )
    table = format_table(["scale"] + [f"{n} build" for n in index_designs()], rows)
    emit_report("fig5a_index_creation", "Figure 5a: index creation time", table)
    emit_json(
        "fig5a_index_creation",
        {
            f"build.{name}.{factor}x": results[(name, factor)]
            for (name, factor) in results
        },
    )
    # Shape check: AVL builds faster than the interval tree at scale.
    assert results[("avl", 20)] < results[("interval", 20)]
