"""Figure 2: delay distribution over all availabilities.

The paper's histogram spans on-time (and early) completions through
multi-year delays, with most mass within a few months of plan.  The
bench reports a text histogram plus summary quantiles and checks the
qualitative shape.
"""

import numpy as np

from repro.bench import emit_report, format_table


def test_fig2_delay_distribution_report(benchmark, dataset):
    delays = benchmark.pedantic(dataset.delays, rounds=1, iterations=1)
    edges = [-60, 0, 30, 60, 90, 120, 180, 240, 360, 480, 720, 1200]
    rows = []
    for lo, hi in zip(edges[:-1], edges[1:]):
        count = int(((delays >= lo) & (delays < hi)).sum())
        bar = "#" * int(round(60 * count / len(delays)))
        rows.append([f"[{lo:5d}, {hi:5d})", count, bar])
    quantiles = np.percentile(delays, [10, 50, 90, 99])
    summary = (
        f"n={len(delays)}  mean={delays.mean():.1f}  sd={delays.std():.1f}  "
        f"p10={quantiles[0]:.0f}  median={quantiles[1]:.0f}  "
        f"p90={quantiles[2]:.0f}  p99={quantiles[3]:.0f}  max={delays.max():.0f}"
    )
    table = format_table(["delay bin (days)", "avails", "histogram"], rows)
    emit_report(
        "fig2_delay_distribution",
        "Figure 2: delay distribution for all availabilities",
        table + "\n" + summary,
    )
    # Qualitative shape checks from the paper's description.
    assert delays.min() < 0, "some avails finish early"
    assert delays.max() > 365, "tail reaches multi-year delays"
    median = float(np.median(delays))
    assert median < delays.mean(), "right-skewed distribution"


def test_fig2_delay_computation_speed(benchmark, dataset):
    benchmark(dataset.delays)
