"""Regime generation throughput: lifecycle simulator vs direct sampler.

The lifecycle layer walks every avail through the degradation state
machine instead of sampling RCC streams directly, so it carries real
per-avail Python work.  This bench pins (a) paper-scale lifecycle
generation staying within an order of magnitude of the direct sampler
and (b) the per-regime cost of the test-scale sweep the property suite
pays in tier-1/nightly CI.
"""

from repro.bench import emit_report, format_table
from repro.data import SyntheticNmdConfig, generate_dataset
from repro.data.regimes import REGIMES, generate_regime_dataset

TEST_BASE = SyntheticNmdConfig(
    n_ships=8,
    n_closed_avails=26,
    n_ongoing_avails=2,
    target_n_rccs=1_600,
    seed=29,
)


def test_lifecycle_generation_paper_scale(benchmark):
    result = benchmark.pedantic(
        generate_regime_dataset, args=("baseline",), rounds=3, iterations=1
    )
    assert result.n_rccs == SyntheticNmdConfig().target_n_rccs


def test_regime_sweep_test_scale(benchmark):
    def sweep():
        return [
            generate_regime_dataset(name, base=TEST_BASE) for name in REGIMES
        ]

    datasets = benchmark.pedantic(sweep, rounds=3, iterations=1)
    assert len(datasets) == len(REGIMES)


def test_regime_generation_report(benchmark):
    import time

    start = time.perf_counter()
    direct = generate_dataset(SyntheticNmdConfig())
    direct_s = time.perf_counter() - start

    start = time.perf_counter()
    lifecycle = generate_regime_dataset("baseline")
    lifecycle_s = time.perf_counter() - start

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = [
        ["direct sampler (paper scale)", f"{direct_s * 1e3:.0f} ms",
         direct.n_rccs],
        ["lifecycle simulator (paper scale)", f"{lifecycle_s * 1e3:.0f} ms",
         lifecycle.n_rccs],
    ]
    table = format_table(["generator", "wall time", "# RCCs"], rows)
    emit_report(
        "regime_generation",
        "Regime generation: lifecycle simulator vs direct sampler",
        table,
    )
    assert lifecycle.n_rccs == direct.n_rccs
    # the state machine must stay within ~20x of the direct sampler
    assert lifecycle_s < max(direct_s * 20.0, 5.0)
