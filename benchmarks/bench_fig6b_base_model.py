"""Figure 6b: base model family — GBM (XGBoost-style) vs Elastic-Net.

With Pearson k=60 features fixed (the Task 2 winner), compares the two
model families over the whole logical timeline.  Paper result: XGBoost
wins thanks to non-linear interactions.
"""

from repro.bench import emit_report, format_table

_stage = {}


def test_fig6b_model_family(benchmark, optimizer):
    def run():
        optimizer.config = optimizer.config.evolve(
            selection_method="pearson", k=60, model_family="gbm",
            architecture="flat", loss="l2", fusion="none",
        )
        return optimizer.optimize_model_family()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    _stage["model"] = result
    assert {r["family"] for r in result.records} == {"gbm", "linear"}


def test_fig6b_report(benchmark, optimizer):
    def run():
        return _stage.get("model") or optimizer.optimize_model_family()

    stage = benchmark.pedantic(run, rounds=1, iterations=1)
    records = {r["family"]: r for r in stage.records}
    rows = []
    for ti, t_star in enumerate(optimizer.timeline.t_stars):
        rows.append(
            [
                f"{t_star:g}%",
                f"{records['gbm']['val_mae_by_t'][ti]:.2f}",
                f"{records['linear']['val_mae_by_t'][ti]:.2f}",
            ]
        )
    rows.append(
        ["mean", f"{records['gbm']['val_mae']:.2f}", f"{records['linear']['val_mae']:.2f}"]
    )
    table = format_table(["t*", "GBM (XGBoost-style)", "Elastic-Net"], rows)
    emit_report(
        "fig6b_base_model",
        "Figure 6b: validation MAE by base model family over the timeline",
        table + f"\nchosen: {stage.chosen['model_family']} (paper: XGBoost)",
    )
    assert records["gbm"]["val_mae"] < records["linear"]["val_mae"]
