"""Table 5: statistics of the (synthetic) NMD dataset.

Paper reference: 73 ships, 187 closed avails, 52,959 RCCs.  The bench
times full dataset generation and reports the statistics table.
"""

from repro.bench import emit_report, format_table
from repro.data import SyntheticNmdConfig, generate_dataset


def test_table5_generation_speed(benchmark):
    config = SyntheticNmdConfig()
    result = benchmark.pedantic(generate_dataset, args=(config,), rounds=3, iterations=1)
    assert result.n_rccs == 52_959


def test_table5_report(benchmark, dataset):
    stats = benchmark.pedantic(dataset.statistics, rounds=1, iterations=1)
    rows = [
        ["# ships", 73, stats["n_ships"]],
        ["# closed avails", 187, stats["n_closed_avails"]],
        ["# RCC records", 52_959, stats["n_rccs"]],
    ]
    table = format_table(["statistic", "paper", "reproduced"], rows)
    emit_report("table5_dataset_stats", "Table 5: dataset statistics", table)
    assert stats["n_ships"] == 73
    assert stats["n_closed_avails"] == 187
    assert stats["n_rccs"] == 52_959
