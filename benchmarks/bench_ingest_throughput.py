"""Streaming ingestion throughput: live index maintenance per design.

Replays a miniature dataset's full RCC event stream (creates + settles,
time-ordered) through the ``StreamingRccStore`` →
:class:`~repro.stream.mutable.MutableIndexAdapter` path once per index
design and reports sustained events/sec.  The two maintenance
strategies show up directly: ``avl``/``sorted_array`` pay a small
constant per event (true incremental surgery), while
``naive``/``interval`` amortise periodic rebuilds of their immutable
inner index across the staged-delta buffer (threshold ``max(64, √n)``).

Wall-times per design land in ``BENCH_ingest_throughput.json`` (seconds
to ingest the whole stream, lower is better) so the committed baseline
guards the ingest path against regressing.  A final differential check
pins correctness: after ingesting everything, each live adapter must
answer identically to an index built from scratch.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.bench import emit_json, emit_report, format_table
from repro.data import SyntheticNmdConfig, generate_dataset
from repro.index.status_query import StatusQueryEngine
from repro.stream import StreamIngestor, StreamingRccStore, dataset_to_events
from repro.stream.mutable import _DESIGNS

DESIGNS = tuple(_DESIGNS)
BATCH_SIZE = 256
#: Per-design floor; generous (real rates are 10-100x this) — it exists
#: to catch an accidentally quadratic ingest path, not machine speed.
MIN_EVENTS_PER_S = 500.0
#: Raised floors for designs with batched insert maintenance
#: (``apply_insert_batch`` merges each coalesced insert run in one
#: pass).  sorted_array's per-event splice storm used to make it the
#: slowest design; the merge path must keep it within reach of avl.
MIN_EVENTS_PER_S_BY_DESIGN = {"sorted_array": 2_000.0}


@pytest.fixture(scope="module")
def event_stream():
    """The miniature dataset decomposed into its time-ordered events."""
    dataset = generate_dataset(
        SyntheticNmdConfig(
            n_ships=10,
            n_closed_avails=28,
            n_ongoing_avails=2,
            target_n_rccs=2_500,
            seed=3,
        )
    )
    _, events = dataset_to_events(dataset)
    return dataset, events


def ingest_all(dataset, events, design: str) -> dict[str, float]:
    """Ingest the full stream through one live-maintained design."""
    store = StreamingRccStore(
        ships=dataset.ships,
        avails=dataset.avails,
        seed=dataset.seed,
        scaling_factor=dataset.scaling_factor,
    )
    ingestor = StreamIngestor(store, designs=(design,))
    tic = time.perf_counter()
    for lo in range(0, len(events), BATCH_SIZE):
        ingestor.apply_events(events[lo : lo + BATCH_SIZE])
    wall = time.perf_counter() - tic

    # correctness pin: live == batch over the final state
    adapter = ingestor.adapters[design]
    table = store.engine_table()
    batch = StatusQueryEngine(table, design=design).index
    for t in (0.0, 25.0, 50.0, 75.0, 100.0):
        for op in ("active_ids", "settled_ids", "created_ids", "pending_ids"):
            assert np.array_equal(
                getattr(adapter, op)(t), getattr(batch, op)(t)
            ), (design, op, t)
    return {
        "wall_s": wall,
        "events_per_s": len(events) / max(wall, 1e-9),
        "rebuilds": float(adapter.rebuilds),
        "staged": float(adapter.staged_count),
    }


def test_ingest_throughput_all_designs(benchmark, event_stream):
    dataset, events = event_stream

    def run() -> dict[str, dict[str, float]]:
        return {design: ingest_all(dataset, events, design) for design in DESIGNS}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        ["design", "wall (s)", "events/s", "rebuilds", "staged"],
        [
            [
                design,
                f"{r['wall_s']:.3f}",
                f"{r['events_per_s']:.0f}",
                f"{r['rebuilds']:.0f}",
                f"{r['staged']:.0f}",
            ]
            for design, r in results.items()
        ],
    )
    emit_report(
        "ingest_throughput",
        f"Streaming ingest throughput ({len(events)} events, "
        f"batches of {BATCH_SIZE})",
        table,
    )
    emit_json(
        "ingest_throughput",
        {f"ingest.{design}.wall_s": r["wall_s"] for design, r in results.items()},
    )
    for design, r in results.items():
        floor = MIN_EVENTS_PER_S_BY_DESIGN.get(design, MIN_EVENTS_PER_S)
        assert r["events_per_s"] >= floor, (
            f"{design} ingests at {r['events_per_s']:.0f} events/s "
            f"(floor {floor:.0f}/s — is the ingest path quadratic?)"
        )
