"""Ablation: feature-grid depth vs estimation quality and cost.

The paper fixes its grid at ~1490 features over SWLIN level 1; its tech
report sketches deeper hierarchies.  This ablation sweeps three grids —
compact (counts/sums only), the paper default, and the level-2 deep grid
(~9.4k features) — and reports extraction time, selection+fit time and
validation MAE with the final configuration's model settings.
"""

import time

import numpy as np

from repro.bench import emit_report, format_table
from repro.core import PipelineConfig, TimelineModelSet
from repro.features import FeatureGridSpec, StatusFeatureExtractor, static_features_for
from repro.features.selection import score_ranking
from repro.ml import GbmParams, mae

GRIDS = {
    "compact": FeatureGridSpec.compact,
    "default": FeatureGridSpec.default,
    "deep": FeatureGridSpec.deep,
}

EVAL_WINDOWS = (0, 5, 10)


def test_ablation_feature_grid(benchmark, dataset, splits):
    def run():
        config = PipelineConfig(
            selection_method="pearson", k=60, loss="pseudo_huber",
            huber_delta=18.0, gbm=GbmParams(n_estimators=100),
        )
        delay_by_id = {
            int(a): float(d)
            for a, d in zip(dataset.avails["avail_id"], dataset.avails["delay"])
        }
        X_static_all, static_names, _ = static_features_for(dataset)
        rows = []
        for label, factory in GRIDS.items():
            grid = factory()
            tic = time.perf_counter()
            extractor = StatusFeatureExtractor(dataset, grid=grid)
            tensor = extractor.extract()
            extract_s = time.perf_counter() - tic

            train_rows = tensor.rows_for(splits.train_ids)
            val_rows = tensor.rows_for(splits.validation_ids)
            y_train = np.array([delay_by_id[int(a)] for a in splits.train_ids])
            y_val = np.array([delay_by_id[int(a)] for a in splits.validation_ids])

            tic = time.perf_counter()
            errors = []
            for ti in EVAL_WINDOWS:
                X_dyn = tensor.values[train_rows, ti, :]
                ranking = score_ranking("pearson", X_dyn, y_train)
                selected = ranking[: min(60, tensor.n_features)]
                model_set = TimelineModelSet(config, tensor.feature_names, static_names)
                design, _ = model_set._design(
                    X_static_all[train_rows], X_dyn, selected, None
                )
                model = model_set._new_model().fit(design, y_train)
                val_design, _ = model_set._design(
                    X_static_all[val_rows], tensor.values[val_rows, ti, :], selected, None
                )
                errors.append(mae(y_val, model.predict(val_design)))
            fit_s = time.perf_counter() - tic
            rows.append(
                [
                    label,
                    tensor.n_features,
                    f"{extract_s:.2f}s",
                    f"{fit_s:.2f}s",
                    f"{np.mean(errors):.2f}",
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        ["grid", "# features", "extract", "select+fit (3 windows)", "val MAE"], rows
    )
    emit_report(
        "ablation_feature_grid",
        "Ablation: feature-grid depth vs quality and cost",
        table,
    )
    by_label = {row[0]: row for row in rows}
    # The paper's grid should not lose to the compact one by much, and
    # the deep grid must not catastrophically overfit.
    assert float(by_label["default"][4]) <= float(by_label["compact"][4]) * 1.15
