"""Ablation: extended fusion methods (the paper's future work).

The paper evaluates none/min/average and explicitly leaves "many other
possible ensembling methods" to future work.  This ablation adds two:

* **median** fusion — robust to a single bad window model;
* **ewma** fusion — exponentially weights recent windows (recency bias),
  interpolating between "none" (alpha -> 0) and "average" (alpha -> 1).
"""

import numpy as np

from repro.bench import emit_report, format_table
from repro.core.fusion import FUSION_METHODS, fuse_progressive
from repro.ml import mae


def test_ablation_fusion_extended(benchmark, optimizer):
    def run():
        optimizer.config = optimizer.config.evolve(
            selection_method="pearson", k=60, model_family="gbm",
            architecture="flat", loss="pseudo_huber", huber_delta=18.0,
            fusion="none",
        )
        model_set = optimizer.fit_model_set(optimizer.config)
        raw = model_set.predict_matrix(optimizer.Xs_val, optimizer.dyn_val)
        out = {}
        for method in FUSION_METHODS:
            fused = fuse_progressive(raw, method)
            by_t = np.array(
                [mae(optimizer.y_val, fused[:, ti]) for ti in range(fused.shape[1])]
            )
            out[method] = by_t
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [method, f"{by_t.mean():.2f}", f"{by_t[-1]:.2f}"]
        for method, by_t in sorted(results.items(), key=lambda kv: kv[1].mean())
    ]
    table = format_table(["fusion", "val MAE (timeline mean)", "val MAE @100%"], rows)
    emit_report(
        "ablation_fusion_extended",
        "Ablation: extended fusion methods (median / ewma vs paper trio)",
        table,
    )
    # ewma interpolates: never worse than both extremes simultaneously.
    assert results["ewma"].mean() <= max(
        results["none"].mean(), results["average"].mean()
    ) + 1e-9
    # min fusion is the clear loser (systematic underestimation).
    assert results["min"].mean() >= min(r.mean() for r in results.values())
