"""Ablation: second-order (Newton) vs first-order gradient boosting.

The XGBoost-style learner uses hessian-weighted split gains and leaf
weights.  This ablation retrains the final pipeline's window models with
hessians forced to 1 (plain gradient boosting) and compares validation
MAE — quantifying what the second-order machinery buys on the robust
pseudo-Huber loss, where hessians carry the outlier down-weighting.
"""

import numpy as np

from repro.bench import emit_report, format_table
from repro.core import TimelineModelSet
from repro.ml import GradientBoostedTrees, mae
from repro.ml.losses import PseudoHuberLoss


class _FirstOrderPseudoHuber(PseudoHuberLoss):
    """Pseudo-Huber with the hessian flattened to 1 (first-order mode)."""

    name = "pseudo_huber_first_order"

    def hessian(self, y_true, y_pred):
        return np.ones_like(y_pred)


def _patched_fit(model: GradientBoostedTrees, X, y):
    model._loss = _FirstOrderPseudoHuber(model.params.huber_delta)
    return GradientBoostedTrees.fit(model, X, y)


def test_ablation_gbm_order(benchmark, optimizer):
    def run():
        config = optimizer.config.evolve(
            selection_method="pearson", k=60, model_family="gbm",
            architecture="flat", loss="pseudo_huber", huber_delta=18.0,
            fusion="none",
        )
        rankings = optimizer.rankings_for("pearson")
        rows = []
        for label, first_order in (("second-order (Newton)", False), ("first-order", True)):
            errors = []
            for ti in (0, 3, 6, 10):
                model_set = TimelineModelSet(
                    config, optimizer.dyn_names, optimizer.static_names
                )
                selected = rankings[ti][:60]
                design, _ = model_set._design(
                    optimizer.Xs_train, optimizer.dyn_train[:, ti, :], selected, None
                )
                model = model_set._new_model()
                inner = GradientBoostedTrees(model.params)
                if first_order:
                    _patched_fit(inner, design, optimizer.y_train)
                else:
                    inner.fit(design, optimizer.y_train)
                val_design, _ = model_set._design(
                    optimizer.Xs_val, optimizer.dyn_val[:, ti, :], selected, None
                )
                errors.append(mae(optimizer.y_val, inner.predict(val_design)))
            rows.append([label] + [f"{e:.2f}" for e in errors] + [f"{np.mean(errors):.2f}"])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        ["boosting", "t*=0", "t*=30", "t*=60", "t*=100", "mean"], rows
    )
    emit_report(
        "ablation_gbm_order",
        "Ablation: second-order vs first-order boosting (pseudo-Huber d=18)",
        table,
    )
    second = float(rows[0][-1])
    first = float(rows[1][-1])
    # Newton steps should not lose to plain gradient steps.
    assert second <= first * 1.10
