"""Figure 6d: training loss functions (Task 4).

With GBM + Pearson k=60 + flat architecture fixed, evaluates l2, l1 and
pseudo-Huber (with delta tuning).  Paper result: pseudo-Huber with
delta = 18 wins — robust to the heavy delay outliers without discarding
the quadratic regime for small residuals.
"""

from repro.bench import emit_report, format_table
from repro.core.pipeline import DEFAULT_HUBER_DELTAS

_stage = {}


def test_fig6d_losses(benchmark, optimizer):
    def run():
        optimizer.config = optimizer.config.evolve(
            selection_method="pearson", k=60, model_family="gbm",
            architecture="flat", loss="l2", fusion="none",
        )
        return optimizer.optimize_loss(
            losses=("l2", "l1", "pseudo_huber"), huber_deltas=DEFAULT_HUBER_DELTAS
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    _stage["loss"] = result
    assert any(r["loss"] == "pseudo_huber" for r in result.records)


def test_fig6d_report(benchmark, optimizer):
    def run():
        return _stage.get("loss") or optimizer.optimize_loss()

    stage = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for record in stage.records:
        label = record["loss"]
        if record["loss"] in ("huber", "pseudo_huber"):
            label += f" (delta={record['delta']:g})"
        rows.append([label, f"{record['val_mae']:.2f}"])
    table = format_table(["loss", "validation MAE (timeline mean)"], rows)
    chosen = stage.chosen
    footer = (
        f"chosen: {chosen['loss']} delta={chosen['huber_delta']:g} "
        f"(paper: pseudo-Huber, delta=18)"
    )
    emit_report("fig6d_loss_functions", "Figure 6d: loss function sweep", table + "\n" + footer)
    # Shape: a robust loss (l1 or Huber family) never loses to plain l2.
    best_l2 = min(r["val_mae"] for r in stage.records if r["loss"] == "l2")
    best_robust = min(
        r["val_mae"] for r in stage.records if r["loss"] in ("l1", "pseudo_huber")
    )
    assert best_robust <= best_l2 * 1.02
