"""Table 6: index construction cost considering space (MB).

Paper numbers (MB): naive/pandas-merge 57-1090, AVL 28-556, interval
30-578 across 1x..20x — the tree indexes halve the materialized join's
footprint.  The reproduction measures deep sizes of each design's
structures; the expected shape is AVL < naive with roughly a 1.5-2x gap.
"""

import pytest

from repro.bench import SCALING_FACTORS, emit_report, format_table, logical_rcc_arrays
from repro.index import index_designs

_memory: dict[tuple[str, int], float] = {}

PAPER_MB = {
    ("naive", 1): 57.3, ("avl", 1): 28.1, ("interval", 1): 29.6,
    ("naive", 5): 274.7, ("avl", 5): 137.6, ("interval", 5): 146.4,
    ("naive", 10): 547.8, ("avl", 10): 273.8, ("interval", 10): 285.3,
    ("naive", 15): 820.8, ("avl", 15): 410.0, ("interval", 15): 427.0,
    ("naive", 20): 1090.0, ("avl", 20): 556.1, ("interval", 20): 578.5,
}


@pytest.mark.parametrize("factor", SCALING_FACTORS)
def test_table6_index_memory(benchmark, dataset, factor):
    starts, ends, ids = logical_rcc_arrays(dataset, factor)[:3]

    def measure():
        out = {}
        for name, cls in index_designs().items():
            index = cls(starts, ends, ids)
            out[name] = index.approx_nbytes() / 1e6
        return out

    sizes = benchmark.pedantic(measure, rounds=1, iterations=1)
    for name, mb in sizes.items():
        _memory[(name, factor)] = mb
    # The AVL design undercuts the materialized join once the table is
    # scaled (paper shape).  At 1x, pure-Python node overhead dominates —
    # the mirror image of the paper's C-backed AVL, where the tree wins
    # everywhere; x-fold replication also folds duplicate dates into
    # shared AVL nodes, which amplifies the tree's advantage with scale.
    if factor >= 10:
        assert sizes["avl"] < sizes["naive"]


def test_table6_report(benchmark, dataset):
    def collect():
        for factor in SCALING_FACTORS:
            if ("avl", factor) in _memory:
                continue
            starts, ends, ids = logical_rcc_arrays(dataset, factor)[:3]
            for name, cls in index_designs().items():
                _memory[(name, factor)] = cls(starts, ends, ids).approx_nbytes() / 1e6
        return _memory

    memory = benchmark.pedantic(collect, rounds=1, iterations=1)
    headers = ["scale"]
    for name in index_designs():
        headers += [f"{name} MB", f"paper {name}"]
    rows = []
    for factor in SCALING_FACTORS:
        row = [f"{factor}x"]
        for name in index_designs():
            row += [f"{memory[(name, factor)]:.1f}", PAPER_MB[(name, factor)]]
        rows.append(row)
    table = format_table(headers, rows)
    emit_report("table6_index_memory", "Table 6: index memory footprint", table)
    # Memory grows with the scaling factor (sublinearly for the AVL tree:
    # exact x-fold replication folds duplicate dates into shared nodes).
    assert memory[("avl", 20)] > 4 * memory[("avl", 1)]
    assert memory[("naive", 20)] > 15 * memory[("naive", 1)]
