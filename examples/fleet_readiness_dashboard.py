"""Fleet-readiness dashboard: DoMD queries across the whole fleet.

The paper's motivating scenario: Vice Admiral Kitchener's 75-combat-
ready-ships goal requires knowing, at any moment, which maintenance
periods will run long.  This example plays the role of the SMDII
back-end: on a chosen "today", it queries the estimated delay of every
avail currently in execution, ranks them by projected delay, flags the
worst offenders with their top delay drivers, and totals the projected
cost overrun at $250k per delay-day.

Run with::

    python examples/fleet_readiness_dashboard.py
"""

import numpy as np

from repro.core import DomdEstimator, paper_final_config
from repro.data import day_to_iso, generate_dataset, split_dataset

COST_PER_DAY = 250_000


def main() -> None:
    dataset = generate_dataset()
    splits = split_dataset(dataset)
    estimator = DomdEstimator(paper_final_config()).fit(dataset, splits.train_ids)

    # Pick "today" so that a good number of avails are mid-execution:
    # the 80th percentile of actual start dates.
    avails = dataset.avails
    today = int(np.percentile(avails["act_start"], 80))
    print(f"fleet status on {day_to_iso(today)}\n")

    # An avail is "in execution" on `today` if it started and its planned
    # end has not been exceeded by more than 50% (still plausibly open).
    act_start = np.asarray(avails["act_start"])
    planned = np.asarray(avails["planned_duration"])
    progress = (today - act_start) / planned * 100.0
    executing = (progress >= 0.0) & (progress <= 100.0)
    ids = np.asarray(avails["avail_id"])[executing]
    progress = progress[executing]

    print(f"{len(ids)} avails in execution; querying DoMD for each...\n")
    board = []
    for avail_id, pct in zip(ids, progress):
        estimate = estimator.query([int(avail_id)], t_star=float(pct))[0]
        board.append((estimate.current_estimate, int(avail_id), float(pct), estimate))
    board.sort(reverse=True)

    header = f"{'avail':>6} {'ship':>5} {'progress':>9} {'est. delay':>11} {'cost overrun':>14}"
    print(header)
    print("-" * len(header))
    ship_of = {
        int(a): int(s) for a, s in zip(avails["avail_id"], avails["ship_id"])
    }
    total_cost = 0.0
    for delay, avail_id, pct, _ in board:
        cost = max(delay, 0.0) * COST_PER_DAY
        total_cost += cost
        print(
            f"{avail_id:>6} {ship_of[avail_id]:>5} {pct:>8.0f}% "
            f"{delay:>9.1f} d {cost:>13,.0f}"
        )
    print("-" * len(header))
    print(f"projected fleet-wide overrun: ${total_cost:,.0f}\n")

    print("top delay drivers for the three worst avails:")
    for delay, avail_id, pct, _ in board[:3]:
        print(f"\n  avail {avail_id} (projected {delay:.0f} days late):")
        for item in estimator.explain(avail_id, pct, top=5):
            print(f"    {item.name:32s} {item.contribution:+9.2f} d")


if __name__ == "__main__":
    main()
