"""Obfuscated-design / raw-retrain: the paper's deployment workflow.

The pipeline is *designed* outside the Navy enclave on obfuscated data
(dates shifted, amounts rescaled, ids permuted, SWLIN digits
substituted, ship classes renamed) and then **retrained on raw data
inside the enclave without human intervention**.  This example
demonstrates that the workflow is sound end to end:

1. obfuscate the dataset and run the greedy pipeline optimization
   (selection -> loss -> fusion) on the obfuscated view,
2. carry the resulting configuration — *not* the data — across the
   boundary, retrain on raw data,
3. show that test metrics on the raw side match the obfuscated side.

Run with::

    python examples/obfuscated_retrain.py
"""

import numpy as np

from repro.core import DomdEstimator, PipelineConfig, PipelineOptimizer
from repro.data import generate_dataset, obfuscate_dataset, split_dataset
from repro.ml import GbmParams


def main() -> None:
    raw = generate_dataset()
    print("raw dataset:", raw.statistics())

    obfuscated, key = obfuscate_dataset(raw, seed=2026)
    print(
        f"obfuscated: dates shifted by {key.date_shift} days, amounts scaled "
        f"x{key.amount_scale:.3f}, ids permuted, SWLIN digits substituted"
    )

    # --- outside the enclave: optimize the pipeline on obfuscated data ----
    splits_raw = split_dataset(raw, seed=13)
    mapped = lambda ids: np.sort([key.avail_id_map[int(a)] for a in ids])  # noqa: E731
    from repro.data.splits import DataSplits

    splits_obf = DataSplits(
        train_ids=mapped(splits_raw.train_ids),
        validation_ids=mapped(splits_raw.validation_ids),
        test_ids=mapped(splits_raw.test_ids),
    )
    base = PipelineConfig(gbm=GbmParams(n_estimators=80))
    optimizer = PipelineOptimizer(obfuscated, splits_obf, base_config=base)
    print("\noptimizing pipeline on the OBFUSCATED view (selection/loss/fusion)...")
    report = optimizer.run(
        stages=("selection", "loss", "fusion"),
        selection_methods=("pearson", "spearman", "random"),
        k_grid=(30, 60, 90),
    )
    config = report.config
    print("chosen configuration:", config.describe())
    obf_metrics = optimizer.test_evaluation(config)["average"]

    # --- inside the enclave: retrain the SAME config on raw data ----------
    print("\nretraining the chosen configuration on RAW data...")
    estimator = DomdEstimator(config).fit(raw, splits_raw.train_ids)
    raw_metrics = estimator.evaluate(splits_raw.test_ids)["average"]

    print("\nmetric parity (test set, timeline averages):")
    print(f"{'metric':>8} {'obfuscated':>12} {'raw':>12}")
    for metric in ("mae_80", "mae_90", "mae_100", "rmse", "r2"):
        print(f"{metric:>8} {obf_metrics[metric]:>12.2f} {raw_metrics[metric]:>12.2f}")
    drift = abs(obf_metrics["mae_100"] - raw_metrics["mae_100"])
    print(
        f"\nMAE drift across the boundary: {drift:.2f} days — the obfuscation "
        "preserves the learning problem, so the design transfers."
    )


if __name__ == "__main__":
    main()
