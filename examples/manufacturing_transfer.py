"""Domain transfer: the pipeline on (simulated) manufacturing data.

The paper's conclusion: "the research challenges investigated in the
work are likely to adapt to other application domains as well, including
... manufacturing applications, such as maintaining pumps, motors,
conveyor belts".  This example simulates that ongoing work: a plant
maintenance dataset with the same *relational shape* as the NMD —
maintenance campaigns on production lines ("avails"), engineering change
orders ("RCCs") with a hierarchical location code ("SWLIN") — fed through
the identical pipeline with zero code changes.

Because the framework only ever sees the schema, nothing is
Navy-specific: generate, split, optimize, estimate, explain.

Run with::

    python examples/manufacturing_transfer.py
"""

from repro.core import DomdEstimator, PipelineConfig, PipelineOptimizer
from repro.data import SyntheticNmdConfig, generate_dataset, split_dataset
from repro.ml import GbmParams

#: Re-interpretation of the schema's Navy vocabulary for a plant.
DOMAIN_GLOSSARY = {
    "ship": "production line",
    "avail": "maintenance campaign",
    "RCC": "engineering change order (ECO)",
    "SWLIN digit": "plant area (1=intake .. 9=packaging)",
    "ship_class": "line type (pumps / motors / conveyors ...)",
    "rmc_id": "maintenance crew",
    "delay": "days of campaign overrun",
}


def main() -> None:
    print("schema glossary for the manufacturing domain:")
    for navy, plant in DOMAIN_GLOSSARY.items():
        print(f"  {navy:12s} -> {plant}")

    # A mid-size plant: 40 lines, 120 closed campaigns, ~20k ECOs, and a
    # different randomness regime (more volatile latent trouble).
    config = SyntheticNmdConfig(
        n_ships=40,
        n_closed_avails=120,
        n_ongoing_avails=3,
        target_n_rccs=20_000,
        seed=99,
        trouble_shape=16.0,
        trouble_scale=1.0 / 16.0,
        delay_per_trouble=60.0,
        early_shift_days=20.0,
    )
    dataset = generate_dataset(config)
    print("\nplant dataset:", dataset.statistics())

    splits = split_dataset(dataset)
    optimizer = PipelineOptimizer(
        dataset,
        splits,
        base_config=PipelineConfig(gbm=GbmParams(n_estimators=80)),
    )
    print("\nre-running the greedy pipeline design on the plant data...")
    report = optimizer.run(
        stages=("selection", "model", "loss", "fusion"),
        selection_methods=("pearson", "spearman", "mutual_info"),
        k_grid=(20, 40, 60),
    )
    print("chosen configuration:", report.config.describe())

    out = optimizer.test_evaluation(report.config)
    avg = out["average"]
    print(
        "\ncampaign-overrun estimation quality (test, timeline avg): "
        f"MAE80 {avg['mae_80']:.1f}  MAE100 {avg['mae_100']:.1f}  R^2 {avg['r2']:.2f}"
    )

    estimator = DomdEstimator(report.config).fit(dataset, splits.train_ids)
    ongoing = dataset.avails.filter(dataset.avails["status"] == "ongoing")
    campaign = int(ongoing["avail_id"][0])
    estimate = estimator.query([campaign], t_star=40.0)[0]
    print(
        f"\nongoing campaign {campaign} at 40% of plan: "
        f"projected overrun {estimate.current_estimate:.1f} days"
    )
    print("top drivers:")
    for item in estimator.explain(campaign, 40.0, top=5):
        print(f"  {item.name:32s} {item.contribution:+8.2f} d")


if __name__ == "__main__":
    main()
