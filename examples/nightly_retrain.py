"""Unattended retraining: the enclave's nightly job, end to end.

The paper's deployment "retrains on raw data in the Navy environment
without human intervention".  This example simulates three months of
that loop:

1. bootstrap a champion model on the current snapshot,
2. each "month", new avails close (simulated with
   :func:`repro.data.generate_continuation`),
3. a challenger is fitted on the grown training population and promoted
   only if it does not regress on a fixed evaluation population,
4. every promoted champion is persisted as a versioned JSON artefact.

Run with::

    python examples/nightly_retrain.py
"""

from pathlib import Path

import numpy as np

from repro.core import PipelineConfig, RetrainManager
from repro.data import generate_continuation, generate_dataset, split_dataset
from repro.ml import GbmParams
from repro.persistence import save_estimator

ARTIFACT_DIR = Path("/tmp/repro_models")


def main() -> None:
    dataset = generate_dataset()
    splits = split_dataset(dataset)
    config = PipelineConfig(
        selection_method="pearson", k=60, loss="pseudo_huber", huber_delta=18.0,
        fusion="average", gbm=GbmParams(n_estimators=100),
    )
    manager = RetrainManager(config=config, tolerance=0.02, min_new_avails=5)

    print("bootstrapping champion on", len(splits.train_ids), "training avails...")
    manager.bootstrap(dataset, splits.train_ids)
    baseline = manager.champion.evaluate(splits.test_ids)["average"]
    print(f"  champion v0: test MAE100 {baseline['mae_100']:.2f}, R^2 {baseline['r2']:.2f}")
    save_estimator(manager.champion, ARTIFACT_DIR / "champion_v0.json")

    snapshot = dataset
    train_ids = np.asarray(splits.train_ids)
    version = 0
    for month in range(1, 4):
        # New avails close during the month (exchangeable continuation).
        snapshot = generate_continuation(snapshot, n_new_closed=8, seed=1000 + month)
        new_ids = np.setdiff1d(
            np.asarray(snapshot.closed_avails()["avail_id"], dtype=np.int64),
            np.concatenate([train_ids, splits.validation_ids, splits.test_ids]),
        )
        train_ids = np.sort(np.concatenate([train_ids, new_ids]))
        decision = manager.consider(snapshot, train_ids, splits.test_ids)
        flag = "PROMOTED" if decision.promoted else "held"
        print(
            f"month {month}: +{len(new_ids)} closed avails -> "
            f"champion {decision.champion_mae:.2f} vs candidate "
            f"{decision.candidate_mae:.2f} MAE -> {flag}"
        )
        if decision.promoted:
            version += 1
            save_estimator(manager.champion, ARTIFACT_DIR / f"champion_v{version}.json")

    print("\naudit log:")
    for i, decision in enumerate(manager.history, 1):
        print(f"  #{i}: {decision.as_dict()}")
    print(f"\nartefacts in {ARTIFACT_DIR}/: champion_v0..v{version}.json")


if __name__ == "__main__":
    main()
