"""Quickstart: generate data, fit the DoMD estimator, query a delay.

Run with::

    python examples/quickstart.py

This walks the full happy path of the library in under a minute:

1. generate a synthetic Navy Maintenance Database snapshot (the real NMD
   is Controlled Unclassified Information),
2. split it the way the paper does (chronological test carve-out),
3. fit the paper's final pipeline (Pearson k=60 features, gradient
   boosted trees, pseudo-Huber delta=18 loss, average fusion),
4. ask for the estimated Days of Maintenance Delay of an *ongoing*
   avail at 55% of its planned duration, and
5. print the top-5 features driving that estimate — the interpretability
   output Navy subject-matter experts review.
"""

from repro.core import DomdEstimator, paper_final_config
from repro.data import generate_dataset, split_dataset


def main() -> None:
    print("1) generating synthetic NMD (73 ships / 187 closed avails / ~53k RCCs)...")
    dataset = generate_dataset()
    print("   ", dataset.statistics())

    print("2) splitting (30% most recent as test; 25% of the rest validation)...")
    splits = split_dataset(dataset)
    print("   ", splits.summary())

    print("3) fitting the final pipeline on the training avails...")
    estimator = DomdEstimator(paper_final_config()).fit(dataset, splits.train_ids)

    ongoing = dataset.avails.filter(dataset.avails["status"] == "ongoing")
    avail_id = int(ongoing["avail_id"][0])
    print(f"4) DoMD query for ongoing avail {avail_id} at t* = 55%:")
    estimate = estimator.query([avail_id], t_star=55.0)[0]
    for t_star, raw, fused in zip(
        estimate.window_t_stars, estimate.window_estimates, estimate.fused_estimates
    ):
        print(f"     t*={t_star:5.1f}%  window estimate {raw:7.1f} d   fused {fused:7.1f} d")
    print(f"   current estimate: {estimate.current_estimate:.1f} days of delay")
    cost = estimate.current_estimate * 250_000
    print(f"   (~${cost:,.0f} at $250k per day of delay)")

    print("5) top-5 contributing features at t* = 55%:")
    for item in estimator.explain(avail_id, 55.0, top=5):
        print(f"     {item.name:32s} {item.contribution:+9.2f} d  (value {item.value:,.1f})")

    print("6) held-out test quality (timeline average):")
    metrics = estimator.evaluate(splits.test_ids)["average"]
    print(
        "     MAE80 {mae_80:.2f}  MAE90 {mae_90:.2f}  MAE100 {mae_100:.2f}  "
        "RMSE {rmse:.2f}  R^2 {r2:.2f}".format(**metrics)
    )


if __name__ == "__main__":
    main()
