"""What-if analysis: how does an RCC surge move a delay estimate?

Planners don't just want a number — they want to know how sensitive the
estimate is to contract churn.  This example uses the library's
counterfactual API (:mod:`repro.core.whatif`): inject a synthetic surge
of Growth RCCs into an ongoing avail's record, re-extract features, and
re-query the fitted estimator — quantifying "if we discover N more
growth items tomorrow, how many delay-days does the model add?".

The estimator itself is never refit: this is a pure inference-time
counterfactual, exactly what the SMDII UI needs for interactive
planning.

Run with::

    python examples/rcc_surge_whatif.py
"""

from repro.core import DomdEstimator, paper_final_config, surge_analysis
from repro.core.whatif import inject_rccs
from repro.data import generate_dataset, split_dataset


def inject_growth_surge(dataset, avail_id, n_new, amount_each, at_t_star, seed=0):
    """Back-compat wrapper over :func:`repro.core.whatif.inject_rccs`."""
    return inject_rccs(
        dataset,
        avail_id=avail_id,
        n_new=n_new,
        amount_each=amount_each,
        at_t_star=at_t_star,
        rcc_type="G",
        seed=seed,
    )


def main() -> None:
    dataset = generate_dataset()
    splits = split_dataset(dataset)
    estimator = DomdEstimator(paper_final_config()).fit(dataset, splits.train_ids)

    ongoing = dataset.avails.filter(dataset.avails["status"] == "ongoing")
    avail_id = int(ongoing["avail_id"][0])
    t_star = 50.0
    scenarios = [
        (25, 15_000.0),
        (50, 15_000.0),
        (100, 15_000.0),
        (100, 60_000.0),
        (200, 60_000.0),
    ]
    results = surge_analysis(estimator, avail_id, t_star, scenarios)

    print(
        f"avail {avail_id} at t*={t_star:.0f}%: baseline estimate "
        f"{results[0].baseline:.1f} days\n"
    )
    print(f"{'surge (new G RCCs)':>20} {'$ each':>9} {'new estimate':>13} "
          f"{'delta':>8} {'delta cost':>14}")
    for r in results:
        print(
            f"{r.n_new:>20} {r.amount_each:>9,.0f} {r.counterfactual:>11.1f} d "
            f"{r.delta_days:>+7.1f} d {r.delta_cost:>13,.0f}"
        )

    print(
        "\nthe estimate responds monotonically to injected growth work — "
        "the model has learned that contract churn drives delay."
    )


if __name__ == "__main__":
    main()
