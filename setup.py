"""Legacy setup shim.

The execution environment has no ``wheel`` package, so PEP 660 editable
installs are unavailable; this file lets ``pip install -e .`` fall back to
the classic ``setup.py develop`` path.  All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
