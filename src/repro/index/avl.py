"""Self-balancing AVL tree keyed by float with multi-value payloads.

The paper's preferred logical-time index (Section 4.1) uses *two* AVL
trees — one over RCC creation times and one over settled times.  This
module provides the underlying tree: standard AVL rotations, duplicate
keys folded into a per-node value list, and pruned range traversals that
power the ``<= t*`` predicates of the Status Query.

The tree intentionally stores python floats and small lists per node —
the point of the paper's comparison is the asymptotics of index reuse
across the logical timeline, not constant factors.
"""

from __future__ import annotations

from collections.abc import Iterator
from typing import Any

from repro.errors import IndexCorruptionError


class _Node:
    __slots__ = ("key", "values", "left", "right", "height", "size")

    def __init__(self, key: float, value: Any):
        self.key = key
        self.values: list[Any] = [value]
        self.left: _Node | None = None
        self.right: _Node | None = None
        self.height = 1
        self.size = 1  # number of values (not nodes) in this subtree


def _height(node: _Node | None) -> int:
    return node.height if node else 0


def _size(node: _Node | None) -> int:
    return node.size if node else 0


def _update(node: _Node) -> None:
    node.height = 1 + max(_height(node.left), _height(node.right))
    node.size = len(node.values) + _size(node.left) + _size(node.right)


def _balance_factor(node: _Node) -> int:
    return _height(node.left) - _height(node.right)


def _rotate_right(node: _Node) -> _Node:
    pivot = node.left
    assert pivot is not None
    node.left = pivot.right
    pivot.right = node
    _update(node)
    _update(pivot)
    return pivot


def _rotate_left(node: _Node) -> _Node:
    pivot = node.right
    assert pivot is not None
    node.right = pivot.left
    pivot.left = node
    _update(node)
    _update(pivot)
    return pivot


def _rebalance(node: _Node) -> _Node:
    _update(node)
    balance = _balance_factor(node)
    if balance > 1:
        assert node.left is not None
        if _balance_factor(node.left) < 0:
            node.left = _rotate_left(node.left)
        return _rotate_right(node)
    if balance < -1:
        assert node.right is not None
        if _balance_factor(node.right) > 0:
            node.right = _rotate_right(node.right)
        return _rotate_left(node)
    return node


class AvlTree:
    """AVL tree mapping float keys to lists of values.

    Supports ``O(log n)`` insert/delete/contains plus pruned range
    queries used by the logical-time index:

    * :meth:`values_leq` — all values with ``key <= bound``
    * :meth:`values_gt` — all values with ``key > bound``
    * :meth:`count_leq` — size-augmented rank query in ``O(log n)``
    """

    def __init__(self) -> None:
        self._root: _Node | None = None

    @classmethod
    def from_sorted(cls, keys: list[float], values: list[Any]) -> "AvlTree":
        """Bulk-build a perfectly balanced tree from pre-sorted keys.

        ``keys`` must be ascending (duplicates allowed — they fold into
        one node).  O(n) after the caller's sort, which is how the index
        layer achieves its O(n log n) construction bound without paying
        per-insert rebalancing costs.
        """
        if len(keys) != len(values):
            raise ValueError("keys and values must align")
        tree = cls()
        if not keys:
            return tree
        # Fold duplicates: one node per distinct key.
        unique_keys: list[float] = []
        grouped: list[list[Any]] = []
        previous = object()
        for key, value in zip(keys, values):
            key = float(key)
            if key != previous:
                unique_keys.append(key)
                grouped.append([value])
                previous = key
            else:
                grouped[-1].append(value)
        tree._root = cls._build_balanced(unique_keys, grouped, 0, len(unique_keys))
        return tree

    @staticmethod
    def _build_balanced(
        keys: list[float], grouped: list[list[Any]], lo: int, hi: int
    ) -> _Node | None:
        if lo >= hi:
            return None
        mid = (lo + hi) // 2
        node = _Node(keys[mid], None)
        node.values = grouped[mid]
        node.left = AvlTree._build_balanced(keys, grouped, lo, mid)
        node.right = AvlTree._build_balanced(keys, grouped, mid + 1, hi)
        _update(node)
        return node

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def insert(self, key: float, value: Any) -> None:
        """Insert ``value`` under ``key`` (duplicates allowed)."""
        self._root = self._insert(self._root, float(key), value)

    def _insert(self, node: _Node | None, key: float, value: Any) -> _Node:
        if node is None:
            return _Node(key, value)
        if key == node.key:
            node.values.append(value)
            _update(node)
            return node
        if key < node.key:
            node.left = self._insert(node.left, key, value)
        else:
            node.right = self._insert(node.right, key, value)
        return _rebalance(node)

    def delete(self, key: float, value: Any) -> bool:
        """Remove one occurrence of ``value`` under ``key``.

        Returns True when something was removed.
        """
        self._root, removed = self._delete(self._root, float(key), value)
        return removed

    def _delete(self, node: _Node | None, key: float, value: Any) -> tuple[_Node | None, bool]:
        if node is None:
            return None, False
        if key < node.key:
            node.left, removed = self._delete(node.left, key, value)
        elif key > node.key:
            node.right, removed = self._delete(node.right, key, value)
        else:
            if value not in node.values:
                return node, False
            node.values.remove(value)
            removed = True
            if not node.values:
                return self._remove_node(node), True
        return _rebalance(node), removed

    def _remove_node(self, node: _Node) -> _Node | None:
        if node.left is None:
            return node.right
        if node.right is None:
            return node.left
        successor = node.right
        while successor.left is not None:
            successor = successor.left
        node.key = successor.key
        node.values = successor.values
        successor.values = []
        node.right, _ = self._delete_empty(node.right, successor.key)
        return _rebalance(node)

    def _delete_empty(self, node: _Node | None, key: float) -> tuple[_Node | None, bool]:
        """Remove the (now value-less) node that held ``key``."""
        if node is None:
            return None, False
        if key < node.key:
            node.left, removed = self._delete_empty(node.left, key)
        elif key > node.key:
            node.right, removed = self._delete_empty(node.right, key)
        else:
            if node.values:
                return node, False
            return self._remove_node(node), True
        return _rebalance(node), removed

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return _size(self._root)

    @property
    def height(self) -> int:
        """Height of the tree (0 when empty)."""
        return _height(self._root)

    def __contains__(self, key: float) -> bool:
        node = self._root
        key = float(key)
        while node is not None:
            if key == node.key:
                return True
            node = node.left if key < node.key else node.right
        return False

    def get(self, key: float) -> list[Any]:
        """Values stored under ``key`` (empty list when absent)."""
        node = self._root
        key = float(key)
        while node is not None:
            if key == node.key:
                return list(node.values)
            node = node.left if key < node.key else node.right
        return []

    def values_leq(self, bound: float) -> list[Any]:
        """All values with key <= bound, ascending by key."""
        out: list[Any] = []
        self._collect_leq(self._root, float(bound), out)
        return out

    def _collect_leq(self, node: _Node | None, bound: float, out: list[Any]) -> None:
        if node is None:
            return
        if node.key <= bound:
            self._collect_all(node.left, out)
            out.extend(node.values)
            self._collect_leq(node.right, bound, out)
        else:
            self._collect_leq(node.left, bound, out)

    def values_gt(self, bound: float) -> list[Any]:
        """All values with key > bound, ascending by key."""
        out: list[Any] = []
        self._collect_gt(self._root, float(bound), out)
        return out

    def _collect_gt(self, node: _Node | None, bound: float, out: list[Any]) -> None:
        if node is None:
            return
        if node.key > bound:
            self._collect_gt(node.left, bound, out)
            out.extend(node.values)
            self._collect_all(node.right, out)
        else:
            self._collect_gt(node.right, bound, out)

    def values_in(self, low: float, high: float) -> list[Any]:
        """All values with low < key <= high, ascending by key."""
        out: list[Any] = []
        self._collect_in(self._root, float(low), float(high), out)
        return out

    def _collect_in(self, node: _Node | None, low: float, high: float, out: list[Any]) -> None:
        if node is None:
            return
        if node.key > low:
            self._collect_in(node.left, low, high, out)
            if node.key <= high:
                out.extend(node.values)
        if node.key <= high:
            self._collect_in(node.right, low, high, out)

    def _collect_all(self, node: _Node | None, out: list[Any]) -> None:
        if node is None:
            return
        self._collect_all(node.left, out)
        out.extend(node.values)
        self._collect_all(node.right, out)

    def count_leq(self, bound: float) -> int:
        """Number of values with key <= bound, in O(log n)."""
        count = 0
        node = self._root
        bound = float(bound)
        while node is not None:
            if node.key <= bound:
                count += len(node.values) + _size(node.left)
                node = node.right
            else:
                node = node.left
        return count

    def min_key(self) -> float | None:
        """Smallest key, or None when empty."""
        node = self._root
        if node is None:
            return None
        while node.left is not None:
            node = node.left
        return node.key

    def max_key(self) -> float | None:
        """Largest key, or None when empty."""
        node = self._root
        if node is None:
            return None
        while node.right is not None:
            node = node.right
        return node.key

    def items(self) -> Iterator[tuple[float, Any]]:
        """In-order (key, value) pairs."""
        yield from self._iter(self._root)

    def _iter(self, node: _Node | None) -> Iterator[tuple[float, Any]]:
        if node is None:
            return
        yield from self._iter(node.left)
        for value in node.values:
            yield node.key, value
        yield from self._iter(node.right)

    # ------------------------------------------------------------------
    # invariants (used by tests)
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Raise :class:`IndexCorruptionError` when AVL invariants fail."""
        self._validate(self._root, float("-inf"), float("inf"))

    def _validate(self, node: _Node | None, low: float, high: float) -> tuple[int, int]:
        if node is None:
            return 0, 0
        if not low < node.key < high:
            raise IndexCorruptionError(f"BST order violated at key {node.key}")
        if not node.values:
            raise IndexCorruptionError(f"empty value list at key {node.key}")
        left_height, left_size = self._validate(node.left, low, node.key)
        right_height, right_size = self._validate(node.right, node.key, high)
        if abs(left_height - right_height) > 1:
            raise IndexCorruptionError(f"AVL balance violated at key {node.key}")
        height = 1 + max(left_height, right_height)
        if node.height != height:
            raise IndexCorruptionError(f"stale height at key {node.key}")
        size = len(node.values) + left_size + right_size
        if node.size != size:
            raise IndexCorruptionError(f"stale size at key {node.key}")
        return height, size
