"""Group-by hierarchies for Status Queries: SWLIN tree and RCC-type tree.

A SWLIN ("Ship Work List Number") is an 8-digit hierarchical code written
``DDD-DD-DDD`` (e.g. ``434-11-001``).  The first digit names the general
ship subsystem; each further digit narrows to a specific module.  The
:class:`SwlinTree` is a digit trie over these codes; a Status Query's
``GROUP BY SWLIN_Level_no`` resolves to the set of tree nodes at that
level (Algorithm StatusQ retrieves the subtree satisfying the group-by
predicates before touching the logical-time index).

The :class:`RccTypeTree` is the companion two-level hierarchy over RCC
types: ALL -> {G (Growth), N (New Work), NG (New Growth)}.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.errors import ConfigurationError

#: Number of leading digits that define each SWLIN level (level 0 = root).
SWLIN_LEVEL_PREFIX_LENGTHS = (0, 1, 3, 5, 8)

#: Valid RCC type codes, paper Section 2.
RCC_TYPES = ("G", "N", "NG")


def normalize_swlin(code: str) -> str:
    """Strip separators and validate an 8-digit SWLIN code.

    >>> normalize_swlin("434-11-001")
    '43411001'
    """
    digits = code.replace("-", "").replace(" ", "")
    if len(digits) != 8 or not digits.isdigit():
        raise ConfigurationError(f"SWLIN code {code!r} is not 8 digits")
    return digits


def format_swlin(digits: str) -> str:
    """Render an 8-digit SWLIN in canonical ``DDD-DD-DDD`` form."""
    if len(digits) != 8 or not digits.isdigit():
        raise ConfigurationError(f"SWLIN digits {digits!r} are not 8 digits")
    return f"{digits[:3]}-{digits[3:5]}-{digits[5:]}"


def swlin_prefix(code: str, level: int) -> str:
    """Prefix of a SWLIN code at a hierarchy level (1..4).

    Level 1 is the leading subsystem digit; level 4 the full code.
    """
    if not 1 <= level < len(SWLIN_LEVEL_PREFIX_LENGTHS):
        raise ConfigurationError(
            f"SWLIN level must be 1..{len(SWLIN_LEVEL_PREFIX_LENGTHS) - 1}, got {level}"
        )
    digits = normalize_swlin(code)
    return digits[: SWLIN_LEVEL_PREFIX_LENGTHS[level]]


class _TrieNode:
    __slots__ = ("prefix", "children", "rcc_rows")

    def __init__(self, prefix: str):
        self.prefix = prefix
        self.children: dict[str, _TrieNode] = {}
        self.rcc_rows: list[int] = []


class SwlinTree:
    """Digit trie over SWLIN codes with per-node RCC row lists."""

    def __init__(self, codes: Iterable[str] | None = None):
        self._root = _TrieNode("")
        self._n = 0
        if codes is not None:
            for row, code in enumerate(codes):
                self.insert(code, row)

    def insert(self, code: str, rcc_row: int) -> None:
        """Add an RCC row under its SWLIN code (O(8))."""
        digits = normalize_swlin(code)
        node = self._root
        node.rcc_rows.append(rcc_row)
        for length in SWLIN_LEVEL_PREFIX_LENGTHS[1:]:
            prefix = digits[:length]
            child = node.children.get(prefix)
            if child is None:
                child = _TrieNode(prefix)
                node.children[prefix] = child
            child.rcc_rows.append(rcc_row)
            node = child
        self._n += 1

    def __len__(self) -> int:
        return self._n

    def nodes_at_level(self, level: int) -> list["_TrieNode"]:
        """All trie nodes at a hierarchy level (1..4), sorted by prefix."""
        if not 1 <= level < len(SWLIN_LEVEL_PREFIX_LENGTHS):
            raise ConfigurationError(f"invalid SWLIN level {level}")
        nodes = [self._root]
        for _ in range(level):
            nodes = [child for node in nodes for child in node.children.values()]
        return sorted(nodes, key=lambda n: n.prefix)

    def rows_for_prefix(self, prefix: str) -> list[int]:
        """RCC rows whose code starts with ``prefix`` (must be a level
        boundary: 1, 3, 5 or 8 digits)."""
        if len(prefix) not in SWLIN_LEVEL_PREFIX_LENGTHS:
            raise ConfigurationError(
                f"prefix {prefix!r} does not end on a SWLIN level boundary"
            )
        node: _TrieNode | None = self._root
        for length in SWLIN_LEVEL_PREFIX_LENGTHS[1:]:
            if length > len(prefix):
                break
            assert node is not None
            node = node.children.get(prefix[:length])
            if node is None:
                return []
        assert node is not None
        return list(node.rcc_rows)

    def prefixes_at_level(self, level: int) -> list[str]:
        """Distinct prefixes present at a level, sorted."""
        return [node.prefix for node in self.nodes_at_level(level)]

    def walk(self) -> Iterator[tuple[str, int]]:
        """Yield (prefix, row_count) for every node, pre-order."""
        stack = [self._root]
        while stack:
            node = stack.pop()
            yield node.prefix, len(node.rcc_rows)
            stack.extend(node.children.values())


class RccTypeTree:
    """Two-level hierarchy over RCC types: ALL -> {G, N, NG}."""

    def __init__(self, types: Iterable[str] | None = None):
        self._rows_by_type: dict[str, list[int]] = {t: [] for t in RCC_TYPES}
        self._all_rows: list[int] = []
        if types is not None:
            for row, rcc_type in enumerate(types):
                self.insert(rcc_type, row)

    def insert(self, rcc_type: str, rcc_row: int) -> None:
        """Add an RCC row under its type."""
        if rcc_type not in self._rows_by_type:
            raise ConfigurationError(
                f"unknown RCC type {rcc_type!r}; expected one of {RCC_TYPES}"
            )
        self._rows_by_type[rcc_type].append(rcc_row)
        self._all_rows.append(rcc_row)

    def __len__(self) -> int:
        return len(self._all_rows)

    def rows_for_type(self, rcc_type: str | None) -> list[int]:
        """Rows for one type, or all rows when ``rcc_type`` is None."""
        if rcc_type is None:
            return list(self._all_rows)
        if rcc_type not in self._rows_by_type:
            raise ConfigurationError(
                f"unknown RCC type {rcc_type!r}; expected one of {RCC_TYPES}"
            )
        return list(self._rows_by_type[rcc_type])

    def types_present(self) -> list[str]:
        """Types that have at least one row, in canonical order."""
        return [t for t in RCC_TYPES if self._rows_by_type[t]]
