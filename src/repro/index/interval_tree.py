"""Augmented interval tree over RCC [creation, settled) intervals.

Implements the first index design of Section 4.1: a balanced BST keyed by
interval start with a ``max_end`` subtree augmentation, giving

* ``O(n log n)`` construction,
* ``O(log n)`` insert / delete,
* output-sensitive stabbing (``active at t*``) and overlap queries.

Intervals are half-open ``[start, end)``: an RCC is *active* at its
creation time and no longer active at its settled time, matching the
status taxonomy of the Status Query.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.errors import IndexCorruptionError

_NEG_INF = float("-inf")
_POS_INF = float("inf")


class _INode:
    __slots__ = ("start", "end", "payload", "left", "right", "height", "max_end")

    def __init__(self, start: float, end: float, payload: object):
        self.start = start
        self.end = end
        self.payload = payload
        self.left: _INode | None = None
        self.right: _INode | None = None
        self.height = 1
        self.max_end = end


def _height(node: _INode | None) -> int:
    return node.height if node else 0


def _max_end(node: _INode | None) -> float:
    return node.max_end if node else _NEG_INF


def _update(node: _INode) -> None:
    node.height = 1 + max(_height(node.left), _height(node.right))
    node.max_end = max(node.end, _max_end(node.left), _max_end(node.right))


def _rotate_right(node: _INode) -> _INode:
    pivot = node.left
    assert pivot is not None
    node.left = pivot.right
    pivot.right = node
    _update(node)
    _update(pivot)
    return pivot


def _rotate_left(node: _INode) -> _INode:
    pivot = node.right
    assert pivot is not None
    node.right = pivot.left
    pivot.left = node
    _update(node)
    _update(pivot)
    return pivot


def _rebalance(node: _INode) -> _INode:
    _update(node)
    balance = _height(node.left) - _height(node.right)
    if balance > 1:
        assert node.left is not None
        if _height(node.left.left) < _height(node.left.right):
            node.left = _rotate_left(node.left)
        return _rotate_right(node)
    if balance < -1:
        assert node.right is not None
        if _height(node.right.right) < _height(node.right.left):
            node.right = _rotate_right(node.right)
        return _rotate_left(node)
    return node


class IntervalTree:
    """Balanced interval tree with stabbing and overlap queries.

    Examples
    --------
    >>> tree = IntervalTree()
    >>> tree.insert(0.0, 10.0, "a")
    >>> tree.insert(5.0, 20.0, "b")
    >>> sorted(tree.stab(7.0))
    ['a', 'b']
    >>> tree.stab(15.0)
    ['b']
    """

    def __init__(self, intervals: Iterable[tuple[float, float, object]] | None = None):
        self._root: _INode | None = None
        self._n = 0
        if intervals is not None:
            self.extend(intervals)

    def extend(self, intervals: Iterable[tuple[float, float, object]]) -> None:
        """Bulk-insert ``(start, end, payload)`` triples."""
        for start, end, payload in intervals:
            self.insert(start, end, payload)

    @classmethod
    def from_sorted(
        cls, intervals: list[tuple[float, float, object]]
    ) -> "IntervalTree":
        """Bulk-build a balanced tree from intervals sorted by (start, end).

        O(n) after the caller's sort; ``max_end`` augmentation is
        computed bottom-up during construction.
        """
        tree = cls()
        tree._root = cls._build_balanced(intervals, 0, len(intervals))
        tree._n = len(intervals)
        return tree

    @staticmethod
    def _build_balanced(
        intervals: list[tuple[float, float, object]], lo: int, hi: int
    ) -> _INode | None:
        if lo >= hi:
            return None
        mid = (lo + hi) // 2
        start, end, payload = intervals[mid]
        node = _INode(float(start), float(end), payload)
        node.left = IntervalTree._build_balanced(intervals, lo, mid)
        node.right = IntervalTree._build_balanced(intervals, mid + 1, hi)
        _update(node)
        return node

    def __len__(self) -> int:
        return self._n

    @property
    def height(self) -> int:
        """Tree height (0 when empty)."""
        return _height(self._root)

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def insert(self, start: float, end: float, payload: object) -> None:
        """Insert the half-open interval ``[start, end)``."""
        start, end = float(start), float(end)
        if end < start:
            raise ValueError(f"interval end {end} precedes start {start}")
        self._root = self._insert(self._root, start, end, payload)
        self._n += 1

    def _insert(self, node: _INode | None, start: float, end: float, payload: object) -> _INode:
        if node is None:
            return _INode(start, end, payload)
        if (start, end) < (node.start, node.end):
            node.left = self._insert(node.left, start, end, payload)
        else:
            node.right = self._insert(node.right, start, end, payload)
        return _rebalance(node)

    def delete(self, start: float, end: float, payload: object) -> bool:
        """Remove one interval matching exactly; returns True on success."""
        self._root, removed = self._delete(self._root, float(start), float(end), payload)
        if removed:
            self._n -= 1
        return removed

    def _delete(
        self, node: _INode | None, start: float, end: float, payload: object
    ) -> tuple[_INode | None, bool]:
        if node is None:
            return None, False
        key = (start, end)
        node_key = (node.start, node.end)
        if key < node_key:
            node.left, removed = self._delete(node.left, start, end, payload)
        elif key > node_key:
            node.right, removed = self._delete(node.right, start, end, payload)
        else:
            if node.payload == payload:
                return self._splice(node), True
            # Duplicates with the same key live in the right subtree.
            node.right, removed = self._delete(node.right, start, end, payload)
        if not removed:
            return node, False
        return _rebalance(node), True

    def _splice(self, node: _INode) -> _INode | None:
        if node.left is None:
            return node.right
        if node.right is None:
            return node.left
        successor = node.right
        while successor.left is not None:
            successor = successor.left
        node.start, node.end, node.payload = successor.start, successor.end, successor.payload
        node.right, _ = self._delete(node.right, successor.start, successor.end, successor.payload)
        return _rebalance(node)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def stab(self, point: float) -> list[object]:
        """Payloads of all intervals with ``start <= point < end``."""
        out: list[object] = []
        self._stab(self._root, float(point), out)
        return out

    def _stab(self, node: _INode | None, point: float, out: list[object]) -> None:
        if node is None or _max_end(node) <= point:
            return
        self._stab(node.left, point, out)
        if node.start <= point < node.end:
            out.append(node.payload)
        if node.start <= point:
            self._stab(node.right, point, out)

    def overlap(self, low: float, high: float) -> list[object]:
        """Payloads of intervals intersecting the half-open ``[low, high)``."""
        out: list[object] = []
        self._overlap(self._root, float(low), float(high), out)
        return out

    def _overlap(self, node: _INode | None, low: float, high: float, out: list[object]) -> None:
        if node is None or _max_end(node) <= low:
            return
        self._overlap(node.left, low, high, out)
        if node.start < high and node.end > low:
            out.append(node.payload)
        if node.start < high:
            self._overlap(node.right, low, high, out)

    def ended_by(self, point: float) -> list[object]:
        """Payloads of intervals fully settled by ``point`` (end <= point)."""
        out: list[object] = []
        self._ended_by(self._root, float(point), out)
        return out

    def _ended_by(self, node: _INode | None, point: float, out: list[object]) -> None:
        # No max_end-style pruning exists for this predicate on a
        # start-keyed tree; prune only on start <= end <= point.
        if node is None:
            return
        self._ended_by(node.left, point, out)
        if node.end <= point:
            out.append(node.payload)
        if node.start <= point:
            self._ended_by(node.right, point, out)

    def started_by(self, point: float) -> list[object]:
        """Payloads of intervals created by ``point`` (start <= point)."""
        out: list[object] = []
        self._started_by(self._root, float(point), out)
        return out

    def _started_by(self, node: _INode | None, point: float, out: list[object]) -> None:
        if node is None:
            return
        if node.start <= point:
            self._collect_all(node.left, out)
            out.append(node.payload)
            self._started_by(node.right, point, out)
        else:
            self._started_by(node.left, point, out)

    def _collect_all(self, node: _INode | None, out: list[object]) -> None:
        if node is None:
            return
        self._collect_all(node.left, out)
        out.append(node.payload)
        self._collect_all(node.right, out)

    def items(self) -> Iterator[tuple[float, float, object]]:
        """In-order (start, end, payload) triples."""
        yield from self._items(self._root)

    def _items(self, node: _INode | None) -> Iterator[tuple[float, float, object]]:
        if node is None:
            return
        yield from self._items(node.left)
        yield node.start, node.end, node.payload
        yield from self._items(node.right)

    # ------------------------------------------------------------------
    # invariants
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Raise :class:`IndexCorruptionError` on any broken invariant."""
        count = self._validate(self._root, (_NEG_INF, _NEG_INF), (_POS_INF, _POS_INF))[2]
        if count != self._n:
            raise IndexCorruptionError(f"size mismatch: counted {count}, recorded {self._n}")

    def _validate(
        self,
        node: _INode | None,
        low: tuple[float, float],
        high: tuple[float, float],
    ) -> tuple[int, float, int]:
        if node is None:
            return 0, _NEG_INF, 0
        key = (node.start, node.end)
        if not low <= key <= high:
            raise IndexCorruptionError(f"BST order violated at interval {key}")
        lh, lmax, lcount = self._validate(node.left, low, key)
        rh, rmax, rcount = self._validate(node.right, key, high)
        if abs(lh - rh) > 1:
            raise IndexCorruptionError(f"AVL balance violated at interval {key}")
        expected_max = max(node.end, lmax, rmax)
        if node.max_end != expected_max:
            raise IndexCorruptionError(f"stale max_end at interval {key}")
        return 1 + max(lh, rh), expected_max, 1 + lcount + rcount
