"""Columnar Status-Query execution core: SoA layouts and fused kernels.

The scalar Algorithm-StatusQ path retrieves id *sets* from a logical-time
index and aggregates them group by group; at fleet scale the Python-object
traffic between those stages dominates.  This module is the batched
replacement that every index design plugs into:

* :class:`ColumnarRccFrame` — a struct-of-arrays view of one RCC table:
  contiguous float64 ``starts`` / ``ends`` / ``amounts`` / ``durations``
  plus *pre-resolved group codes*: the RCC-type hierarchy and SWLIN trie
  levels collapse into one dense ``int64`` code per row (cached per
  grouping key), so group assignment is a single gather instead of a
  per-query tree walk.
* :func:`fused_point_aggregates` — group_assignment + stat_build fused
  into one pass: boolean status masks select rows, ``np.bincount`` over
  the group codes produces every aggregate column.
* :class:`ColumnarSweepState` — the batched counterpart of
  :class:`~repro.index.status_query.StatStructure`: one vectorised pass
  amortised across *all* logical timestamps of a sweep chunk (one
  ``searchsorted`` per chunk, per-segment ``np.bincount`` rows,
  ``np.add.accumulate`` down the timestamp axis), instead of advancing
  per-``t*`` object by object.

**Bitwise parity contract.**  The columnar kernels accumulate float64 in
exactly the order the scalar paths do — row order for point queries
(matching the sorted id arrays of ``LogicalTimeIndex``), event-time
order for sweeps (matching ``StatStructure``'s stable
argsort-by-start/end), and sequential timestamp accumulation
(``np.add.accumulate`` performs the same ``running += delta`` sequence)
— so scalar and columnar executions produce *byte-identical* aggregate
tables.  ``tests/index/test_columnar_differential.py`` enforces this
with exact (not approximate) equality across all four designs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.index.hierarchy import SWLIN_LEVEL_PREFIX_LENGTHS, normalize_swlin
from repro.table.table import ColumnTable

#: Output dtype of every aggregate column, point and sweep, scalar and
#: columnar.  Counts are exact in float64 up to 2**53 rows — far beyond
#: any fleet — and a uniform dtype keeps the feature tensors cast-free.
AGGREGATE_DTYPE = np.float64

#: Timestamps per fused sweep chunk.  Chunking bounds the size of the
#: flat ``(timestamp, group)`` bincount and gives the deadline machinery
#: a cooperative cancellation point *between* chunks (never per row).
SWEEP_CHUNK_SIZE = 64


def safe_divide(numerator: np.ndarray, denominator: np.ndarray) -> np.ndarray:
    """Elementwise division with the pinned zero-count sentinel ``0.0``.

    Both execution paths route every ``*_avg`` / ``pct_active`` column
    through this single helper so a group with no settled (or created)
    rows aggregates to exactly ``0.0`` — never ``nan``/``inf`` — in the
    scalar and vectorised kernels alike.
    """
    out = np.zeros(numerator.shape, dtype=AGGREGATE_DTYPE)
    nz = denominator > 0
    np.divide(numerator, denominator, out=out, where=nz)
    return out


def derived_aggregate_columns(
    created_count: np.ndarray,
    created_amount: np.ndarray,
    settled_count: np.ndarray,
    settled_amount: np.ndarray,
    settled_duration: np.ndarray,
) -> dict[str, np.ndarray]:
    """The ten AGGREGATE_COLUMNS from the five base accumulators.

    Shared by the scalar point path, the scalar incremental sweep and
    both fused kernels, so dtype (float64) and the zero-count division
    sentinel are pinned in exactly one place.  Count inputs may be int64
    (exact); every output column is float64.
    """
    active_count = created_count - settled_count
    active_amount = created_amount - settled_amount
    created_f = created_count.astype(AGGREGATE_DTYPE)
    return {
        "n_created": created_f,
        "n_settled": settled_count.astype(AGGREGATE_DTYPE),
        "n_active": active_count.astype(AGGREGATE_DTYPE),
        "amt_created_sum": created_amount.astype(AGGREGATE_DTYPE),
        "amt_settled_sum": settled_amount.astype(AGGREGATE_DTYPE),
        "amt_settled_avg": safe_divide(settled_amount, settled_count),
        "amt_active_sum": active_amount.astype(AGGREGATE_DTYPE),
        "dur_settled_sum": settled_duration.astype(AGGREGATE_DTYPE),
        "dur_settled_avg": safe_divide(settled_duration, settled_count),
        "pct_active": safe_divide(active_count.astype(AGGREGATE_DTYPE), created_f),
    }


@dataclass(frozen=True)
class GroupCoding:
    """Pre-resolved group assignment: dense codes plus label rows."""

    codes: np.ndarray  # int64, one dense group id per RCC row
    labels: ColumnTable  # one row per group, the label columns
    n_groups: int


class ColumnarRccFrame:
    """Struct-of-arrays layout of one RCC table (shared by all designs).

    Owns the contiguous numeric columns the fused kernels read, the
    lazily built event-time sort orders (one ``argsort`` pair shared by
    every grouping key and sweep — the scalar ``StatStructure`` re-sorts
    per key), and the per-grouping-key code cache resolved from the
    RCC-type hierarchy and the SWLIN trie levels.
    """

    def __init__(self, rccs: ColumnTable, extra_group_keys: tuple[str, ...] = ()):
        self._rccs = rccs
        self._extra_group_keys = tuple(extra_group_keys)
        self.n_rows = rccs.n_rows
        self.starts = np.ascontiguousarray(rccs["t_start"], dtype=np.float64)
        self.ends = np.ascontiguousarray(rccs["t_end"], dtype=np.float64)
        self.amounts = np.ascontiguousarray(rccs["amount"], dtype=np.float64)
        self.durations = self.ends - self.starts
        self._coding_cache: dict[tuple[bool, int | None], GroupCoding] = {}
        self._swlin_digits: list[str] | None = None
        self._order_by_start: np.ndarray | None = None
        self._order_by_end: np.ndarray | None = None
        # coding-independent event-order gathers, shared by every sweep
        # state (one grouping key each) over this frame
        self._event_order_columns: dict[str, np.ndarray] = {}

    # ------------------------------------------------------------------
    # event-time orders (lazy, shared across group keys)
    # ------------------------------------------------------------------
    @property
    def order_by_start(self) -> np.ndarray:
        if self._order_by_start is None:
            self._order_by_start = np.argsort(self.starts, kind="stable")
        return self._order_by_start

    @property
    def order_by_end(self) -> np.ndarray:
        if self._order_by_end is None:
            self._order_by_end = np.argsort(self.ends, kind="stable")
        return self._order_by_end

    def seed_event_time_orders(
        self, order_by_start: np.ndarray, order_by_end: np.ndarray
    ) -> None:
        """Adopt pre-computed event-time orders instead of re-sorting.

        The engine calls this with the build-time argsorts an index
        design retained (``LogicalTimeIndex.event_time_orders``) — the
        same stable ``argsort`` over the same table columns, so the
        permutations are identical to the lazily derived ones and the
        bitwise-parity contract is untouched; the frame just skips two
        O(n log n) sorts per sweep state build.
        """
        if len(order_by_start) != self.n_rows or len(order_by_end) != self.n_rows:
            raise ConfigurationError(
                f"event-time orders cover {len(order_by_start)}/"
                f"{len(order_by_end)} rows; frame has {self.n_rows}"
            )
        self._order_by_start = np.asarray(order_by_start, dtype=np.int64)
        self._order_by_end = np.asarray(order_by_end, dtype=np.int64)

    def event_order_column(self, name: str) -> np.ndarray:
        """A numeric column gathered into event-time order, cached.

        These gathers do not depend on the grouping key, so sweep states
        for different keys share one copy per frame:

        ========================  =======================================
        name                      definition
        ========================  =======================================
        ``sorted_starts``         ``starts[order_by_start]``
        ``sorted_ends``           ``ends[order_by_end]``
        ``amounts_by_start``      ``amounts[order_by_start]``
        ``amounts_by_end``        ``amounts[order_by_end]``
        ``durations_by_end``      ``durations[order_by_end]``
        ========================  =======================================
        """
        cached = self._event_order_columns.get(name)
        if cached is None:
            source, order = {
                "sorted_starts": (self.starts, self.order_by_start),
                "sorted_ends": (self.ends, self.order_by_end),
                "amounts_by_start": (self.amounts, self.order_by_start),
                "amounts_by_end": (self.amounts, self.order_by_end),
                "durations_by_end": (self.durations, self.order_by_end),
            }[name]
            cached = source[order]
            self._event_order_columns[name] = cached
        return cached

    # ------------------------------------------------------------------
    # group coding (RCC-type tree x SWLIN trie levels -> dense codes)
    # ------------------------------------------------------------------
    def _swlin_prefixes(self, level: int) -> np.ndarray:
        """SWLIN trie prefixes at ``level``; codes normalised only once."""
        if self._swlin_digits is None:
            self._swlin_digits = [
                normalize_swlin(code) for code in self._rccs["swlin"]
            ]
        length = SWLIN_LEVEL_PREFIX_LENGTHS[level]
        return np.array(
            [digits[:length] for digits in self._swlin_digits], dtype=object
        )

    def group_coding(
        self, group_by_type: bool, swlin_level: int | None
    ) -> GroupCoding:
        """Dense group codes + labels for one grouping key (cached).

        Produces exactly the codes and label table the scalar engine's
        group-assignment stage does — same key order (extra keys, then
        RCC type, then SWLIN level prefix), same densification — so both
        executors agree on group identity and output row order.
        """
        cache_key = (group_by_type, swlin_level)
        cached = self._coding_cache.get(cache_key)
        if cached is not None:
            return cached
        key_table: dict[str, np.ndarray] = {}
        for key in self._extra_group_keys:
            key_table[key] = np.asarray(self._rccs[key])
        if group_by_type:
            key_table["rcc_type"] = np.asarray(self._rccs["rcc_type"], dtype=object)
        if swlin_level is not None:
            if not 1 <= swlin_level < len(SWLIN_LEVEL_PREFIX_LENGTHS):
                raise ConfigurationError(
                    f"swlin_level must be 1..4, got {swlin_level}"
                )
            key_table[f"swlin_l{swlin_level}"] = self._swlin_prefixes(swlin_level)
        if not key_table:
            codes = np.zeros(self.n_rows, dtype=np.int64)
            labels = ColumnTable({"group": ["ALL"]})
        else:
            working = ColumnTable(key_table)
            codes, uniques = working._group_codes(list(key_table))
            labels = ColumnTable._from_arrays(
                dict(uniques), len(next(iter(uniques.values())))
            )
        coding = GroupCoding(codes=codes, labels=labels, n_groups=labels.n_rows)
        self._coding_cache[cache_key] = coding
        return coding


def fused_point_aggregates(
    frame: ColumnarRccFrame,
    coding: GroupCoding,
    created_mask: np.ndarray,
    settled_mask: np.ndarray,
) -> dict[str, np.ndarray]:
    """Fused group_assignment + stat_build for one logical timestamp.

    Masks select rows in ascending row order — the same order the scalar
    path's sorted id arrays impose — so the float64 bincount sums are
    bitwise identical to ``StatusQueryEngine._aggregate_rows``.
    """
    n_groups = coding.n_groups
    created_codes = coding.codes[created_mask]
    settled_codes = coding.codes[settled_mask]
    created_count = np.bincount(created_codes, minlength=n_groups)
    created_amount = np.bincount(
        created_codes, weights=frame.amounts[created_mask], minlength=n_groups
    )
    settled_count = np.bincount(settled_codes, minlength=n_groups)
    settled_amount = np.bincount(
        settled_codes, weights=frame.amounts[settled_mask], minlength=n_groups
    )
    settled_duration = np.bincount(
        settled_codes, weights=frame.durations[settled_mask], minlength=n_groups
    )
    return derived_aggregate_columns(
        created_count, created_amount, settled_count, settled_amount, settled_duration
    )


class ColumnarSweepState:
    """Batched incremental sweep state (Section 4.3, vectorised).

    The scalar :class:`~repro.index.status_query.StatStructure` advances
    one timestamp at a time, paying five ``np.bincount`` calls plus
    Python overhead per step.  This state advances a whole ascending
    *chunk* of timestamps in one fused pass:

    1. ``searchsorted`` the chunk against the frame's sorted event
       times → per-timestamp cut positions (the "index lookup" of the
       batch);
    2. bincount each ``(prev, t]`` event segment of the pre-gathered
       event-order columns straight into its ``(timestamp, group)``
       matrix row — disjoint views, no per-event temporaries;
    3. ``np.add.accumulate`` down the timestamp axis, seeded with the
       running totals, reproducing ``StatStructure``'s sequential
       ``running += delta`` additions bit for bit.

    Like ``StatStructure`` it is monotone and resumable: a later sweep
    continues from the current watermark position.
    """

    def __init__(self, frame: ColumnarRccFrame, coding: GroupCoding):
        self._frame = frame
        self._coding = coding
        # event-time gathered columns: slices of these are exactly the
        # rows StatStructure touches per advance, in the same order.
        # Only the group codes depend on the grouping key; everything
        # else is shared via the frame's event-order cache.
        self._sorted_starts = frame.event_order_column("sorted_starts")
        self._sorted_ends = frame.event_order_column("sorted_ends")
        self._amounts_by_start = frame.event_order_column("amounts_by_start")
        self._amounts_by_end = frame.event_order_column("amounts_by_end")
        self._durations_by_end = frame.event_order_column("durations_by_end")
        self._codes_by_start = coding.codes[frame.order_by_start]
        self._codes_by_end = coding.codes[frame.order_by_end]
        self.n_groups = coding.n_groups
        self.reset()

    def reset(self) -> None:
        """Rewind to before the first event."""
        n = self.n_groups
        self.t = float("-inf")
        self._ptr_start = 0
        self._ptr_end = 0
        self._created_count = np.zeros(n, dtype=np.int64)
        self._created_amount = np.zeros(n, dtype=np.float64)
        self._settled_count = np.zeros(n, dtype=np.int64)
        self._settled_amount = np.zeros(n, dtype=np.float64)
        self._settled_duration = np.zeros(n, dtype=np.float64)

    @staticmethod
    def _accumulate(running: np.ndarray, segments: np.ndarray) -> np.ndarray:
        """Sequential per-timestamp accumulation seeded with ``running``.

        ``np.add.accumulate`` performs ``acc[k] = acc[k-1] + seg[k]`` —
        the exact addition sequence of the scalar per-timestamp loop.
        """
        seeded = np.concatenate([running[None, :], segments], axis=0)
        return np.add.accumulate(seeded, axis=0)[1:]

    def _segment_sums(
        self,
        sorted_keys: np.ndarray,
        ptr: int,
        ts: np.ndarray,
        codes_sorted: np.ndarray,
        weight_columns: tuple[np.ndarray, ...],
    ) -> tuple[int, np.ndarray, list[np.ndarray]]:
        """(new ptr, per-(t, group) count matrix, weighted sum matrices).

        One ``searchsorted`` finds every timestamp's cut; each ``(prev,
        t]`` event segment then bincounts directly into its matrix row.
        Chunking bounds the Python iteration count at
        :data:`SWEEP_CHUNK_SIZE`, and slicing the pre-gathered event-
        order arrays avoids materialising flat ``(timestamp, group)``
        keys over the whole delta window — the segments are disjoint
        views, so no per-event temporary is allocated.
        """
        n_ts = len(ts)
        n_groups = self.n_groups
        cuts = np.searchsorted(sorted_keys, ts, side="right")
        counts = np.empty((n_ts, n_groups), dtype=np.int64)
        sums = [
            np.empty((n_ts, n_groups), dtype=np.float64) for _ in weight_columns
        ]
        lo = ptr
        for row, hi in enumerate(cuts):
            hi = int(hi)
            segment = codes_sorted[lo:hi]
            counts[row] = np.bincount(segment, minlength=n_groups)
            for out, column in zip(sums, weight_columns):
                out[row] = np.bincount(
                    segment, weights=column[lo:hi], minlength=n_groups
                )
            lo = hi
        return lo, counts, sums

    def advance_batch(self, ts: np.ndarray) -> tuple[dict[str, np.ndarray], int]:
        """Advance through an ascending timestamp chunk in one fused pass.

        Returns ``(matrices, delta_events)`` where each matrix has shape
        ``(len(ts), n_groups)`` holding the accumulator value *at* each
        timestamp, and ``delta_events`` counts the start/end events
        applied (the ``advance`` operator's rows for EXPLAIN).
        """
        ts = np.asarray(ts, dtype=np.float64)
        if len(ts) and ts[0] < self.t:
            raise ConfigurationError(
                f"ColumnarSweepState can only move forward "
                f"(at {self.t}, asked {ts[0]})"
            )
        new_start, seg_created, (seg_created_amt,) = self._segment_sums(
            self._sorted_starts,
            self._ptr_start,
            ts,
            self._codes_by_start,
            (self._amounts_by_start,),
        )
        new_end, seg_settled, (seg_settled_amt, seg_settled_dur) = self._segment_sums(
            self._sorted_ends,
            self._ptr_end,
            ts,
            self._codes_by_end,
            (self._amounts_by_end, self._durations_by_end),
        )
        delta = (new_start - self._ptr_start) + (new_end - self._ptr_end)
        created_count = self._accumulate(self._created_count, seg_created)
        created_amount = self._accumulate(self._created_amount, seg_created_amt)
        settled_count = self._accumulate(self._settled_count, seg_settled)
        settled_amount = self._accumulate(self._settled_amount, seg_settled_amt)
        settled_duration = self._accumulate(self._settled_duration, seg_settled_dur)
        if len(ts):
            self._ptr_start = new_start
            self._ptr_end = new_end
            self._created_count = created_count[-1]
            self._created_amount = created_amount[-1]
            self._settled_count = settled_count[-1]
            self._settled_amount = settled_amount[-1]
            self._settled_duration = settled_duration[-1]
            self.t = float(ts[-1])
        return (
            {
                "created_count": created_count,
                "created_amount": created_amount,
                "settled_count": settled_count,
                "settled_amount": settled_amount,
                "settled_duration": settled_duration,
            },
            int(delta),
        )

    def aggregates_at(self, matrices: dict[str, np.ndarray], row: int) -> dict[str, np.ndarray]:
        """The ten aggregate columns at one timestamp of a chunk."""
        return derived_aggregate_columns(
            matrices["created_count"][row],
            matrices["created_amount"][row],
            matrices["settled_count"][row],
            matrices["settled_amount"][row],
            matrices["settled_duration"][row],
        )
