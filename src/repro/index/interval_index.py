"""Interval-tree logical-time index (Section 4.1, design 1).

Each RCC's ``[creation, settled)`` interval is inserted into an augmented
interval tree.  The *active* set is a stabbing query; *created* is a
pruned start-threshold traversal; *settled* falls out as their
difference.  As the paper observes, the pure-Python interval tree has the
right asymptotics but loses on constant factors to the simpler AVL design
— this reproduction shows the same effect.
"""

from __future__ import annotations

import numpy as np

from repro.index.base import LogicalTimeIndex, deep_node_nbytes
from repro.index.interval_tree import IntervalTree


class IntervalTreeIndex(LogicalTimeIndex):
    """Augmented interval tree over RCC logical-time intervals."""

    name = "interval"

    def _build(self) -> None:
        # Bulk balanced construction after a numpy lexsort (O(n log n)).
        order = np.lexsort((self._ends, self._starts))
        triples = list(
            zip(
                self._starts[order].tolist(),
                self._ends[order].tolist(),
                self._ids[order].tolist(),
            )
        )
        self._tree = IntervalTree.from_sorted(triples)

    def insert(self, start: float, end: float, rcc_id: int) -> None:
        """Register a new RCC interval (O(log n))."""
        self._tree.insert(start, end, rcc_id)
        self._starts = np.append(self._starts, start)
        self._ends = np.append(self._ends, end)
        self._ids = np.append(self._ids, rcc_id)

    def _active_ids_impl(self, t: float) -> np.ndarray:
        return np.sort(np.asarray(self._tree.stab(t), dtype=np.int64))

    def _settled_ids_impl(self, t: float) -> np.ndarray:
        return np.sort(np.asarray(self._tree.ended_by(t), dtype=np.int64))

    def _created_ids_impl(self, t: float) -> np.ndarray:
        return np.sort(np.asarray(self._tree.started_by(t), dtype=np.int64))

    def _structure_nbytes(self) -> int:
        if self._tree._root is None:
            return 0
        return deep_node_nbytes(self._tree._root, ("left", "right"))


#: Registry used by benchmarks to sweep index designs.
def index_designs() -> dict[str, type[LogicalTimeIndex]]:
    """Mapping of design name -> index class, in paper order."""
    from repro.index.naive import NaiveJoinIndex
    from repro.index.avl_index import DualAvlIndex

    return {
        NaiveJoinIndex.name: NaiveJoinIndex,
        DualAvlIndex.name: DualAvlIndex,
        IntervalTreeIndex.name: IntervalTreeIndex,
    }
