"""Naive logical-time index: materialized join + full scans.

This is the paper's baseline ("offered by Pandas merge"): the avail table
is joined with the RCC table once, the result is materialized (hence the
~2x memory footprint in Table 6), and every Status Query predicate is
answered by a full boolean scan of the date columns with no reuse across
logical timestamps.
"""

from __future__ import annotations

import numpy as np

from repro.index.base import LogicalTimeIndex
from repro.table.table import ColumnTable


class NaiveJoinIndex(LogicalTimeIndex):
    """Materialized-join baseline (O(|RCC|) per query, O(|RCC|) space)."""

    name = "naive"

    def _build(self) -> None:
        # Materialize a wide result table the way an ad-hoc pandas
        # pipeline would: the join output carries the date columns twice
        # (once as join payload, once as working columns) plus the id.
        self._materialized = ColumnTable(
            {
                "rcc_id": self._ids,
                "t_start": self._starts,
                "t_end": self._ends,
                "t_start_joined": self._starts.copy(),
                "t_end_joined": self._ends.copy(),
                "rcc_id_joined": self._ids.copy(),
            }
        )

    def _active_ids_impl(self, t: float) -> np.ndarray:
        starts = self._materialized["t_start"]
        ends = self._materialized["t_end"]
        mask = (starts <= t) & (t < ends)
        return np.sort(self._materialized["rcc_id"][mask])

    def _settled_ids_impl(self, t: float) -> np.ndarray:
        ends = self._materialized["t_end"]
        return np.sort(self._materialized["rcc_id"][ends <= t])

    def _created_ids_impl(self, t: float) -> np.ndarray:
        starts = self._materialized["t_start"]
        return np.sort(self._materialized["rcc_id"][starts <= t])

    def _pending_ids_impl(self, t: float) -> np.ndarray:
        starts = self._materialized["t_start"]
        return np.sort(self._materialized["rcc_id"][starts > t])

    def _structure_nbytes(self) -> int:
        return self._materialized.nbytes()
