"""Dual-AVL logical-time index (the paper's winning design).

Two AVL trees are maintained: one keyed by RCC creation time and one by
settled time.  Status Query sets reduce to pruned ``key <= t*``
traversals:

* settled  = values of the *end* tree with key <= t*
* created  = values of the *start* tree with key <= t*
* active   = created − settled
* pending  = all − created

Both trees support O(log n) maintenance, which is why the paper prefers
this design for a continuously refreshed Navy deployment.
"""

from __future__ import annotations

import numpy as np

from repro.errors import StreamStateError
from repro.index.avl import AvlTree
from repro.index.base import LogicalTimeIndex, deep_node_nbytes


class DualAvlIndex(LogicalTimeIndex):
    """Start-tree + end-tree AVL index over RCC logical times."""

    name = "avl"
    supports_incremental_ingest = True

    def _build(self) -> None:
        # Bulk balanced construction from numpy-sorted arrays: O(n log n)
        # total, dominated by the sorts.  Incremental maintenance after
        # construction goes through insert()/delete() in O(log n).
        start_order = np.argsort(self._starts, kind="stable")
        end_order = np.argsort(self._ends, kind="stable")
        self._start_tree = AvlTree.from_sorted(
            self._starts[start_order].tolist(), self._ids[start_order].tolist()
        )
        self._end_tree = AvlTree.from_sorted(
            self._ends[end_order].tolist(), self._ids[end_order].tolist()
        )
        # Retained for the columnar frame (event_time_orders): the sorts
        # were already paid for bulk construction.
        self._start_order = start_order
        self._end_order = end_order
        self._orders_current = True

    def event_time_orders(self) -> tuple[np.ndarray, np.ndarray] | None:
        """Share the build-time argsorts with the columnar frame."""
        if not self._orders_current:
            return None  # rows inserted/deleted since build; orders stale
        return self._start_order, self._end_order

    def insert(self, start: float, end: float, rcc_id: int) -> None:
        """Register a newly created RCC (O(log n))."""
        self._start_tree.insert(start, rcc_id)
        self._end_tree.insert(end, rcc_id)
        self._starts = np.append(self._starts, start)
        self._ends = np.append(self._ends, end)
        self._ids = np.append(self._ids, rcc_id)
        self._orders_current = False

    def delete(self, start: float, end: float, rcc_id: int) -> bool:
        """Remove an RCC; returns True when it was present."""
        self._orders_current = False
        removed_start = self._start_tree.delete(start, rcc_id)
        removed_end = self._end_tree.delete(end, rcc_id)
        if removed_start and removed_end:
            keep = ~(
                (self._ids == rcc_id) & (self._starts == start) & (self._ends == end)
            )
            # Remove exactly one matching row.
            drop = np.flatnonzero(~keep)
            if len(drop):
                mask = np.ones(len(self._ids), dtype=bool)
                mask[drop[0]] = False
                self._starts = self._starts[mask]
                self._ends = self._ends[mask]
                self._ids = self._ids[mask]
            return True
        return False

    # ------------------------------------------------------------------
    # structure-only ingest protocol (streaming)
    # ------------------------------------------------------------------
    # Unlike insert()/delete() above, these touch *only* the two trees —
    # O(log n) per call, no O(n) array bookkeeping.  The caller
    # (:class:`~repro.stream.mutable.MutableIndexAdapter`) owns the
    # authoritative triple arrays; the base ``_starts/_ends/_ids`` of a
    # structure-only-mutated instance are stale by design.
    def apply_insert(self, start: float, end: float, rcc_id: int) -> None:
        """Add one interval to both trees (O(log n))."""
        self._start_tree.insert(float(start), int(rcc_id))
        self._end_tree.insert(float(end), int(rcc_id))
        self._record_ingest("insert")

    def apply_update(
        self,
        rcc_id: int,
        old_start: float,
        old_end: float,
        new_start: float,
        new_end: float,
    ) -> None:
        """Re-key one interval in whichever trees changed (O(log n))."""
        rcc_id = int(rcc_id)
        if new_start != old_start:
            if not self._start_tree.delete(float(old_start), rcc_id):
                raise StreamStateError(
                    f"avl start tree has no entry ({old_start}, {rcc_id})"
                )
            self._start_tree.insert(float(new_start), rcc_id)
        if new_end != old_end:
            if not self._end_tree.delete(float(old_end), rcc_id):
                raise StreamStateError(
                    f"avl end tree has no entry ({old_end}, {rcc_id})"
                )
            self._end_tree.insert(float(new_end), rcc_id)
        self._record_ingest("settle" if new_start == old_start else "revise")

    def _settled_ids_impl(self, t: float) -> np.ndarray:
        values = self._end_tree.values_leq(t)
        return np.sort(np.asarray(values, dtype=np.int64))

    def _created_ids_impl(self, t: float) -> np.ndarray:
        values = self._start_tree.values_leq(t)
        return np.sort(np.asarray(values, dtype=np.int64))

    def _active_ids_impl(self, t: float) -> np.ndarray:
        created = self._created_ids_impl(t)
        settled = self._settled_ids_impl(t)
        return np.setdiff1d(created, settled, assume_unique=False)

    def _pending_ids_impl(self, t: float) -> np.ndarray:
        values = self._start_tree.values_gt(t)
        return np.sort(np.asarray(values, dtype=np.int64))

    def counts_at(self, t: float) -> tuple[int, int, int]:
        """(created, settled, active) cardinalities in O(log n)."""
        created = self._start_tree.count_leq(t)
        settled = self._end_tree.count_leq(t)
        return created, settled, created - settled

    def _structure_nbytes(self) -> int:
        total = 0
        for tree in (self._start_tree, self._end_tree):
            if tree._root is not None:
                total += deep_node_nbytes(tree._root, ("left", "right"))
        return total
