"""Status Query processing (paper Sections 3.1 and 4.2-4.3).

A *Status Query* is the generic retrieval task behind all RCC feature
engineering: at logical time ``t*``, group RCCs by type and SWLIN level,
partition each group into created / settled / active status sets, and
aggregate amounts and durations.

This module implements:

* :class:`StatusQuery` — the query specification (Figure 3).
* :class:`StatusQueryEngine` — Algorithm StatusQ: group-by resolution via
  the RCC-type tree and SWLIN tree, then per-``t*`` retrieval through a
  pluggable logical-time index design (naive / avl / interval).
* :class:`StatStructure` — the incremental accumulator of Section 4.3
  that advances from one logical timestamp to the next touching only the
  delta events, instead of recomputing from scratch.

Both execution paths produce numerically identical aggregate tables,
which the test-suite asserts.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator

import numpy as np

from repro.errors import ConfigurationError, SchemaError
from repro.index.avl_index import DualAvlIndex
from repro.index.base import LogicalTimeIndex
from repro.index.columnar import (
    SWEEP_CHUNK_SIZE,
    ColumnarRccFrame,
    ColumnarSweepState,
    derived_aggregate_columns,
    fused_point_aggregates,
    safe_divide,
)
from repro.index.hierarchy import RccTypeTree, SwlinTree
from repro.index.interval_index import IntervalTreeIndex
from repro.index.naive import NaiveJoinIndex
from repro.index.sorted_array import SortedArrayIndex
from repro.runtime import (
    ExecutionContext,
    WorkloadSpec,
    check_deadline,
    ensure_context,
)
from repro.table.table import ColumnTable

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.explain import OperatorRecorder

#: Columns the engine requires on the RCC table.
REQUIRED_RCC_COLUMNS = ("rcc_type", "swlin", "t_start", "t_end", "amount")

#: Aggregate columns produced for every group row.
AGGREGATE_COLUMNS = (
    "n_created",
    "n_settled",
    "n_active",
    "amt_created_sum",
    "amt_settled_sum",
    "amt_settled_avg",
    "amt_active_sum",
    "dur_settled_sum",
    "dur_settled_avg",
    "pct_active",
)

_DESIGNS: dict[str, type[LogicalTimeIndex]] = {
    "naive": NaiveJoinIndex,
    "avl": DualAvlIndex,
    "interval": IntervalTreeIndex,
    "sorted_array": SortedArrayIndex,
}


@dataclass(frozen=True)
class StatusQuery:
    """Specification of a Status Query (Figure 3 of the paper).

    Attributes
    ----------
    t_star:
        Logical timestamp (percent of planned duration; may exceed 100
        for overrunning avails).
    group_by_type:
        Whether to group by RCC type (G / N / NG).
    swlin_level:
        SWLIN hierarchy level to group by (1..4), or None for no SWLIN
        grouping.
    """

    t_star: float
    group_by_type: bool = True
    swlin_level: int | None = 1

    def __post_init__(self) -> None:
        if self.swlin_level is not None and not 1 <= self.swlin_level <= 4:
            raise ConfigurationError(f"swlin_level must be 1..4, got {self.swlin_level}")


#: Execution strategies of :class:`StatusQueryEngine`: ``"columnar"``
#: (fused batched kernels over the SoA frame — the default) and
#: ``"scalar"`` (the original per-set Algorithm-StatusQ path, kept as
#: the differential-testing reference).  Both produce byte-identical
#: aggregate tables.
EXECUTORS = ("columnar", "scalar")

# Zero-count division sentinel, shared with the columnar kernels so both
# executors emit identical averages for empty groups.
_safe_div = safe_divide


class StatStructure:
    """Incremental per-group Status Query state (Section 4.3).

    Holds running created/settled accumulators per group and advances
    monotonically over the logical timeline; between two consecutive
    timestamps only the events in ``(prev, t]`` are touched.
    """

    def __init__(
        self,
        group_ids: np.ndarray,
        n_groups: int,
        starts: np.ndarray,
        ends: np.ndarray,
        amounts: np.ndarray,
    ):
        self._group_ids = group_ids
        self._n_groups = n_groups
        self._starts = starts
        self._ends = ends
        self._amounts = amounts
        self._durations = ends - starts
        self._order_by_start = np.argsort(starts, kind="stable")
        self._order_by_end = np.argsort(ends, kind="stable")
        self._sorted_starts = starts[self._order_by_start]
        self._sorted_ends = ends[self._order_by_end]
        self.reset()

    def reset(self) -> None:
        """Rewind to before the first event."""
        n = self._n_groups
        self.t = float("-inf")
        self._ptr_start = 0
        self._ptr_end = 0
        self.created_count = np.zeros(n, dtype=np.int64)
        self.created_amount = np.zeros(n, dtype=np.float64)
        self.settled_count = np.zeros(n, dtype=np.int64)
        self.settled_amount = np.zeros(n, dtype=np.float64)
        self.settled_duration = np.zeros(n, dtype=np.float64)
        # Sums of creation times — used to derive the mean age of the
        # active set without enumerating it (feature engineering).
        self.created_start_sum = np.zeros(n, dtype=np.float64)
        self.settled_start_sum = np.zeros(n, dtype=np.float64)

    def advance(self, t: float) -> int:
        """Advance state to logical time ``t`` (monotone, inclusive).

        Returns the number of delta events applied.
        """
        if t < self.t:
            raise ConfigurationError(
                f"StatStructure can only move forward (at {self.t}, asked {t})"
            )
        new_start_ptr = int(np.searchsorted(self._sorted_starts, t, side="right"))
        new_end_ptr = int(np.searchsorted(self._sorted_ends, t, side="right"))
        delta = 0
        if new_start_ptr > self._ptr_start:
            rows = self._order_by_start[self._ptr_start : new_start_ptr]
            groups = self._group_ids[rows]
            self.created_count += np.bincount(groups, minlength=self._n_groups)
            self.created_amount += np.bincount(
                groups, weights=self._amounts[rows], minlength=self._n_groups
            )
            self.created_start_sum += np.bincount(
                groups, weights=self._starts[rows], minlength=self._n_groups
            )
            delta += len(rows)
            self._ptr_start = new_start_ptr
        if new_end_ptr > self._ptr_end:
            rows = self._order_by_end[self._ptr_end : new_end_ptr]
            groups = self._group_ids[rows]
            self.settled_count += np.bincount(groups, minlength=self._n_groups)
            self.settled_amount += np.bincount(
                groups, weights=self._amounts[rows], minlength=self._n_groups
            )
            self.settled_duration += np.bincount(
                groups, weights=self._durations[rows], minlength=self._n_groups
            )
            self.settled_start_sum += np.bincount(
                groups, weights=self._starts[rows], minlength=self._n_groups
            )
            delta += len(rows)
            self._ptr_end = new_end_ptr
        self.t = t
        return delta

    def aggregates(self) -> dict[str, np.ndarray]:
        """Current aggregate columns (all float64), one entry per group.

        The internal accumulators stay int64/float64 as allocated (the
        feature extractor reads them directly); only the derived output
        columns are float64, produced by the same shared helper the
        columnar kernels use so both executors agree byte for byte.
        """
        return derived_aggregate_columns(
            self.created_count,
            self.created_amount,
            self.settled_count,
            self.settled_amount,
            self.settled_duration,
        )


class StatusQueryEngine:
    """Algorithm StatusQ over a pluggable logical-time index design.

    Parameters
    ----------
    rccs:
        RCC table with columns ``rcc_type, swlin, t_start, t_end, amount``
        (logical times).  Extra columns — e.g. ``avail_id`` — may be
        named in ``extra_group_keys`` to extend the grouping.
    design:
        ``"naive"``, ``"avl"``, ``"interval"`` or ``"sorted_array"``
        (Section 4.1 plus the repository's vectorised ablation), or
        ``"auto"`` to let the context's cost-based
        :class:`~repro.runtime.planner.QueryPlanner` choose from the
        workload shape.
    avails:
        Optional avail table; when provided together with the naive
        design, every query re-joins it against the RCC table, matching
        the pandas-merge baseline's cost profile.
    extra_group_keys:
        Additional RCC columns prepended to the group key.
    context:
        Optional :class:`~repro.runtime.ExecutionContext`; supplies the
        planner for ``design="auto"`` and receives spans/counters.
    workload:
        Workload shape hint for the planner (defaults to a full
        timeline sweep over this RCC table).
    index:
        Pre-built logical-time index to serve queries from instead of
        building one from the table — the streaming path injects its
        incrementally maintained
        :class:`~repro.stream.mutable.MutableIndexAdapter` here so the
        engine (and everything above it) stays backend-agnostic.  The
        index must cover exactly the table's rows, by row position.
    """

    def __init__(
        self,
        rccs: ColumnTable,
        design: str = "avl",
        avails: ColumnTable | None = None,
        extra_group_keys: tuple[str, ...] = (),
        context: ExecutionContext | None = None,
        workload: WorkloadSpec | None = None,
        index: LogicalTimeIndex | None = None,
        executor: str = "columnar",
    ):
        missing = [c for c in REQUIRED_RCC_COLUMNS if c not in rccs]
        if missing:
            raise SchemaError(f"RCC table missing columns: {missing}")
        if executor not in EXECUTORS:
            raise ConfigurationError(
                f"unknown executor {executor!r}; expected one of {EXECUTORS}"
            )
        self.context = ensure_context(context)
        telemetry = self.context.metrics.telemetry
        if index is not None:
            if len(index) != rccs.n_rows:
                raise ConfigurationError(
                    f"injected index covers {len(index)} rows but the RCC "
                    f"table has {rccs.n_rows}"
                )
            design = getattr(index, "design", index.name)
        if design == "auto":
            spec = workload or WorkloadSpec(
                n_rccs=rccs.n_rows, n_timestamps=11, mode="sweep"
            )
            decision = self.context.planner.plan(spec)
            design = decision.backend
            self.plan_decision = decision
            self.context.counter(f"planner.chosen.{design}")
            if telemetry is not None:
                telemetry.emit("planner_decision", **decision.as_dict())
                # The decision's modelled cost, histogrammed next to the
                # realized per-backend query latencies for comparison.
                telemetry.observe(
                    f"planner.estimate.{design}",
                    decision.estimated_seconds.get(design, 0.0),
                )
        else:
            self.plan_decision = None
        if index is None and design not in _DESIGNS:
            raise ConfigurationError(
                f"unknown index design {design!r}; expected one of "
                f"{sorted(_DESIGNS)} or 'auto'"
            )
        self._rccs = rccs
        self._design = design
        self._avails = avails
        self._extra_group_keys = tuple(extra_group_keys)
        self._starts = np.asarray(rccs["t_start"], dtype=np.float64)
        self._ends = np.asarray(rccs["t_end"], dtype=np.float64)
        self._amounts = np.asarray(rccs["amount"], dtype=np.float64)
        # Group-by hierarchies (Algorithm StatusQ inputs) — built lazily;
        # the vectorised group-assignment path below doesn't need the
        # tries, only explicit subtree retrieval does.
        self._swlin_tree: SwlinTree | None = None
        self._type_tree: RccTypeTree | None = None
        # Logical-time index over row positions.
        self.context.counter(f"index.backend.{design}")
        if index is not None:
            # Streaming injection: the adapter is already built and
            # incrementally maintained; no build span is paid here.
            self.index: LogicalTimeIndex = index
        else:
            rows = np.arange(rccs.n_rows, dtype=np.int64)
            with self.context.span(f"index.build.{design}"):
                self.index = _DESIGNS[design](self._starts, self._ends, rows)
        self._executor = executor
        # Struct-of-arrays frame behind the columnar executor: owns the
        # contiguous numeric columns, shared event-time sort orders and
        # the pre-resolved group-code cache.
        self._frame = ColumnarRccFrame(rccs, self._extra_group_keys)
        # Engine-built indexes already paid the stable event-time
        # argsorts during construction; share them so columnar sweep
        # setup skips two O(n log n) re-sorts.  (Injected adapters
        # return None — the frame derives its own orders lazily.)
        if index is None:
            orders = self.index.event_time_orders()
            if orders is not None:
                self._frame.seed_event_time_orders(*orders)
        self._group_cache: dict[tuple[bool, int | None], tuple[np.ndarray, ColumnTable]] = {}
        self._stat_cache: dict[tuple[bool, int | None], StatStructure] = {}
        self._sweep_states: dict[tuple[bool, int | None], ColumnarSweepState] = {}
        # EXPLAIN/ANALYZE capture hook; None on the (default) fast path,
        # where every stage pays exactly one `is None` check.
        self._recorder: "OperatorRecorder | None" = None

    @contextmanager
    def recording(self, recorder: "OperatorRecorder") -> Iterator["OperatorRecorder"]:
        """Attach an EXPLAIN operator recorder for the duration.

        Used by :func:`repro.runtime.explain.explain_point` /
        :func:`~repro.runtime.explain.explain_sweep`; recordings do not
        nest (the innermost recorder wins and is restored on exit).
        """
        previous = self._recorder
        self._recorder = recorder
        try:
            yield recorder
        finally:
            self._recorder = previous

    @property
    def design(self) -> str:
        """The resolved index design name (after any planning)."""
        return self._design

    @property
    def swlin_tree(self) -> SwlinTree:
        """SWLIN trie over the RCC table (built on first access)."""
        if self._swlin_tree is None:
            self._swlin_tree = SwlinTree(self._rccs["swlin"])
        return self._swlin_tree

    @property
    def type_tree(self) -> RccTypeTree:
        """RCC-type hierarchy over the RCC table (built on first access)."""
        if self._type_tree is None:
            self._type_tree = RccTypeTree(self._rccs["rcc_type"])
        return self._type_tree

    # ------------------------------------------------------------------
    # grouping
    # ------------------------------------------------------------------
    def _group_assignment(self, query: StatusQuery) -> tuple[np.ndarray, ColumnTable]:
        """(group id per RCC row, table of group label columns).

        Both executors resolve groups through the frame's cached
        :meth:`~repro.index.columnar.ColumnarRccFrame.group_coding`
        (SWLIN codes normalised once, prefixes sliced per level), so the
        dense codes and label row order are identical by construction.
        """
        cache_key = (query.group_by_type, query.swlin_level)
        cached = self._group_cache.get(cache_key)
        if cached is not None:
            return cached
        coding = self._frame.group_coding(query.group_by_type, query.swlin_level)
        self._group_cache[cache_key] = (coding.codes, coding.labels)
        return coding.codes, coding.labels

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def execute(self, query: StatusQuery) -> ColumnTable:
        """Run one Status Query from scratch through the index design.

        Every backend's query path emits the same metric names modulo
        the backend label — counter ``status_query.queries.<design>``
        and span ``status_query.query.<design>`` around the index
        retrieval — so latency histograms and planner statistics stay
        comparable across ``naive``/``avl``/``interval``/``sorted_array``.
        """
        recorder = self._recorder
        check_deadline("status_query.execute")
        with self.context.span("status_query.execute"):
            self.context.counter("status_query.point_queries")
            self.context.counter(f"status_query.queries.{self._design}")
            if self._design == "naive" and self._avails is not None:
                # Faithful baseline: re-join avails x RCCs on every query.
                if "avail_id" in self._rccs and "avail_id" in self._avails:
                    if recorder is not None:
                        with recorder.op("rejoin", rows_in=self._rccs.n_rows) as op:
                            joined = self._rccs.merge(self._avails, on="avail_id")
                            op.rows_out += joined.n_rows
                    else:
                        self._rccs.merge(self._avails, on="avail_id")
            if recorder is not None:
                with recorder.op("group_assignment", rows_in=self._rccs.n_rows) as op:
                    group_ids, labels = self._group_assignment(query)
                    op.rows_out += labels.n_rows
            else:
                group_ids, labels = self._group_assignment(query)
            n_groups = labels.n_rows
            t = query.t_star
            if self._executor == "columnar":
                return self._execute_point_columnar(query, labels, t, recorder)
            with self.context.span(f"status_query.query.{self._design}") as handle:
                settled_rows = self.index.settled_ids(t)
                created_rows = self.index.created_ids(t)
            if recorder is not None:
                recorder.add(
                    "index_lookup",
                    seconds=handle.seconds,
                    rows_in=len(self.index),
                    rows_out=len(settled_rows) + len(created_rows),
                )
                with recorder.op("aggregate", rows_in=len(created_rows)) as op:
                    result = self._aggregate_rows(
                        group_ids, n_groups, labels, created_rows, settled_rows, t
                    )
                    op.rows_out += result.n_rows
                return result
            return self._aggregate_rows(
                group_ids, n_groups, labels, created_rows, settled_rows, t
            )

    def _execute_point_columnar(
        self,
        query: StatusQuery,
        labels: ColumnTable,
        t: float,
        recorder: "OperatorRecorder | None",
    ) -> ColumnTable:
        """Fused point execution: batched bucket lookup + one kernel.

        Emits the same EXPLAIN rows as the scalar path — ``index_lookup``
        with the created+settled cardinality, ``aggregate`` fed the
        created count — so golden plans are executor-invariant.
        """
        coding = self._frame.group_coding(query.group_by_type, query.swlin_level)
        with self.context.span(f"status_query.query.{self._design}") as handle:
            start_buckets, end_buckets = self.index.batch_status_buckets(
                np.array([t], dtype=np.float64)
            )
            created_mask = start_buckets == 0
            settled_mask = end_buckets == 0
        n_created = int(np.count_nonzero(created_mask))
        if recorder is not None:
            recorder.add(
                "index_lookup",
                seconds=handle.seconds,
                rows_in=len(self.index),
                rows_out=n_created + int(np.count_nonzero(settled_mask)),
            )
            with recorder.op("aggregate", rows_in=n_created) as op:
                result = self._assemble_point_columnar(
                    labels, coding, created_mask, settled_mask, t
                )
                op.rows_out += result.n_rows
            return result
        return self._assemble_point_columnar(
            labels, coding, created_mask, settled_mask, t
        )

    def _assemble_point_columnar(
        self, labels, coding, created_mask, settled_mask, t
    ) -> ColumnTable:
        n_groups = labels.n_rows
        columns = {name: labels[name] for name in labels.column_names}
        columns["t_star"] = np.full(n_groups, t, dtype=np.float64)
        columns.update(
            fused_point_aggregates(self._frame, coding, created_mask, settled_mask)
        )
        return ColumnTable._from_arrays(columns, n_groups)

    def _aggregate_rows(
        self,
        group_ids: np.ndarray,
        n_groups: int,
        labels: ColumnTable,
        created_rows: np.ndarray,
        settled_rows: np.ndarray,
        t: float,
    ) -> ColumnTable:
        created_groups = group_ids[created_rows]
        settled_groups = group_ids[settled_rows]
        created_count = np.bincount(created_groups, minlength=n_groups)
        created_amount = np.bincount(
            created_groups, weights=self._amounts[created_rows], minlength=n_groups
        )
        settled_count = np.bincount(settled_groups, minlength=n_groups)
        settled_amount = np.bincount(
            settled_groups, weights=self._amounts[settled_rows], minlength=n_groups
        )
        settled_duration = np.bincount(
            settled_groups,
            weights=(self._ends - self._starts)[settled_rows],
            minlength=n_groups,
        )
        columns = {name: labels[name] for name in labels.column_names}
        columns["t_star"] = np.full(n_groups, t, dtype=np.float64)
        columns.update(
            derived_aggregate_columns(
                created_count,
                created_amount,
                settled_count,
                settled_amount,
                settled_duration,
            )
        )
        return ColumnTable._from_arrays(columns, n_groups)

    def execute_sweep(
        self,
        t_stars: list[float] | np.ndarray,
        group_by_type: bool = True,
        swlin_level: int | None = 1,
        incremental: bool = True,
    ) -> list[ColumnTable]:
        """Run Status Queries over an ascending sequence of timestamps.

        With ``incremental=True`` (Section 4.3), a :class:`StatStructure`
        carries state between timestamps so only the delta events in
        ``(t_j, t_{j+1}]`` are processed.  Otherwise every timestamp is
        computed from scratch through :meth:`execute`.
        """
        t_stars = [float(t) for t in t_stars]
        if any(b < a for a, b in zip(t_stars, t_stars[1:])):
            raise ConfigurationError("sweep timestamps must be ascending")
        self.context.counter("status_query.sweeps")
        self.context.counter("status_query.sweep_timestamps", len(t_stars))
        if not incremental:
            with self.context.span("status_query.sweep.scratch"):
                return [
                    self.execute(
                        StatusQuery(
                            t, group_by_type=group_by_type, swlin_level=swlin_level
                        )
                    )
                    for t in t_stars
                ]
        probe = StatusQuery(
            t_stars[0] if t_stars else 0.0,
            group_by_type=group_by_type,
            swlin_level=swlin_level,
        )
        recorder = self._recorder
        if recorder is not None:
            with recorder.op("group_assignment", rows_in=self._rccs.n_rows) as op:
                group_ids, labels = self._group_assignment(probe)
                op.rows_out += labels.n_rows
        else:
            group_ids, labels = self._group_assignment(probe)
        cache_key = (group_by_type, swlin_level)
        if self._executor == "columnar":
            return self._sweep_columnar(
                t_stars, cache_key, group_by_type, swlin_level, labels, recorder
            )
        stat = self._stat_cache.get(cache_key)
        stat_reused = not (stat is None or (t_stars and t_stars[0] < stat.t))
        if not stat_reused:
            if recorder is not None:
                with recorder.op("stat_build", rows_in=self._rccs.n_rows) as op:
                    stat = StatStructure(
                        group_ids,
                        labels.n_rows,
                        self._starts,
                        self._ends,
                        self._amounts,
                    )
                    op.rows_out += labels.n_rows
            else:
                stat = StatStructure(
                    group_ids, labels.n_rows, self._starts, self._ends, self._amounts
                )
            self._stat_cache[cache_key] = stat
        if recorder is not None:
            # The incremental-vs-reset decision: a reused StatStructure
            # only touches delta events, a reset one replays from t=-inf.
            recorder.note(stat_reused=stat_reused)
        # Same per-query counter the scratch path emits through execute(),
        # so sweep and point workloads stay comparable per backend.
        self.context.counter(f"status_query.queries.{self._design}", len(t_stars))
        results = []
        with self.context.span("status_query.sweep.incremental"):
            for t in t_stars:
                # Cooperative cancellation between timestamps: a pooled
                # request abandons the sweep within one delta's work.
                check_deadline("status_query.sweep")
                if recorder is not None:
                    with recorder.op("advance") as op:
                        applied = stat.advance(t)
                        op.rows_in += applied
                        op.rows_out += applied
                    with recorder.op("aggregate", rows_in=labels.n_rows) as op:
                        aggs = stat.aggregates()
                        columns = {
                            name: labels[name] for name in labels.column_names
                        }
                        columns["t_star"] = np.full(
                            labels.n_rows, t, dtype=np.float64
                        )
                        columns.update(aggs)
                        results.append(
                            ColumnTable._from_arrays(columns, labels.n_rows)
                        )
                        op.rows_out += labels.n_rows
                else:
                    stat.advance(t)
                    aggs = stat.aggregates()
                    columns = {name: labels[name] for name in labels.column_names}
                    columns["t_star"] = np.full(labels.n_rows, t, dtype=np.float64)
                    columns.update(aggs)
                    results.append(ColumnTable._from_arrays(columns, labels.n_rows))
        return results

    def _sweep_columnar(
        self,
        t_stars: list[float],
        cache_key: tuple[bool, int | None],
        group_by_type: bool,
        swlin_level: int | None,
        labels: ColumnTable,
        recorder: "OperatorRecorder | None",
    ) -> list[ColumnTable]:
        """Batched incremental sweep: one fused kernel pass per chunk.

        Same resume semantics, counters, spans and EXPLAIN rows as the
        scalar path (``advance``/``aggregate`` report one logical call
        per timestamp even though a whole chunk runs in one kernel);
        deadline checkpoints fire between chunks, never per row.
        """
        coding = self._frame.group_coding(group_by_type, swlin_level)
        state = self._sweep_states.get(cache_key)
        stat_reused = not (state is None or (t_stars and t_stars[0] < state.t))
        if not stat_reused:
            if recorder is not None:
                with recorder.op("stat_build", rows_in=self._rccs.n_rows) as op:
                    state = ColumnarSweepState(self._frame, coding)
                    op.rows_out += labels.n_rows
            else:
                state = ColumnarSweepState(self._frame, coding)
            self._sweep_states[cache_key] = state
        if recorder is not None:
            recorder.note(stat_reused=stat_reused)
        self.context.counter(f"status_query.queries.{self._design}", len(t_stars))
        n_groups = labels.n_rows
        label_columns = {name: labels[name] for name in labels.column_names}
        results: list[ColumnTable] = []

        def assemble(chunk: list[float], matrices: dict[str, np.ndarray]) -> None:
            for row, t in enumerate(chunk):
                columns = dict(label_columns)
                columns["t_star"] = np.full(n_groups, t, dtype=np.float64)
                columns.update(state.aggregates_at(matrices, row))
                results.append(ColumnTable._from_arrays(columns, n_groups))

        with self.context.span("status_query.sweep.incremental"):
            for lo in range(0, len(t_stars), SWEEP_CHUNK_SIZE):
                # Cooperative cancellation between batch chunks: a pooled
                # request abandons the sweep within one chunk's work.
                check_deadline("status_query.sweep")
                chunk = t_stars[lo : lo + SWEEP_CHUNK_SIZE]
                if recorder is not None:
                    with self.context.span("op.advance") as handle:
                        matrices, delta = state.advance_batch(chunk)
                    recorder.add(
                        "advance",
                        seconds=handle.seconds,
                        rows_in=delta,
                        rows_out=delta,
                        calls=len(chunk),
                    )
                    with self.context.span("op.aggregate") as handle:
                        assemble(chunk, matrices)
                    recorder.add(
                        "aggregate",
                        seconds=handle.seconds,
                        rows_in=n_groups * len(chunk),
                        rows_out=n_groups * len(chunk),
                        calls=len(chunk),
                    )
                else:
                    matrices, _ = state.advance_batch(chunk)
                    assemble(chunk, matrices)
        return results

    @staticmethod
    def designs() -> tuple[str, ...]:
        """Names of the available index designs, in paper order."""
        return tuple(_DESIGNS)
