"""Common interface for logical-time RCC indexes (paper Section 4.1).

Every index design stores ``(t_start, t_end, id)`` triples — the logical
creation time, logical settled time, and row id of each RCC — and answers
the four Status Query retrieval sets at any logical timestamp ``t*``:

===========  =====================================  ==================
set          definition                             paper equation
===========  =====================================  ==================
active       ``t_start <= t* < t_end``              (3) point query
settled      ``t_end <= t*``                        (4) overlap query
created      ``active ∪ settled`` = start <= t*     (5) union
pending      everything else (start > t*)           (6) difference
===========  =====================================  ==================

All methods return sorted ``int64`` arrays of RCC ids so results are
directly comparable across designs.

The public retrieval methods are concrete: they maintain the uniform
per-operator statistics table (:attr:`op_stats` — calls and rows
returned per retrieval set, identical keys for every backend, enforced
by ``tests/index/test_backend_metrics.py``) and delegate to the
design-specific ``_*_impl`` hooks.  EXPLAIN/ANALYZE reads these stats to
report rows-out per operator without any backend-specific code.
"""

from __future__ import annotations

import abc
import sys
from typing import ClassVar

import numpy as np

from repro.errors import ConfigurationError, LengthMismatchError

#: Retrieval operators every backend answers; the keys of ``op_stats``.
OPERATOR_NAMES = ("settled", "created", "active", "pending")

#: Fields tracked per operator — the shared stat schema across backends.
OPERATOR_STAT_FIELDS = ("calls", "rows_out")

#: Ingest operators every mutable backend counts; keys of ``ingest_stats``.
#: Kept separate from ``op_stats`` so the retrieval schema (pinned by
#: ``tests/index/test_backend_metrics.py``) is untouched by streaming.
INGEST_OPERATOR_NAMES = ("insert", "settle", "revise", "rebuild")

#: Fields tracked per ingest operator, uniform across backends.
INGEST_STAT_FIELDS = ("calls", "rows")


def validate_triples(
    starts: np.ndarray, ends: np.ndarray, ids: np.ndarray
) -> None:
    """Reject rows that settle before they are created.

    Reports *every* offending row with its id — a batch loaded from a
    corrupted extract fails with the full repair list, not a fix-one-
    rerun-find-the-next loop.
    """
    bad = np.flatnonzero(ends < starts)
    if len(bad):
        shown = bad[:20]
        detail = ", ".join(
            f"id {ids[row]} ({ends[row]} < {starts[row]})" for row in shown
        )
        suffix = "" if len(bad) <= len(shown) else f" and {len(bad) - len(shown)} more"
        raise ConfigurationError(
            f"{len(bad)} RCC row(s) where the RCC settles before it is "
            f"created: {detail}{suffix}"
        )


class LogicalTimeIndex(abc.ABC):
    """Abstract base for the three index designs of Section 4.1."""

    #: short name used in benchmark tables ("avl", "interval", "naive").
    name: ClassVar[str] = "abstract"

    #: Whether the design supports in-place incremental ingestion via
    #: :meth:`apply_insert` / :meth:`apply_update`.  The streaming
    #: :class:`~repro.stream.mutable.MutableIndexAdapter` stages a delta
    #: buffer in front of designs that do not.
    supports_incremental_ingest: ClassVar[bool] = False

    def __init__(self, starts: np.ndarray, ends: np.ndarray, ids: np.ndarray):
        starts = np.asarray(starts, dtype=np.float64)
        ends = np.asarray(ends, dtype=np.float64)
        ids = np.asarray(ids, dtype=np.int64)
        if not (len(starts) == len(ends) == len(ids)):
            raise LengthMismatchError(
                f"starts/ends/ids lengths differ: {len(starts)}/{len(ends)}/{len(ids)}"
            )
        validate_triples(starts, ends, ids)
        self._starts = starts
        self._ends = ends
        self._ids = ids
        self.reset_op_stats()
        self._build()

    @abc.abstractmethod
    def _build(self) -> None:
        """Construct the index from the stored triples."""

    # ------------------------------------------------------------------
    # per-operator statistics (uniform across backends)
    # ------------------------------------------------------------------
    def reset_op_stats(self) -> None:
        """Zero the per-operator call/row counters (retrieval + ingest)."""
        self.op_stats: dict[str, dict[str, int]] = {
            op: {field: 0 for field in OPERATOR_STAT_FIELDS}
            for op in OPERATOR_NAMES
        }
        self.ingest_stats: dict[str, dict[str, int]] = {
            op: {field: 0 for field in INGEST_STAT_FIELDS}
            for op in INGEST_OPERATOR_NAMES
        }

    def _record_op(self, op: str, result: np.ndarray) -> np.ndarray:
        stats = self.op_stats[op]
        stats["calls"] += 1
        stats["rows_out"] += len(result)
        return result

    def _record_ingest(self, op: str, rows: int = 1) -> None:
        stats = self.ingest_stats[op]
        stats["calls"] += 1
        stats["rows"] += int(rows)

    # ------------------------------------------------------------------
    # public retrieval surface (counts, then delegates to the design)
    # ------------------------------------------------------------------
    def active_ids(self, t: float) -> np.ndarray:
        """Ids of RCCs active at ``t`` (created, not yet settled)."""
        return self._record_op("active", self._active_ids_impl(t))

    def settled_ids(self, t: float) -> np.ndarray:
        """Ids of RCCs settled by ``t``."""
        return self._record_op("settled", self._settled_ids_impl(t))

    def created_ids(self, t: float) -> np.ndarray:
        """Ids of RCCs created by ``t`` (active ∪ settled)."""
        return self._record_op("created", self._created_ids_impl(t))

    def pending_ids(self, t: float) -> np.ndarray:
        """Ids of RCCs not yet created at ``t``."""
        return self._record_op("pending", self._pending_ids_impl(t))

    def batch_status_buckets(
        self, ts: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Row-aligned status buckets for an ascending timestamp batch.

        The batched retrieval surface behind the columnar executor: one
        call answers *all* timestamps of a sweep.  Returns
        ``(start_buckets, end_buckets)``, both ``int64`` arrays indexed
        by RCC id (= row position), where ``start_buckets[row]`` is the
        index of the first timestamp in ``ts`` at which the row is
        created (``t_start <= ts[b]``) and ``end_buckets[row]`` the
        first at which it is settled; ``len(ts)`` means "not within this
        batch".  Point-query masks fall out as ``buckets == 0`` for a
        single-element ``ts``.

        Requires ids to be a permutation of ``0..n-1`` — the row-position
        contract :class:`~repro.index.status_query.StatusQueryEngine`
        already imposes on injected indexes.  Folds the equivalent
        per-timestamp ``created``/``settled`` calls and rows into
        :attr:`op_stats`, so observability parity with the scalar path
        holds per backend.
        """
        ts = np.asarray(ts, dtype=np.float64)
        n_ts = len(ts)
        start_buckets, end_buckets = self._batch_status_buckets_impl(ts)
        created = self.op_stats["created"]
        settled = self.op_stats["settled"]
        created["calls"] += n_ts
        settled["calls"] += n_ts
        if n_ts:
            # a row with bucket b would appear in (n_ts - b) scalar calls
            created["rows_out"] += int(np.sum(n_ts - start_buckets))
            settled["rows_out"] += int(np.sum(n_ts - end_buckets))
        return start_buckets, end_buckets

    def _batch_status_buckets_impl(
        self, ts: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Default batched retrieval over the stored triple arrays.

        ``searchsorted`` of every start/end against the ascending batch,
        scattered into id order.  Designs whose base arrays go stale
        under the structure-only ingest protocol (``sorted_array``)
        override this with their maintained structures; structure-only
        AVL/naive/interval instances are only ever queried through the
        :class:`~repro.stream.mutable.MutableIndexAdapter`, whose base
        arrays are the authoritative triples.
        """
        n = len(self._ids)
        self._check_row_position_ids(self._ids)
        start_buckets = np.empty(n, dtype=np.int64)
        end_buckets = np.empty(n, dtype=np.int64)
        start_buckets[self._ids] = np.searchsorted(ts, self._starts, side="left")
        end_buckets[self._ids] = np.searchsorted(ts, self._ends, side="left")
        return start_buckets, end_buckets

    def event_time_orders(self) -> tuple[np.ndarray, np.ndarray] | None:
        """Build-time ``(argsort by start, argsort by end)``, if retained.

        Designs that already paid the stable event-time argsorts during
        construction expose them here so the columnar executor's frame
        can share the permutations instead of re-sorting — the arrays
        are positions into the build-time triples (the engine's table
        rows) and are immutable after ``_build``, so they stay valid for
        that table regardless of later structure-only mutation.  Default
        ``None``: the frame derives its own orders.
        """
        return None

    @staticmethod
    def _check_row_position_ids(ids: np.ndarray) -> None:
        """Reject batched retrieval when ids are not row positions."""
        n = len(ids)
        if n and (
            ids.min() < 0
            or ids.max() >= n
            or not np.all(np.bincount(ids, minlength=n) == 1)
        ):
            raise ConfigurationError(
                "batched status retrieval requires ids to be a permutation "
                f"of 0..{n - 1} (row positions); use the scalar retrieval "
                "methods for arbitrary ids"
            )

    # ------------------------------------------------------------------
    # design-specific hooks
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def _active_ids_impl(self, t: float) -> np.ndarray:
        """Design-specific active-set retrieval."""

    @abc.abstractmethod
    def _settled_ids_impl(self, t: float) -> np.ndarray:
        """Design-specific settled-set retrieval."""

    def _created_ids_impl(self, t: float) -> np.ndarray:
        return np.sort(self._ids[self._starts <= t])

    def _pending_ids_impl(self, t: float) -> np.ndarray:
        return np.sort(self._ids[self._starts > t])

    def __len__(self) -> int:
        return len(self._ids)

    def approx_nbytes(self) -> int:
        """Approximate memory footprint of the index payload in bytes.

        Includes the base triple arrays plus whatever structure the
        concrete design allocates (reported via :meth:`_structure_nbytes`).
        """
        base = int(self._starts.nbytes + self._ends.nbytes + self._ids.nbytes)
        return base + self._structure_nbytes()

    @abc.abstractmethod
    def _structure_nbytes(self) -> int:
        """Bytes used by the design-specific structure."""


def deep_node_nbytes(root: object, child_attrs: tuple[str, ...]) -> int:
    """Sum ``sys.getsizeof`` over a linked node structure iteratively."""
    total = 0
    stack = [root]
    while stack:
        node = stack.pop()
        if node is None:
            continue
        total += sys.getsizeof(node)
        values = getattr(node, "values", None)
        if values is not None:
            total += sys.getsizeof(values)
        for attr in child_attrs:
            stack.append(getattr(node, attr))
    return total
