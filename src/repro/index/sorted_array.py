"""A fourth logical-time index design: vectorised sorted arrays.

Not part of the paper's trio — this is the repository's own ablation.
The paper observes that its pure-Python interval tree loses to
C-optimised structures on constant factors; this design pushes that
observation to its conclusion in a numpy world: keep two sorted numpy
arrays (by creation time and by settled time) and answer every threshold
query with ``searchsorted`` plus one slice.

* build: two ``argsort`` calls — O(n log n), but vectorised C.
* query: O(log n + k) with the k-sized copy also vectorised.
* maintenance: O(n) insert/delete (arrays shift) — the trade-off the
  tree designs avoid; the ablation benchmark quantifies both sides.
"""

from __future__ import annotations

import numpy as np

from repro.errors import StreamStateError
from repro.index.base import LogicalTimeIndex


def _sorted_position(keys: np.ndarray, values: np.ndarray, key: float, value: int) -> int:
    """Position of ``(key, value)`` within a sorted key array, scanning
    only the run of duplicate keys."""
    lo = int(np.searchsorted(keys, key, side="left"))
    hi = int(np.searchsorted(keys, key, side="right"))
    hits = np.flatnonzero(values[lo:hi] == value)
    if not len(hits):
        raise StreamStateError(
            f"sorted-array index has no entry ({key}, {value})"
        )
    return lo + int(hits[0])


class SortedArrayIndex(LogicalTimeIndex):
    """Dual sorted-array index over RCC logical times (ablation design)."""

    name = "sorted"
    supports_incremental_ingest = True

    def _build(self) -> None:
        self._start_order = np.argsort(self._starts, kind="stable")
        self._end_order = np.argsort(self._ends, kind="stable")
        self._sorted_starts = self._starts[self._start_order]
        self._sorted_ends = self._ends[self._end_order]
        self._ids_by_start = self._ids[self._start_order]
        self._ids_by_end = self._ids[self._end_order]

    def _settled_ids_impl(self, t: float) -> np.ndarray:
        cut = int(np.searchsorted(self._sorted_ends, t, side="right"))
        return np.sort(self._ids_by_end[:cut])

    def _created_ids_impl(self, t: float) -> np.ndarray:
        cut = int(np.searchsorted(self._sorted_starts, t, side="right"))
        return np.sort(self._ids_by_start[:cut])

    def _active_ids_impl(self, t: float) -> np.ndarray:
        return np.setdiff1d(self._created_ids_impl(t), self._settled_ids_impl(t))

    def _pending_ids_impl(self, t: float) -> np.ndarray:
        cut = int(np.searchsorted(self._sorted_starts, t, side="right"))
        return np.sort(self._ids_by_start[cut:])

    def _batch_status_buckets_impl(
        self, ts: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Batched retrieval over the *maintained* sorted views.

        Overridden (rather than inherited from the base triple arrays)
        because under the structure-only streaming protocol the base
        ``_starts``/``_ends`` go stale while the four sorted views stay
        current — and ``searchsorted`` over already-sorted keys is the
        design's native access path.
        """
        n = len(self._ids_by_start)
        self._check_row_position_ids(self._ids_by_start)
        start_buckets = np.empty(n, dtype=np.int64)
        end_buckets = np.empty(n, dtype=np.int64)
        start_buckets[self._ids_by_start] = np.searchsorted(
            ts, self._sorted_starts, side="left"
        )
        end_buckets[self._ids_by_end] = np.searchsorted(
            ts, self._sorted_ends, side="left"
        )
        return start_buckets, end_buckets

    def event_time_orders(self) -> tuple[np.ndarray, np.ndarray] | None:
        """Share the build-time argsorts with the columnar frame."""
        if len(self._start_order) != len(self._sorted_starts):
            return None  # structure-only inserts landed; orders are partial
        return self._start_order, self._end_order

    def insert(self, start: float, end: float, rcc_id: int) -> None:
        """O(n) insert: arrays are rebuilt around the new row."""
        self._starts = np.append(self._starts, float(start))
        self._ends = np.append(self._ends, float(end))
        self._ids = np.append(self._ids, int(rcc_id))
        self._build()

    # ------------------------------------------------------------------
    # structure-only ingest protocol (streaming)
    # ------------------------------------------------------------------
    # These maintain the four sorted arrays with searchsorted +
    # np.insert/np.delete — one O(n) memmove instead of an O(n log n)
    # re-sort, and no base-array bookkeeping (the streaming adapter owns
    # the triples; ``_start_order``/``_end_order`` go stale by design).
    def apply_insert(self, start: float, end: float, rcc_id: int) -> None:
        """Splice one interval into both sorted views."""
        start, end, rcc_id = float(start), float(end), int(rcc_id)
        i = int(np.searchsorted(self._sorted_starts, start, side="right"))
        self._sorted_starts = np.insert(self._sorted_starts, i, start)
        self._ids_by_start = np.insert(self._ids_by_start, i, rcc_id)
        j = int(np.searchsorted(self._sorted_ends, end, side="right"))
        self._sorted_ends = np.insert(self._sorted_ends, j, end)
        self._ids_by_end = np.insert(self._ids_by_end, j, rcc_id)
        self._record_ingest("insert")

    def apply_insert_batch(
        self, starts: np.ndarray, ends: np.ndarray, rcc_ids: np.ndarray
    ) -> None:
        """Merge a whole insert batch into both sorted views in one pass.

        Equivalent to calling :meth:`apply_insert` per row — the stable
        pre-sort plus ``side="right"`` positions against the *original*
        arrays reproduce the sequential tie-breaking exactly (existing
        equal keys stay first, batch order preserved among equals) — but
        with one ``np.insert`` memmove per view instead of one per
        event, turning the O(k·n) splice storm into O(n + k log k).
        """
        starts = np.asarray(starts, dtype=np.float64)
        ends = np.asarray(ends, dtype=np.float64)
        rcc_ids = np.asarray(rcc_ids, dtype=np.int64)
        start_order = np.argsort(starts, kind="stable")
        batch_starts = starts[start_order]
        i = np.searchsorted(self._sorted_starts, batch_starts, side="right")
        self._sorted_starts = np.insert(self._sorted_starts, i, batch_starts)
        self._ids_by_start = np.insert(self._ids_by_start, i, rcc_ids[start_order])
        end_order = np.argsort(ends, kind="stable")
        batch_ends = ends[end_order]
        j = np.searchsorted(self._sorted_ends, batch_ends, side="right")
        self._sorted_ends = np.insert(self._sorted_ends, j, batch_ends)
        self._ids_by_end = np.insert(self._ids_by_end, j, rcc_ids[end_order])
        self._record_ingest("insert", rows=len(rcc_ids))

    def apply_update(
        self,
        rcc_id: int,
        old_start: float,
        old_end: float,
        new_start: float,
        new_end: float,
    ) -> None:
        """Re-position one interval in whichever sorted views changed."""
        rcc_id = int(rcc_id)
        if new_start != old_start:
            pos = _sorted_position(
                self._sorted_starts, self._ids_by_start, float(old_start), rcc_id
            )
            self._sorted_starts = np.delete(self._sorted_starts, pos)
            self._ids_by_start = np.delete(self._ids_by_start, pos)
            i = int(np.searchsorted(self._sorted_starts, new_start, side="right"))
            self._sorted_starts = np.insert(self._sorted_starts, i, float(new_start))
            self._ids_by_start = np.insert(self._ids_by_start, i, rcc_id)
        if new_end != old_end:
            pos = _sorted_position(
                self._sorted_ends, self._ids_by_end, float(old_end), rcc_id
            )
            self._sorted_ends = np.delete(self._sorted_ends, pos)
            self._ids_by_end = np.delete(self._ids_by_end, pos)
            j = int(np.searchsorted(self._sorted_ends, new_end, side="right"))
            self._sorted_ends = np.insert(self._sorted_ends, j, float(new_end))
            self._ids_by_end = np.insert(self._ids_by_end, j, rcc_id)
        self._record_ingest("settle" if new_start == old_start else "revise")

    def _structure_nbytes(self) -> int:
        return int(
            self._start_order.nbytes
            + self._end_order.nbytes
            + self._sorted_starts.nbytes
            + self._sorted_ends.nbytes
            + self._ids_by_start.nbytes
            + self._ids_by_end.nbytes
        )
