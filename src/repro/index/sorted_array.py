"""A fourth logical-time index design: vectorised sorted arrays.

Not part of the paper's trio — this is the repository's own ablation.
The paper observes that its pure-Python interval tree loses to
C-optimised structures on constant factors; this design pushes that
observation to its conclusion in a numpy world: keep two sorted numpy
arrays (by creation time and by settled time) and answer every threshold
query with ``searchsorted`` plus one slice.

* build: two ``argsort`` calls — O(n log n), but vectorised C.
* query: O(log n + k) with the k-sized copy also vectorised.
* maintenance: O(n) insert/delete (arrays shift) — the trade-off the
  tree designs avoid; the ablation benchmark quantifies both sides.
"""

from __future__ import annotations

import numpy as np

from repro.index.base import LogicalTimeIndex


class SortedArrayIndex(LogicalTimeIndex):
    """Dual sorted-array index over RCC logical times (ablation design)."""

    name = "sorted"

    def _build(self) -> None:
        self._start_order = np.argsort(self._starts, kind="stable")
        self._end_order = np.argsort(self._ends, kind="stable")
        self._sorted_starts = self._starts[self._start_order]
        self._sorted_ends = self._ends[self._end_order]
        self._ids_by_start = self._ids[self._start_order]
        self._ids_by_end = self._ids[self._end_order]

    def _settled_ids_impl(self, t: float) -> np.ndarray:
        cut = int(np.searchsorted(self._sorted_ends, t, side="right"))
        return np.sort(self._ids_by_end[:cut])

    def _created_ids_impl(self, t: float) -> np.ndarray:
        cut = int(np.searchsorted(self._sorted_starts, t, side="right"))
        return np.sort(self._ids_by_start[:cut])

    def _active_ids_impl(self, t: float) -> np.ndarray:
        return np.setdiff1d(self._created_ids_impl(t), self._settled_ids_impl(t))

    def _pending_ids_impl(self, t: float) -> np.ndarray:
        cut = int(np.searchsorted(self._sorted_starts, t, side="right"))
        return np.sort(self._ids_by_start[cut:])

    def insert(self, start: float, end: float, rcc_id: int) -> None:
        """O(n) insert: arrays are rebuilt around the new row."""
        self._starts = np.append(self._starts, float(start))
        self._ends = np.append(self._ends, float(end))
        self._ids = np.append(self._ids, int(rcc_id))
        self._build()

    def _structure_nbytes(self) -> int:
        return int(
            self._start_order.nbytes
            + self._end_order.nbytes
            + self._sorted_starts.nbytes
            + self._sorted_ends.nbytes
            + self._ids_by_start.nbytes
            + self._ids_by_end.nbytes
        )
