"""Logical-time index structures and Status Query processing (Section 4).

Public API::

    from repro.index import (
        AvlTree, IntervalTree, DualAvlIndex, IntervalTreeIndex,
        NaiveJoinIndex, SwlinTree, RccTypeTree,
        StatusQuery, StatusQueryEngine, StatStructure,
        ColumnarRccFrame, GroupCoding, EXECUTORS,
    )
"""

from repro.index.avl import AvlTree
from repro.index.avl_index import DualAvlIndex
from repro.index.base import LogicalTimeIndex
from repro.index.hierarchy import (
    RCC_TYPES,
    RccTypeTree,
    SwlinTree,
    format_swlin,
    normalize_swlin,
    swlin_prefix,
)
from repro.index.columnar import (
    ColumnarRccFrame,
    ColumnarSweepState,
    GroupCoding,
    fused_point_aggregates,
)
from repro.index.interval_index import IntervalTreeIndex, index_designs
from repro.index.interval_tree import IntervalTree
from repro.index.naive import NaiveJoinIndex
from repro.index.sorted_array import SortedArrayIndex
from repro.index.status_query import (
    AGGREGATE_COLUMNS,
    EXECUTORS,
    StatStructure,
    StatusQuery,
    StatusQueryEngine,
)

__all__ = [
    "AvlTree",
    "IntervalTree",
    "LogicalTimeIndex",
    "DualAvlIndex",
    "IntervalTreeIndex",
    "NaiveJoinIndex",
    "SortedArrayIndex",
    "index_designs",
    "SwlinTree",
    "RccTypeTree",
    "RCC_TYPES",
    "normalize_swlin",
    "format_swlin",
    "swlin_prefix",
    "StatusQuery",
    "StatusQueryEngine",
    "StatStructure",
    "AGGREGATE_COLUMNS",
    "EXECUTORS",
    "ColumnarRccFrame",
    "ColumnarSweepState",
    "GroupCoding",
    "fused_point_aggregates",
]
