"""Typed RCC event model for streaming ingestion.

The paper's premise is that delay estimates sharpen *as RCCs arrive*
during an availability; this module gives that arrival process a typed
vocabulary.  Four event kinds cover the RCC lifecycle observed in the
NMD extracts:

* ``rcc_created``   — a new Request for Contract Change is opened.
* ``rcc_settled``   — an open RCC settles (optionally revising the
  amount to the final settled figure).
* ``amount_revised`` — the estimated amount of an RCC changes without a
  settlement.
* ``avail_extended`` — an availability's planned end moves, which
  rescales the logical timeline of every RCC attached to it.

Events serialise to flat JSON dicts (one per WAL/JSONL line).  A
*stream file* is a JSONL file whose first line is a ``stream_header``
carrying the ship and avail dimension tables — plans exist before
execution starts, so they are snapshot context, not events — followed
by the time-ordered event lines.  :func:`dataset_to_events` /
:func:`dataset_from_stream` convert a static
:class:`~repro.data.schema.NavyMaintenanceDataset` to and from that
representation losslessly (round-trip pinned by
``tests/stream/test_events_roundtrip.py``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, fields
from pathlib import Path
from typing import TYPE_CHECKING, Any, ClassVar, Iterable

import numpy as np

from repro.data.dates import MISSING_DATE
from repro.errors import SchemaError
from repro.table.table import ColumnTable

if TYPE_CHECKING:  # pragma: no cover
    from repro.data.schema import NavyMaintenanceDataset

#: Stream-file format version (first-line header of ``--events-out``).
STREAM_FORMAT_VERSION = 1

#: Finite logical "never settled" sentinel for open RCCs — the logical
#: twin of the differential fuzzer's ``UNSETTLED``; deliberately not
#: ``inf`` (an infinite end poisons interval-tree bucket centers).
UNSETTLED_T = 1.0e9

#: Physical-date twin of :data:`UNSETTLED_T`: far-future ordinal used as
#: the working settle date of open RCCs (year ~9999).
OPEN_SETTLE_DAY = 3_650_000


@dataclass(frozen=True)
class RccCreated:
    """A new RCC opens against an avail (amount = current estimate)."""

    kind: ClassVar[str] = "rcc_created"
    rcc_id: int
    avail_id: int
    rcc_type: str
    swlin: str
    create_date: int
    amount: float = 0.0


@dataclass(frozen=True)
class RccSettled:
    """An open RCC settles; ``amount`` (if given) is the settled figure."""

    kind: ClassVar[str] = "rcc_settled"
    rcc_id: int
    settle_date: int
    amount: float | None = None


@dataclass(frozen=True)
class AmountRevised:
    """The estimated amount of an RCC changes pre-settlement."""

    kind: ClassVar[str] = "amount_revised"
    rcc_id: int
    amount: float


@dataclass(frozen=True)
class AvailExtended:
    """An avail's planned end moves (rescaling its logical timeline)."""

    kind: ClassVar[str] = "avail_extended"
    avail_id: int
    new_plan_end: int


Event = RccCreated | RccSettled | AmountRevised | AvailExtended

_EVENT_TYPES: dict[str, type] = {
    cls.kind: cls for cls in (RccCreated, RccSettled, AmountRevised, AvailExtended)
}

#: All event kinds, in lifecycle order.
EVENT_KINDS = tuple(_EVENT_TYPES)


def event_to_dict(event: Event) -> dict[str, Any]:
    """Serialise one event to its flat JSON dict."""
    out: dict[str, Any] = {"kind": event.kind}
    for field in fields(event):
        out[field.name] = getattr(event, field.name)
    return out


def event_from_dict(payload: dict[str, Any]) -> Event:
    """Parse and validate one event dict; raises SchemaError on junk."""
    if not isinstance(payload, dict):
        raise SchemaError(f"event must be an object, got {type(payload).__name__}")
    kind = payload.get("kind")
    cls = _EVENT_TYPES.get(kind)
    if cls is None:
        raise SchemaError(
            f"unknown event kind {kind!r}; expected one of {sorted(_EVENT_TYPES)}"
        )
    declared = {field.name for field in fields(cls)}
    extras = set(payload) - declared - {"kind"}
    if extras:
        raise SchemaError(f"{kind} event has unknown fields: {sorted(extras)}")
    kwargs: dict[str, Any] = {}
    for field in fields(cls):
        if field.name not in payload:
            # dataclass defaults cover the optional fields
            continue
        value = payload[field.name]
        kwargs[field.name] = value
    try:
        event = cls(**kwargs)
    except TypeError as exc:
        raise SchemaError(f"malformed {kind} event: {exc}") from None
    _validate_event(event)
    return event


def _validate_event(event: Event) -> None:
    for name, value in (
        (field.name, getattr(event, field.name)) for field in fields(event)
    ):
        if name in ("rcc_id", "avail_id", "create_date", "settle_date", "new_plan_end"):
            if isinstance(value, bool) or not isinstance(value, int):
                raise SchemaError(
                    f"{event.kind}.{name} must be an integer, got {value!r}"
                )
        elif name in ("rcc_type", "swlin"):
            if not isinstance(value, str) or not value:
                raise SchemaError(
                    f"{event.kind}.{name} must be a non-empty string, got {value!r}"
                )
        elif name == "amount":
            if value is None and isinstance(event, RccSettled):
                continue
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise SchemaError(
                    f"{event.kind}.amount must be a number, got {value!r}"
                )


# ----------------------------------------------------------------------
# table payloads (dtype-preserving JSON round trip)
# ----------------------------------------------------------------------
_DTYPE_CODES = {"i": "int64", "f": "float64", "O": "object"}


def table_to_payload(table: ColumnTable) -> dict[str, Any]:
    """Column-wise JSON payload with dtype tags for an exact round trip."""
    columns: dict[str, Any] = {}
    for name in table.column_names:
        array = np.asarray(table[name])
        code = _DTYPE_CODES.get(array.dtype.kind)
        if code is None:
            raise SchemaError(
                f"column {name!r} has unsupported dtype {array.dtype} for streaming"
            )
        columns[name] = {"dtype": code, "values": array.tolist()}
    # Column order is part of the schema; the JSON layer sorts keys.
    return {"columns": columns, "order": list(table.column_names)}


def table_from_payload(payload: dict[str, Any]) -> ColumnTable:
    """Rebuild a table from :func:`table_to_payload` output."""
    columns: dict[str, np.ndarray] = {}
    order = payload.get("order", list(payload["columns"]))
    for name in order:
        spec = payload["columns"][name]
        code = spec["dtype"]
        if code == "object":
            columns[name] = np.array(spec["values"], dtype=object)
        else:
            columns[name] = np.array(spec["values"], dtype=np.dtype(code))
    return ColumnTable(columns)


# ----------------------------------------------------------------------
# dataset <-> stream
# ----------------------------------------------------------------------
def dataset_to_events(
    dataset: "NavyMaintenanceDataset",
) -> tuple[dict[str, Any], list[Event]]:
    """Decompose a static snapshot into (stream header, ordered events).

    The header carries the ship and avail dimension tables (plans exist
    before execution, so they are context rather than events).  RCC rows
    become ``rcc_created`` events at their creation date and, for
    settled rows, ``rcc_settled`` events at their settle date, merged
    into one stream ordered by ``(date, kind, rcc_id)`` — creations sort
    before settlements on the same day so a zero-duration RCC is created
    before it settles.
    """
    header = {
        "kind": "stream_header",
        "version": STREAM_FORMAT_VERSION,
        "seed": dataset.seed,
        "scaling_factor": dataset.scaling_factor,
        "ships": table_to_payload(dataset.ships),
        "avails": table_to_payload(dataset.avails),
    }
    rccs = dataset.rccs
    keyed: list[tuple[int, int, int, Event]] = []
    for row in range(rccs.n_rows):
        rcc_id = int(rccs["rcc_id"][row])
        create_date = int(rccs["create_date"][row])
        keyed.append(
            (
                create_date,
                0,
                rcc_id,
                RccCreated(
                    rcc_id=rcc_id,
                    avail_id=int(rccs["avail_id"][row]),
                    rcc_type=str(rccs["rcc_type"][row]),
                    swlin=str(rccs["swlin"][row]),
                    create_date=create_date,
                    amount=float(rccs["amount"][row]),
                ),
            )
        )
        settle_date = int(rccs["settle_date"][row])
        if str(rccs["status"][row]) == "settled" and settle_date != MISSING_DATE:
            keyed.append(
                (
                    settle_date,
                    1,
                    rcc_id,
                    RccSettled(rcc_id=rcc_id, settle_date=settle_date),
                )
            )
    keyed.sort(key=lambda item: item[:3])
    return header, [event for *_, event in keyed]


def perturb_event_order(
    events: list[Event],
    *,
    seed: int,
    late_fraction: float = 0.25,
    max_displacement: int = 200,
) -> list[Event]:
    """Deterministically deliver a fraction of events *late*.

    Operational feeds are not time-ordered: a settle can arrive before
    its create, a create can straggle in hundreds of records after its
    emission time.  This helper models that by pushing a seeded random
    ``late_fraction`` of events up to ``max_displacement`` positions
    later in the delivery order (a stable sort keeps everything else in
    its original relative order).  The event *multiset* is untouched, so
    a full replay through the order-tolerant
    :class:`~repro.stream.store.StreamingRccStore` reconstructs the
    identical dataset — the property the ``late_arrival`` regime suite
    pins.
    """
    if not 0.0 <= late_fraction <= 1.0:
        raise SchemaError(
            f"late_fraction must be in [0, 1], got {late_fraction}"
        )
    if max_displacement < 1:
        raise SchemaError(
            f"max_displacement must be >= 1, got {max_displacement}"
        )
    if not events or late_fraction == 0.0:
        return list(events)
    rng = np.random.default_rng(seed)
    keys = np.arange(len(events), dtype=np.float64)
    late = rng.random(len(events)) < late_fraction
    if late.any():
        keys[late] += rng.integers(
            1, max_displacement + 1, int(late.sum())
        ).astype(np.float64)
    order = np.argsort(keys, kind="stable")
    return [events[index] for index in order]


def write_event_stream(
    dataset: "NavyMaintenanceDataset",
    path: str | Path,
    *,
    header: dict[str, Any] | None = None,
    events: list[Event] | None = None,
) -> int:
    """Write a dataset as a stream file; returns the event count.

    ``header``/``events`` override the default time-ordered
    decomposition — regime streams use this to export perturbed
    (out-of-order) delivery orders while keeping the header contract.
    """
    if header is None or events is None:
        default_header, default_events = dataset_to_events(dataset)
        header = default_header if header is None else header
        events = default_events if events is None else events
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        handle.write(json.dumps(header, sort_keys=True) + "\n")
        for event in events:
            handle.write(json.dumps(event_to_dict(event), sort_keys=True) + "\n")
    return len(events)


def read_event_stream(path: str | Path) -> tuple[dict[str, Any] | None, list[Event]]:
    """Read a stream file back into (header, events).

    The header line is optional (a bare JSONL event file parses too);
    events are validated through :func:`event_from_dict`.
    """
    header: dict[str, Any] | None = None
    events: list[Event] = []
    with Path(path).open("r", encoding="utf-8") as handle:
        for index, line in enumerate(handle):
            line = line.strip()
            if not line:
                continue
            payload = json.loads(line)
            if index == 0 and isinstance(payload, dict) and payload.get("kind") == "stream_header":
                version = payload.get("version")
                if version != STREAM_FORMAT_VERSION:
                    raise SchemaError(
                        f"stream format {version!r} unsupported "
                        f"(expected {STREAM_FORMAT_VERSION})"
                    )
                header = payload
                continue
            events.append(event_from_dict(payload))
    return header, events


def dataset_from_stream(
    header: dict[str, Any], events: Iterable[Event]
) -> "NavyMaintenanceDataset":
    """Replay a stream into a fresh dataset snapshot."""
    from repro.stream.store import StreamingRccStore

    store = StreamingRccStore.from_header(header)
    for event in events:
        store.apply(event)
    return store.dataset()
