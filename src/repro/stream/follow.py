"""Background WAL tailing for live serving (``repro serve --follow``).

:class:`WalFollower` polls a WAL file on a daemon thread and pushes
fresh records through a :class:`~repro.stream.ingest.StreamIngestor`.
All mutation — index maintenance *and* rebinding the service's estimator
to the refreshed dataset — happens under the write side of a
:class:`~repro.runtime.concurrency.ReadWriteGate`, while query workers
hold the read side, so a request never observes a half-applied batch.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Any, Callable

from repro.errors import ConfigurationError
from repro.stream.ingest import StreamIngestor
from repro.stream.wal import read_wal


class WalFollower(threading.Thread):
    """Daemon thread that tails a WAL into an ingestor.

    Parameters
    ----------
    ingestor:
        Target ingestor; its watermark decides where tailing starts.
    wal_path:
        WAL file to poll (may not exist yet — reads as empty).
    gate:
        Optional read/write gate; each batch is applied under
        ``gate.write()``.
    on_batch:
        Optional callback invoked *inside* the write section after each
        applied batch (the serve path uses it to rebind the service to
        the refreshed dataset).
    poll_interval:
        Seconds between WAL polls when no fresh records are found.
    """

    def __init__(
        self,
        ingestor: StreamIngestor,
        wal_path: str,
        gate: Any | None = None,
        on_batch: Callable[[StreamIngestor], None] | None = None,
        poll_interval: float = 0.2,
        batch_size: int = 256,
    ):
        if poll_interval <= 0:
            raise ConfigurationError(
                f"poll_interval must be positive, got {poll_interval}"
            )
        super().__init__(name="wal-follower", daemon=True)
        self.ingestor = ingestor
        self.wal_path = str(wal_path)
        self.gate = gate
        self.on_batch = on_batch
        self.poll_interval = float(poll_interval)
        self.batch_size = int(batch_size)
        self.batches_applied = 0
        self.errors = 0
        self.last_error: str | None = None
        self._stop_event = threading.Event()

    def _write_scope(self):
        if self.gate is None:
            return contextlib.nullcontext()
        return self.gate.write()

    def poll_once(self) -> int:
        """One poll cycle; returns the number of events applied."""
        result = read_wal(self.wal_path, after_seq=self.ingestor.watermark)
        # Noted *before* taking the write gate: a follower stalled
        # behind the gate still advances the pending-side freshness
        # gauge, which is how a stall surfaces as an SLO breach.
        self.ingestor.note_wal_end(
            result.last_seq,
            oldest_pending_at=(
                result.records[0].appended_at if result.records else None
            ),
        )
        if not result.records:
            return 0
        applied = 0
        for lo in range(0, len(result.records), self.batch_size):
            chunk = result.records[lo : lo + self.batch_size]
            with self._write_scope():
                summary = self.ingestor.apply_batch(chunk)
                if summary["applied"] and self.on_batch is not None:
                    self.on_batch(self.ingestor)
            if summary["applied"]:
                applied += summary["applied"]
                self.batches_applied += 1
        return applied

    def run(self) -> None:  # pragma: no cover - exercised via serve tests
        while not self._stop_event.is_set():
            try:
                applied = self.poll_once()
            except Exception as exc:
                # A torn WAL mid-write or transient IO error must not
                # kill the serving loop; record and retry next poll.
                self.errors += 1
                self.last_error = f"{type(exc).__name__}: {exc}"
                applied = 0
            if not applied:
                self._stop_event.wait(self.poll_interval)

    def stop(self, timeout: float | None = 5.0) -> None:
        """Signal the thread to exit and join it."""
        self._stop_event.set()
        if self.is_alive():
            self.join(timeout=timeout)
