"""Stream ingestion driver: WAL records → store + live indexes.

:class:`StreamIngestor` ties the subsystem together.  It owns one
:class:`~repro.stream.store.StreamingRccStore` (authoritative row state)
and one :class:`~repro.stream.mutable.MutableIndexAdapter` per requested
design, and advances them in lockstep batch by batch.

**Watermark semantics.**  The watermark is the highest WAL sequence
number whose effects are fully applied to store *and* every index; it
moves monotonically, once per applied batch.  Records at or below the
watermark are skipped idempotently (so replaying an overlapping WAL
range — the normal recovery path — is harmless), and a batch that jumps
the sequence raises rather than silently leaving a gap.  Queries answer
"as of watermark w": the adapters carry ``w`` so EXPLAIN plans and
service responses can stamp it.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Iterable, Sequence

import numpy as np

from repro.errors import ConfigurationError, StreamStateError
from repro.index.status_query import StatusQueryEngine
from repro.runtime.context import ExecutionContext
from repro.stream.mutable import _DESIGNS, MutableIndexAdapter
from repro.stream.store import StreamingRccStore
from repro.stream.wal import WalRecord, read_wal

#: Designs maintained when the caller does not choose.
DEFAULT_DESIGNS = ("avl",)

#: Histogram of event-appended→queryable latency (the freshness SLI).
FRESHNESS_HISTOGRAM = "freshness.event_to_queryable"


def _traceparent_runs(
    records: Sequence[WalRecord],
) -> list[tuple[str | None, int, int]]:
    """Consecutive records sharing one appender context → one link each.

    A follower batch may span several appended batches (each with its
    own ``tp``); grouping keeps every append trace reachable from the
    apply trace without emitting one link per record.
    """
    runs: list[tuple[str | None, int, int]] = []
    for record in records:
        if runs and runs[-1][0] == record.traceparent:
            runs[-1] = (record.traceparent, runs[-1][1], record.seq)
        else:
            runs.append((record.traceparent, record.seq, record.seq))
    return runs


class StreamIngestor:
    """Applies WAL batches to a store and its live index adapters."""

    def __init__(
        self,
        store: StreamingRccStore,
        designs: Sequence[str] = DEFAULT_DESIGNS,
        rebuild_threshold: int | None = None,
        context: ExecutionContext | None = None,
        watermark: int = 0,
        clock: Callable[[], float] = time.time,
    ):
        if not designs:
            raise ConfigurationError("ingestor needs at least one index design")
        unknown = sorted(set(designs) - set(_DESIGNS))
        if unknown:
            raise ConfigurationError(
                f"unknown index design(s) {unknown}; expected from {sorted(_DESIGNS)}"
            )
        self.store = store
        self.context = context if context is not None else ExecutionContext()
        self._clock = clock
        starts, ends, slots = store.logical_triples()
        self.adapters: dict[str, MutableIndexAdapter] = {
            design: MutableIndexAdapter(
                design, starts, ends, slots, rebuild_threshold=rebuild_threshold
            )
            for design in dict.fromkeys(designs)
        }
        self.watermark = int(watermark)
        self.applied_batches = 0
        self.applied_events = 0
        self.skipped_duplicates = 0
        self._wal_end_seq = self.watermark
        self._watermark_wall_time: float | None = None
        #: Append time of the oldest WAL record known but not yet applied
        #: — the anchor of ``freshness_lag_seconds``.  A stalled follower
        #: applies nothing (so the freshness *histogram* goes silent);
        #: this pending-side gauge is what keeps rising instead.
        self._oldest_pending_at: float | None = None
        for adapter in self.adapters.values():
            adapter.watermark = self.watermark or None

    # ------------------------------------------------------------------
    # batch application
    # ------------------------------------------------------------------
    def apply_batch(self, records: Sequence[WalRecord]) -> dict[str, Any]:
        """Apply one WAL batch; returns a small summary dict.

        Records with ``seq <= watermark`` are skipped (idempotent
        replay); the first fresh record must continue the sequence.

        Each batch with fresh records runs inside one ``ingest.apply``
        trace holding one ``ingest.apply_batch`` span — batch
        granularity deliberately, so tracing cost stays per-batch, not
        per-event.  The batch emits one ``wal_apply`` link per distinct
        appender context (``tp``), stitching apply back to append, and
        observes the freshness histogram for every applied record that
        carries an append timestamp.
        """
        fresh = [record for record in records if record.seq > self.watermark]
        self.skipped_duplicates += len(records) - len(fresh)
        if not fresh:
            return {
                "applied": 0,
                "skipped": len(records),
                "watermark": self.watermark,
            }
        hub = self.context.telemetry
        with hub.trace(
            "ingest.apply", first_seq=fresh[0].seq, batch=len(fresh)
        ):
            applied = self._apply_fresh(fresh)
        return {
            "applied": applied,
            "skipped": len(records) - applied,
            "watermark": self.watermark,
        }

    def _apply_fresh(self, fresh: Sequence[WalRecord]) -> int:
        """Apply pre-filtered fresh records; assumes a trace is open."""
        applied = 0
        # Consecutive inserts across records coalesce into one batched
        # index maintenance call; any update flushes first so its target
        # row is guaranteed present and ordering semantics are exactly
        # those of the per-event path.
        pending_inserts: list[tuple[int, float, float]] = []
        try:
            with self.context.span("ingest.apply_batch"):
                for record in fresh:
                    if record.seq != self.watermark + 1:
                        raise StreamStateError(
                            f"WAL gap: watermark is {self.watermark} but next "
                            f"record has seq {record.seq}"
                        )
                    result = self.store.apply(record.event)
                    pending_inserts.extend(result.inserts)
                    if result.updates:
                        self._flush_inserts(pending_inserts)
                        for slot, old_ts, _old_te, t_start, t_end in result.updates:
                            for adapter in self.adapters.values():
                                if t_start == old_ts:
                                    adapter.settle(slot, t_end)
                                else:
                                    adapter.update_interval(slot, t_start, t_end)
                    self.watermark = record.seq
                    applied += 1
        finally:
            # keep adapters consistent with the watermark even when a
            # later record raises (gap / corrupt event)
            self._flush_inserts(pending_inserts)
        if applied:
            now = self._clock()
            self.applied_batches += 1
            self.applied_events += applied
            self._watermark_wall_time = now
            self._wal_end_seq = max(self._wal_end_seq, self.watermark)
            if self.watermark >= self._wal_end_seq:
                self._oldest_pending_at = None
            for adapter in self.adapters.values():
                adapter.watermark = self.watermark
            self.context.counter("ingest.batches")
            self.context.counter("ingest.events", applied)
            self._note_applied(fresh[:applied], now)
        return applied

    def _note_applied(
        self, records: Sequence[WalRecord], now: float
    ) -> None:
        """Freshness observations + ``wal_apply`` links for one batch."""
        hub = self.context.telemetry
        for record in records:
            if record.appended_at is not None:
                hub.observe(
                    FRESHNESS_HISTOGRAM, max(now - record.appended_at, 0.0)
                )
        status = self.status()
        for traceparent, first_seq, last_seq in _traceparent_runs(records):
            hub.link(
                "wal_apply",
                traceparent,
                first_seq=first_seq,
                last_seq=last_seq,
                watermark=self.watermark,
                rebuilds=dict(status["rebuilds"]),
                staged=dict(status["staged"]),
            )

    def _flush_inserts(
        self, pending: list[tuple[int, float, float]]
    ) -> None:
        """Apply buffered inserts to every adapter in one batched call."""
        if not pending:
            return
        slots = np.array([slot for slot, _, _ in pending], dtype=np.int64)
        starts = np.array([ts for _, ts, _ in pending], dtype=np.float64)
        ends = np.array([te for _, _, te in pending], dtype=np.float64)
        for adapter in self.adapters.values():
            adapter.insert_batch(starts, ends, slots)
        pending.clear()

    def replay(self, wal_path: str, batch_size: int = 256) -> dict[str, Any]:
        """Replay a WAL tail (everything past the watermark) in batches."""
        if batch_size < 1:
            raise ConfigurationError(f"batch_size must be >= 1, got {batch_size}")
        result = read_wal(wal_path, after_seq=self.watermark)
        self.note_wal_end(
            result.last_seq,
            oldest_pending_at=(
                result.records[0].appended_at if result.records else None
            ),
        )
        applied = 0
        for lo in range(0, len(result.records), batch_size):
            summary = self.apply_batch(result.records[lo : lo + batch_size])
            applied += summary["applied"]
        return {
            "applied": applied,
            "watermark": self.watermark,
            "dropped_tail": result.dropped_tail,
        }

    def apply_events(self, events: Iterable[Any]) -> dict[str, Any]:
        """Apply raw events (no WAL) as one synthetic batch.

        Convenience for bootstrap/testing: fabricates consecutive seqs
        starting at ``watermark + 1``.
        """
        records = [
            WalRecord(seq=self.watermark + 1 + offset, event=event)
            for offset, event in enumerate(events)
        ]
        return self.apply_batch(records)

    def note_wal_end(
        self, seq: int, oldest_pending_at: float | None = None
    ) -> None:
        """Record the WAL's end seq (for lag reporting).

        ``oldest_pending_at`` is the append time of the oldest record
        past the watermark (when the caller read the WAL and knows it);
        it anchors ``freshness_lag_seconds``.  The follower notes it
        *before* blocking on the snapshot gate, so the pending-side
        freshness gauge keeps rising even while apply is stalled.
        """
        self._wal_end_seq = max(self._wal_end_seq, int(seq))
        if self._wal_end_seq <= self.watermark:
            self._oldest_pending_at = None
        elif oldest_pending_at is not None:
            if (
                self._oldest_pending_at is None
                or oldest_pending_at < self._oldest_pending_at
            ):
                self._oldest_pending_at = float(oldest_pending_at)

    # ------------------------------------------------------------------
    # consumption
    # ------------------------------------------------------------------
    def engine(
        self, design: str | None = None, context: ExecutionContext | None = None
    ) -> StatusQueryEngine:
        """A fresh StatusQueryEngine over the current state.

        Engines are cheap views — build a fresh one per query batch, as
        the engine caches group tables that would go stale under further
        ingestion.
        """
        if design is None:
            design = next(iter(self.adapters))
        adapter = self.adapters.get(design)
        if adapter is None:
            raise ConfigurationError(
                f"design {design!r} is not maintained; have {sorted(self.adapters)}"
            )
        return StatusQueryEngine(
            self.store.engine_table(),
            context=context if context is not None else self.context,
            index=adapter,
        )

    def dataset(self):
        """Current state as a static snapshot dataset."""
        return self.store.dataset()

    def status(self) -> dict[str, Any]:
        """Gauge snapshot for health/metrics expositions."""
        now = self._clock()
        lag = max(self._wal_end_seq - self.watermark, 0)
        age = (
            None
            if self._watermark_wall_time is None
            else max(now - self._watermark_wall_time, 0.0)
        )
        # Freshness lag: how long the oldest unapplied record has been
        # waiting.  0.0 when caught up; falls back to the watermark age
        # when behind but the pending append time is unknown (pre-`at`
        # WALs) — "time since we last made progress" is the best proxy.
        if lag == 0:
            freshness_lag = 0.0
        elif self._oldest_pending_at is not None:
            freshness_lag = max(now - self._oldest_pending_at, 0.0)
        else:
            freshness_lag = age if age is not None else 0.0
        return {
            "watermark_seq": self.watermark,
            "wal_end_seq": self._wal_end_seq,
            "lag_events": lag,
            "freshness_lag_seconds": freshness_lag,
            "watermark_age_seconds": age,
            "applied_batches": self.applied_batches,
            "applied_events": self.applied_events,
            "skipped_duplicates": self.skipped_duplicates,
            "store_duplicates": self.store.counts["duplicates"],
            "deferred_events": self.store.counts["deferred"],
            "orphans_pending": len(self.store.orphans),
            "n_rccs": self.store.n_rccs,
            "designs": sorted(self.adapters),
            "rebuilds": {
                design: adapter.rebuilds
                for design, adapter in self.adapters.items()
            },
            "staged": {
                design: adapter.staged_count
                for design, adapter in self.adapters.items()
            },
        }

    def gauges(self) -> dict[str, float]:
        """Numeric-only :meth:`status` view for the telemetry sampler.

        Drops the design list and the nested per-design maps (the
        sampler flattens one mapping level itself, but per-design series
        churn with schema changes), and omits ``watermark_age_seconds``
        while it is still ``None`` so the ``ingest.*`` series hold only
        real numbers.
        """
        status = self.status()
        return {
            key: float(value)
            for key, value in status.items()
            if isinstance(value, (int, float)) and not isinstance(value, bool)
        }
