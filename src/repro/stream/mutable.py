"""Incremental index maintenance over every backend: one interface.

:class:`MutableIndexAdapter` is itself a :class:`LogicalTimeIndex`, so
:class:`~repro.index.status_query.StatusQueryEngine` (and therefore the
planner, EXPLAIN and the service layer) consume a live-maintained index
through the exact interface they already speak — injected via the
engine's ``index=`` parameter, zero backend-specific code downstream.

Two maintenance strategies, selected per backend via the
``supports_incremental_ingest`` class flag:

* **incremental** (``avl``, ``sorted_array``): every mutation is applied
  in place through the backend's structure-only ``apply_insert`` /
  ``apply_update`` protocol — O(log n) tree rotations or one O(n)
  memmove splice, never a rebuild.
* **staged** (``naive``, ``interval``): mutations land in a delta buffer
  in front of an immutable inner index.  Queries answer from
  ``inner minus dirty rows`` plus a vectorised scan of the staged rows;
  once the buffer reaches ``rebuild_threshold`` rows the inner index is
  rebuilt from the authoritative triples in one shot, amortising the
  merge cost (the classic LSM/delta-main split).

The adapter owns the authoritative ``(t_start, t_end, id)`` triples in
growable buffers; inner backends are pure query structures whose base
arrays may go stale (documented in their ``apply_*`` sections).
Equivalence with build-from-scratch at every watermark is pinned by
``tests/stream/test_ingest_differential.py``.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ConfigurationError, StreamStateError
from repro.index.avl_index import DualAvlIndex
from repro.index.base import LogicalTimeIndex
from repro.index.interval_index import IntervalTreeIndex
from repro.index.naive import NaiveJoinIndex
from repro.index.sorted_array import SortedArrayIndex

#: Registry keyed the way the engine/CLI name designs (note
#: ``sorted_array`` here vs the class's ``name = "sorted"``).
_DESIGNS: dict[str, type[LogicalTimeIndex]] = {
    "naive": NaiveJoinIndex,
    "avl": DualAvlIndex,
    "interval": IntervalTreeIndex,
    "sorted_array": SortedArrayIndex,
}

_MIN_CAPACITY = 64


def default_rebuild_threshold(n_rows: int) -> int:
    """Delta-buffer size that triggers an inner rebuild: ``max(64, √n)``.

    √n balances the O(n) rebuild against per-query staged-scan cost —
    with a √n buffer the amortised per-event rebuild work is O(√n).
    """
    return max(_MIN_CAPACITY, int(math.isqrt(max(n_rows, 0))))


class MutableIndexAdapter(LogicalTimeIndex):
    """A live-maintainable view over any registered index design."""

    name = "mutable"

    def __init__(
        self,
        design: str,
        starts: np.ndarray,
        ends: np.ndarray,
        ids: np.ndarray,
        rebuild_threshold: int | None = None,
    ):
        if design not in _DESIGNS:
            raise ConfigurationError(
                f"unknown index design {design!r}; expected one of {sorted(_DESIGNS)}"
            )
        # Set before super().__init__ — _build() runs inside it.
        self.design = design
        self._inner_cls = _DESIGNS[design]
        self._rebuild_threshold = rebuild_threshold
        #: Watermark (WAL seq) this index reflects; stamped by the ingestor.
        self.watermark: int | None = None
        #: Inner rebuilds performed (staged strategy only).
        self.rebuilds = 0
        super().__init__(starts, ends, ids)

    # ------------------------------------------------------------------
    # storage: growable buffers the base-class views alias into
    # ------------------------------------------------------------------
    def _build(self) -> None:
        n = len(self._ids)
        capacity = max(_MIN_CAPACITY, 2 * n)
        self._n = n
        self._buf_starts = np.empty(capacity, dtype=np.float64)
        self._buf_ends = np.empty(capacity, dtype=np.float64)
        self._buf_ids = np.empty(capacity, dtype=np.int64)
        self._buf_starts[:n] = self._starts
        self._buf_ends[:n] = self._ends
        self._buf_ids[:n] = self._ids
        self._pos = {int(rcc_id): row for row, rcc_id in enumerate(self._ids)}
        self._incremental = self._inner_cls.supports_incremental_ingest
        if self._rebuild_threshold is None:
            self._rebuild_threshold = default_rebuild_threshold(n)
        # rows (buffer positions) staged since the last inner rebuild
        self._staged_rows: list[int] = []
        # ids whose inner entry is stale (staged inserts + mutated rows)
        self._dirty: set[int] = set()
        self._refresh_views()
        self._rebuild_inner()

    def _refresh_views(self) -> None:
        n = self._n
        self._starts = self._buf_starts[:n]
        self._ends = self._buf_ends[:n]
        self._ids = self._buf_ids[:n]

    def _grow(self) -> None:
        capacity = max(_MIN_CAPACITY, 2 * len(self._buf_ids))
        for attr in ("_buf_starts", "_buf_ends", "_buf_ids"):
            old = getattr(self, attr)
            fresh = np.empty(capacity, dtype=old.dtype)
            fresh[: self._n] = old[: self._n]
            setattr(self, attr, fresh)

    def _rebuild_inner(self) -> None:
        """Construct the inner backend from the authoritative triples."""
        self._inner: LogicalTimeIndex = self._inner_cls(
            self._buf_starts[: self._n].copy(),
            self._buf_ends[: self._n].copy(),
            self._buf_ids[: self._n].copy(),
        )
        self._staged_rows = []
        self._dirty = set()

    def triples(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Copies of the current authoritative ``(starts, ends, ids)``."""
        return (
            self._buf_starts[: self._n].copy(),
            self._buf_ends[: self._n].copy(),
            self._buf_ids[: self._n].copy(),
        )

    # ------------------------------------------------------------------
    # mutation surface (called by the ingestor)
    # ------------------------------------------------------------------
    def insert(self, t_start: float, t_end: float, rcc_id: int) -> None:
        """Add one interval (``t_end`` may be the UNSETTLED sentinel)."""
        t_start, t_end, rcc_id = float(t_start), float(t_end), int(rcc_id)
        if t_end < t_start:
            raise ConfigurationError(
                f"RCC {rcc_id} would settle before it is created "
                f"({t_end} < {t_start})"
            )
        if rcc_id in self._pos:
            raise StreamStateError(f"index already holds RCC id {rcc_id}")
        if self._n == len(self._buf_ids):
            self._grow()
        row = self._n
        self._buf_starts[row] = t_start
        self._buf_ends[row] = t_end
        self._buf_ids[row] = rcc_id
        self._n += 1
        self._pos[rcc_id] = row
        self._refresh_views()
        if self._incremental:
            self._inner.apply_insert(t_start, t_end, rcc_id)
        else:
            self._staged_rows.append(row)
            self._dirty.add(rcc_id)
            self._record_ingest("insert")
            self._maybe_rebuild()

    def insert_batch(
        self, starts: np.ndarray, ends: np.ndarray, rcc_ids: np.ndarray
    ) -> None:
        """Add many intervals in one pass (same semantics as ``insert``).

        The authoritative buffers grow once, then the inner structure is
        maintained by the cheapest route the backend offers: one merged
        splice for ``sorted_array`` (:meth:`apply_insert_batch`), per-row
        O(log n) tree inserts for ``avl``, and a single staged-buffer
        extension with *one* threshold check for the rebuild designs.
        Equivalence with the per-event path is pinned by the streaming
        differential suite.
        """
        starts = np.asarray(starts, dtype=np.float64)
        ends = np.asarray(ends, dtype=np.float64)
        rcc_ids = np.asarray(rcc_ids, dtype=np.int64)
        k = len(rcc_ids)
        if not (len(starts) == len(ends) == k):
            raise ConfigurationError(
                f"insert_batch lengths differ: {len(starts)}/{len(ends)}/{k}"
            )
        if k == 0:
            return
        bad = np.flatnonzero(ends < starts)
        if len(bad):
            row = int(bad[0])
            raise ConfigurationError(
                f"RCC {rcc_ids[row]} would settle before it is created "
                f"({ends[row]} < {starts[row]})"
            )
        unique_ids = set(int(i) for i in rcc_ids)
        if len(unique_ids) != k:
            raise StreamStateError("insert_batch has duplicate RCC ids")
        held = unique_ids & self._pos.keys()
        if held:
            raise StreamStateError(
                f"index already holds RCC id {min(held)}"
            )
        while self._n + k > len(self._buf_ids):
            self._grow()
        row0 = self._n
        self._buf_starts[row0 : row0 + k] = starts
        self._buf_ends[row0 : row0 + k] = ends
        self._buf_ids[row0 : row0 + k] = rcc_ids
        self._n += k
        for offset, rcc_id in enumerate(rcc_ids):
            self._pos[int(rcc_id)] = row0 + offset
        self._refresh_views()
        if self._incremental:
            batch_apply = getattr(self._inner, "apply_insert_batch", None)
            if batch_apply is not None:
                batch_apply(starts, ends, rcc_ids)
            else:
                for offset in range(k):
                    self._inner.apply_insert(
                        float(starts[offset]),
                        float(ends[offset]),
                        int(rcc_ids[offset]),
                    )
        else:
            self._staged_rows.extend(range(row0, row0 + k))
            self._dirty.update(unique_ids)
            self._record_ingest("insert", rows=k)
            self._maybe_rebuild()

    def settle(self, rcc_id: int, t_end: float) -> None:
        """Move one interval's end (typically sentinel → settled time)."""
        self._update(int(rcc_id), new_end=float(t_end))

    def update_interval(self, rcc_id: int, t_start: float, t_end: float) -> None:
        """Re-key one interval on both sides (avail_extended rescale)."""
        self._update(int(rcc_id), new_start=float(t_start), new_end=float(t_end))

    def _update(
        self,
        rcc_id: int,
        new_start: float | None = None,
        new_end: float | None = None,
    ) -> None:
        row = self._pos.get(rcc_id)
        if row is None:
            raise StreamStateError(f"index has no RCC id {rcc_id}")
        old_start = float(self._buf_starts[row])
        old_end = float(self._buf_ends[row])
        t_start = old_start if new_start is None else new_start
        t_end = old_end if new_end is None else new_end
        if t_end < t_start:
            raise ConfigurationError(
                f"RCC {rcc_id} would settle before it is created "
                f"({t_end} < {t_start})"
            )
        if t_start == old_start and t_end == old_end:
            return
        self._buf_starts[row] = t_start
        self._buf_ends[row] = t_end
        if self._incremental:
            self._inner.apply_update(rcc_id, old_start, old_end, t_start, t_end)
        else:
            if rcc_id not in self._dirty:
                self._staged_rows.append(row)
                self._dirty.add(rcc_id)
            self._record_ingest("settle" if t_start == old_start else "revise")
            self._maybe_rebuild()

    def _maybe_rebuild(self) -> None:
        if len(self._staged_rows) >= self._rebuild_threshold:
            self._rebuild_inner()
            self.rebuilds += 1
            self._record_ingest("rebuild", rows=self._n)

    # ------------------------------------------------------------------
    # retrieval: inner minus dirty, plus a vector scan of staged rows
    # ------------------------------------------------------------------
    def _merged(self, op: str, t: float) -> np.ndarray:
        if self._incremental or not self._staged_rows:
            return getattr(self._inner, f"_{op}_ids_impl")(t)
        base = getattr(self._inner, f"_{op}_ids_impl")(t)
        dirty = np.fromiter(self._dirty, dtype=np.int64, count=len(self._dirty))
        base = base[~np.isin(base, dirty)]
        rows = np.asarray(self._staged_rows, dtype=np.int64)
        starts = self._buf_starts[rows]
        ends = self._buf_ends[rows]
        if op == "settled":
            mask = ends <= t
        elif op == "created":
            mask = starts <= t
        elif op == "active":
            mask = (starts <= t) & (t < ends)
        else:  # pending
            mask = starts > t
        staged = self._buf_ids[rows[mask]]
        return np.sort(np.concatenate([base, staged]))

    def _settled_ids_impl(self, t: float) -> np.ndarray:
        return self._merged("settled", t)

    def _created_ids_impl(self, t: float) -> np.ndarray:
        return self._merged("created", t)

    def _active_ids_impl(self, t: float) -> np.ndarray:
        return self._merged("active", t)

    def _pending_ids_impl(self, t: float) -> np.ndarray:
        return self._merged("pending", t)

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    @property
    def staged_count(self) -> int:
        return len(self._staged_rows)

    @property
    def rebuild_threshold(self) -> int:
        return int(self._rebuild_threshold)

    def combined_ingest_stats(self) -> dict[str, dict[str, int]]:
        """Adapter + inner ingest counters, summed per operator."""
        merged = {
            op: dict(stats) for op, stats in self.ingest_stats.items()
        }
        for op, stats in self._inner.ingest_stats.items():
            for field, value in stats.items():
                merged[op][field] += value
        return merged

    def _structure_nbytes(self) -> int:
        staged = len(self._staged_rows) * 8 + len(self._dirty) * 8
        return int(self._inner.approx_nbytes()) + staged
