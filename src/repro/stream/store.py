"""Authoritative mutable RCC state for streaming ingestion.

:class:`StreamingRccStore` owns the row-level truth the indexes are a
view of: RCC attribute columns in *slot* order (insertion order — slot
``k`` is row ``k`` of every engine table and the id the logical-time
indexes store), plus a mutable copy of the avail table that supplies
each RCC's logical-time conversion.

``apply`` is **idempotent and order-tolerant**:

* a duplicate ``rcc_created`` (same id) is skipped and counted — replays
  of an already-applied WAL prefix are harmless;
* a ``rcc_settled`` / ``amount_revised`` arriving *before* its create
  (out-of-order feeds are a fact of operational systems) is buffered and
  applied the moment the create lands;
* an ``avail_extended`` rescales the logical times of every RCC of that
  avail and reports the per-slot updates so indexes can follow.

The returned :class:`ApplyResult` is the contract with
:class:`~repro.stream.ingest.StreamIngestor`: it lists exactly which
index mutations (inserts / interval updates) the event implies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.data.dates import MISSING_DATE, logical_time
from repro.data.schema import NavyMaintenanceDataset
from repro.errors import StreamStateError
from repro.stream.events import (
    AmountRevised,
    AvailExtended,
    Event,
    RccCreated,
    RccSettled,
    UNSETTLED_T,
    event_from_dict,
    event_to_dict,
    table_from_payload,
)
from repro.table.table import ColumnTable


@dataclass
class ApplyResult:
    """Index mutations implied by one applied event."""

    kind: str
    #: Event was a no-op repeat of already-applied state.
    duplicate: bool = False
    #: Event arrived before its RCC existed and was buffered.
    deferred: bool = False
    #: New rows: ``(slot, t_start, t_end)``.
    inserts: list[tuple[int, float, float]] = field(default_factory=list)
    #: Re-keyed rows: ``(slot, old_t_start, old_t_end, t_start, t_end)``.
    updates: list[tuple[int, float, float, float, float]] = field(default_factory=list)


class StreamingRccStore:
    """Mutable RCC/avail state replayed from an event stream."""

    def __init__(
        self,
        ships: ColumnTable,
        avails: ColumnTable,
        seed: int | None = None,
        scaling_factor: int = 1,
    ):
        self.ships = ships
        self.seed = seed
        self.scaling_factor = scaling_factor
        self._avails: dict[str, np.ndarray] = {
            name: np.array(avails[name], copy=True) for name in avails.column_names
        }
        self._avail_row = {
            int(avail_id): row
            for row, avail_id in enumerate(self._avails["avail_id"])
        }
        # RCC columns in slot (insertion) order.
        self._rcc_id: list[int] = []
        self._avail_id: list[int] = []
        self._rcc_type: list[str] = []
        self._swlin: list[str] = []
        self._create_date: list[int] = []
        self._settle_date: list[int] = []
        self._status: list[str] = []
        self._amount: list[float] = []
        self._t_start: list[float] = []
        self._t_end: list[float] = []
        self._slot_of: dict[int, int] = {}
        self._slots_by_avail: dict[int, list[int]] = {}
        # Out-of-order settles/revisions waiting for their create.
        self._orphans: dict[int, list[Event]] = {}
        self.counts: dict[str, int] = {
            "applied": 0,
            "duplicates": 0,
            "deferred": 0,
        }

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_dataset(cls, dataset: NavyMaintenanceDataset) -> "StreamingRccStore":
        """Bootstrap from a static snapshot (its RCC rows become slots)."""
        store = cls(
            ships=dataset.ships,
            avails=dataset.avails,
            seed=dataset.seed,
            scaling_factor=dataset.scaling_factor,
        )
        rccs = dataset.rccs
        for row in range(rccs.n_rows):
            store.apply(
                RccCreated(
                    rcc_id=int(rccs["rcc_id"][row]),
                    avail_id=int(rccs["avail_id"][row]),
                    rcc_type=str(rccs["rcc_type"][row]),
                    swlin=str(rccs["swlin"][row]),
                    create_date=int(rccs["create_date"][row]),
                    amount=float(rccs["amount"][row]),
                )
            )
            settle_date = int(rccs["settle_date"][row])
            if str(rccs["status"][row]) == "settled" and settle_date != MISSING_DATE:
                store.apply(
                    RccSettled(
                        rcc_id=int(rccs["rcc_id"][row]), settle_date=settle_date
                    )
                )
        # Bootstrap rows are baseline state, not stream traffic.
        store.counts = {"applied": 0, "duplicates": 0, "deferred": 0}
        return store

    @classmethod
    def from_header(cls, header: dict[str, Any]) -> "StreamingRccStore":
        """Bootstrap from a stream-file header (empty RCC state)."""
        return cls(
            ships=table_from_payload(header["ships"]),
            avails=table_from_payload(header["avails"]),
            seed=header.get("seed"),
            scaling_factor=int(header.get("scaling_factor", 1)),
        )

    # ------------------------------------------------------------------
    # logical-time conversion
    # ------------------------------------------------------------------
    def _avail_frame(self, avail_id: int) -> tuple[float, float]:
        row = self._avail_row.get(int(avail_id))
        if row is None:
            raise StreamStateError(f"event references unknown avail {avail_id}")
        act_start = float(self._avails["act_start"][row])
        planned = float(self._avails["planned_duration"][row])
        return act_start, planned

    def _logical(self, day: int, avail_id: int) -> float:
        act_start, planned = self._avail_frame(avail_id)
        return float(logical_time(float(day), act_start, planned))

    # ------------------------------------------------------------------
    # event application
    # ------------------------------------------------------------------
    def apply(self, event: Event | dict[str, Any]) -> ApplyResult:
        """Apply one event; returns the implied index mutations."""
        if isinstance(event, dict):
            event = event_from_dict(event)
        if isinstance(event, RccCreated):
            result = self._apply_created(event)
        elif isinstance(event, RccSettled):
            result = self._apply_settled(event)
        elif isinstance(event, AmountRevised):
            result = self._apply_amount(event)
        elif isinstance(event, AvailExtended):
            result = self._apply_extended(event)
        else:  # pragma: no cover - event_from_dict guards this
            raise StreamStateError(f"unhandled event type {type(event).__name__}")
        if result.deferred:
            self.counts["deferred"] += 1
        elif result.duplicate:
            self.counts["duplicates"] += 1
        else:
            self.counts["applied"] += 1
        return result

    def _apply_created(self, event: RccCreated) -> ApplyResult:
        if event.rcc_id in self._slot_of:
            return ApplyResult(kind=event.kind, duplicate=True)
        t_start = self._logical(event.create_date, event.avail_id)
        slot = len(self._rcc_id)
        self._rcc_id.append(int(event.rcc_id))
        self._avail_id.append(int(event.avail_id))
        self._rcc_type.append(str(event.rcc_type))
        self._swlin.append(str(event.swlin))
        self._create_date.append(int(event.create_date))
        self._settle_date.append(MISSING_DATE)
        self._status.append("open")
        self._amount.append(float(event.amount))
        self._t_start.append(t_start)
        self._t_end.append(UNSETTLED_T)
        self._slot_of[int(event.rcc_id)] = slot
        self._slots_by_avail.setdefault(int(event.avail_id), []).append(slot)
        result = ApplyResult(
            kind=event.kind, inserts=[(slot, t_start, UNSETTLED_T)]
        )
        # Drain anything that arrived before this create.
        for orphan in self._orphans.pop(int(event.rcc_id), []):
            replayed = self.apply(orphan)
            result.updates.extend(replayed.updates)
            # the drained event was already counted as deferred when it
            # first arrived; undo the fresh "applied" tick
            self.counts["applied"] -= 1
        return result

    def _apply_settled(self, event: RccSettled) -> ApplyResult:
        slot = self._slot_of.get(int(event.rcc_id))
        if slot is None:
            self._orphans.setdefault(int(event.rcc_id), []).append(event)
            return ApplyResult(kind=event.kind, deferred=True)
        if event.settle_date < self._create_date[slot]:
            raise StreamStateError(
                f"RCC {event.rcc_id} settles on day {event.settle_date}, before "
                f"its creation day {self._create_date[slot]}"
            )
        already = (
            self._status[slot] == "settled"
            and self._settle_date[slot] == event.settle_date
            and (event.amount is None or float(event.amount) == self._amount[slot])
        )
        if already:
            return ApplyResult(kind=event.kind, duplicate=True)
        old_t_end = self._t_end[slot]
        t_end = self._logical(event.settle_date, self._avail_id[slot])
        self._settle_date[slot] = int(event.settle_date)
        self._status[slot] = "settled"
        if event.amount is not None:
            self._amount[slot] = float(event.amount)
        self._t_end[slot] = t_end
        return ApplyResult(
            kind=event.kind,
            updates=[(slot, self._t_start[slot], old_t_end, self._t_start[slot], t_end)],
        )

    def _apply_amount(self, event: AmountRevised) -> ApplyResult:
        slot = self._slot_of.get(int(event.rcc_id))
        if slot is None:
            self._orphans.setdefault(int(event.rcc_id), []).append(event)
            return ApplyResult(kind=event.kind, deferred=True)
        if self._amount[slot] == float(event.amount):
            return ApplyResult(kind=event.kind, duplicate=True)
        self._amount[slot] = float(event.amount)
        # Amounts feed the engine table, not the logical-time index.
        return ApplyResult(kind=event.kind)

    def _apply_extended(self, event: AvailExtended) -> ApplyResult:
        row = self._avail_row.get(int(event.avail_id))
        if row is None:
            raise StreamStateError(
                f"avail_extended references unknown avail {event.avail_id}"
            )
        plan_start = int(self._avails["plan_start"][row])
        if event.new_plan_end <= plan_start:
            raise StreamStateError(
                f"avail {event.avail_id} cannot end its plan on day "
                f"{event.new_plan_end}, on or before plan start {plan_start}"
            )
        if int(self._avails["plan_end"][row]) == event.new_plan_end:
            return ApplyResult(kind=event.kind, duplicate=True)
        self._avails["plan_end"][row] = int(event.new_plan_end)
        self._avails["planned_duration"][row] = int(event.new_plan_end) - plan_start
        act_end = int(self._avails["act_end"][row])
        if act_end != MISSING_DATE:
            # Delay is duration overrun; a moved plan changes it.
            act_start = int(self._avails["act_start"][row])
            self._avails["delay"][row] = float(
                (act_end - act_start) - (int(event.new_plan_end) - plan_start)
            )
        result = ApplyResult(kind=event.kind)
        for slot in self._slots_by_avail.get(int(event.avail_id), []):
            old_t_start, old_t_end = self._t_start[slot], self._t_end[slot]
            t_start = self._logical(self._create_date[slot], event.avail_id)
            if self._status[slot] == "settled":
                t_end = self._logical(self._settle_date[slot], event.avail_id)
            else:
                t_end = UNSETTLED_T
            self._t_start[slot] = t_start
            self._t_end[slot] = t_end
            if t_start != old_t_start or t_end != old_t_end:
                result.updates.append((slot, old_t_start, old_t_end, t_start, t_end))
        return result

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    @property
    def n_rccs(self) -> int:
        return len(self._rcc_id)

    @property
    def orphans(self) -> dict[int, list[Event]]:
        """Buffered out-of-order events keyed by their missing RCC id."""
        return self._orphans

    def logical_triples(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Current ``(t_start, t_end, slot)`` arrays, slot order."""
        return (
            np.asarray(self._t_start, dtype=np.float64),
            np.asarray(self._t_end, dtype=np.float64),
            np.arange(self.n_rccs, dtype=np.int64),
        )

    def engine_table(self) -> ColumnTable:
        """Status-Query-ready RCC table in slot order.

        Row ``k`` is slot ``k``, so ids returned by a
        :class:`~repro.stream.mutable.MutableIndexAdapter` address this
        table directly.
        """
        return ColumnTable(
            {
                "rcc_type": np.array(self._rcc_type, dtype=object),
                "swlin": np.array(self._swlin, dtype=object),
                "t_start": np.asarray(self._t_start, dtype=np.float64),
                "t_end": np.asarray(self._t_end, dtype=np.float64),
                "amount": np.asarray(self._amount, dtype=np.float64),
                "avail_id": np.asarray(self._avail_id, dtype=np.int64),
            }
        )

    def rcc_table(self, order: str = "rcc_id") -> ColumnTable:
        """Canonical RCC table (``order="slot"`` keeps insertion order)."""
        if order not in ("rcc_id", "slot"):
            raise StreamStateError(f"unknown RCC table order {order!r}")
        columns = {
            "rcc_id": np.asarray(self._rcc_id, dtype=np.int64),
            "avail_id": np.asarray(self._avail_id, dtype=np.int64),
            "rcc_type": np.array(self._rcc_type, dtype=object),
            "swlin": np.array(self._swlin, dtype=object),
            "create_date": np.asarray(self._create_date, dtype=np.int64),
            "settle_date": np.asarray(self._settle_date, dtype=np.int64),
            "status": np.array(self._status, dtype=object),
            "amount": np.asarray(self._amount, dtype=np.float64),
        }
        if order == "rcc_id" and self.n_rccs:
            sort = np.argsort(columns["rcc_id"], kind="stable")
            columns = {name: values[sort] for name, values in columns.items()}
        return ColumnTable(columns)

    def avails_table(self) -> ColumnTable:
        return ColumnTable(
            {name: np.array(values, copy=True) for name, values in self._avails.items()}
        )

    def dataset(self) -> NavyMaintenanceDataset:
        """Current state as a static snapshot (RCCs in rcc_id order)."""
        return NavyMaintenanceDataset(
            ships=self.ships,
            avails=self.avails_table(),
            rccs=self.rcc_table(order="rcc_id"),
            seed=self.seed,
            scaling_factor=self.scaling_factor,
        )

    def orphans_payload(self) -> dict[str, list[dict[str, Any]]]:
        """JSON-ready orphan buffer (snapshot persistence)."""
        return {
            str(rcc_id): [event_to_dict(event) for event in events]
            for rcc_id, events in self._orphans.items()
        }

    def restore_orphans(self, payload: dict[str, list[dict[str, Any]]]) -> None:
        for rcc_id, events in payload.items():
            self._orphans[int(rcc_id)] = [
                event_from_dict(event) for event in events
            ]
