"""Durable append-only JSONL write-ahead log for RCC events.

Record format — one JSON object per line::

    {"seq": 17, "crc": 2996459622, "event": {"kind": "rcc_created", ...},
     "at": 1754650000.123456, "tp": "00-...-01"}

* ``seq`` is a strictly consecutive sequence number (the watermark
  currency of the whole streaming subsystem).
* ``crc`` is the CRC-32 of the canonical JSON encoding of ``event``
  (sorted keys, compact separators), so a bit-flipped or torn record is
  detected without trusting line boundaries.
* ``at`` (optional) is the append wall time — the anchor of the
  event-appended→queryable **freshness SLI** the ingestor observes when
  it applies the record.
* ``tp`` (optional) is the appender's serialised
  :class:`~repro.runtime.telemetry.tracecontext.TraceContext`
  (W3C-traceparent style), letting the follower's apply trace link back
  to the append trace across process boundaries.

``at``/``tp`` live *outside* the CRC'd event payload, so logs written
before this format read back unchanged and old readers skip the new
fields without tripping integrity checks.

**Durability contract.**  :meth:`WalWriter.append_batch` buffers then
``flush``\\ es every batch; an ``fsync`` is issued every
``fsync_batches`` batches (default: every batch) and on :meth:`close`.
A batch is *acknowledged* once its records are fsynced —
``WalAppendResult.synced`` says whether this call reached the platter.
Crash recovery may lose unsynced suffixes but never an acknowledged
batch (pinned by ``tests/stream/test_snapshot_restore.py``).

**Lenient replay.**  :func:`read_wal` follows the
``load_events_lenient`` pattern of the telemetry event log: it stops at
the first corrupt, out-of-sequence or torn record and reports how many
trailing lines were dropped.  Everything after the first bad record is
untrusted (a torn write ends the log), which is exactly the right
semantics for a crashed writer.  :class:`WalWriter` truncates such a
torn tail before appending, so the log never interleaves garbage with
fresh records.
"""

from __future__ import annotations

import json
import os
import time
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable, Sequence

from repro.errors import ConfigurationError, WalCorruptionError
from repro.stream.events import Event, event_to_dict


def canonical_event_json(event: dict[str, Any]) -> str:
    """The canonical encoding both writer and reader CRC over."""
    return json.dumps(event, sort_keys=True, separators=(",", ":"))


def event_crc(event: dict[str, Any]) -> int:
    return zlib.crc32(canonical_event_json(event).encode("utf-8"))


@dataclass(frozen=True)
class WalRecord:
    """One parsed, integrity-checked WAL record.

    ``appended_at``/``traceparent`` mirror the optional ``at``/``tp``
    record fields; fabricated records (``apply_events`` bootstrap paths)
    leave them ``None``.
    """

    seq: int
    event: dict[str, Any]
    appended_at: float | None = None
    traceparent: str | None = None


@dataclass(frozen=True)
class WalAppendResult:
    """Outcome of one :meth:`WalWriter.append_batch` call."""

    first_seq: int
    last_seq: int
    synced: bool


@dataclass
class WalReadResult:
    """Outcome of :func:`read_wal` (lenient, tail-truncating)."""

    records: list[WalRecord] = field(default_factory=list)
    last_seq: int = 0
    #: Count of trailing lines dropped at the first corrupt record.
    dropped_tail: int = 0
    #: Byte offset of the end of the last good record (writer truncation
    #: point when a torn tail is present).
    good_bytes: int = 0


def _parse_record(line: str, expected_seq: int | None) -> WalRecord:
    payload = json.loads(line)
    if not isinstance(payload, dict):
        raise WalCorruptionError("WAL record is not an object")
    try:
        seq = payload["seq"]
        crc = payload["crc"]
        event = payload["event"]
    except KeyError as exc:
        raise WalCorruptionError(f"WAL record missing field {exc.args[0]!r}") from None
    if not isinstance(seq, int) or isinstance(seq, bool) or seq < 1:
        raise WalCorruptionError(f"WAL seq must be a positive integer, got {seq!r}")
    if not isinstance(event, dict):
        raise WalCorruptionError("WAL event payload is not an object")
    if event_crc(event) != crc:
        raise WalCorruptionError(f"WAL record seq={seq} fails its CRC check")
    if expected_seq is not None and seq != expected_seq:
        raise WalCorruptionError(
            f"WAL sequence break: expected seq={expected_seq}, found {seq}"
        )
    appended_at = payload.get("at")
    if not isinstance(appended_at, (int, float)) or isinstance(appended_at, bool):
        appended_at = None
    traceparent = payload.get("tp")
    if not isinstance(traceparent, str):
        traceparent = None
    return WalRecord(
        seq=seq,
        event=event,
        appended_at=float(appended_at) if appended_at is not None else None,
        traceparent=traceparent,
    )


def read_wal(path: str | Path, after_seq: int = 0) -> WalReadResult:
    """Read a WAL leniently, returning records with ``seq > after_seq``.

    Stops at the first corrupt or out-of-sequence line; the remainder is
    counted as ``dropped_tail`` (a crashed writer's torn suffix), not
    raised — mirroring ``load_events_lenient``.  A missing file reads as
    an empty log.
    """
    path = Path(path)
    result = WalReadResult()
    if not path.exists():
        return result
    raw = path.read_bytes()
    offset = 0
    expected: int | None = None
    dropped = 0
    while offset < len(raw):
        newline = raw.find(b"\n", offset)
        torn = newline < 0
        end = len(raw) if torn else newline + 1
        line = raw[offset:end].strip()
        if not line:
            offset = end
            continue
        try:
            record = _parse_record(line.decode("utf-8"), expected)
        except (WalCorruptionError, json.JSONDecodeError, UnicodeDecodeError):
            # First bad record: everything from here on is untrusted.
            dropped = sum(
                1 for rest in raw[offset:].split(b"\n") if rest.strip()
            )
            break
        if torn:
            # A record without a trailing newline may still be mid-write.
            dropped = 1
            break
        expected = record.seq + 1
        result.last_seq = record.seq
        result.good_bytes = end
        if record.seq > after_seq:
            result.records.append(record)
        offset = end
    result.dropped_tail = dropped
    return result


class WalWriter:
    """Appending writer with crc-per-record and fsync batching.

    Parameters
    ----------
    path:
        WAL file; created (with parents) when missing.  An existing log
        is scanned to resume the sequence; a torn tail left by a crash
        is truncated before the first append.
    fsync_batches:
        Issue ``fsync`` every N batches.  1 (default) acknowledges every
        batch at the platter; larger values trade durability of the most
        recent N-1 batches for throughput.
    telemetry:
        Optional :class:`~repro.runtime.telemetry.hub.TelemetryHub`.
        When set, every record is stamped with the appender's trace
        context (``tp``) and each appended batch emits a ``wal_append``
        ``link`` event, making the append side of the causal chain
        reconstructable from the event log.
    clock:
        Wall-clock override for tests; stamps each record's append time
        (``at``), the anchor of the freshness SLI.
    """

    def __init__(
        self,
        path: str | Path,
        fsync_batches: int = 1,
        telemetry: Any | None = None,
        clock: Callable[[], float] = time.time,
    ):
        if fsync_batches < 1:
            raise ConfigurationError(
                f"fsync_batches must be >= 1, got {fsync_batches}"
            )
        self.path = Path(path)
        self.fsync_batches = fsync_batches
        self.telemetry = telemetry
        self._clock = clock
        self.path.parent.mkdir(parents=True, exist_ok=True)
        existing = read_wal(self.path)
        if existing.dropped_tail and self.path.exists():
            # Drop the torn tail so fresh records never follow garbage.
            with self.path.open("r+b") as handle:
                handle.truncate(existing.good_bytes)
        self._next_seq = existing.last_seq + 1
        self._handle = self.path.open("ab")
        self._unsynced_batches = 0
        self._closed = False

    @property
    def next_seq(self) -> int:
        return self._next_seq

    @property
    def last_seq(self) -> int:
        return self._next_seq - 1

    def append_batch(
        self, events: Sequence[Event] | Iterable[dict[str, Any]]
    ) -> WalAppendResult:
        """Append one batch of events; returns the assigned seq range.

        ``synced=True`` in the result means the batch (and everything
        before it) is fsynced — i.e. acknowledged durable.
        """
        if self._closed:
            raise ConfigurationError("WAL writer is closed")
        first_seq = self._next_seq
        appended_at = round(self._clock(), 6)
        traceparent = (
            self.telemetry.current_context().to_traceparent()
            if self.telemetry is not None
            else None
        )
        lines: list[bytes] = []
        for event in events:
            payload = event if isinstance(event, dict) else event_to_dict(event)
            record = {
                "seq": self._next_seq,
                "crc": event_crc(payload),
                "event": payload,
                "at": appended_at,
            }
            if traceparent is not None:
                record["tp"] = traceparent
            lines.append(
                (json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n").encode(
                    "utf-8"
                )
            )
            self._next_seq += 1
        if not lines:
            return WalAppendResult(first_seq, first_seq - 1, synced=False)
        self._handle.write(b"".join(lines))
        self._handle.flush()
        self._unsynced_batches += 1
        synced = False
        if self._unsynced_batches >= self.fsync_batches:
            self.sync()
            synced = True
        if self.telemetry is not None:
            self.telemetry.link(
                "wal_append",
                first_seq=first_seq,
                last_seq=self._next_seq - 1,
                wal=str(self.path),
                synced=synced,
            )
        return WalAppendResult(first_seq, self._next_seq - 1, synced=synced)

    def sync(self) -> None:
        """Force an fsync (acknowledging everything appended so far)."""
        if not self._closed:
            self._handle.flush()
            os.fsync(self._handle.fileno())
            self._unsynced_batches = 0

    def close(self) -> None:
        if not self._closed:
            self.sync()
            self._handle.close()
            self._closed = True

    def __enter__(self) -> "WalWriter":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
