"""Streaming ingestion subsystem: live RCC event streams.

Layers (each its own module, composable separately):

* :mod:`repro.stream.events` — typed event model + stream-file IO.
* :mod:`repro.stream.wal` — durable append-only JSONL WAL (crc per
  record, fsync batching, lenient torn-tail replay).
* :mod:`repro.stream.store` — authoritative mutable RCC/avail state.
* :mod:`repro.stream.mutable` — incremental index maintenance over all
  four backends behind the ``LogicalTimeIndex`` interface.
* :mod:`repro.stream.ingest` — the driver: WAL batches → store +
  indexes, watermark semantics.
* :mod:`repro.stream.follow` — background WAL tailing for live serving.

See ``docs/streaming.md`` for the end-to-end walkthrough.
"""

from repro.stream.events import (
    AmountRevised,
    AvailExtended,
    Event,
    EVENT_KINDS,
    RccCreated,
    RccSettled,
    STREAM_FORMAT_VERSION,
    UNSETTLED_T,
    dataset_from_stream,
    dataset_to_events,
    event_from_dict,
    event_to_dict,
    perturb_event_order,
    read_event_stream,
    write_event_stream,
)
from repro.stream.follow import WalFollower
from repro.stream.ingest import StreamIngestor
from repro.stream.mutable import MutableIndexAdapter, default_rebuild_threshold
from repro.stream.store import ApplyResult, StreamingRccStore
from repro.stream.wal import (
    WalAppendResult,
    WalReadResult,
    WalRecord,
    WalWriter,
    event_crc,
    read_wal,
)

__all__ = [
    "AmountRevised",
    "ApplyResult",
    "AvailExtended",
    "Event",
    "EVENT_KINDS",
    "MutableIndexAdapter",
    "RccCreated",
    "RccSettled",
    "STREAM_FORMAT_VERSION",
    "StreamIngestor",
    "StreamingRccStore",
    "UNSETTLED_T",
    "WalAppendResult",
    "WalFollower",
    "WalReadResult",
    "WalRecord",
    "WalWriter",
    "dataset_from_stream",
    "dataset_to_events",
    "default_rebuild_threshold",
    "event_crc",
    "event_from_dict",
    "event_to_dict",
    "perturb_event_order",
    "read_event_stream",
    "read_wal",
    "write_event_stream",
]
