"""Small-n evaluation utilities: repeated splits and paired comparison.

With only 187 closed avails, a single train/validation split carries
substantial verdict noise — the fusion stage of the paper's pipeline,
for example, flips between "none" and "average" across split seeds (see
EXPERIMENTS.md).  These helpers quantify that:

* :func:`repeated_split_scores` — re-run an evaluation function over many
  split seeds, collecting a score distribution per candidate.
* :func:`paired_comparison` — per-seed paired differences between two
  candidates with a sign-flip summary (how often does A beat B?).
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.data.schema import NavyMaintenanceDataset
from repro.data.splits import DataSplits, split_dataset
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class PairedComparison:
    """Outcome of a paired A-vs-B comparison over split seeds."""

    name_a: str
    name_b: str
    scores_a: np.ndarray
    scores_b: np.ndarray

    @property
    def mean_difference(self) -> float:
        """Mean (a - b); negative means A scores lower (better for MAE)."""
        return float(np.mean(self.scores_a - self.scores_b))

    @property
    def win_rate_a(self) -> float:
        """Fraction of seeds where A strictly beats B (lower score)."""
        return float(np.mean(self.scores_a < self.scores_b))

    def summary(self) -> str:
        return (
            f"{self.name_a} vs {self.name_b}: mean diff {self.mean_difference:+.2f}, "
            f"{self.name_a} wins on {self.win_rate_a:.0%} of "
            f"{len(self.scores_a)} splits"
        )


def repeated_split_scores(
    dataset: NavyMaintenanceDataset,
    evaluate: Callable[[DataSplits], dict[str, float]],
    seeds: Sequence[int] = tuple(range(5)),
) -> dict[str, np.ndarray]:
    """Evaluate candidates over several train/validation re-draws.

    Parameters
    ----------
    dataset:
        Source dataset; the chronological test carve-out is identical
        across seeds (only train/validation membership re-draws).
    evaluate:
        Callback receiving a :class:`DataSplits` and returning
        ``{candidate_name: score}``.
    seeds:
        Split seeds to sweep.

    Returns
    -------
    dict mapping candidate name -> array of per-seed scores.
    """
    if not seeds:
        raise ConfigurationError("need at least one split seed")
    collected: dict[str, list[float]] = {}
    expected_names: set[str] | None = None
    for seed in seeds:
        splits = split_dataset(dataset, seed=int(seed))
        scores = evaluate(splits)
        if expected_names is None:
            expected_names = set(scores)
        elif set(scores) != expected_names:
            raise ConfigurationError("evaluate() must return the same candidates each seed")
        for name, value in scores.items():
            collected.setdefault(name, []).append(float(value))
    return {name: np.array(values) for name, values in collected.items()}


def paired_comparison(
    scores: dict[str, np.ndarray], name_a: str, name_b: str
) -> PairedComparison:
    """Build a paired comparison from :func:`repeated_split_scores` output."""
    for name in (name_a, name_b):
        if name not in scores:
            raise ConfigurationError(f"candidate {name!r} not in scores")
    return PairedComparison(
        name_a=name_a,
        name_b=name_b,
        scores_a=scores[name_a],
        scores_b=scores[name_b],
    )
