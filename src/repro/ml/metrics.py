"""Evaluation metrics (paper Section 5.2.1 / Table 7).

Besides the standard MAE / MSE / RMSE / R^2, the paper reports
**percentile MAE**: "for 80% of avails, the MAE is 19.99 days" means the
MAE computed over the 80% of avails with the *smallest* absolute errors —
i.e. excluding the worst 20% tail.  :func:`mae_at_percentile` implements
exactly that trimmed metric.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


def _validate(y_true: np.ndarray, y_pred: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true, dtype=np.float64)
    y_pred = np.asarray(y_pred, dtype=np.float64)
    if y_true.shape != y_pred.shape:
        raise ConfigurationError(
            f"shape mismatch: y_true {y_true.shape} vs y_pred {y_pred.shape}"
        )
    if y_true.size == 0:
        raise ConfigurationError("metrics need at least one sample")
    return y_true, y_pred


def mae(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Mean absolute error."""
    y_true, y_pred = _validate(y_true, y_pred)
    return float(np.mean(np.abs(y_pred - y_true)))


def mse(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Mean squared error."""
    y_true, y_pred = _validate(y_true, y_pred)
    return float(np.mean((y_pred - y_true) ** 2))


def rmse(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Root mean squared error."""
    return float(np.sqrt(mse(y_true, y_pred)))


def r2(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Coefficient of determination.

    Returns 0.0 when the target is constant and predictions are exact;
    -inf-like large negatives are possible for terrible predictors, as
    with scikit-learn.
    """
    y_true, y_pred = _validate(y_true, y_pred)
    ss_res = float(np.sum((y_true - y_pred) ** 2))
    ss_tot = float(np.sum((y_true - y_true.mean()) ** 2))
    if ss_tot == 0.0:
        return 1.0 if ss_res == 0.0 else 0.0
    return 1.0 - ss_res / ss_tot


def mae_at_percentile(y_true: np.ndarray, y_pred: np.ndarray, percentile: float) -> float:
    """MAE over the ``percentile``% of samples with smallest |error|.

    ``percentile=100`` is the plain MAE; ``percentile=80`` drops the
    worst 20% of avails before averaging (the paper's "MAE 80th").
    """
    if not 0.0 < percentile <= 100.0:
        raise ConfigurationError(f"percentile must be in (0, 100], got {percentile}")
    y_true, y_pred = _validate(y_true, y_pred)
    errors = np.sort(np.abs(y_pred - y_true))
    keep = max(int(np.ceil(len(errors) * percentile / 100.0)), 1)
    return float(errors[:keep].mean())


def metric_suite(y_true: np.ndarray, y_pred: np.ndarray) -> dict[str, float]:
    """All Table 7 metrics in one dict."""
    return {
        "mae_80": mae_at_percentile(y_true, y_pred, 80.0),
        "mae_90": mae_at_percentile(y_true, y_pred, 90.0),
        "mae_100": mae(y_true, y_pred),
        "mse": mse(y_true, y_pred),
        "rmse": rmse(y_true, y_pred),
        "r2": r2(y_true, y_pred),
    }
