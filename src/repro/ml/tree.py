"""Second-order regression tree (the XGBoost-style base learner).

Exact greedy split finding over pre-sorted feature columns, driven by
per-sample gradients ``g`` and hessians ``h`` of an arbitrary
twice-differentiable loss:

* split gain  ``1/2 [ G_L^2/(H_L+lambda) + G_R^2/(H_R+lambda)
  - G^2/(H+lambda) ] - gamma``
* leaf weight ``-G/(H+lambda)``

The split search is vectorised **across all candidate features at once**
(one argsort + cumulative sums per node), which keeps pure-numpy training
fast on the paper's small-n / wide-p regime.

Besides prediction the tree supports gain-based feature importances and
Saabas-style per-sample feature contributions, which power the paper's
"top-5 contributing features per availability" interpretability output.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, NotFittedError


@dataclass
class _Node:
    """One tree node; leaves have ``feature == -1``."""

    value: float
    n_samples: int
    cover: float  # sum of hessians
    feature: int = -1
    threshold: float = 0.0
    gain: float = 0.0
    left: int = -1  # child indices into the node list
    right: int = -1

    @property
    def is_leaf(self) -> bool:
        return self.feature < 0


@dataclass(frozen=True)
class TreeParams:
    """Growth constraints and regularisation of a single tree."""

    max_depth: int = 3
    min_samples_leaf: int = 2
    min_child_weight: float = 1.0
    reg_lambda: float = 1.0
    gamma: float = 0.0

    def __post_init__(self) -> None:
        if self.max_depth < 1:
            raise ConfigurationError(f"max_depth must be >= 1, got {self.max_depth}")
        if self.min_samples_leaf < 1:
            raise ConfigurationError(
                f"min_samples_leaf must be >= 1, got {self.min_samples_leaf}"
            )
        if self.reg_lambda < 0 or self.gamma < 0:
            raise ConfigurationError("reg_lambda and gamma must be non-negative")


class RegressionTree:
    """A single gradient/hessian-fitted regression tree."""

    def __init__(self, params: TreeParams | None = None):
        self.params = params or TreeParams()
        self._nodes: list[_Node] = []
        self._n_features = 0

    @property
    def n_nodes(self) -> int:
        return len(self._nodes)

    @property
    def depth(self) -> int:
        """Realised depth of the fitted tree (root = depth 0)."""
        self._check_fitted()

        def walk(index: int) -> int:
            node = self._nodes[index]
            if node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        return walk(0)

    # ------------------------------------------------------------------
    # fitting
    # ------------------------------------------------------------------
    def fit(
        self,
        X: np.ndarray,
        gradients: np.ndarray,
        hessians: np.ndarray,
        feature_indices: np.ndarray | None = None,
    ) -> "RegressionTree":
        """Grow the tree on gradient/hessian targets.

        Parameters
        ----------
        X:
            Feature matrix (n_samples, n_features), float64.
        gradients, hessians:
            Per-sample first/second derivatives of the loss at the
            current ensemble prediction.
        feature_indices:
            Optional subset of columns eligible for splitting (column
            subsampling); thresholds still reference original indices.
        """
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ConfigurationError(f"X must be 2-D, got shape {X.shape}")
        gradients = np.asarray(gradients, dtype=np.float64)
        hessians = np.asarray(hessians, dtype=np.float64)
        if len(gradients) != len(X) or len(hessians) != len(X):
            raise ConfigurationError("X, gradients and hessians must align")
        self._n_features = X.shape[1]
        if feature_indices is None:
            feature_indices = np.arange(X.shape[1])
        else:
            feature_indices = np.asarray(feature_indices, dtype=np.int64)
        self._nodes = []
        rows = np.arange(len(X))
        self._grow(X, gradients, hessians, rows, feature_indices, depth=0)
        return self

    def _grow(
        self,
        X: np.ndarray,
        g: np.ndarray,
        h: np.ndarray,
        rows: np.ndarray,
        features: np.ndarray,
        depth: int,
    ) -> int:
        lam = self.params.reg_lambda
        g_sum = float(g[rows].sum())
        h_sum = float(h[rows].sum())
        value = -g_sum / (h_sum + lam)
        index = len(self._nodes)
        self._nodes.append(_Node(value=value, n_samples=len(rows), cover=h_sum))
        if depth >= self.params.max_depth or len(rows) < 2 * self.params.min_samples_leaf:
            return index
        best = self._best_split(X, g, h, rows, features, g_sum, h_sum)
        if best is None:
            return index
        feature, threshold, gain, left_rows, right_rows = best
        node = self._nodes[index]
        node.feature = int(feature)
        node.threshold = float(threshold)
        node.gain = float(gain)
        node.left = self._grow(X, g, h, left_rows, features, depth + 1)
        node.right = self._grow(X, g, h, right_rows, features, depth + 1)
        return index

    def _best_split(
        self,
        X: np.ndarray,
        g: np.ndarray,
        h: np.ndarray,
        rows: np.ndarray,
        features: np.ndarray,
        g_sum: float,
        h_sum: float,
    ) -> tuple[int, float, float, np.ndarray, np.ndarray] | None:
        """Vectorised best-split search across all candidate features."""
        lam = self.params.reg_lambda
        m = len(rows)
        Xn = X[np.ix_(rows, features)]
        order = np.argsort(Xn, axis=0, kind="stable")
        Xs = np.take_along_axis(Xn, order, axis=0)
        gs = g[rows][order]
        hs = h[rows][order]
        GL = np.cumsum(gs, axis=0)[:-1]
        HL = np.cumsum(hs, axis=0)[:-1]
        GR = g_sum - GL
        HR = h_sum - HL
        parent_score = g_sum**2 / (h_sum + lam)
        # With reg_lambda == 0, split positions whose child hessian sum is
        # zero divide 0/0; those positions are always masked out below
        # (min_child_weight), so silence the vectorised warning.
        with np.errstate(divide="ignore", invalid="ignore"):
            gains = (
                0.5 * (GL**2 / (HL + lam) + GR**2 / (HR + lam) - parent_score)
                - self.params.gamma
            )
        left_counts = np.arange(1, m)[:, None]
        valid = (
            (Xs[1:] > Xs[:-1])
            & (HL >= self.params.min_child_weight)
            & (HR >= self.params.min_child_weight)
            & (left_counts >= self.params.min_samples_leaf)
            & (m - left_counts >= self.params.min_samples_leaf)
        )
        gains = np.where(valid, gains, -np.inf)
        flat_best = int(np.argmax(gains))
        split_pos, feat_pos = np.unravel_index(flat_best, gains.shape)
        best_gain = gains[split_pos, feat_pos]
        if not np.isfinite(best_gain) or best_gain <= 0:
            return None
        feature = int(features[feat_pos])
        threshold = 0.5 * (Xs[split_pos, feat_pos] + Xs[split_pos + 1, feat_pos])
        column_order = order[:, feat_pos]
        left_rows = rows[column_order[: split_pos + 1]]
        right_rows = rows[column_order[split_pos + 1 :]]
        return feature, threshold, float(best_gain), left_rows, right_rows

    # ------------------------------------------------------------------
    # inference
    # ------------------------------------------------------------------
    def _check_fitted(self) -> None:
        if not self._nodes:
            raise NotFittedError("tree is not fitted")

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Leaf values for each row of ``X``."""
        self._check_fitted()
        X = np.asarray(X, dtype=np.float64)
        out = np.empty(len(X), dtype=np.float64)
        stack = [(0, np.arange(len(X)))]
        while stack:
            index, idx = stack.pop()
            if not len(idx):
                continue
            node = self._nodes[index]
            if node.is_leaf:
                out[idx] = node.value
                continue
            go_left = X[idx, node.feature] <= node.threshold
            stack.append((node.left, idx[go_left]))
            stack.append((node.right, idx[~go_left]))
        return out

    def contributions(self, X: np.ndarray) -> np.ndarray:
        """Saabas per-sample feature contributions, shape (n, p + 1).

        Column ``p`` holds the bias (root value); the sum over each row
        equals :meth:`predict` for that row.
        """
        self._check_fitted()
        X = np.asarray(X, dtype=np.float64)
        out = np.zeros((len(X), self._n_features + 1), dtype=np.float64)
        out[:, -1] = self._nodes[0].value
        stack = [(0, np.arange(len(X)))]
        while stack:
            index, idx = stack.pop()
            if not len(idx):
                continue
            node = self._nodes[index]
            if node.is_leaf:
                continue
            go_left = X[idx, node.feature] <= node.threshold
            for child_index, child_idx in (
                (node.left, idx[go_left]),
                (node.right, idx[~go_left]),
            ):
                child = self._nodes[child_index]
                out[child_idx, node.feature] += child.value - node.value
                stack.append((child_index, child_idx))
        return out

    def feature_gains(self) -> np.ndarray:
        """Total split gain accumulated per feature."""
        self._check_fitted()
        gains = np.zeros(self._n_features, dtype=np.float64)
        for node in self._nodes:
            if not node.is_leaf:
                gains[node.feature] += node.gain
        return gains

    def leaf_values(self) -> np.ndarray:
        """Values of all leaves (diagnostics / regularisation tests)."""
        self._check_fitted()
        return np.array([n.value for n in self._nodes if n.is_leaf])
