"""ML substrate: boosted trees, linear models, losses, metrics, tuning.

Public API::

    from repro.ml import (
        GradientBoostedTrees, GbmParams, RegressionTree, TreeParams,
        LinearRegression, ElasticNet,
        make_loss, LOSS_NAMES,
        mae, mse, rmse, r2, mae_at_percentile, metric_suite,
        TpeTuner, UniformParam, IntParam, ChoiceParam, default_gbm_space,
    )
"""

from repro.ml.gbm import GbmParams, GradientBoostedTrees
from repro.ml.linear import ElasticNet, LinearRegression
from repro.ml.losses import (
    LOSS_NAMES,
    AbsoluteLoss,
    HuberLoss,
    Loss,
    PinballLoss,
    PseudoHuberLoss,
    SquaredLoss,
    make_loss,
)
from repro.ml.metrics import mae, mae_at_percentile, metric_suite, mse, r2, rmse
from repro.ml.tree import RegressionTree, TreeParams
from repro.ml.validation import PairedComparison, paired_comparison, repeated_split_scores
from repro.ml.tuning import (
    ChoiceParam,
    IntParam,
    Param,
    TpeTuner,
    Trial,
    TuningResult,
    UniformParam,
    default_gbm_space,
)

__all__ = [
    "GradientBoostedTrees",
    "GbmParams",
    "RegressionTree",
    "TreeParams",
    "LinearRegression",
    "ElasticNet",
    "Loss",
    "SquaredLoss",
    "AbsoluteLoss",
    "HuberLoss",
    "PseudoHuberLoss",
    "PinballLoss",
    "make_loss",
    "LOSS_NAMES",
    "mae",
    "mse",
    "rmse",
    "r2",
    "mae_at_percentile",
    "metric_suite",
    "PairedComparison",
    "paired_comparison",
    "repeated_split_scores",
    "TpeTuner",
    "Trial",
    "TuningResult",
    "Param",
    "UniformParam",
    "IntParam",
    "ChoiceParam",
    "default_gbm_space",
]
