"""Training loss functions with first- and second-order derivatives.

Section 3.2.3 of the paper evaluates three losses for delay estimation —
l2 (squared), l1 (absolute) and (pseudo-)Huber — selecting pseudo-Huber
with delta = 18 for its robustness to the dataset's heavy delay outliers.

Each loss exposes ``gradient``/``hessian`` with respect to the prediction,
which is exactly what the second-order gradient-boosting machinery in
:mod:`repro.ml.gbm` consumes (XGBoost-style).  Hessians are floored at a
small positive value so leaf weights stay bounded for the l1 loss, whose
true second derivative is zero almost everywhere.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.errors import ConfigurationError

_MIN_HESSIAN = 1e-6


class Loss(abc.ABC):
    """A twice-differentiable pointwise training loss."""

    #: registry name, e.g. ``"l2"``.
    name: str = "abstract"

    @abc.abstractmethod
    def value(self, y_true: np.ndarray, y_pred: np.ndarray) -> np.ndarray:
        """Pointwise loss values."""

    @abc.abstractmethod
    def gradient(self, y_true: np.ndarray, y_pred: np.ndarray) -> np.ndarray:
        """d loss / d y_pred."""

    @abc.abstractmethod
    def hessian(self, y_true: np.ndarray, y_pred: np.ndarray) -> np.ndarray:
        """d^2 loss / d y_pred^2 (floored at a small positive value)."""

    def mean(self, y_true: np.ndarray, y_pred: np.ndarray) -> float:
        """Mean loss over a batch."""
        return float(np.mean(self.value(y_true, y_pred)))

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class SquaredLoss(Loss):
    """l2 loss: ``(y - yhat)^2 / 2`` — sensitive to outliers."""

    name = "l2"

    def value(self, y_true: np.ndarray, y_pred: np.ndarray) -> np.ndarray:
        return 0.5 * (y_pred - y_true) ** 2

    def gradient(self, y_true: np.ndarray, y_pred: np.ndarray) -> np.ndarray:
        return y_pred - y_true

    def hessian(self, y_true: np.ndarray, y_pred: np.ndarray) -> np.ndarray:
        return np.ones_like(y_pred)


class AbsoluteLoss(Loss):
    """l1 loss: ``|y - yhat|`` — robust, constant gradient magnitude."""

    name = "l1"

    def value(self, y_true: np.ndarray, y_pred: np.ndarray) -> np.ndarray:
        return np.abs(y_pred - y_true)

    def gradient(self, y_true: np.ndarray, y_pred: np.ndarray) -> np.ndarray:
        return np.sign(y_pred - y_true)

    def hessian(self, y_true: np.ndarray, y_pred: np.ndarray) -> np.ndarray:
        # True hessian is zero a.e.; a constant surrogate keeps Newton
        # steps well-defined (standard practice for l1 boosting).
        return np.ones_like(y_pred)


class HuberLoss(Loss):
    """Classic Huber loss: quadratic within ``delta``, linear outside."""

    name = "huber"

    def __init__(self, delta: float = 18.0):
        if delta <= 0:
            raise ConfigurationError(f"huber delta must be positive, got {delta}")
        self.delta = float(delta)

    def value(self, y_true: np.ndarray, y_pred: np.ndarray) -> np.ndarray:
        residual = y_pred - y_true
        abs_res = np.abs(residual)
        quad = 0.5 * residual**2
        lin = self.delta * (abs_res - 0.5 * self.delta)
        return np.where(abs_res <= self.delta, quad, lin)

    def gradient(self, y_true: np.ndarray, y_pred: np.ndarray) -> np.ndarray:
        residual = y_pred - y_true
        return np.clip(residual, -self.delta, self.delta)

    def hessian(self, y_true: np.ndarray, y_pred: np.ndarray) -> np.ndarray:
        residual = y_pred - y_true
        return np.where(np.abs(residual) <= self.delta, 1.0, _MIN_HESSIAN)

    def __repr__(self) -> str:
        return f"HuberLoss(delta={self.delta})"


class PseudoHuberLoss(Loss):
    """Smooth Huber approximation (the paper's winning loss, delta = 18).

    ``L(r) = delta^2 (sqrt(1 + (r/delta)^2) - 1)``; both derivatives are
    smooth, making it ideal for second-order boosting.
    """

    name = "pseudo_huber"

    def __init__(self, delta: float = 18.0):
        if delta <= 0:
            raise ConfigurationError(f"pseudo-huber delta must be positive, got {delta}")
        self.delta = float(delta)

    def value(self, y_true: np.ndarray, y_pred: np.ndarray) -> np.ndarray:
        scaled = (y_pred - y_true) / self.delta
        return self.delta**2 * (np.sqrt(1.0 + scaled**2) - 1.0)

    def gradient(self, y_true: np.ndarray, y_pred: np.ndarray) -> np.ndarray:
        residual = y_pred - y_true
        return residual / np.sqrt(1.0 + (residual / self.delta) ** 2)

    def hessian(self, y_true: np.ndarray, y_pred: np.ndarray) -> np.ndarray:
        scaled_sq = ((y_pred - y_true) / self.delta) ** 2
        return np.maximum((1.0 + scaled_sq) ** -1.5, _MIN_HESSIAN)

    def __repr__(self) -> str:
        return f"PseudoHuberLoss(delta={self.delta})"


class PinballLoss(Loss):
    """Quantile (pinball) loss — direct conditional-quantile estimation.

    Not part of the paper's Figure 6d sweep; provided so the GBM can
    estimate delay quantiles directly (a model-based alternative to the
    split-conformal intervals in :mod:`repro.core.conformal`).

    ``L(r) = q * max(y - yhat, 0) + (1 - q) * max(yhat - y, 0)``.
    """

    name = "pinball"

    def __init__(self, quantile: float = 0.5):
        if not 0.0 < quantile < 1.0:
            raise ConfigurationError(f"quantile must be in (0, 1), got {quantile}")
        self.quantile = float(quantile)

    def value(self, y_true: np.ndarray, y_pred: np.ndarray) -> np.ndarray:
        residual = y_true - y_pred
        return np.where(
            residual >= 0, self.quantile * residual, (self.quantile - 1.0) * residual
        )

    def gradient(self, y_true: np.ndarray, y_pred: np.ndarray) -> np.ndarray:
        # d/d yhat: -q when under-predicting, (1 - q) when over-predicting.
        return np.where(y_pred < y_true, -self.quantile, 1.0 - self.quantile)

    def hessian(self, y_true: np.ndarray, y_pred: np.ndarray) -> np.ndarray:
        # Zero a.e.; constant surrogate as for l1.
        return np.ones_like(y_pred)

    def __repr__(self) -> str:
        return f"PinballLoss(quantile={self.quantile})"


#: Loss names evaluated in the paper's Figure 6d sweep (pinball is an
#: extension and addressed explicitly).
LOSS_NAMES = ("l2", "l1", "huber", "pseudo_huber", "pinball")


def make_loss(name: str, delta: float = 18.0, quantile: float = 0.5) -> Loss:
    """Build a loss by registry name.

    ``delta`` only applies to the Huber family; ``quantile`` to pinball.
    """
    if name == "l2":
        return SquaredLoss()
    if name == "l1":
        return AbsoluteLoss()
    if name == "huber":
        return HuberLoss(delta)
    if name == "pseudo_huber":
        return PseudoHuberLoss(delta)
    if name == "pinball":
        return PinballLoss(quantile)
    raise ConfigurationError(f"unknown loss {name!r}; expected one of {LOSS_NAMES}")
