"""Gradient-boosted regression trees (the paper's XGBoost stand-in).

Second-order boosting: each round fits a :class:`RegressionTree` to the
gradient/hessian of the chosen loss at the current ensemble prediction,
with shrinkage, row subsampling and column subsampling.  Supports every
loss from :mod:`repro.ml.losses`, gain importances, staged prediction and
Saabas per-sample contribution attribution.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.errors import ConfigurationError, NotFittedError
from repro.ml.losses import Loss, make_loss
from repro.ml.tree import RegressionTree, TreeParams


@dataclass(frozen=True)
class GbmParams:
    """Hyperparameters of the boosted ensemble.

    These are the knobs the paper's AutoHPT module (Section 3.2.4)
    searches over.
    """

    n_estimators: int = 150
    learning_rate: float = 0.08
    max_depth: int = 3
    min_samples_leaf: int = 2
    min_child_weight: float = 1.0
    reg_lambda: float = 1.0
    gamma: float = 0.0
    subsample: float = 1.0
    colsample: float = 1.0
    loss: str = "l2"
    huber_delta: float = 18.0
    #: Target quantile when ``loss == "pinball"``.
    quantile: float = 0.5
    random_state: int = 0

    def __post_init__(self) -> None:
        if self.n_estimators < 1:
            raise ConfigurationError(f"n_estimators must be >= 1, got {self.n_estimators}")
        if not 0.0 < self.learning_rate <= 1.0:
            raise ConfigurationError(f"learning_rate must be in (0, 1], got {self.learning_rate}")
        if not 0.0 < self.subsample <= 1.0:
            raise ConfigurationError(f"subsample must be in (0, 1], got {self.subsample}")
        if not 0.0 < self.colsample <= 1.0:
            raise ConfigurationError(f"colsample must be in (0, 1], got {self.colsample}")

    def tree_params(self) -> TreeParams:
        return TreeParams(
            max_depth=self.max_depth,
            min_samples_leaf=self.min_samples_leaf,
            min_child_weight=self.min_child_weight,
            reg_lambda=self.reg_lambda,
            gamma=self.gamma,
        )


@dataclass
class GradientBoostedTrees:
    """Boosted tree regressor with pluggable robust losses.

    Examples
    --------
    >>> import numpy as np
    >>> X = np.random.default_rng(0).normal(size=(64, 4))
    >>> y = X[:, 0] * 3 + np.sin(X[:, 1])
    >>> model = GradientBoostedTrees(GbmParams(n_estimators=50)).fit(X, y)
    >>> float(np.mean(np.abs(model.predict(X) - y))) < 0.5
    True
    """

    params: GbmParams = field(default_factory=GbmParams)

    def __post_init__(self) -> None:
        self._trees: list[RegressionTree] = []
        self._base_score = 0.0
        self._loss: Loss = make_loss(
            self.params.loss, self.params.huber_delta, self.params.quantile
        )
        self._n_features = 0
        self.train_losses_: list[float] = []

    # ------------------------------------------------------------------
    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        eval_set: tuple[np.ndarray, np.ndarray] | None = None,
        early_stopping_rounds: int | None = None,
    ) -> "GradientBoostedTrees":
        """Fit the ensemble to targets ``y``.

        Parameters
        ----------
        X, y:
            Training data.
        eval_set:
            Optional ``(X_val, y_val)`` monitored every round; losses are
            recorded in ``eval_losses_``.
        early_stopping_rounds:
            Stop after this many rounds without improvement of the eval
            loss, then truncate the ensemble to the best round
            (requires ``eval_set``).  ``best_iteration_`` records the
            kept length.
        """
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if X.ndim != 2:
            raise ConfigurationError(f"X must be 2-D, got shape {X.shape}")
        if len(X) != len(y):
            raise ConfigurationError("X and y must have equal length")
        if len(X) == 0:
            raise ConfigurationError("cannot fit on an empty dataset")
        if early_stopping_rounds is not None:
            if eval_set is None:
                raise ConfigurationError("early stopping requires an eval_set")
            if early_stopping_rounds < 1:
                raise ConfigurationError("early_stopping_rounds must be >= 1")
        n, p = X.shape
        self._n_features = p
        rng = np.random.default_rng(self.params.random_state)
        # Robust base score: the median is the l1-optimal constant and a
        # good initialisation for every loss in the family.
        self._base_score = float(np.median(y))
        predictions = np.full(n, self._base_score)
        self._trees = []
        self.train_losses_ = []
        self.eval_losses_: list[float] = []
        self.best_iteration_: int | None = None
        if eval_set is not None:
            X_eval = np.asarray(eval_set[0], dtype=np.float64)
            y_eval = np.asarray(eval_set[1], dtype=np.float64)
            eval_predictions = np.full(len(X_eval), self._base_score)
            best_eval = float("inf")
            best_round = 0
        tree_params = self.params.tree_params()
        n_sub = max(int(round(self.params.subsample * n)), 2)
        n_cols = max(int(round(self.params.colsample * p)), 1)
        for _ in range(self.params.n_estimators):
            g = self._loss.gradient(y, predictions)
            h = self._loss.hessian(y, predictions)
            if self.params.subsample < 1.0:
                rows = rng.choice(n, size=n_sub, replace=False)
                mask = np.zeros(n, dtype=bool)
                mask[rows] = True
                g_fit = np.where(mask, g, 0.0)
                h_fit = np.where(mask, h, 0.0)
            else:
                g_fit, h_fit = g, h
            features = (
                np.sort(rng.choice(p, size=n_cols, replace=False))
                if self.params.colsample < 1.0
                else None
            )
            tree = RegressionTree(tree_params).fit(X, g_fit, h_fit, features)
            self._trees.append(tree)
            predictions = predictions + self.params.learning_rate * tree.predict(X)
            self.train_losses_.append(self._loss.mean(y, predictions))
            if eval_set is not None:
                eval_predictions = (
                    eval_predictions + self.params.learning_rate * tree.predict(X_eval)
                )
                eval_loss = self._loss.mean(y_eval, eval_predictions)
                self.eval_losses_.append(eval_loss)
                if eval_loss < best_eval - 1e-12:
                    best_eval = eval_loss
                    best_round = len(self._trees)
                elif (
                    early_stopping_rounds is not None
                    and len(self._trees) - best_round >= early_stopping_rounds
                ):
                    break
        if early_stopping_rounds is not None:
            self.best_iteration_ = best_round
            self._trees = self._trees[:best_round]
            self.train_losses_ = self.train_losses_[:best_round]
            self.eval_losses_ = self.eval_losses_[:best_round]
        return self

    # ------------------------------------------------------------------
    def _check_fitted(self) -> None:
        if not self._trees:
            raise NotFittedError("GradientBoostedTrees is not fitted")

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Ensemble prediction."""
        self._check_fitted()
        X = np.asarray(X, dtype=np.float64)
        out = np.full(len(X), self._base_score)
        for tree in self._trees:
            out += self.params.learning_rate * tree.predict(X)
        return out

    def staged_predict(self, X: np.ndarray, every: int = 10) -> list[np.ndarray]:
        """Predictions after every ``every`` boosting rounds."""
        self._check_fitted()
        X = np.asarray(X, dtype=np.float64)
        out = np.full(len(X), self._base_score)
        stages = []
        for i, tree in enumerate(self._trees, start=1):
            out = out + self.params.learning_rate * tree.predict(X)
            if i % every == 0 or i == len(self._trees):
                stages.append(out.copy())
        return stages

    def feature_importances(self) -> np.ndarray:
        """Normalised gain importances (sums to 1 when any split exists)."""
        self._check_fitted()
        gains = np.zeros(self._n_features)
        for tree in self._trees:
            gains += tree.feature_gains()
        total = gains.sum()
        return gains / total if total > 0 else gains

    def contributions(self, X: np.ndarray) -> np.ndarray:
        """Per-sample feature contributions, shape (n, p + 1).

        ``contributions(X).sum(axis=1) == predict(X)``; the last column
        is the bias.  Used for the paper's top-5 per-avail explanation.
        """
        self._check_fitted()
        X = np.asarray(X, dtype=np.float64)
        out = np.zeros((len(X), self._n_features + 1))
        out[:, -1] = self._base_score
        lr = self.params.learning_rate
        for tree in self._trees:
            out += lr * tree.contributions(X)
        return out

    def clone(self, **overrides) -> "GradientBoostedTrees":
        """Fresh unfitted copy, optionally overriding hyperparameters."""
        return GradientBoostedTrees(replace(self.params, **overrides))
