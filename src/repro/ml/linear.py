"""Linear models: ordinary least squares and Elastic-Net.

The paper's "simpler model family" baseline is linear regression tuned
with Elastic-Net regularisation (both l1 and l2 penalties).  The
Elastic-Net is solved by cyclic coordinate descent with soft
thresholding on standardised features — the same algorithm as
scikit-learn's — minimising::

    1/(2n) ||y - Xw - b||^2 + alpha * (l1_ratio ||w||_1
                                       + (1 - l1_ratio)/2 ||w||_2^2)
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError, NotFittedError


@dataclass
class LinearRegression:
    """Unregularised least squares via ``numpy.linalg.lstsq``."""

    fit_intercept: bool = True

    def __post_init__(self) -> None:
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LinearRegression":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if len(X) != len(y):
            raise ConfigurationError("X and y must have equal length")
        if self.fit_intercept:
            design = np.hstack([X, np.ones((len(X), 1))])
        else:
            design = X
        solution, *_ = np.linalg.lstsq(design, y, rcond=None)
        if self.fit_intercept:
            self.coef_ = solution[:-1]
            self.intercept_ = float(solution[-1])
        else:
            self.coef_ = solution
            self.intercept_ = 0.0
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self.coef_ is None:
            raise NotFittedError("LinearRegression is not fitted")
        return np.asarray(X, dtype=np.float64) @ self.coef_ + self.intercept_


def _soft_threshold(value: float, threshold: float) -> float:
    if value > threshold:
        return value - threshold
    if value < -threshold:
        return value + threshold
    return 0.0


@dataclass
class ElasticNet:
    """Elastic-Net regression by cyclic coordinate descent.

    Parameters
    ----------
    alpha:
        Overall regularisation strength.
    l1_ratio:
        Mix between l1 (1.0 = lasso) and l2 (0.0 = ridge).
    max_iter, tol:
        Coordinate-descent stopping rule (max sweeps / max coefficient
        change).
    standardize:
        Internally z-score features (coefficients are reported on the
        original scale).
    """

    alpha: float = 1.0
    l1_ratio: float = 0.5
    max_iter: int = 500
    tol: float = 1e-6
    standardize: bool = True
    _fitted: bool = field(default=False, repr=False)

    def __post_init__(self) -> None:
        if self.alpha < 0:
            raise ConfigurationError(f"alpha must be non-negative, got {self.alpha}")
        if not 0.0 <= self.l1_ratio <= 1.0:
            raise ConfigurationError(f"l1_ratio must be in [0, 1], got {self.l1_ratio}")
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0
        self.n_iter_: int = 0

    def fit(self, X: np.ndarray, y: np.ndarray) -> "ElasticNet":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if X.ndim != 2:
            raise ConfigurationError(f"X must be 2-D, got shape {X.shape}")
        if len(X) != len(y):
            raise ConfigurationError("X and y must have equal length")
        n, p = X.shape
        if self.standardize:
            mu = X.mean(axis=0)
            sigma = X.std(axis=0)
            sigma[sigma == 0] = 1.0
        else:
            mu = np.zeros(p)
            sigma = np.ones(p)
        Z = (X - mu) / sigma
        y_mean = float(y.mean())
        r = y - y_mean  # residual with all coefficients at zero
        w = np.zeros(p)
        l1_penalty = self.alpha * self.l1_ratio
        l2_penalty = self.alpha * (1.0 - self.l1_ratio)
        # Column squared norms / n (denominator of the update).
        col_sq = (Z**2).sum(axis=0) / n
        denom = col_sq + l2_penalty
        denom[denom == 0] = 1.0
        for sweep in range(self.max_iter):
            max_change = 0.0
            for j in range(p):
                if col_sq[j] == 0.0:
                    continue
                w_old = w[j]
                rho = (Z[:, j] @ r) / n + col_sq[j] * w_old
                w_new = _soft_threshold(rho, l1_penalty) / denom[j]
                if w_new != w_old:
                    r -= Z[:, j] * (w_new - w_old)
                    w[j] = w_new
                    max_change = max(max_change, abs(w_new - w_old))
            self.n_iter_ = sweep + 1
            if max_change <= self.tol:
                break
        # Map back to the original feature scale.
        self.coef_ = w / sigma
        self.intercept_ = y_mean - float(mu @ self.coef_)
        self._fitted = True
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if not self._fitted or self.coef_ is None:
            raise NotFittedError("ElasticNet is not fitted")
        return np.asarray(X, dtype=np.float64) @ self.coef_ + self.intercept_

    def n_nonzero(self) -> int:
        """Number of non-zero coefficients (sparsity diagnostic)."""
        if self.coef_ is None:
            raise NotFittedError("ElasticNet is not fitted")
        return int(np.count_nonzero(self.coef_))
