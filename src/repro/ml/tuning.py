"""AutoHPT: Tree-structured Parzen Estimator hyperparameter tuning.

Reimplements the TPE + SMBO combination the paper uses for its AutoHPT
module (Section 3.2.4, following Bergstra et al. 2011 and the
Optuna/hyperopt lineage):

1. Run ``n_startup`` random trials.
2. Split observed trials into *good* (best ``gamma`` fraction) and *bad*.
3. Per dimension, fit Parzen mixtures ``l(x)`` (good) and ``g(x)`` (bad).
4. Sample candidates from ``l`` and keep the one maximising
   ``log l(x) - log g(x)`` (equivalent to maximising expected
   improvement).
5. Evaluate, record, repeat — classic sequential model-based
   optimisation.

The tuner is minimisation-oriented (the paper's objective is validation
MAE) and fully deterministic given a seed.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.errors import ConfigurationError


class Param(abc.ABC):
    """A single tunable dimension."""

    @abc.abstractmethod
    def sample(self, rng: np.random.Generator) -> Any:
        """Draw from the prior."""

    @abc.abstractmethod
    def to_internal(self, value: Any) -> float:
        """Map a value to the continuous internal domain."""

    @abc.abstractmethod
    def from_internal(self, internal: float) -> Any:
        """Map back from the internal domain (with clipping/rounding)."""


@dataclass(frozen=True)
class UniformParam(Param):
    """Continuous uniform (optionally log-scaled) dimension."""

    low: float
    high: float
    log: bool = False

    def __post_init__(self) -> None:
        if self.high <= self.low:
            raise ConfigurationError(f"high must exceed low ({self.low}, {self.high})")
        if self.log and self.low <= 0:
            raise ConfigurationError("log-uniform requires a positive lower bound")

    def sample(self, rng: np.random.Generator) -> float:
        if self.log:
            return float(np.exp(rng.uniform(np.log(self.low), np.log(self.high))))
        return float(rng.uniform(self.low, self.high))

    def to_internal(self, value: float) -> float:
        return math.log(value) if self.log else float(value)

    def from_internal(self, internal: float) -> float:
        value = math.exp(internal) if self.log else internal
        return float(min(max(value, self.low), self.high))

    @property
    def internal_bounds(self) -> tuple[float, float]:
        if self.log:
            return math.log(self.low), math.log(self.high)
        return self.low, self.high


@dataclass(frozen=True)
class IntParam(Param):
    """Integer uniform dimension (inclusive bounds)."""

    low: int
    high: int

    def __post_init__(self) -> None:
        if self.high < self.low:
            raise ConfigurationError(f"high must be >= low ({self.low}, {self.high})")

    def sample(self, rng: np.random.Generator) -> int:
        return int(rng.integers(self.low, self.high + 1))

    def to_internal(self, value: int) -> float:
        return float(value)

    def from_internal(self, internal: float) -> int:
        return int(min(max(round(internal), self.low), self.high))

    @property
    def internal_bounds(self) -> tuple[float, float]:
        return float(self.low), float(self.high)


@dataclass(frozen=True)
class ChoiceParam(Param):
    """Categorical dimension."""

    options: tuple

    def __post_init__(self) -> None:
        if not self.options:
            raise ConfigurationError("ChoiceParam needs at least one option")

    def sample(self, rng: np.random.Generator) -> Any:
        return self.options[int(rng.integers(0, len(self.options)))]

    def to_internal(self, value: Any) -> float:
        return float(self.options.index(value))

    def from_internal(self, internal: float) -> Any:
        index = int(min(max(round(internal), 0), len(self.options) - 1))
        return self.options[index]


@dataclass(frozen=True)
class Trial:
    """One objective evaluation."""

    number: int
    params: dict[str, Any]
    value: float


@dataclass
class TuningResult:
    """Outcome of a tuning run."""

    best_params: dict[str, Any]
    best_value: float
    trials: list[Trial] = field(default_factory=list)

    @property
    def n_trials(self) -> int:
        return len(self.trials)

    def history(self) -> np.ndarray:
        """Best-so-far value after each trial."""
        values = np.array([t.value for t in self.trials])
        return np.minimum.accumulate(values)


def _parzen_logpdf(x: float, centers: np.ndarray, bandwidth: float) -> float:
    """Log density of an equal-weight normal mixture."""
    if len(centers) == 0:
        return 0.0
    z = (x - centers) / bandwidth
    log_components = -0.5 * z**2 - math.log(bandwidth * math.sqrt(2 * math.pi))
    peak = float(np.max(log_components))
    return peak + math.log(float(np.mean(np.exp(log_components - peak))))


class TpeTuner:
    """Sequential model-based optimisation with per-dimension TPE.

    Parameters
    ----------
    space:
        Mapping of parameter name to :class:`Param`.
    n_startup:
        Random trials before the Parzen model activates.
    gamma:
        Fraction of trials treated as "good".
    n_candidates:
        Candidates drawn from ``l(x)`` per TPE suggestion.
    seed:
        RNG seed; the whole run is deterministic.
    """

    def __init__(
        self,
        space: dict[str, Param],
        n_startup: int = 8,
        gamma: float = 0.25,
        n_candidates: int = 24,
        seed: int = 0,
    ):
        if not space:
            raise ConfigurationError("search space is empty")
        if not 0.0 < gamma < 1.0:
            raise ConfigurationError(f"gamma must be in (0, 1), got {gamma}")
        self.space = dict(space)
        self.n_startup = max(int(n_startup), 1)
        self.gamma = gamma
        self.n_candidates = max(int(n_candidates), 2)
        self._rng = np.random.default_rng(seed)
        self.trials: list[Trial] = []

    # ------------------------------------------------------------------
    def optimize(
        self, objective: Callable[[dict[str, Any]], float], n_trials: int
    ) -> TuningResult:
        """Minimise ``objective`` over ``n_trials`` sequential trials."""
        if n_trials < 1:
            raise ConfigurationError(f"n_trials must be >= 1, got {n_trials}")
        for _ in range(n_trials):
            params = self.suggest()
            value = float(objective(params))
            if math.isnan(value):
                value = math.inf
            self.trials.append(Trial(len(self.trials), params, value))
        best = min(self.trials, key=lambda t: t.value)
        return TuningResult(best_params=dict(best.params), best_value=best.value, trials=list(self.trials))

    def suggest(self) -> dict[str, Any]:
        """Next parameter assignment (random during startup, then TPE)."""
        if len(self.trials) < self.n_startup:
            return {name: param.sample(self._rng) for name, param in self.space.items()}
        ordered = sorted(self.trials, key=lambda t: t.value)
        n_good = max(1, int(math.ceil(self.gamma * len(ordered))))
        good, bad = ordered[:n_good], ordered[n_good:]
        suggestion: dict[str, Any] = {}
        for name, param in self.space.items():
            if isinstance(param, ChoiceParam):
                suggestion[name] = self._suggest_choice(name, param, good, bad)
            else:
                suggestion[name] = self._suggest_numeric(name, param, good, bad)
        return suggestion

    # ------------------------------------------------------------------
    def _suggest_numeric(
        self,
        name: str,
        param: UniformParam | IntParam,
        good: list[Trial],
        bad: list[Trial],
    ) -> Any:
        low, high = param.internal_bounds
        width = high - low
        good_centers = np.array([param.to_internal(t.params[name]) for t in good])
        bad_centers = np.array([param.to_internal(t.params[name]) for t in bad])
        good_bw = max(width / math.sqrt(len(good_centers) + 1), 1e-9)
        bad_bw = max(width / math.sqrt(len(bad_centers) + 1), 1e-9)
        # Candidates: draws from l(x) plus a couple of uniform explorers.
        picks = good_centers[self._rng.integers(0, len(good_centers), self.n_candidates - 2)]
        candidates = picks + self._rng.normal(0.0, good_bw, self.n_candidates - 2)
        candidates = np.clip(candidates, low, high)
        candidates = np.append(candidates, self._rng.uniform(low, high, 2))
        best_score = -math.inf
        best_value: Any = param.from_internal(float(candidates[0]))
        for candidate in candidates:
            score = _parzen_logpdf(float(candidate), good_centers, good_bw) - _parzen_logpdf(
                float(candidate), bad_centers, bad_bw
            )
            if score > best_score:
                best_score = score
                best_value = param.from_internal(float(candidate))
        return best_value

    def _suggest_choice(
        self, name: str, param: ChoiceParam, good: list[Trial], bad: list[Trial]
    ) -> Any:
        k = len(param.options)
        good_counts = np.ones(k)
        bad_counts = np.ones(k)
        for trial in good:
            good_counts[param.options.index(trial.params[name])] += 1
        for trial in bad:
            bad_counts[param.options.index(trial.params[name])] += 1
        scores = np.log(good_counts / good_counts.sum()) - np.log(bad_counts / bad_counts.sum())
        # Sample proportionally to the good distribution, then pick the
        # best-scoring of a small candidate set (mirrors numeric TPE).
        probabilities = good_counts / good_counts.sum()
        candidate_idx = self._rng.choice(k, size=min(self.n_candidates, k), p=probabilities)
        best_index = int(candidate_idx[np.argmax(scores[candidate_idx])])
        return param.options[best_index]


def default_gbm_space() -> dict[str, Param]:
    """The GBM hyperparameter space searched by the paper's AutoHPT."""
    return {
        "n_estimators": IntParam(40, 250),
        "learning_rate": UniformParam(0.02, 0.3, log=True),
        "max_depth": IntParam(2, 6),
        "min_samples_leaf": IntParam(1, 8),
        "reg_lambda": UniformParam(0.1, 20.0, log=True),
        "subsample": UniformParam(0.6, 1.0),
        "colsample": UniformParam(0.5, 1.0),
    }
