"""Feature extraction: the transformation function T over RCCs.

For every logical timestamp ``t*`` the extractor produces a generated-
feature grid (default: the paper's grid of
:data:`~repro.features.registry.N_GENERATED_FEATURES` features; any
:class:`~repro.features.registry.FeatureGridSpec` is accepted) for every
avail.  Internally it drives the **incremental Status Query machinery**
of Section 4.3: a single
:class:`~repro.index.status_query.StatStructure` keyed by
``(avail, RCC type, SWLIN code)`` sweeps the logical timeline once, and
each timestamp's base accumulators are marginalised over the
type / SWLIN-scope axes and turned into the derived statistics.

This is exactly the pipeline layering the paper argues for: feature
engineering is "abstracted through a generic retrieval task (Status
Query)" and its cost is dominated by that retrieval, which incremental
computation makes linear in the number of RCC events.
"""

from __future__ import annotations

import numpy as np

from repro.data.schema import NavyMaintenanceDataset
from repro.errors import ConfigurationError
from repro.features.registry import (
    SPECIAL_FEATURES,
    FeatureGridSpec,
)
from repro.features.tensor import FeatureTensor
from repro.index.status_query import StatStructure
from repro.runtime import ExecutionContext, ensure_context

_TYPE_CODE = {"G": 0, "N": 1, "NG": 2}
_N_TYPES = 3
_RATE_FLOOR = 5.0  # logical-time floor for rate features (avoid blowups near 0)


def default_timeline(window_pct: float) -> np.ndarray:
    """Logical timestamps 0, x, 2x, ..., 100 for window width ``x``%."""
    if not 0 < window_pct <= 100:
        raise ConfigurationError(f"window width must be in (0, 100], got {window_pct}")
    n_steps = int(np.ceil(100.0 / window_pct))
    return np.round(np.linspace(0.0, 100.0, n_steps + 1), 6)


def _membership_matrices(grid: FeatureGridSpec) -> tuple[np.ndarray, np.ndarray]:
    """(type marginalisation, scope marginalisation) matrices."""
    type_m = np.zeros((len(grid.type_axis), _N_TYPES))
    for i, (_, members) in enumerate(grid.type_axis):
        for member in members:
            type_m[i, _TYPE_CODE[member]] = 1.0
    lo, _ = grid.digit_code_range
    scope_m = np.zeros((len(grid.swlin_axis), grid.n_digit_codes))
    for i, (_, codes) in enumerate(grid.swlin_axis):
        for code in codes:
            scope_m[i, code - lo] = 1.0
    return type_m, scope_m


def _safe_div(numerator: np.ndarray, denominator: np.ndarray) -> np.ndarray:
    out = np.zeros_like(numerator, dtype=np.float64)
    nz = denominator > 0
    out[nz] = numerator[nz] / denominator[nz]
    return out


class StatusFeatureExtractor:
    """Compute the feature tensor for a dataset over a logical timeline.

    Parameters
    ----------
    dataset:
        Source NMD snapshot.
    t_stars:
        Ascending logical timestamps (default: every 10% from 0 to 100).
    grid:
        Feature grid to generate (default: the paper's grid).

    Examples
    --------
    >>> from repro.data import generate_dataset, SyntheticNmdConfig
    >>> ds = generate_dataset(SyntheticNmdConfig(n_ships=5, n_closed_avails=8,
    ...                                          n_ongoing_avails=0,
    ...                                          target_n_rccs=400))
    >>> tensor = StatusFeatureExtractor(ds).extract()
    >>> tensor.n_features
    1460
    """

    def __init__(
        self,
        dataset: NavyMaintenanceDataset,
        t_stars: np.ndarray | None = None,
        grid: FeatureGridSpec | None = None,
        context: ExecutionContext | None = None,
    ):
        self.dataset = dataset
        self.context = ensure_context(context)
        self.t_stars = (
            np.asarray(t_stars, dtype=np.float64)
            if t_stars is not None
            else default_timeline(10.0)
        )
        if np.any(np.diff(self.t_stars) <= 0):
            raise ConfigurationError("t_stars must be strictly ascending")
        self.grid = grid or FeatureGridSpec.default()
        self.registry = self.grid.build_registry()
        self._names = self.grid.feature_names()

    def cache_key(self) -> tuple[str, str, str]:
        """Content key of the tensor this extractor would produce."""
        from repro.runtime.cache import fingerprint_of

        return (
            "feature_tensor",
            self.dataset.fingerprint(),
            fingerprint_of(self.grid.fingerprint(), self.t_stars),
        )

    # ------------------------------------------------------------------
    def _digit_codes(self, swlin_codes) -> np.ndarray:
        """Depth-dependent digit code of each SWLIN (offset to 0-based)."""
        lo, hi = self.grid.digit_code_range
        if self.grid.swlin_depth == 1:
            codes = np.array([int(code[0]) for code in swlin_codes], dtype=np.int64)
        else:
            codes = np.array(
                [int(code[0]) * 10 + int(code[1]) for code in swlin_codes],
                dtype=np.int64,
            )
        if len(codes) and (codes.min() < lo or codes.max() > hi):
            raise ConfigurationError("SWLIN code outside the grid's digit range")
        return codes - lo

    def extract(self) -> FeatureTensor:
        """Sweep the timeline once and return the full feature tensor.

        The result is memoised in the context's
        :class:`~repro.runtime.cache.ArtifactCache` under a content key
        (dataset fingerprint x grid x timeline): repeated extractions
        over an unchanged snapshot are free.
        """
        with self.context.span("extract"):
            return self.context.cache.get_or_build(self.cache_key(), self._extract)

    def _extract(self) -> FeatureTensor:
        avails = self.dataset.avails
        n_avails = avails.n_rows
        avail_ids = np.asarray(avails["avail_id"], dtype=np.int64)
        avail_pos = {int(a): i for i, a in enumerate(avail_ids)}

        rccs = self.dataset.rccs_with_logical_times()
        rcc_avail_rows = np.array(
            [avail_pos[int(a)] for a in rccs["avail_id"]], dtype=np.int64
        )
        type_codes = np.array([_TYPE_CODE[t] for t in rccs["rcc_type"]], dtype=np.int64)
        digit_codes = self._digit_codes(rccs["swlin"])
        n_codes = self.grid.n_digit_codes
        group_ids = (
            rcc_avail_rows * (_N_TYPES * n_codes) + type_codes * n_codes + digit_codes
        )
        n_groups = n_avails * _N_TYPES * n_codes

        stat = StatStructure(
            group_ids=group_ids,
            n_groups=n_groups,
            starts=np.asarray(rccs["t_start"], dtype=np.float64),
            ends=np.asarray(rccs["t_end"], dtype=np.float64),
            amounts=np.asarray(rccs["amount"], dtype=np.float64),
        )

        type_m, scope_m = _membership_matrices(self.grid)
        n_features = len(self.registry)
        out = np.zeros((n_avails, len(self.t_stars), n_features))
        previous: dict[str, np.ndarray] | None = None
        self.context.counter("feature.extractions")
        self.context.counter("feature.sweep_timestamps", len(self.t_stars))
        # The timeline sweep is the extractor's Status Query workload
        # (Section 4.3 incremental path); naming the span like the
        # engine's keeps request traces linkable down to this layer.
        with self.context.span("status_query.sweep.incremental"):
            for ti, t_star in enumerate(self.t_stars):
                stat.advance(float(t_star))
                base = self._marginalise(stat, n_avails, n_codes, type_m, scope_m)
                out[:, ti, :] = self._derive(base, previous, float(t_star))
                previous = base
        return FeatureTensor(
            values=out,
            avail_ids=avail_ids,
            t_stars=self.t_stars,
            feature_names=list(self._names),
        )

    # ------------------------------------------------------------------
    def _marginalise(
        self,
        stat: StatStructure,
        n_avails: int,
        n_codes: int,
        type_m: np.ndarray,
        scope_m: np.ndarray,
    ) -> dict[str, np.ndarray]:
        """Reduce per-(avail, type, code) accumulators to the grid axes.

        Output arrays have shape (n_avails, n_type_labels, n_scope_labels).
        """
        def reduce(accumulator: np.ndarray) -> np.ndarray:
            cube = accumulator.reshape(n_avails, _N_TYPES, n_codes).astype(np.float64)
            by_type = np.einsum("atd,xt->axd", cube, type_m)
            return np.einsum("axd,sd->axs", by_type, scope_m)

        return {
            "created_count": reduce(stat.created_count),
            "created_amount": reduce(stat.created_amount),
            "created_start_sum": reduce(stat.created_start_sum),
            "settled_count": reduce(stat.settled_count),
            "settled_amount": reduce(stat.settled_amount),
            "settled_duration": reduce(stat.settled_duration),
            "settled_start_sum": reduce(stat.settled_start_sum),
            # raw per-code created stats for the special features
            "_digit_created_count": stat.created_count.reshape(
                n_avails, _N_TYPES, n_codes
            ).sum(axis=1),
            "_digit_created_amount": stat.created_amount.reshape(
                n_avails, _N_TYPES, n_codes
            ).sum(axis=1),
        }

    def _derive(
        self,
        base: dict[str, np.ndarray],
        previous: dict[str, np.ndarray] | None,
        t_star: float,
    ) -> np.ndarray:
        """Turn base accumulators into the flat feature vector grid."""
        created_count = base["created_count"]
        created_amount = base["created_amount"]
        settled_count = base["settled_count"]
        settled_amount = base["settled_amount"]
        settled_duration = base["settled_duration"]
        active_count = created_count - settled_count
        active_amount = created_amount - settled_amount
        active_age_sum = t_star * active_count - (
            base["created_start_sum"] - base["settled_start_sum"]
        )
        rate_div = max(t_star, _RATE_FLOOR)
        if previous is None:
            prev_created_count = np.zeros_like(created_count)
            prev_created_amount = np.zeros_like(created_amount)
            prev_settled_count = np.zeros_like(settled_count)
            prev_settled_amount = np.zeros_like(settled_amount)
        else:
            prev_created_count = previous["created_count"]
            prev_created_amount = previous["created_amount"]
            prev_settled_count = previous["settled_count"]
            prev_settled_amount = previous["settled_amount"]
        prev_active_count = prev_created_count - prev_settled_count
        prev_active_amount = prev_created_amount - prev_settled_amount

        stats: dict[str, np.ndarray] = {
            "CNT_CREATED": created_count,
            "SUM_CREATED_AMT": created_amount,
            "AVG_CREATED_AMT": _safe_div(created_amount, created_count),
            "RATE_CREATED_CNT": created_count / rate_div,
            "RATE_CREATED_AMT": created_amount / rate_div,
            "DLT_CREATED_CNT": created_count - prev_created_count,
            "DLT_CREATED_AMT": created_amount - prev_created_amount,
            "CNT_SETTLED": settled_count,
            "SUM_SETTLED_AMT": settled_amount,
            "AVG_SETTLED_AMT": _safe_div(settled_amount, settled_count),
            "SUM_SETTLED_DUR": settled_duration,
            "AVG_SETTLED_DUR": _safe_div(settled_duration, settled_count),
            "RATE_SETTLED_CNT": settled_count / rate_div,
            "RATE_SETTLED_AMT": settled_amount / rate_div,
            "DLT_SETTLED_CNT": settled_count - prev_settled_count,
            "DLT_SETTLED_AMT": settled_amount - prev_settled_amount,
            "RATIO_SETTLED_CNT": _safe_div(settled_count, created_count),
            "RATIO_SETTLED_AMT": _safe_div(settled_amount, created_amount),
            "CNT_ACTIVE": active_count,
            "SUM_ACTIVE_AMT": active_amount,
            "AVG_ACTIVE_AMT": _safe_div(active_amount, active_count),
            "PCT_ACTIVE": _safe_div(active_count, created_count),
            "SUM_ACTIVE_AGE": active_age_sum,
            "AVG_ACTIVE_AGE": _safe_div(active_age_sum, active_count),
            "DLT_ACTIVE_CNT": active_count - prev_active_count,
            "DLT_ACTIVE_AMT": active_amount - prev_active_amount,
        }
        n_avails = created_count.shape[0]
        n_grid = len(self.grid.type_axis) * len(self.grid.swlin_axis) * len(self.grid.stats)
        n_total = n_grid + (len(SPECIAL_FEATURES) if self.grid.include_specials else 0)
        flat = np.empty((n_avails, n_total))
        # Grid block: (type, scope, stat) row-major — matches the registry.
        stacked = np.stack([stats[name] for name in self.grid.stats], axis=-1)
        flat[:, :n_grid] = stacked.reshape(n_avails, n_grid)
        if self.grid.include_specials:
            digit_counts = base["_digit_created_count"]
            digit_amounts = base["_digit_created_amount"]
            total_amount = digit_amounts.sum(axis=1)
            shares = digit_amounts / np.maximum(total_amount[:, None], 1e-12)
            flat[:, n_grid + 0] = t_star
            flat[:, n_grid + 1] = np.log1p(total_amount)
            flat[:, n_grid + 2] = (digit_counts > 0).sum(axis=1)
            flat[:, n_grid + 3] = (shares**2).sum(axis=1)
        return flat
