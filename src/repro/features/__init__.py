"""Feature engineering & selection (paper Section 3.1 / Task 2).

Public API::

    from repro.features import (
        StatusFeatureExtractor, FeatureTensor, default_timeline,
        static_feature_matrix, STATIC_FEATURES,
        select_features, FEATURE_SELECTION_METHODS,
        build_registry, feature_names, N_GENERATED_FEATURES,
    )
"""

from repro.data.schema import STATIC_FEATURES
from repro.features.registry import (
    N_GENERATED_FEATURES,
    N_GRID_FEATURES,
    SPECIAL_FEATURES,
    STAT_AXIS,
    SWLIN_AXIS,
    TYPE_AXIS,
    FeatureGridSpec,
    FeatureSpec,
    STAT_LOOKUP,
    build_registry,
    feature_names,
    grid_feature_name,
)
from repro.features.selection import (
    FEATURE_SELECTION_METHODS,
    mutual_info_scores,
    pearson_scores,
    random_scores,
    rfe_ranking,
    rfe_select,
    score_ranking,
    select_features,
    spearman_scores,
)
from repro.features.static import (
    encode_categorical,
    static_feature_matrix,
    static_features_for,
    static_vocab,
)
from repro.features.tensor import FeatureTensor
from repro.features.transform import StatusFeatureExtractor, default_timeline

__all__ = [
    "StatusFeatureExtractor",
    "FeatureTensor",
    "default_timeline",
    "static_feature_matrix",
    "static_features_for",
    "static_vocab",
    "encode_categorical",
    "STATIC_FEATURES",
    "select_features",
    "FEATURE_SELECTION_METHODS",
    "pearson_scores",
    "spearman_scores",
    "mutual_info_scores",
    "random_scores",
    "rfe_select",
    "rfe_ranking",
    "score_ranking",
    "build_registry",
    "feature_names",
    "grid_feature_name",
    "FeatureSpec",
    "FeatureGridSpec",
    "STAT_LOOKUP",
    "N_GENERATED_FEATURES",
    "N_GRID_FEATURES",
    "SPECIAL_FEATURES",
    "TYPE_AXIS",
    "SWLIN_AXIS",
    "STAT_AXIS",
]
