"""Static (time-invariant) feature extraction.

The paper uses 8 static features — ship class, RMC id, ship age, planned
duration, etc. — available before the avail begins; they power the
"base prediction" at logical time 0 and are always included in modeling
(feature selection only applies to generated features).
"""

from __future__ import annotations

import numpy as np

from repro.data.schema import NavyMaintenanceDataset, STATIC_FEATURES
from repro.table.table import ColumnTable


def encode_categorical(
    values: np.ndarray, mapping: dict[str, int] | None = None
) -> tuple[np.ndarray, dict[str, int]]:
    """Stable integer encoding of a string column.

    Without ``mapping`` the vocabulary is derived from ``values`` (sorted
    label order).  With ``mapping`` — the fit-time vocabulary carried by
    a model artefact — codes are looked up so that *any subset* of the
    fit dataset (e.g. one shard's ship slice) encodes identically to the
    full dataset; labels unseen at fit time collapse into one
    deterministic overflow bucket at ``len(mapping)``.
    """
    if mapping is None:
        labels = sorted(set(values))
        mapping = {label: i for i, label in enumerate(labels)}
    unknown = len(mapping)
    codes = np.array(
        [float(mapping.get(v, unknown)) for v in values], dtype=np.float64
    )
    return codes, mapping


def static_vocab(avails: ColumnTable) -> dict[str, dict[str, int]]:
    """The categorical vocabularies of a set of avails.

    This is what a model artefact persists so that feature re-extraction
    on a *slice* of the fit dataset stays bitwise-consistent with the
    monolith (the sharded fleet service depends on this).
    """
    _, class_map = encode_categorical(avails["ship_class"])
    _, type_map = encode_categorical(avails["avail_type"])
    return {"ship_class": class_map, "avail_type": type_map}


def static_feature_matrix(
    avails: ColumnTable,
    vocab: dict[str, dict[str, int]] | None = None,
) -> tuple[np.ndarray, list[str], np.ndarray]:
    """Static design matrix for a set of avails.

    Returns
    -------
    (X, names, avail_ids):
        ``X`` is (n_avails, 8) float64 in :data:`STATIC_FEATURES` order;
        categorical attributes are label-encoded (against ``vocab`` when
        given, else against the labels present in ``avails``).
    """
    vocab = vocab or {}
    class_codes, _ = encode_categorical(
        avails["ship_class"], vocab.get("ship_class")
    )
    type_codes, _ = encode_categorical(
        avails["avail_type"], vocab.get("avail_type")
    )
    columns = {
        "ship_class_code": class_codes,
        "rmc_id": np.asarray(avails["rmc_id"], dtype=np.float64),
        "ship_age": np.asarray(avails["ship_age"], dtype=np.float64),
        "planned_duration": np.asarray(avails["planned_duration"], dtype=np.float64),
        "n_prior_avails": np.asarray(avails["n_prior_avails"], dtype=np.float64),
        "avail_type_code": type_codes,
        "start_quarter": np.asarray(avails["start_quarter"], dtype=np.float64),
        "displacement": np.asarray(avails["displacement"], dtype=np.float64),
    }
    names = list(STATIC_FEATURES)
    X = np.column_stack([columns[name] for name in names])
    avail_ids = np.asarray(avails["avail_id"], dtype=np.int64)
    return X, names, avail_ids


def static_features_for(
    dataset: NavyMaintenanceDataset,
    vocab: dict[str, dict[str, int]] | None = None,
) -> tuple[np.ndarray, list[str], np.ndarray]:
    """Static design matrix for every avail in a dataset."""
    return static_feature_matrix(dataset.avails, vocab=vocab)
