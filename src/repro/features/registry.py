"""The generated-feature grid (transformation function T, Section 3.1).

Every RCC-dependent feature is one cell of a grid::

    (RCC type) x (SWLIN scope) x (status-specific statistic)

* **RCC types** — G, N, NG, plus the ALL marginal.
* **SWLIN scopes** — the nine leading subsystem digits 1..9, four
  super-groups of related subsystems (platform / combat / auxiliary /
  support), plus the ALL marginal.
* **statistics** — counts, sums, averages, rates, deltas and ratios of
  settled amount / duration / activity, each computed over one of the
  three status sets (created / settled / active) at logical time ``t*``.

Feature names follow the paper's convention, e.g. ``G1-AVG_SETTLED_AMT``
is the average settled amount of Growth RCCs under SWLIN subsystem 1.
The default grid yields :data:`N_GENERATED_FEATURES` features —
matching the order of magnitude (and nearly the exact count) of the
paper's 1490 RCC-dependent features.
"""

from __future__ import annotations

from dataclasses import dataclass

#: RCC type axis (label, member types). "ALL" marginalises over types.
TYPE_AXIS: tuple[tuple[str, tuple[str, ...]], ...] = (
    ("G", ("G",)),
    ("N", ("N",)),
    ("NG", ("NG",)),
    ("ALL", ("G", "N", "NG")),
)

#: SWLIN scope axis (label, member leading digits).  Digits follow the
#: expanded ship work breakdown: 1xx structure, 2xx propulsion,
#: 3xx electric, 4xx command, 5xx auxiliary, 6xx outfit, 7xx armament,
#: 8xx integration, 9xx support.
SWLIN_AXIS: tuple[tuple[str, tuple[int, ...]], ...] = (
    ("1", (1,)),
    ("2", (2,)),
    ("3", (3,)),
    ("4", (4,)),
    ("5", (5,)),
    ("6", (6,)),
    ("7", (7,)),
    ("8", (8,)),
    ("9", (9,)),
    ("PLT", (1, 2, 3)),  # platform: structure / propulsion / electric
    ("CBT", (4, 7)),  # combat: command & surveillance / armament
    ("AUX", (5, 6)),  # auxiliary systems / outfit & furnishing
    ("SUP", (8, 9)),  # integration / support services
    ("ALL", (1, 2, 3, 4, 5, 6, 7, 8, 9)),
)

#: Statistic axis: (name, status, kind).  ``kind`` tells the extractor
#: which base accumulators the statistic derives from.
STAT_AXIS: tuple[tuple[str, str, str], ...] = (
    # created-status statistics
    ("CNT_CREATED", "created", "count"),
    ("SUM_CREATED_AMT", "created", "amount_sum"),
    ("AVG_CREATED_AMT", "created", "amount_avg"),
    ("RATE_CREATED_CNT", "created", "count_rate"),
    ("RATE_CREATED_AMT", "created", "amount_rate"),
    ("DLT_CREATED_CNT", "created", "count_delta"),
    ("DLT_CREATED_AMT", "created", "amount_delta"),
    # settled-status statistics
    ("CNT_SETTLED", "settled", "count"),
    ("SUM_SETTLED_AMT", "settled", "amount_sum"),
    ("AVG_SETTLED_AMT", "settled", "amount_avg"),
    ("SUM_SETTLED_DUR", "settled", "duration_sum"),
    ("AVG_SETTLED_DUR", "settled", "duration_avg"),
    ("RATE_SETTLED_CNT", "settled", "count_rate"),
    ("RATE_SETTLED_AMT", "settled", "amount_rate"),
    ("DLT_SETTLED_CNT", "settled", "count_delta"),
    ("DLT_SETTLED_AMT", "settled", "amount_delta"),
    ("RATIO_SETTLED_CNT", "settled", "settle_ratio_count"),
    ("RATIO_SETTLED_AMT", "settled", "settle_ratio_amount"),
    # active-status statistics
    ("CNT_ACTIVE", "active", "count"),
    ("SUM_ACTIVE_AMT", "active", "amount_sum"),
    ("AVG_ACTIVE_AMT", "active", "amount_avg"),
    ("PCT_ACTIVE", "active", "pct_active"),
    ("SUM_ACTIVE_AGE", "active", "age_sum"),
    ("AVG_ACTIVE_AGE", "active", "age_avg"),
    ("DLT_ACTIVE_CNT", "active", "count_delta"),
    ("DLT_ACTIVE_AMT", "active", "amount_delta"),
)

#: Timeline-global specials appended after the grid features.
SPECIAL_FEATURES: tuple[str, ...] = (
    "T_STAR",
    "LOG_TOTAL_CREATED_AMT",
    "SWLIN_DIGITS_TOUCHED",
    "AMT_CONCENTRATION_HHI",
)

N_GRID_FEATURES = len(TYPE_AXIS) * len(SWLIN_AXIS) * len(STAT_AXIS)
N_GENERATED_FEATURES = N_GRID_FEATURES + len(SPECIAL_FEATURES)


#: stat name -> (status, kind) lookup.
STAT_LOOKUP = {name: (status, kind) for name, status, kind in STAT_AXIS}


@dataclass(frozen=True)
class FeatureSpec:
    """One generated feature: its grid coordinates and flat index."""

    index: int
    name: str
    type_label: str
    swlin_label: str
    stat_name: str
    status: str
    kind: str


def grid_feature_name(type_label: str, swlin_label: str, stat_name: str) -> str:
    """Canonical feature name, e.g. ``G1-AVG_SETTLED_AMT``."""
    return f"{type_label}{swlin_label}-{stat_name}"


@dataclass(frozen=True)
class FeatureGridSpec:
    """A configurable feature grid (the paper's T, parameterised).

    The default reproduces the paper's grid; deeper or narrower grids
    support the tech report's richer SWLIN hierarchies and cheap
    restricted extractions:

    * ``swlin_depth`` — 1 groups by the leading subsystem digit (paper
      default, 9 codes); 2 groups by the first two digits (90 codes).
    * ``swlin_axis`` — scope labels over the digit codes at that depth.
    * ``stats`` — subset (and order) of :data:`STAT_AXIS` names.
    """

    type_axis: tuple[tuple[str, tuple[str, ...]], ...] = TYPE_AXIS
    swlin_axis: tuple[tuple[str, tuple[int, ...]], ...] = SWLIN_AXIS
    swlin_depth: int = 1
    stats: tuple[str, ...] = tuple(name for name, _, _ in STAT_AXIS)
    include_specials: bool = True

    def __post_init__(self) -> None:
        from repro.errors import ConfigurationError

        if self.swlin_depth not in (1, 2):
            raise ConfigurationError("swlin_depth must be 1 or 2")
        unknown = [s for s in self.stats if s not in STAT_LOOKUP]
        if unknown:
            raise ConfigurationError(f"unknown statistics: {unknown}")
        if not self.stats or not self.type_axis or not self.swlin_axis:
            raise ConfigurationError("feature grid axes must be non-empty")
        lo, hi = self.digit_code_range
        for label, codes in self.swlin_axis:
            bad = [c for c in codes if not lo <= c <= hi]
            if bad:
                raise ConfigurationError(
                    f"scope {label!r} has codes {bad} outside depth-{self.swlin_depth} "
                    f"range [{lo}, {hi}]"
                )

    @property
    def digit_code_range(self) -> tuple[int, int]:
        """Valid digit codes at this depth (1..9 or 10..99)."""
        return (1, 9) if self.swlin_depth == 1 else (10, 99)

    @property
    def n_digit_codes(self) -> int:
        lo, hi = self.digit_code_range
        return hi - lo + 1

    @property
    def n_features(self) -> int:
        grid = len(self.type_axis) * len(self.swlin_axis) * len(self.stats)
        return grid + (len(SPECIAL_FEATURES) if self.include_specials else 0)

    @classmethod
    def default(cls) -> "FeatureGridSpec":
        """The paper's grid (:data:`N_GENERATED_FEATURES` features)."""
        return cls()

    @classmethod
    def deep(cls) -> "FeatureGridSpec":
        """Depth-2 grid: one scope per two-digit SWLIN prefix plus ALL.

        ~9.4k features — the tech report's richer hierarchy; pair with a
        larger ``k`` or stronger selection.
        """
        axis = tuple(
            (str(code), (code,)) for code in range(10, 100)
        ) + (("ALL", tuple(range(10, 100))),)
        return cls(swlin_axis=axis, swlin_depth=2)

    @classmethod
    def compact(cls) -> "FeatureGridSpec":
        """A small grid (counts/sums only, no deltas) for fast pipelines."""
        keep = tuple(
            name
            for name, _, kind in STAT_AXIS
            if kind in ("count", "amount_sum", "amount_avg", "pct_active")
        )
        return cls(stats=keep, include_specials=False)

    def build_registry(self) -> list[FeatureSpec]:
        """Enumerate this grid's features in flat (row-major) order."""
        specs: list[FeatureSpec] = []
        index = 0
        for type_label, _ in self.type_axis:
            for swlin_label, _ in self.swlin_axis:
                for stat_name in self.stats:
                    status, kind = STAT_LOOKUP[stat_name]
                    specs.append(
                        FeatureSpec(
                            index=index,
                            name=grid_feature_name(type_label, swlin_label, stat_name),
                            type_label=type_label,
                            swlin_label=swlin_label,
                            stat_name=stat_name,
                            status=status,
                            kind=kind,
                        )
                    )
                    index += 1
        if self.include_specials:
            for name in SPECIAL_FEATURES:
                specs.append(
                    FeatureSpec(
                        index=index,
                        name=name,
                        type_label="ALL",
                        swlin_label="ALL",
                        stat_name=name,
                        status="special",
                        kind="special",
                    )
                )
                index += 1
        return specs

    def feature_names(self) -> list[str]:
        return [spec.name for spec in self.build_registry()]

    def fingerprint(self) -> str:
        """Content fingerprint of the grid (artifact-cache key part)."""
        from repro.runtime.cache import fingerprint_of

        return fingerprint_of(
            self.type_axis,
            self.swlin_axis,
            self.swlin_depth,
            self.stats,
            self.include_specials,
        )


def build_registry(spec: FeatureGridSpec | None = None) -> list[FeatureSpec]:
    """Enumerate a grid's features (default: the paper's grid)."""
    return (spec or FeatureGridSpec.default()).build_registry()


def feature_names(spec: FeatureGridSpec | None = None) -> list[str]:
    """Flat list of a grid's feature names (default: the paper's grid)."""
    return (spec or FeatureGridSpec.default()).feature_names()
