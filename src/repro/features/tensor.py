"""The avail x logical-time x feature tensor (Task 1 of the paper).

"Across the entire avail set, the resulting features can be thought of
as a tensor across the avail, feature set, and logical time dimensions.
Each model is trained on a slice of that tensor generated at discrete
logical times t*."
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError


@dataclass
class FeatureTensor:
    """Dense feature tensor with labelled axes.

    Attributes
    ----------
    values:
        float64 array of shape ``(n_avails, n_timestamps, n_features)``.
    avail_ids:
        Avail ids along axis 0.
    t_stars:
        Logical timestamps along axis 1 (ascending).
    feature_names:
        Feature names along axis 2.
    """

    values: np.ndarray
    avail_ids: np.ndarray
    t_stars: np.ndarray
    feature_names: list[str]

    def __post_init__(self) -> None:
        self.values = np.asarray(self.values, dtype=np.float64)
        self.avail_ids = np.asarray(self.avail_ids, dtype=np.int64)
        self.t_stars = np.asarray(self.t_stars, dtype=np.float64)
        expected = (len(self.avail_ids), len(self.t_stars), len(self.feature_names))
        if self.values.shape != expected:
            raise ConfigurationError(
                f"tensor shape {self.values.shape} != labelled axes {expected}"
            )
        self._avail_pos = {int(a): i for i, a in enumerate(self.avail_ids)}
        self._t_pos = {float(t): i for i, t in enumerate(self.t_stars)}
        self._feature_pos = {name: i for i, name in enumerate(self.feature_names)}

    # ------------------------------------------------------------------
    @property
    def n_avails(self) -> int:
        return self.values.shape[0]

    @property
    def n_timestamps(self) -> int:
        return self.values.shape[1]

    @property
    def n_features(self) -> int:
        return self.values.shape[2]

    # ------------------------------------------------------------------
    def t_index(self, t_star: float) -> int:
        """Axis-1 index of a logical timestamp."""
        key = float(t_star)
        if key not in self._t_pos:
            raise ConfigurationError(
                f"t*={t_star} not in tensor timeline {list(self.t_stars)}"
            )
        return self._t_pos[key]

    def at(self, t_star: float) -> np.ndarray:
        """Feature matrix slice (n_avails, n_features) at one timestamp."""
        return self.values[:, self.t_index(t_star), :]

    def matrix(self, t_star: float, avail_ids: np.ndarray | None = None) -> np.ndarray:
        """Slice at ``t_star``, optionally restricted/ordered by avail ids."""
        slice_ = self.at(t_star)
        if avail_ids is None:
            return slice_
        rows = self.rows_for(avail_ids)
        return slice_[rows]

    def rows_for(self, avail_ids: np.ndarray) -> np.ndarray:
        """Axis-0 positions of the given avail ids (order-preserving)."""
        try:
            return np.array([self._avail_pos[int(a)] for a in avail_ids], dtype=np.int64)
        except KeyError as exc:
            raise ConfigurationError(f"avail id {exc.args[0]} not in tensor") from None

    def feature_index(self, name: str) -> int:
        """Axis-2 index of a named feature."""
        if name not in self._feature_pos:
            raise ConfigurationError(f"feature {name!r} not in tensor")
        return self._feature_pos[name]

    def select_features(self, indices: np.ndarray) -> "FeatureTensor":
        """Sub-tensor restricted to the given feature indices."""
        indices = np.asarray(indices, dtype=np.int64)
        return FeatureTensor(
            values=self.values[:, :, indices],
            avail_ids=self.avail_ids,
            t_stars=self.t_stars,
            feature_names=[self.feature_names[i] for i in indices],
        )

    def for_avails(self, avail_ids: np.ndarray) -> "FeatureTensor":
        """Sub-tensor restricted to the given avails (in the given order)."""
        rows = self.rows_for(avail_ids)
        return FeatureTensor(
            values=self.values[rows],
            avail_ids=np.asarray(avail_ids, dtype=np.int64),
            t_stars=self.t_stars,
            feature_names=list(self.feature_names),
        )

    def nbytes(self) -> int:
        """Memory footprint of the dense tensor."""
        return int(self.values.nbytes)
