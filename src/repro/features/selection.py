"""Feature selection methods (Task 2 of the paper).

Five scoring strategies, matching Section 5.2.1's implemented algorithms:

* **pearson** — |Pearson correlation coefficient| with the target.
* **spearman** — |Spearman rank correlation| (Pearson on ranks).
* **mutual_info** — binned mutual information estimate.
* **rfe** — Recursive Feature Elimination driven by the importances of a
  gradient-boosted model (the only model-*dependent* method).
* **random** — uniform random scores (the sanity-check baseline).

All methods expose the same interface: score every feature, sort, return
the indices of the top-``k``.  Constant features always score zero.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.errors import ConfigurationError
from repro.ml.gbm import GbmParams, GradientBoostedTrees

FEATURE_SELECTION_METHODS = ("pearson", "spearman", "mutual_info", "rfe", "random")


def _validate(X: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if X.ndim != 2:
        raise ConfigurationError(f"X must be 2-D, got shape {X.shape}")
    if len(X) != len(y):
        raise ConfigurationError("X and y must have equal length")
    if len(y) < 3:
        raise ConfigurationError("feature scoring needs at least 3 samples")
    return X, y


def pearson_scores(X: np.ndarray, y: np.ndarray) -> np.ndarray:
    """|Pearson r| per feature; 0 for constant columns."""
    X, y = _validate(X, y)
    Xc = X - X.mean(axis=0)
    yc = y - y.mean()
    x_norm = np.sqrt((Xc**2).sum(axis=0))
    y_norm = float(np.sqrt((yc**2).sum()))
    scores = np.zeros(X.shape[1])
    valid = (x_norm > 0) & (y_norm > 0)
    if y_norm > 0:
        scores[valid] = np.abs(Xc[:, valid].T @ yc) / (x_norm[valid] * y_norm)
    return scores


def _rank(values: np.ndarray) -> np.ndarray:
    """Average ranks (ties share the mean rank), axis 0."""
    order = np.argsort(values, axis=0, kind="stable")
    ranks = np.empty_like(values, dtype=np.float64)
    n = values.shape[0]
    base = np.arange(n, dtype=np.float64)
    if values.ndim == 1:
        ranks[order] = base
        sorted_vals = values[order]
        ranks = _average_ties(sorted_vals, ranks, values, order)
        return ranks
    for j in range(values.shape[1]):
        column_order = order[:, j]
        column_ranks = np.empty(n)
        column_ranks[column_order] = base
        ranks[:, j] = _average_ties(
            values[column_order, j], column_ranks, values[:, j], column_order
        )
    return ranks


def _average_ties(
    sorted_vals: np.ndarray,
    provisional: np.ndarray,
    original: np.ndarray,
    order: np.ndarray,
) -> np.ndarray:
    """Replace provisional ranks with tie-averaged ranks."""
    n = len(sorted_vals)
    boundaries = np.flatnonzero(np.diff(sorted_vals)) + 1
    starts = np.concatenate([[0], boundaries])
    ends = np.concatenate([boundaries, [n]])
    out = np.empty(n)
    for start, end in zip(starts, ends):
        out[order[start:end]] = (start + end - 1) / 2.0
    _ = original, provisional
    return out


def spearman_scores(X: np.ndarray, y: np.ndarray) -> np.ndarray:
    """|Spearman rho| per feature (Pearson on tie-averaged ranks)."""
    X, y = _validate(X, y)
    return pearson_scores(_rank(X), _rank(y))


def mutual_info_scores(X: np.ndarray, y: np.ndarray, n_bins: int = 8) -> np.ndarray:
    """Binned mutual information between each feature and the target.

    Both variables are quantile-binned into ``n_bins`` buckets and the
    plug-in MI estimate is computed from the joint histogram.  Constant
    features score 0.
    """
    X, y = _validate(X, y)
    if n_bins < 2:
        raise ConfigurationError(f"n_bins must be >= 2, got {n_bins}")
    y_binned = _quantile_bin(y, n_bins)
    n = len(y)
    scores = np.zeros(X.shape[1])
    y_counts = np.bincount(y_binned, minlength=n_bins).astype(np.float64)
    p_y = y_counts / n
    for j in range(X.shape[1]):
        column = X[:, j]
        if np.all(column == column[0]):
            continue
        x_binned = _quantile_bin(column, n_bins)
        joint = np.zeros((n_bins, n_bins))
        np.add.at(joint, (x_binned, y_binned), 1.0)
        joint /= n
        p_x = joint.sum(axis=1)
        outer = np.outer(p_x, p_y)
        nz = joint > 0
        scores[j] = float(np.sum(joint[nz] * np.log(joint[nz] / outer[nz])))
    return np.maximum(scores, 0.0)


def _quantile_bin(values: np.ndarray, n_bins: int) -> np.ndarray:
    edges = np.quantile(values, np.linspace(0, 1, n_bins + 1)[1:-1])
    return np.searchsorted(edges, values, side="right").astype(np.int64)


def random_scores(X: np.ndarray, y: np.ndarray, seed: int = 0) -> np.ndarray:
    """Uniform random scores — the paper's sanity baseline."""
    X, y = _validate(X, y)
    rng = np.random.default_rng(seed)
    return rng.random(X.shape[1])


def rfe_select(
    X: np.ndarray,
    y: np.ndarray,
    k: int,
    model_factory: Callable[[], GradientBoostedTrees] | None = None,
    step_fraction: float = 0.25,
) -> np.ndarray:
    """Recursive Feature Elimination down to ``k`` features.

    Repeatedly fits the model on the surviving features and drops the
    lowest-importance ``step_fraction`` until ``k`` remain.  Returns the
    surviving original column indices ordered by final importance
    (descending).
    """
    X, y = _validate(X, y)
    if not 1 <= k <= X.shape[1]:
        raise ConfigurationError(f"k must be in [1, {X.shape[1]}], got {k}")
    if model_factory is None:
        model_factory = lambda: GradientBoostedTrees(  # noqa: E731
            GbmParams(n_estimators=60, max_depth=3, random_state=0)
        )
    surviving = np.arange(X.shape[1])
    while len(surviving) > k:
        model = model_factory().fit(X[:, surviving], y)
        importances = model.feature_importances()
        n_drop = min(
            max(int(len(surviving) * step_fraction), 1),
            len(surviving) - k,
        )
        order = np.argsort(importances, kind="stable")  # ascending
        surviving = np.sort(surviving[order[n_drop:]])
    final_model = model_factory().fit(X[:, surviving], y)
    final_importances = final_model.feature_importances()
    return surviving[np.argsort(final_importances, kind="stable")[::-1]]


def rfe_ranking(
    X: np.ndarray,
    y: np.ndarray,
    model_factory: Callable[[], GradientBoostedTrees] | None = None,
    step_fraction: float = 0.25,
) -> np.ndarray:
    """Full RFE ranking: all column indices, best first.

    Runs recursive elimination down to a single feature and ranks
    features by how long they survive (sklearn's ``RFE.ranking_``
    convention, flattened to an ordering).  ``ranking[:k]`` is then the
    RFE top-``k`` for *any* k, which lets a k-sweep reuse one
    elimination run.
    """
    X, y = _validate(X, y)
    if model_factory is None:
        model_factory = lambda: GradientBoostedTrees(  # noqa: E731
            GbmParams(n_estimators=60, max_depth=3, random_state=0)
        )
    surviving = np.arange(X.shape[1])
    eliminated: list[np.ndarray] = []
    while len(surviving) > 1:
        model = model_factory().fit(X[:, surviving], y)
        importances = model.feature_importances()
        n_drop = min(max(int(len(surviving) * step_fraction), 1), len(surviving) - 1)
        order = np.argsort(importances, kind="stable")  # ascending importance
        dropped = surviving[order[:n_drop]]
        eliminated.append(dropped)
        surviving = np.sort(surviving[order[n_drop:]])
    ranking = [surviving]
    for batch in reversed(eliminated):
        ranking.append(batch)
    return np.concatenate(ranking)


def score_ranking(method: str, X: np.ndarray, y: np.ndarray, seed: int = 0) -> np.ndarray:
    """Full feature ranking (best first) under a score-based method."""
    X, y = _validate(X, y)
    if method == "rfe":
        return rfe_ranking(X, y)
    if method == "pearson":
        scores = pearson_scores(X, y)
    elif method == "spearman":
        scores = spearman_scores(X, y)
    elif method == "mutual_info":
        scores = mutual_info_scores(X, y)
    elif method == "random":
        scores = random_scores(X, y, seed=seed)
    else:
        raise ConfigurationError(
            f"unknown selection method {method!r}; expected one of {FEATURE_SELECTION_METHODS}"
        )
    return np.argsort(scores, kind="stable")[::-1]


def select_features(
    method: str,
    X: np.ndarray,
    y: np.ndarray,
    k: int,
    seed: int = 0,
) -> np.ndarray:
    """Top-``k`` feature indices under the given method (paper Task 2).

    Score-based methods return indices sorted by score descending; RFE
    returns its surviving set ordered by final importance.
    """
    X, y = _validate(X, y)
    if not 1 <= k <= X.shape[1]:
        raise ConfigurationError(f"k must be in [1, {X.shape[1]}], got {k}")
    if method == "rfe":
        return rfe_select(X, y, k)
    if method == "pearson":
        scores = pearson_scores(X, y)
    elif method == "spearman":
        scores = spearman_scores(X, y)
    elif method == "mutual_info":
        scores = mutual_info_scores(X, y)
    elif method == "random":
        scores = random_scores(X, y, seed=seed)
    else:
        raise ConfigurationError(
            f"unknown selection method {method!r}; expected one of {FEATURE_SELECTION_METHODS}"
        )
    order = np.argsort(scores, kind="stable")[::-1]
    return order[:k]
