"""Dataset persistence: a NavyMaintenanceDataset as a directory of CSVs."""

from __future__ import annotations

import json
from pathlib import Path

from repro.data.schema import NavyMaintenanceDataset
from repro.errors import SchemaError
from repro.table.io import read_csv, write_csv

_TABLES = ("ships", "avails", "rccs")
_META_FILE = "dataset.json"


def save_dataset(dataset: NavyMaintenanceDataset, directory: str | Path) -> None:
    """Write ships/avails/rccs CSVs plus a metadata JSON to ``directory``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    write_csv(dataset.ships, directory / "ships.csv")
    write_csv(dataset.avails, directory / "avails.csv")
    write_csv(dataset.rccs, directory / "rccs.csv")
    meta = {
        "seed": dataset.seed,
        "scaling_factor": dataset.scaling_factor,
        "statistics": dataset.statistics(),
    }
    (directory / _META_FILE).write_text(json.dumps(meta, indent=2), encoding="utf-8")


def load_dataset(directory: str | Path) -> NavyMaintenanceDataset:
    """Read a dataset previously written by :func:`save_dataset`."""
    directory = Path(directory)
    for table in _TABLES:
        if not (directory / f"{table}.csv").exists():
            raise SchemaError(f"missing {table}.csv in {directory}")
    meta_path = directory / _META_FILE
    meta = json.loads(meta_path.read_text(encoding="utf-8")) if meta_path.exists() else {}
    return NavyMaintenanceDataset(
        ships=read_csv(directory / "ships.csv"),
        avails=read_csv(directory / "avails.csv"),
        rccs=read_csv(directory / "rccs.csv"),
        seed=meta.get("seed"),
        scaling_factor=meta.get("scaling_factor", 1),
    )
