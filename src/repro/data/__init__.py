"""NMD data model, synthetic generation, obfuscation, splits, io.

Public API::

    from repro.data import (
        generate_dataset, SyntheticNmdConfig, NavyMaintenanceDataset,
        Avail, Rcc, scale_rccs, obfuscate_dataset, deobfuscate_dataset,
        split_dataset, DataSplits, save_dataset, load_dataset,
    )
"""

from repro.data.dates import (
    MISSING_DATE,
    day_to_iso,
    iso_to_day,
    logical_time,
    physical_time,
)
from repro.data.continuation import generate_continuation
from repro.data.generator import SHIP_CLASSES, SyntheticNmdConfig, generate_dataset
from repro.data.lifecycle import LifecycleConfig, simulate_lifecycle
from repro.data.regimes import (
    REGIMES,
    RegimeSpec,
    generate_regime_dataset,
    get_regime,
    regime_events,
    write_regime_stream,
)
from repro.data.loader import load_dataset, save_dataset
from repro.data.obfuscation import (
    ObfuscationKey,
    deobfuscate_dataset,
    obfuscate_dataset,
)
from repro.data.scaling import scale_rccs
from repro.data.schema import (
    AVAIL_COLUMNS,
    RCC_COLUMNS,
    SHIP_COLUMNS,
    STATIC_FEATURES,
    Avail,
    NavyMaintenanceDataset,
    Rcc,
)
from repro.data.splits import DataSplits, split_dataset

__all__ = [
    "MISSING_DATE",
    "day_to_iso",
    "iso_to_day",
    "logical_time",
    "physical_time",
    "SHIP_CLASSES",
    "SyntheticNmdConfig",
    "generate_dataset",
    "LifecycleConfig",
    "simulate_lifecycle",
    "REGIMES",
    "RegimeSpec",
    "generate_regime_dataset",
    "get_regime",
    "regime_events",
    "write_regime_stream",
    "generate_continuation",
    "load_dataset",
    "save_dataset",
    "ObfuscationKey",
    "obfuscate_dataset",
    "deobfuscate_dataset",
    "scale_rccs",
    "AVAIL_COLUMNS",
    "RCC_COLUMNS",
    "SHIP_COLUMNS",
    "STATIC_FEATURES",
    "Avail",
    "Rcc",
    "NavyMaintenanceDataset",
    "DataSplits",
    "split_dataset",
]
