"""Named stress regimes over the lifecycle generator.

A :class:`RegimeSpec` is a *declarative* description of one corner of
the scenario space: overrides of the dataset shape
(:class:`~repro.data.generator.SyntheticNmdConfig`), of the lifecycle
state machine (:class:`~repro.data.lifecycle.LifecycleConfig`) and of
the event-stream delivery order.  The registry below names the six
stress regimes the cross-regime property suite (``tests/regimes/``)
drives through dataset invariants, four-design index agreement,
live==batch streaming replay and the Table-7-style quality gate.

Regimes compose: a spec's overrides are applied on top of whatever base
``SyntheticNmdConfig`` the caller supplies, so the same regime runs at
paper scale from the CLI (``repro generate --regime surge``) and at
miniature scale inside the test suite.

Adding a regime = adding a ``RegimeSpec`` here.  The property suite
parametrizes over this registry, so a new entry is automatically swept;
see ``docs/regimes.md`` for the checklist (including when a
``quality_waiver`` is acceptable).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Mapping

from repro.data.generator import SyntheticNmdConfig
from repro.data.lifecycle import LifecycleConfig, simulate_lifecycle
from repro.data.schema import NavyMaintenanceDataset
from repro.errors import DataGenerationError


@dataclass(frozen=True)
class RegimeSpec:
    """One named stress regime, fully declarative.

    ``base`` overrides :class:`SyntheticNmdConfig` fields, ``lifecycle``
    overrides :class:`LifecycleConfig` fields, and ``stream`` perturbs
    event *delivery* (``late_fraction`` / ``max_displacement``, see
    :func:`repro.stream.events.perturb_event_order`) without touching
    the dataset itself.  ``quality_waiver``, when set, records why the
    learnability quality gate is not asserted for this regime — the
    property suite skips the gate with this exact reason.
    """

    name: str
    description: str
    base: Mapping[str, Any] = field(default_factory=dict)
    lifecycle: Mapping[str, Any] = field(default_factory=dict)
    stream: Mapping[str, Any] = field(default_factory=dict)
    quality_waiver: str | None = None


#: The named stress-regime registry, in documentation order.
REGIMES: dict[str, RegimeSpec] = {
    spec.name: spec
    for spec in (
        RegimeSpec(
            name="baseline",
            description="Lifecycle-driven analogue of the paper's Table-5 "
            "distribution: default degradation, detection and emission.",
        ),
        RegimeSpec(
            name="surge",
            description="10x RCC bursts: a subset of avails is hit by an "
            "emission surge whose RCCs arrive compressed into a narrow "
            "mid-window burst.",
            lifecycle={
                "surge_prob": 0.18,
                "surge_multiplier": 10.0,
                "surge_workload_factor": 1.8,
            },
        ),
        RegimeSpec(
            name="sparse_fleet",
            description="Tiny fleet, few avails, minimal RCC volume — "
            "probes the small-count edges of generation, splitting and "
            "indexing.",
            base={
                "n_ships": 3,
                "n_closed_avails": 7,
                "n_ongoing_avails": 1,
                "target_n_rccs": 90,
            },
            quality_waiver="fewer than 10 closed avails: split_dataset "
            "cannot carve a train/validation/test split, so the "
            "learnability gate has no evaluation protocol at this scale",
        ),
        RegimeSpec(
            name="heavy_tail",
            description="Amount shocks: a Pareto-tailed multiplicative "
            "shock on ~5% of settled amounts plus a wider lognormal body.",
            lifecycle={
                "amount_shock_prob": 0.05,
                "amount_shock_alpha": 1.2,
                "amount_sigma": 1.3,
            },
        ),
        RegimeSpec(
            name="late_arrival",
            description="Out-of-order delivery: the dataset matches "
            "baseline, but ~30% of stream events arrive late (settles "
            "before their creates included), exercising the orphan "
            "buffer and watermark semantics.",
            stream={"late_fraction": 0.30, "max_displacement": 400},
            quality_waiver="stream-order regime: the materialized dataset "
            "is byte-identical to baseline, whose quality gate already "
            "covers it",
        ),
        RegimeSpec(
            name="early_finish",
            description="Negative-delay clusters: a larger early-finish "
            "shift and softer workload coupling push a substantial share "
            "of avails to finish ahead of plan.",
            lifecycle={
                "early_shift_days": 100.0,
                "delay_per_workload": 22.0,
            },
        ),
    )
}


def get_regime(name: str) -> RegimeSpec:
    """Look up a regime by name; unknown names list the registry."""
    spec = REGIMES.get(name)
    if spec is None:
        raise DataGenerationError(
            f"unknown regime {name!r}; expected one of {sorted(REGIMES)}"
        )
    return spec


def regime_nmd_config(
    spec: RegimeSpec,
    base: SyntheticNmdConfig | None = None,
    seed: int | None = None,
) -> SyntheticNmdConfig:
    """Compose the spec's dataset-shape overrides with a base config."""
    config = base or SyntheticNmdConfig()
    if spec.base:
        config = replace(config, **dict(spec.base))
    if seed is not None:
        config = replace(config, seed=seed)
    return config


def regime_lifecycle_config(spec: RegimeSpec) -> LifecycleConfig:
    """The spec's lifecycle state-machine configuration."""
    return LifecycleConfig(**dict(spec.lifecycle))


def generate_regime_dataset(
    regime: RegimeSpec | str,
    base: SyntheticNmdConfig | None = None,
    seed: int | None = None,
) -> NavyMaintenanceDataset:
    """Generate one regime's dataset via the lifecycle simulator."""
    spec = get_regime(regime) if isinstance(regime, str) else regime
    config = regime_nmd_config(spec, base=base, seed=seed)
    dataset = simulate_lifecycle(config, regime_lifecycle_config(spec))
    dataset.notes["regime"] = spec.name
    return dataset


def regime_events(
    spec: RegimeSpec, dataset: NavyMaintenanceDataset
) -> tuple[dict[str, Any], list]:
    """(header, events) for a regime — delivery order included.

    For stream-perturbing regimes (``late_arrival``) the returned events
    are deterministically re-ordered with
    :func:`~repro.stream.events.perturb_event_order`, seeded from the
    dataset seed, so the same seed + regime yields a byte-identical
    stream file.  The event *multiset* is unchanged: a full replay
    reconstructs the exact dataset.
    """
    from repro.stream.events import dataset_to_events, perturb_event_order

    header, events = dataset_to_events(dataset)
    if spec.stream:
        events = perturb_event_order(
            events,
            seed=(dataset.seed or 0) + 1,
            late_fraction=float(spec.stream.get("late_fraction", 0.25)),
            max_displacement=int(spec.stream.get("max_displacement", 200)),
        )
    return header, events


def write_regime_stream(
    spec: RegimeSpec, dataset: NavyMaintenanceDataset, path: str | Path
) -> int:
    """Write the regime's (possibly out-of-order) stream file."""
    from repro.stream.events import write_event_stream

    header, events = regime_events(spec, dataset)
    return write_event_stream(dataset, path, header=header, events=events)
