"""CUI-style dataset obfuscation (paper Section 1).

The deployment story of the paper: the pipeline is *designed* on
obfuscated data outside the Navy enclave, then **retrained on raw data
inside the enclave without human intervention**.  For that workflow to be
sound, the obfuscation must preserve everything the pipeline relies on:

* relative temporal structure (dates are shifted by one global offset),
* monetary *ratios* (amounts are scaled by one secret positive factor),
* categorical identity without semantics (ids permuted, ship classes
  renamed, SWLIN digits substituted position-wise),
* the delay response exactly (delay is a date difference, hence
  shift-invariant).

:func:`obfuscate_dataset` returns the transformed dataset plus the
:class:`ObfuscationKey` that inverts it; tests assert round-tripping and
metric parity of models trained on either view.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.schema import NavyMaintenanceDataset
from repro.table.table import ColumnTable


@dataclass(frozen=True)
class ObfuscationKey:
    """Secret parameters of an obfuscation; keep inside the enclave."""

    date_shift: int
    amount_scale: float
    ship_id_map: dict[int, int]
    avail_id_map: dict[int, int]
    class_map: dict[str, str]
    digit_map: tuple[int, ...]  # permutation of 0..9 applied per digit
    seed: int = 0
    inverse_maps: dict[str, dict] = field(default_factory=dict, compare=False)


def _permute_ids(ids: np.ndarray, mapping: dict[int, int]) -> np.ndarray:
    return np.array([mapping[int(i)] for i in ids], dtype=np.int64)


def _obfuscate_swlin(code: str, digit_map: tuple[int, ...]) -> str:
    return "".join(str(digit_map[int(ch)]) if ch.isdigit() else ch for ch in code)


def obfuscate_dataset(
    dataset: NavyMaintenanceDataset, seed: int = 99
) -> tuple[NavyMaintenanceDataset, ObfuscationKey]:
    """Obfuscate a dataset; returns ``(obfuscated, key)``."""
    rng = np.random.default_rng(seed)
    date_shift = int(rng.integers(3_000, 20_000))
    amount_scale = float(rng.uniform(0.25, 4.0))

    ship_ids = [int(i) for i in dataset.ships["ship_id"]]
    ship_perm = rng.permutation(len(ship_ids))
    ship_id_map = {sid: int(ship_perm[i]) for i, sid in enumerate(ship_ids)}

    avail_ids = [int(i) for i in dataset.avails["avail_id"]]
    avail_perm = rng.permutation(len(avail_ids))
    avail_id_map = {aid: int(avail_perm[i]) for i, aid in enumerate(avail_ids)}

    classes = sorted(set(dataset.ships["ship_class"]))
    class_map = {cls: f"CLASS_{i}" for i, cls in enumerate(rng.permutation(classes))}

    # Digit substitution permutes 1..9 and fixes 0: SWLIN digits are
    # nominal labels, but the leading digit must stay a valid subsystem
    # (1..9), so 0 cannot enter — or leave — the alphabet's first slot.
    digit_map = (0,) + tuple(int(d) for d in rng.permutation(np.arange(1, 10)))

    key = ObfuscationKey(
        date_shift=date_shift,
        amount_scale=amount_scale,
        ship_id_map=ship_id_map,
        avail_id_map=avail_id_map,
        class_map=class_map,
        digit_map=digit_map,
        seed=seed,
    )

    ships = ColumnTable(
        {
            "ship_id": _permute_ids(dataset.ships["ship_id"], ship_id_map),
            "ship_class": np.array(
                [class_map[c] for c in dataset.ships["ship_class"]], dtype=object
            ),
            "commission_year": dataset.ships["commission_year"],
            "rmc_id": dataset.ships["rmc_id"],
            "displacement": dataset.ships["displacement"],
        }
    )

    avails_src = dataset.avails
    act_end = np.asarray(avails_src["act_end"], dtype=np.int64)
    shifted_act_end = np.where(act_end >= 0, act_end + date_shift, act_end)
    avails = ColumnTable(
        {
            "avail_id": _permute_ids(avails_src["avail_id"], avail_id_map),
            "ship_id": _permute_ids(avails_src["ship_id"], ship_id_map),
            "status": avails_src["status"],
            "plan_start": avails_src["plan_start"] + date_shift,
            "plan_end": avails_src["plan_end"] + date_shift,
            "act_start": avails_src["act_start"] + date_shift,
            "act_end": shifted_act_end,
            "delay": avails_src["delay"],
            "ship_class": np.array(
                [class_map[c] for c in avails_src["ship_class"]], dtype=object
            ),
            "rmc_id": avails_src["rmc_id"],
            "ship_age": avails_src["ship_age"],
            "planned_duration": avails_src["planned_duration"],
            "n_prior_avails": avails_src["n_prior_avails"],
            "avail_type": avails_src["avail_type"],
            "start_quarter": avails_src["start_quarter"],
            "displacement": avails_src["displacement"],
        }
    )

    rccs_src = dataset.rccs
    rccs = ColumnTable(
        {
            "rcc_id": rccs_src["rcc_id"],
            "avail_id": _permute_ids(rccs_src["avail_id"], avail_id_map),
            "rcc_type": rccs_src["rcc_type"],
            "swlin": np.array(
                [_obfuscate_swlin(c, digit_map) for c in rccs_src["swlin"]], dtype=object
            ),
            "create_date": rccs_src["create_date"] + date_shift,
            "settle_date": rccs_src["settle_date"] + date_shift,
            "status": rccs_src["status"],
            "amount": (rccs_src["amount"] * amount_scale).round(4),
        }
    )

    obfuscated = NavyMaintenanceDataset(
        ships=ships,
        avails=avails,
        rccs=rccs,
        seed=dataset.seed,
        scaling_factor=dataset.scaling_factor,
        notes={"obfuscated": True},
    )
    return obfuscated, key


def deobfuscate_dataset(
    dataset: NavyMaintenanceDataset, key: ObfuscationKey
) -> NavyMaintenanceDataset:
    """Invert :func:`obfuscate_dataset` given the key."""
    inv_ship = {v: k for k, v in key.ship_id_map.items()}
    inv_avail = {v: k for k, v in key.avail_id_map.items()}
    inv_class = {v: k for k, v in key.class_map.items()}
    inv_digit = tuple(int(np.argwhere(np.array(key.digit_map) == d)[0][0]) for d in range(10))

    ships = ColumnTable(
        {
            "ship_id": _permute_ids(dataset.ships["ship_id"], inv_ship),
            "ship_class": np.array(
                [inv_class[c] for c in dataset.ships["ship_class"]], dtype=object
            ),
            "commission_year": dataset.ships["commission_year"],
            "rmc_id": dataset.ships["rmc_id"],
            "displacement": dataset.ships["displacement"],
        }
    )
    avails_src = dataset.avails
    act_end = np.asarray(avails_src["act_end"], dtype=np.int64)
    unshifted_act_end = np.where(act_end >= 0, act_end - key.date_shift, act_end)
    avails = ColumnTable(
        {
            "avail_id": _permute_ids(avails_src["avail_id"], inv_avail),
            "ship_id": _permute_ids(avails_src["ship_id"], inv_ship),
            "status": avails_src["status"],
            "plan_start": avails_src["plan_start"] - key.date_shift,
            "plan_end": avails_src["plan_end"] - key.date_shift,
            "act_start": avails_src["act_start"] - key.date_shift,
            "act_end": unshifted_act_end,
            "delay": avails_src["delay"],
            "ship_class": np.array(
                [inv_class[c] for c in avails_src["ship_class"]], dtype=object
            ),
            "rmc_id": avails_src["rmc_id"],
            "ship_age": avails_src["ship_age"],
            "planned_duration": avails_src["planned_duration"],
            "n_prior_avails": avails_src["n_prior_avails"],
            "avail_type": avails_src["avail_type"],
            "start_quarter": avails_src["start_quarter"],
            "displacement": avails_src["displacement"],
        }
    )
    rccs_src = dataset.rccs
    rccs = ColumnTable(
        {
            "rcc_id": rccs_src["rcc_id"],
            "avail_id": _permute_ids(rccs_src["avail_id"], inv_avail),
            "rcc_type": rccs_src["rcc_type"],
            "swlin": np.array(
                [_obfuscate_swlin(c, inv_digit) for c in rccs_src["swlin"]], dtype=object
            ),
            "create_date": rccs_src["create_date"] - key.date_shift,
            "settle_date": rccs_src["settle_date"] - key.date_shift,
            "status": rccs_src["status"],
            "amount": (rccs_src["amount"] / key.amount_scale).round(4),
        }
    )
    return NavyMaintenanceDataset(
        ships=ships,
        avails=avails,
        rccs=rccs,
        seed=dataset.seed,
        scaling_factor=dataset.scaling_factor,
        notes={"obfuscated": False},
    )
