"""Date handling.

All tables store dates as **integer day ordinals** (``datetime.date.toordinal``)
so date arithmetic stays vectorised in numpy; these helpers convert to and
from ISO strings at the edges (CSV io, examples, display).
"""

from __future__ import annotations

import datetime as _dt

import numpy as np

#: Sentinel ordinal for "not yet" dates (ongoing avails have no actual end).
MISSING_DATE = -1


def iso_to_day(iso: str) -> int:
    """ISO date string -> day ordinal. Empty string maps to MISSING_DATE."""
    if not iso:
        return MISSING_DATE
    return _dt.date.fromisoformat(iso).toordinal()


def day_to_iso(day: int) -> str:
    """Day ordinal -> ISO date string. MISSING_DATE maps to empty string."""
    if day == MISSING_DATE:
        return ""
    return _dt.date.fromordinal(int(day)).isoformat()


def days_between(later: np.ndarray | int, earlier: np.ndarray | int) -> np.ndarray | int:
    """Difference in days (simply subtraction, kept for readability)."""
    return later - earlier


def logical_time(
    physical_day: np.ndarray | float,
    actual_start: np.ndarray | float,
    planned_duration: np.ndarray | float,
) -> np.ndarray | float:
    """Logical time ``t*`` (Equation 1): percent of planned duration elapsed.

    ``t* = (t - t_actS) / s_plan * 100``.  May exceed 100 for events that
    occur after the planned end of an overrunning avail, and be negative
    for events predating the actual start.
    """
    return (physical_day - actual_start) / planned_duration * 100.0


def physical_time(
    t_star: np.ndarray | float,
    actual_start: np.ndarray | float,
    planned_duration: np.ndarray | float,
) -> np.ndarray | float:
    """Inverse of :func:`logical_time` (returns fractional days)."""
    return actual_start + t_star / 100.0 * planned_duration
