"""Dataset continuation: new avails arriving after a snapshot.

The deployed pipeline retrains as the database grows — every month new
availabilities close inside the enclave.  :func:`generate_continuation`
extends an existing (synthetic) dataset with freshly closed avails on
the *same ships*, drawn from the same delay process, starting after the
snapshot's latest planned start:

* ship references, per-ship maintenance history (``n_prior_avails``)
  and id spaces continue seamlessly;
* the same severity/latent/trouble mechanics drive delays and RCC
  volume, so the new avails are exchangeable with the old ones — the
  honest setting for testing unattended retraining.
"""

from __future__ import annotations

import numpy as np

from repro.data.dates import MISSING_DATE
from repro.data.generator import (
    SHIP_CLASSES,
    SyntheticNmdConfig,
    _RMC_EFFICIENCY,
    _generate_rccs,
)
from repro.data.schema import NavyMaintenanceDataset
from repro.errors import ConfigurationError, DataGenerationError
from repro.table.table import ColumnTable


def generate_continuation(
    dataset: NavyMaintenanceDataset,
    n_new_closed: int = 12,
    seed: int = 101,
    horizon_days: int = 540,
) -> NavyMaintenanceDataset:
    """Extend a dataset with newly closed avails (and their RCCs).

    Parameters
    ----------
    dataset:
        Source snapshot (unchanged); must contain at least one ship.
    n_new_closed:
        Number of new *closed* avails to append.
    seed:
        RNG seed for the continuation draw.
    horizon_days:
        New planned starts fall in
        ``(latest plan_start, latest plan_start + horizon_days]``.

    Returns
    -------
    A new :class:`NavyMaintenanceDataset` containing the original rows
    plus the continuation.
    """
    if n_new_closed < 1:
        raise ConfigurationError("n_new_closed must be >= 1")
    if dataset.ships.n_rows == 0:
        raise DataGenerationError("dataset has no ships to continue from")
    config = dataset.notes.get("config") if dataset.notes else None
    if not isinstance(config, SyntheticNmdConfig):
        config = SyntheticNmdConfig()
    rng = np.random.default_rng(seed)
    ships = dataset.ships
    n_total = n_new_closed

    ship_rows = rng.integers(0, ships.n_rows, n_total)
    ship_ids = np.asarray(ships["ship_id"], dtype=np.int64)[ship_rows]
    ship_class = ships["ship_class"][ship_rows]
    displacement = ships["displacement"][ship_rows]
    rmc_id = np.asarray(ships["rmc_id"], dtype=np.int64)[ship_rows]
    commission_year = np.asarray(ships["commission_year"], dtype=np.int64)[ship_rows]

    last_start = int(np.max(dataset.avails["plan_start"]))
    plan_start = np.sort(
        rng.integers(last_start + 1, last_start + horizon_days + 1, n_total)
    )
    avail_type = rng.choice(["docking", "pierside"], size=n_total, p=[0.55, 0.45])
    planned_duration = np.where(
        avail_type == "docking",
        rng.integers(300, 651, n_total),
        rng.integers(100, 301, n_total),
    ).astype(np.int64)
    plan_end = plan_start + planned_duration

    # Approximate calendar years relative to the original epoch.
    first_day = int(np.min(dataset.avails["plan_start"]))
    start_year = (plan_start - first_day) // 365
    ship_age = np.maximum((2015 + start_year) - commission_year, 1)
    start_quarter = ((plan_start - first_day) // 91) % 4 + 1

    # Continue each ship's maintenance history.
    existing_counts: dict[int, int] = {}
    for ship in np.asarray(dataset.avails["ship_id"], dtype=np.int64):
        existing_counts[int(ship)] = existing_counts.get(int(ship), 0) + 1
    n_prior = np.zeros(n_total, dtype=np.int64)
    for i, ship in enumerate(ship_ids):
        n_prior[i] = existing_counts.get(int(ship), 0)
        existing_counts[int(ship)] = n_prior[i] + 1

    # ---- same trouble / delay process as the base generator -------------
    class_risk = np.array([SHIP_CLASSES[c][2] for c in ship_class])
    age_factor = np.clip(1.0 + 0.03 * (ship_age - 15), 0.55, 2.4)
    duration_factor = 0.45 + planned_duration / 420.0
    severity = (class_risk * age_factor * duration_factor * _RMC_EFFICIENCY[rmc_id]) ** 1.7 / 1.55
    latent = rng.gamma(config.trouble_shape, config.trouble_scale, n_total)
    trouble = severity * latent
    noise = rng.normal(0.0, config.delay_noise_sd, n_total)
    saturation = trouble + 0.6 * np.maximum(trouble - 1.2, 0.0)
    type_amplifier = np.where(avail_type == "docking", 1.2, 0.85)
    delay = (
        config.delay_per_trouble * saturation * type_amplifier
        - config.early_shift_days
        + 6.0 * (n_prior - 1)
        + noise
    )
    delay = np.clip(np.round(delay), -45, 1100).astype(np.int64)

    late_start = (rng.random(n_total) < 0.12) * rng.integers(3, 30, n_total)
    act_start = plan_start + late_start
    act_end = act_start + planned_duration + delay

    next_avail_id = int(np.max(dataset.avails["avail_id"])) + 1
    new_avails = ColumnTable(
        {
            "avail_id": np.arange(next_avail_id, next_avail_id + n_total, dtype=np.int64),
            "ship_id": ship_ids,
            "status": np.array(["closed"] * n_total, dtype=object),
            "plan_start": plan_start.astype(np.int64),
            "plan_end": plan_end.astype(np.int64),
            "act_start": act_start.astype(np.int64),
            "act_end": act_end.astype(np.int64),
            "delay": delay.astype(np.float64),
            "ship_class": np.asarray(ship_class, dtype=object),
            "rmc_id": rmc_id,
            "ship_age": ship_age.astype(np.int64),
            "planned_duration": planned_duration,
            "n_prior_avails": n_prior,
            "avail_type": np.asarray(avail_type, dtype=object),
            "start_quarter": start_quarter.astype(np.int64),
            "displacement": np.asarray(displacement, dtype=np.float64),
        }
    )

    # ---- RCCs for the new avails, at the original volume per avail ------
    rccs_per_avail = max(int(round(dataset.n_rccs / max(dataset.n_avails, 1))), 2)
    rcc_config = SyntheticNmdConfig(
        n_ships=dataset.n_ships,
        n_closed_avails=n_total,
        n_ongoing_avails=0,
        target_n_rccs=max(rccs_per_avail * n_total, n_total),
        seed=seed,
        trouble_shape=config.trouble_shape,
        trouble_scale=config.trouble_scale,
        delay_per_trouble=config.delay_per_trouble,
        delay_noise_sd=config.delay_noise_sd,
        early_shift_days=config.early_shift_days,
    )
    new_rccs = _generate_rccs(rcc_config, rng, new_avails, trouble)
    # Re-key into the continued id spaces.
    next_rcc_id = int(np.max(dataset.rccs["rcc_id"])) + 1
    local_avail_ids = np.asarray(new_rccs["avail_id"], dtype=np.int64)
    new_rccs = new_rccs.with_column(
        "rcc_id", np.arange(next_rcc_id, next_rcc_id + new_rccs.n_rows, dtype=np.int64)
    ).with_column(
        "avail_id", np.asarray(new_avails["avail_id"], dtype=np.int64)[local_avail_ids]
    )

    # Keep ongoing avails (missing act_end) intact through concat.
    assert MISSING_DATE < 0  # documented sentinel survives int concat
    return NavyMaintenanceDataset(
        ships=dataset.ships,
        avails=ColumnTable.concat([dataset.avails, new_avails]),
        rccs=ColumnTable.concat([dataset.rccs, new_rccs]),
        seed=dataset.seed,
        scaling_factor=dataset.scaling_factor,
        notes={"continuation_of": dataset.seed, "config": config},
    )
