"""Maintenance-lifecycle synthetic NMD generation.

The default generator (:mod:`repro.data.generator`) samples RCC streams
*directly* from a latent per-avail trouble factor.  This module replaces
that sampling step with a **process**: every ship carries a latent wear
level per subsystem (the nine SWLIN top-level groups), wear accumulates
while the ship is in service, and each availability runs the
inspect → repair → return-to-service loop of a maintenance lifecycle:

* **degradation** — between avails, each subsystem's wear grows by a
  gamma-distributed increment scaled by elapsed service time, ship-class
  risk and ship age.  Wear maps to stages: *healthy*, *degraded*
  (``wear >= degraded_threshold``) and *critical*
  (``wear >= critical_threshold``).
* **inspection** — when an avail opens, each degraded/critical subsystem
  is *detected* with a stage-dependent probability (critical faults are
  much harder to miss).  Detected faults emit RCCs early in the window —
  the open-and-inspect burst that makes DoMD predictable soon after work
  starts.
* **execution** — faults missed at inspection can still surface
  mid-execution (lower, stage-dependent probabilities), emitting RCCs
  later on the logical timeline.
* **repair / return-to-service** — detected subsystems have most of
  their wear removed; undetected faults persist, keep growing, and make
  the ship's *next* avail worse.  Maintenance history therefore matters
  mechanically, not by construction.

The emitted RCC stream (creation times, settle lags, amounts, SWLIN
mix) and the avail delay are both driven by the same latent workload, so
RCC-derived features genuinely predict delay — increasingly so as
logical time advances — which is exactly the learnability contract the
cross-regime quality gate (``tests/regimes/``) enforces.

All randomness flows from ``SyntheticNmdConfig.seed``: the same seed and
configuration produce a byte-identical dataset and event stream.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.generator import (
    SHIP_CLASSES,
    _RMC_EFFICIENCY,
    _SWLIN_FIRST_DIGIT_WEIGHTS,
    SyntheticNmdConfig,
    _generate_ships,
    finalize_avails,
    schedule_avails,
)
from repro.data.schema import NavyMaintenanceDataset
from repro.errors import DataGenerationError
from repro.table.table import ColumnTable

#: Subsystems = SWLIN leading digits 1..9.
N_SUBSYSTEMS = 9

#: Detection stages of a fault, in lifecycle order.
STAGE_INSPECTION = 0
STAGE_EXECUTION = 1


@dataclass(frozen=True)
class LifecycleConfig:
    """Knobs of the degradation / detection / repair state machine.

    Stress regimes (:mod:`repro.data.regimes`) are expressed as
    overrides of these fields composed with a
    :class:`~repro.data.generator.SyntheticNmdConfig`.
    """

    # ---- degradation ---------------------------------------------------
    #: Mean wear added per subsystem per year in service.
    wear_rate: float = 0.22
    #: Gamma shape of wear increments (higher = less dispersed).
    wear_shape: float = 3.0
    #: Service years assumed before a ship's first recorded avail.
    initial_service_years: float = 1.5
    #: Wear stage thresholds.
    degraded_threshold: float = 0.65
    critical_threshold: float = 1.60
    # ---- stage-dependent detection (inspect / repair / return) ---------
    #: P(detect degraded subsystem) during the opening inspection.
    detect_degraded_inspection: float = 0.55
    #: P(detect critical subsystem) during the opening inspection.
    detect_critical_inspection: float = 0.92
    #: P(a missed degraded fault surfaces mid-execution).
    detect_degraded_execution: float = 0.35
    #: P(a missed critical fault surfaces mid-execution).
    detect_critical_execution: float = 0.80
    #: Fraction of wear removed when a detected subsystem is repaired.
    repair_effect: float = 0.92
    # ---- workload -> delay ---------------------------------------------
    #: Routine (always-planned) work per avail, in wear units — keeps
    #: quiet avails from free-falling to the early-finish clip.
    base_workload: float = 1.1
    #: Days of delay per unit of repaired-wear workload.
    delay_per_workload: float = 26.0
    #: Irreducible delay noise (days, std dev).
    delay_noise_sd: float = 12.0
    #: Constant subtracted so light avails finish on time or early.
    early_shift_days: float = 50.0
    # ---- RCC emission --------------------------------------------------
    #: Inspection findings land in the first this-fraction of the
    #: *planned* window.
    inspection_window_frac: float = 0.15
    #: Gamma shape/scale of settle lags (days).
    settle_shape: float = 2.0
    settle_scale: float = 25.0
    #: Lognormal parameters of settled amounts.
    amount_mu: float = 9.10498  # log(9_000)
    amount_sigma: float = 0.9
    #: Heavy-tail amount shocks: probability and Pareto tail index of a
    #: multiplicative shock (0 disables; the ``heavy_tail`` regime's
    #: lever).
    amount_shock_prob: float = 0.0
    amount_shock_alpha: float = 1.2
    # ---- surge bursts ---------------------------------------------------
    #: Fraction of avails hit by an RCC surge (0 disables; the ``surge``
    #: regime's lever) and the emission multiplier a surge applies.
    surge_prob: float = 0.0
    surge_multiplier: float = 1.0
    #: Logical window (fractions of the execution window) a surge's
    #: burst of RCCs is compressed into.
    surge_burst: tuple[float, float] = (0.35, 0.50)
    #: Workload multiplier on surged avails: a burst of change requests
    #: reflects genuinely discovered extra work, so surged avails also
    #: carry more delay — keeping RCC volume an informative feature.
    surge_workload_factor: float = 1.0

    def __post_init__(self) -> None:
        for name in (
            "detect_degraded_inspection",
            "detect_critical_inspection",
            "detect_degraded_execution",
            "detect_critical_execution",
            "repair_effect",
            "amount_shock_prob",
            "surge_prob",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise DataGenerationError(
                    f"{name} must be a probability in [0, 1], got {value}"
                )
        if self.critical_threshold <= self.degraded_threshold:
            raise DataGenerationError(
                "critical_threshold must exceed degraded_threshold "
                f"({self.critical_threshold} <= {self.degraded_threshold})"
            )
        if self.surge_multiplier < 1.0:
            raise DataGenerationError(
                f"surge_multiplier must be >= 1, got {self.surge_multiplier}"
            )
        if self.surge_workload_factor < 1.0:
            raise DataGenerationError(
                "surge_workload_factor must be >= 1, got "
                f"{self.surge_workload_factor}"
            )


@dataclass
class _FaultLog:
    """Per-detected-fault records, accumulated in avail order."""

    avail: list[int]
    subsystem: list[int]
    stage: list[int]
    severity: list[float]

    def add(self, avail: int, subsystem: int, stage: int, severity: float) -> None:
        self.avail.append(avail)
        self.subsystem.append(subsystem)
        self.stage.append(stage)
        self.severity.append(severity)


def simulate_lifecycle(
    config: SyntheticNmdConfig | None = None,
    lifecycle: LifecycleConfig | None = None,
) -> NavyMaintenanceDataset:
    """Run the fleet lifecycle and return the emitted NMD snapshot.

    The dataset satisfies the same schema/cardinality contract as
    :func:`~repro.data.generator.generate_dataset` (``target_n_rccs`` is
    hit exactly, every avail emits at least one RCC), but creation
    times, settle lags, amounts and the SWLIN mix are all produced by
    the degradation process.  Diagnostics land in ``dataset.notes``:
    per-avail ``workload``, the fault log, and surge membership.
    """
    config = config or SyntheticNmdConfig()
    lifecycle = lifecycle or LifecycleConfig()
    rng = np.random.default_rng(config.seed)

    ships = _generate_ships(config, rng)
    schedule = schedule_avails(config, rng, ships)
    n_total = schedule.n_total

    late_start = (rng.random(n_total) < 0.12) * rng.integers(3, 30, n_total)
    # Surge membership is a quota, not per-avail coin flips: at small
    # fleet sizes independent Bernoulli draws can produce zero surges
    # (making the regime vacuous), so the `round(prob * n)` lowest
    # uniforms are hit — at least one whenever surge_prob > 0.
    surge_score = rng.random(n_total)
    surge_hit = np.zeros(n_total, dtype=bool)
    if lifecycle.surge_prob > 0.0:
        n_surge = max(1, int(round(lifecycle.surge_prob * n_total)))
        surge_hit[np.argsort(surge_score, kind="stable")[:n_surge]] = True

    faults, workload = _run_state_machine(config, lifecycle, rng, schedule)
    if lifecycle.surge_workload_factor > 1.0:
        workload = workload * np.where(
            surge_hit, lifecycle.surge_workload_factor, 1.0
        )

    # ---- workload -> delay ----------------------------------------------
    type_amplifier = np.where(schedule.avail_type == "docking", 1.2, 0.85)
    rmc_factor = _RMC_EFFICIENCY[schedule.rmc_id]
    noise = rng.normal(0.0, lifecycle.delay_noise_sd, n_total)
    loaded = workload * rmc_factor
    # Yard saturation: past a critical load every extra unit costs more.
    saturation = loaded + 0.6 * np.maximum(loaded - 2.0, 0.0)
    delay = (
        lifecycle.delay_per_workload * saturation * type_amplifier
        - lifecycle.early_shift_days
        + noise
    )
    delay = np.clip(np.round(delay), -45, 1100).astype(np.int64)

    avails = finalize_avails(config, schedule, ships, delay, late_start)
    rccs = _emit_rccs(config, lifecycle, rng, avails, faults, surge_hit)

    return NavyMaintenanceDataset(
        ships=ships,
        avails=avails,
        rccs=rccs,
        seed=config.seed,
        notes={
            "workload": workload,
            "config": config,
            "lifecycle": lifecycle,
            "n_faults": len(faults.avail),
            "surge_hits": int(surge_hit.sum()),
        },
    )


# ----------------------------------------------------------------------
# the state machine
# ----------------------------------------------------------------------
def _run_state_machine(
    config: SyntheticNmdConfig,
    lifecycle: LifecycleConfig,
    rng: np.random.Generator,
    schedule,
) -> tuple[_FaultLog, np.ndarray]:
    """Walk avails chronologically, evolving per-ship subsystem wear.

    Returns the detected-fault log and the per-avail repair workload
    (sum of repaired wear, scaled by planned scope).
    """
    class_risk = np.array(
        [SHIP_CLASSES[c][2] for c in schedule.ship_class], dtype=np.float64
    )
    age_factor = np.clip(1.0 + 0.03 * (schedule.ship_age - 15), 0.55, 2.4)
    duration_factor = 0.45 + schedule.planned_duration / 420.0

    wear = np.zeros((config.n_ships, N_SUBSYSTEMS), dtype=np.float64)
    last_service_day = np.full(config.n_ships, -1, dtype=np.int64)

    faults = _FaultLog([], [], [], [])
    workload = np.zeros(schedule.n_total, dtype=np.float64)

    # Rows are already in plan_start order (the schedule sorts them).
    for row in range(schedule.n_total):
        ship = int(schedule.ship_rows[row])
        start_day = int(schedule.plan_start[row])
        if last_service_day[ship] < 0:
            elapsed_years = lifecycle.initial_service_years + 0.08 * float(
                schedule.ship_age[row]
            )
        else:
            elapsed_years = max((start_day - last_service_day[ship]) / 365.25, 0.2)

        # degradation while in service
        mean_wear = (
            lifecycle.wear_rate * elapsed_years * class_risk[row] * age_factor[row]
        )
        wear[ship] += rng.gamma(
            lifecycle.wear_shape,
            mean_wear / lifecycle.wear_shape,
            N_SUBSYSTEMS,
        )

        degraded = wear[ship] >= lifecycle.degraded_threshold
        critical = wear[ship] >= lifecycle.critical_threshold

        # stage-dependent detection: inspection first, then execution
        coin_inspection = rng.random(N_SUBSYSTEMS)
        p_inspection = np.where(
            critical,
            lifecycle.detect_critical_inspection,
            np.where(degraded, lifecycle.detect_degraded_inspection, 0.0),
        )
        found_inspection = coin_inspection < p_inspection

        coin_execution = rng.random(N_SUBSYSTEMS)
        p_execution = np.where(
            critical,
            lifecycle.detect_critical_execution,
            np.where(degraded, lifecycle.detect_degraded_execution, 0.0),
        )
        found_execution = ~found_inspection & (coin_execution < p_execution)

        detected = found_inspection | found_execution
        for subsystem in np.flatnonzero(detected):
            stage = (
                STAGE_INSPECTION
                if found_inspection[subsystem]
                else STAGE_EXECUTION
            )
            faults.add(row, int(subsystem), stage, float(wear[ship, subsystem]))

        # repair + return-to-service: detected wear is (mostly) removed;
        # undetected faults persist into the ship's next cycle.
        repaired_wear = float(wear[ship, detected].sum())
        workload[row] = (
            lifecycle.base_workload + repaired_wear
        ) * duration_factor[row]
        wear[ship, detected] *= 1.0 - lifecycle.repair_effect
        last_service_day[ship] = start_day + int(schedule.planned_duration[row])

    return faults, workload


# ----------------------------------------------------------------------
# RCC emission
# ----------------------------------------------------------------------
def _emit_rccs(
    config: SyntheticNmdConfig,
    lifecycle: LifecycleConfig,
    rng: np.random.Generator,
    avails: ColumnTable,
    faults: _FaultLog,
    surge_hit: np.ndarray,
) -> ColumnTable:
    """Expand the fault log into the RCC table (exactly target_n_rccs rows)."""
    n_avails = avails.n_rows
    ship_class = avails["ship_class"]

    fault_avail = np.asarray(faults.avail, dtype=np.int64)
    fault_subsystem = np.asarray(faults.subsystem, dtype=np.int64)
    fault_stage = np.asarray(faults.stage, dtype=np.int64)
    fault_severity = np.asarray(faults.severity, dtype=np.float64)

    # Every avail emits at least a routine inspection finding, even when
    # the lifecycle detected nothing (brand-new ship, light period).
    quiet = np.setdiff1d(
        np.arange(n_avails, dtype=np.int64), np.unique(fault_avail)
    )
    if len(quiet):
        routine_subsystem = np.empty(len(quiet), dtype=np.int64)
        for index, row in enumerate(quiet):
            weights = _SWLIN_FIRST_DIGIT_WEIGHTS[str(ship_class[row])]
            routine_subsystem[index] = rng.choice(N_SUBSYSTEMS, p=weights)
        fault_avail = np.concatenate([fault_avail, quiet])
        fault_subsystem = np.concatenate([fault_subsystem, routine_subsystem])
        fault_stage = np.concatenate(
            [fault_stage, np.full(len(quiet), STAGE_INSPECTION, dtype=np.int64)]
        )
        fault_severity = np.concatenate(
            [fault_severity, np.full(len(quiet), 0.25)]
        )

    # Keep the table grouped by avail (ascending), faults in detection order.
    order = np.argsort(fault_avail, kind="stable")
    fault_avail = fault_avail[order]
    fault_subsystem = fault_subsystem[order]
    fault_stage = fault_stage[order]
    fault_severity = fault_severity[order]
    n_faults = len(fault_avail)

    # ---- apportion target_n_rccs across faults --------------------------
    # Emission weight grows with severity; surge avails burst 10x (or
    # whatever the regime sets).  Largest-remainder keeps the total
    # exact; the first fault of every avail is guaranteed one RCC.
    weight = (0.35 + fault_severity) * np.where(
        surge_hit[fault_avail], lifecycle.surge_multiplier, 1.0
    )
    first_of_avail = np.ones(n_faults, dtype=bool)
    first_of_avail[1:] = fault_avail[1:] != fault_avail[:-1]
    remaining = config.target_n_rccs - int(first_of_avail.sum())
    if remaining < 0:  # pragma: no cover - config validation forbids this
        raise DataGenerationError("need at least one RCC per avail")
    shares = weight / weight.sum() * remaining
    extra = np.floor(shares).astype(np.int64)
    leftovers = np.argsort(shares - extra)[::-1][: remaining - int(extra.sum())]
    extra[leftovers] += 1
    counts = first_of_avail.astype(np.int64) + extra
    assert int(counts.sum()) == config.target_n_rccs

    act_start = np.asarray(avails["act_start"], dtype=np.int64)
    act_end = np.asarray(avails["act_end"], dtype=np.int64)
    plan_duration = np.asarray(avails["planned_duration"], dtype=np.int64)
    status = avails["status"]
    window_end = np.where(status == "ongoing", act_start + plan_duration, act_end)
    window_days = np.maximum(window_end - act_start, 30)

    total = int(counts.sum())
    rcc_avail = np.repeat(fault_avail, counts)
    rcc_stage = np.repeat(fault_stage, counts)
    rcc_subsystem = np.repeat(fault_subsystem, counts)
    rcc_severity = np.repeat(fault_severity, counts)
    rcc_surge = surge_hit[rcc_avail]
    rcc_start_day = act_start[rcc_avail]
    rcc_window = window_days[rcc_avail]
    rcc_planned = plan_duration[rcc_avail]

    # ---- creation times --------------------------------------------------
    # Inspection findings land early (first ~15% of the planned window);
    # execution surprises are spread over the full window; on surged
    # avails the whole burst is compressed into a narrow mid-window
    # slice (inspection-stage detections included — a surge is a
    # delivery event, not a per-stage one).
    inspection_offset = (
        rng.beta(1.2, 4.0, total) * lifecycle.inspection_window_frac * rcc_planned
    )
    execution_offset = rng.beta(1.4, 1.6, total) * rcc_window
    burst_lo, burst_hi = lifecycle.surge_burst
    burst_offset = (
        burst_lo + rng.beta(2.0, 2.0, total) * (burst_hi - burst_lo)
    ) * rcc_window
    create_offset = np.where(
        rcc_stage == STAGE_INSPECTION, inspection_offset, execution_offset
    )
    create_offset = np.where(rcc_surge, burst_offset, create_offset)
    create_date = (rcc_start_day + np.round(create_offset)).astype(np.int64)

    # ---- settlement ------------------------------------------------------
    # Resolution lag grows with severity (critical repairs take longer),
    # truncated at the window end plus a closeout slack.
    lag_scale = lifecycle.settle_scale * (0.6 + 0.5 * rcc_severity)
    settle_lag = np.maximum(
        np.round(rng.gamma(lifecycle.settle_shape, lag_scale)), 1
    ).astype(np.int64)
    settle_date = np.minimum(
        create_date + settle_lag, rcc_start_day + rcc_window + 30
    )
    settle_date = np.maximum(settle_date, create_date + 1)

    # ---- type mix --------------------------------------------------------
    # Inspection findings skew toward growth work; execution surprises
    # toward new/new-growth.
    u = rng.random(total)
    p_growth = np.where(rcc_stage == STAGE_INSPECTION, 0.58, 0.40)
    p_new = np.where(rcc_stage == STAGE_INSPECTION, 0.25, 0.38)
    rcc_type = np.where(
        u < p_growth, "G", np.where(u < p_growth + p_new, "N", "NG")
    ).astype(object)

    # ---- SWLIN codes -----------------------------------------------------
    # The leading digit IS the faulted subsystem — the mix emerges from
    # which subsystems degrade, not from a per-class lookup table.
    first_digit = rcc_subsystem + 1
    mid = rng.integers(0, 100, total)
    sub = rng.integers(0, 100, total)
    item = rng.integers(0, 1000, total)
    swlin = np.array(
        [
            f"{d}{m:02d}-{s:02d}-{i:03d}"
            for d, m, s, i in zip(first_digit, mid, sub, item)
        ],
        dtype=object,
    )

    # ---- amounts ---------------------------------------------------------
    type_scale = np.where(rcc_type == "G", 1.0, np.where(rcc_type == "N", 1.6, 1.3))
    amount = (
        rng.lognormal(mean=lifecycle.amount_mu, sigma=lifecycle.amount_sigma, size=total)
        * type_scale
        * (1.0 + 0.5 * np.sqrt(rcc_severity))
    )
    if lifecycle.amount_shock_prob > 0.0:
        shocked = rng.random(total) < lifecycle.amount_shock_prob
        shock = 1.0 + rng.pareto(lifecycle.amount_shock_alpha, total)
        amount = np.where(shocked, amount * shock, amount)
    amount = amount.round(2)

    return ColumnTable(
        {
            "rcc_id": np.arange(total, dtype=np.int64),
            "avail_id": rcc_avail,
            "rcc_type": rcc_type,
            "swlin": swlin,
            "create_date": create_date,
            "settle_date": settle_date.astype(np.int64),
            "status": np.array(["settled"] * total, dtype=object),
            "amount": amount,
        }
    )
