"""x-fold RCC scaling for the scalability study (Section 5.1).

Following the paper: "a synthetic dataset is created for the RCC table,
where the temporal distribution of the RCCs is kept intact — only the
number of RCCs of each type and SWLIN is increased by x folds".

Scaling replicates every RCC row ``factor`` times with fresh ids; dates,
types and SWLINs are preserved exactly (temporal and categorical
distributions are therefore *identical*, not merely similar), while
settled amounts receive a small multiplicative jitter so the copies are
not byte-identical rows.
"""

from __future__ import annotations

import numpy as np

from repro.data.schema import NavyMaintenanceDataset
from repro.errors import ConfigurationError
from repro.table.table import ColumnTable


def scale_rccs(
    dataset: NavyMaintenanceDataset, factor: int, jitter_amounts: bool = True
) -> NavyMaintenanceDataset:
    """Return a dataset whose RCC table is ``factor`` times larger.

    Parameters
    ----------
    dataset:
        Source dataset (unchanged).
    factor:
        Positive integer replication factor; ``1`` returns a cheap copy.
    jitter_amounts:
        Apply ±2% multiplicative jitter to the replicated amounts
        (deterministic from the dataset seed).
    """
    if factor < 1:
        raise ConfigurationError(f"scaling factor must be >= 1, got {factor}")
    rccs = dataset.rccs
    if factor == 1:
        scaled = rccs
    else:
        n = rccs.n_rows
        tiled: dict[str, np.ndarray] = {}
        for name in rccs.column_names:
            tiled[name] = np.tile(rccs[name], factor)
        tiled["rcc_id"] = np.arange(n * factor, dtype=np.int64)
        if jitter_amounts:
            rng = np.random.default_rng(dataset.seed if dataset.seed is not None else 0)
            jitter = rng.uniform(0.98, 1.02, n * factor)
            jitter[:n] = 1.0  # originals stay exact
            tiled["amount"] = (tiled["amount"] * jitter).round(2)
        scaled = ColumnTable(tiled)
    return NavyMaintenanceDataset(
        ships=dataset.ships,
        avails=dataset.avails,
        rccs=scaled,
        seed=dataset.seed,
        scaling_factor=dataset.scaling_factor * factor,
        notes=dict(dataset.notes),
    )
