"""Train / validation / test splitting (paper Section 5.2.1).

"We first carve out a test set of 30% recent avails as test set.  From
the rest of the 70% of avails, we take a random sample with 25% of the
avails used for validation and 75% used for training."

Only *closed* avails participate (delay is undefined while ongoing).
Recency is measured by planned start date.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.schema import NavyMaintenanceDataset
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class DataSplits:
    """Avail-id membership of each split."""

    train_ids: np.ndarray
    validation_ids: np.ndarray
    test_ids: np.ndarray

    def __post_init__(self) -> None:
        sets = [set(map(int, ids)) for ids in (self.train_ids, self.validation_ids, self.test_ids)]
        if sets[0] & sets[1] or sets[0] & sets[2] or sets[1] & sets[2]:
            raise ConfigurationError("splits overlap")

    @property
    def n_total(self) -> int:
        return len(self.train_ids) + len(self.validation_ids) + len(self.test_ids)

    def summary(self) -> dict[str, int]:
        return {
            "train": len(self.train_ids),
            "validation": len(self.validation_ids),
            "test": len(self.test_ids),
        }


def split_dataset(
    dataset: NavyMaintenanceDataset,
    test_fraction: float = 0.30,
    validation_fraction: float = 0.25,
    seed: int = 42,
) -> DataSplits:
    """Chronological test carve-out + random train/validation split.

    Parameters
    ----------
    dataset:
        Source dataset; only closed avails are used.
    test_fraction:
        Share of the *most recent* closed avails (by planned start) held
        out as the test set.
    validation_fraction:
        Share of the remaining avails sampled (uniformly) for validation.
    seed:
        Seed for the random train/validation draw.
    """
    if not 0.0 < test_fraction < 1.0:
        raise ConfigurationError(f"test_fraction must be in (0, 1), got {test_fraction}")
    if not 0.0 < validation_fraction < 1.0:
        raise ConfigurationError(
            f"validation_fraction must be in (0, 1), got {validation_fraction}"
        )
    closed = dataset.closed_avails()
    if closed.n_rows < 10:
        raise ConfigurationError("need at least 10 closed avails to split")
    order = np.argsort(closed["plan_start"], kind="stable")
    ids_sorted = np.asarray(closed["avail_id"], dtype=np.int64)[order]

    n_test = max(int(round(len(ids_sorted) * test_fraction)), 1)
    test_ids = ids_sorted[-n_test:]
    remainder = ids_sorted[:-n_test]

    rng = np.random.default_rng(seed)
    shuffled = rng.permutation(remainder)
    n_val = max(int(round(len(remainder) * validation_fraction)), 1)
    validation_ids = np.sort(shuffled[:n_val])
    train_ids = np.sort(shuffled[n_val:])
    return DataSplits(
        train_ids=train_ids,
        validation_ids=validation_ids,
        test_ids=np.sort(test_ids),
    )
