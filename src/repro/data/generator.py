"""Synthetic NMD generator.

The real Navy Maintenance Database is Controlled Unclassified Information
and cannot be distributed; the paper itself already evaluates scalability
on a synthetic RCC table whose "temporal distribution is kept intact".
This module extends that idea to the full dataset: it produces a
:class:`~repro.data.schema.NavyMaintenanceDataset` with

* the same cardinalities as the paper's Table 5 (73 ships, 187 closed
  avails, ≈52,959 RCCs),
* a heavy-tailed delay distribution (Figure 2: most avails finish within
  a few months of plan, a few run multiple years, some finish early), and
* a *learnable* causal structure: a latent per-avail "trouble" factor
  drives both the delay and the volume/size/mix of RCCs, so RCC-derived
  features genuinely predict delay — increasingly so as logical time
  advances — while static attributes (ship class, age, planned duration)
  carry a weaker base signal available at t* = 0.

All randomness flows from a single seed for exact reproducibility.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.dates import MISSING_DATE, iso_to_day
from repro.data.schema import NavyMaintenanceDataset
from repro.errors import DataGenerationError
from repro.table.table import ColumnTable

#: Ship classes with sampling weight, displacement (tons), delay-risk factor.
SHIP_CLASSES = {
    "DDG": (0.45, 9_200, 1.00),
    "CG": (0.15, 9_800, 1.25),
    "LCS": (0.20, 3_400, 1.10),
    "LHD": (0.08, 41_000, 1.30),
    "FFG": (0.12, 4_200, 0.85),
}

#: SWLIN leading-digit weights per ship class (subsystem mix differs by
#: hull type; e.g. big-deck LHDs skew toward flight-deck systems).
_SWLIN_FIRST_DIGIT_WEIGHTS = {
    "DDG": [0.04, 0.10, 0.08, 0.14, 0.22, 0.16, 0.08, 0.06, 0.12],
    "CG": [0.05, 0.12, 0.08, 0.15, 0.20, 0.15, 0.08, 0.07, 0.10],
    "LCS": [0.06, 0.08, 0.10, 0.12, 0.18, 0.14, 0.12, 0.10, 0.10],
    "LHD": [0.03, 0.08, 0.07, 0.10, 0.16, 0.14, 0.14, 0.16, 0.12],
    "FFG": [0.05, 0.10, 0.10, 0.15, 0.20, 0.15, 0.10, 0.05, 0.10],
}

_RMC_COUNT = 6

#: Per-maintenance-center delay multiplier (some RMCs run chronically
#: hotter than others — a strong static predictor).
_RMC_EFFICIENCY = np.array([0.80, 0.90, 0.95, 1.05, 1.18, 1.32])


@dataclass(frozen=True)
class SyntheticNmdConfig:
    """Knobs of the synthetic NMD generator.

    Defaults reproduce the paper's Table 5 cardinalities.
    """

    n_ships: int = 73
    n_closed_avails: int = 187
    n_ongoing_avails: int = 5
    target_n_rccs: int = 52_959
    seed: int = 7
    #: Gamma shape/scale of the *latent* multiplicative trouble factor
    #: (mean ``shape * scale`` should stay 1.0; the shape controls how
    #: much of the delay is unexplainable from static attributes alone —
    #: the paper's data is largely predictable at t* = 0, so the latent
    #: coefficient of variation is kept moderate).
    trouble_shape: float = 36.0
    trouble_scale: float = 1.0 / 36.0
    #: Days of delay contributed per unit of trouble.
    delay_per_trouble: float = 95.0
    #: Standard deviation of irreducible delay noise (days).
    delay_noise_sd: float = 12.0
    #: Constant subtracted from the raw delay so low-severity avails
    #: finish on time or early (negative delay) *deterministically* —
    #: early completion is a property of easy jobs, not a coin flip.
    early_shift_days: float = 32.0
    #: Fraction of RCCs surfacing in the opening inspection phase:
    #: ``base + slope * min(trouble, 2)`` (clipped to [0, 0.6]).  This is
    #: what makes DoMD predictable *early* in the execution — the key
    #: realism lever behind the paper's flat Table-7 error profile
    #: (ablated in ``bench_ablation_early_signal.py``).
    inspection_base: float = 0.22
    inspection_slope: float = 0.18
    first_plan_start: str = "2015-01-05"
    last_plan_start: str = "2022-06-30"

    def __post_init__(self) -> None:
        for name in ("n_ships", "n_closed_avails", "target_n_rccs"):
            value = getattr(self, name)
            if value <= 0:
                raise DataGenerationError(
                    f"{name} must be a positive integer, got {value}"
                )
        if self.n_ongoing_avails < 0:
            raise DataGenerationError(
                f"n_ongoing_avails must be >= 0, got {self.n_ongoing_avails}"
            )
        if self.target_n_rccs < self.n_closed_avails + self.n_ongoing_avails:
            raise DataGenerationError(
                f"need at least one RCC per avail: target_n_rccs="
                f"{self.target_n_rccs} < {self.n_closed_avails} closed + "
                f"{self.n_ongoing_avails} ongoing avails"
            )


def generate_dataset(config: SyntheticNmdConfig | None = None) -> NavyMaintenanceDataset:
    """Generate a synthetic NMD snapshot.

    Returns
    -------
    NavyMaintenanceDataset
        Ships, avails (closed + ongoing) and RCC tables.  The latent
        trouble factor used during generation is recorded in
        ``dataset.notes["trouble"]`` for diagnostics (never used by the
        pipeline).
    """
    config = config or SyntheticNmdConfig()
    rng = np.random.default_rng(config.seed)

    ships = _generate_ships(config, rng)
    avails, trouble = _generate_avails(config, rng, ships)
    rccs = _generate_rccs(config, rng, avails, trouble)

    dataset = NavyMaintenanceDataset(
        ships=ships,
        avails=avails,
        rccs=rccs,
        seed=config.seed,
        notes={"trouble": trouble, "config": config},
    )
    return dataset


# ----------------------------------------------------------------------
# ships
# ----------------------------------------------------------------------
def _generate_ships(config: SyntheticNmdConfig, rng: np.random.Generator) -> ColumnTable:
    classes = list(SHIP_CLASSES)
    weights = np.array([SHIP_CLASSES[c][0] for c in classes])
    weights = weights / weights.sum()
    ship_class = rng.choice(classes, size=config.n_ships, p=weights)
    displacement = np.array(
        [SHIP_CLASSES[c][1] for c in ship_class], dtype=np.float64
    ) * rng.uniform(0.95, 1.05, config.n_ships)
    commission_year = rng.integers(1985, 2019, config.n_ships)
    rmc_id = rng.integers(0, _RMC_COUNT, config.n_ships)
    return ColumnTable(
        {
            "ship_id": np.arange(config.n_ships, dtype=np.int64),
            "ship_class": ship_class.astype(object),
            "commission_year": commission_year.astype(np.int64),
            "rmc_id": rmc_id.astype(np.int64),
            "displacement": displacement.round(0),
        }
    )


# ----------------------------------------------------------------------
# avails
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AvailSchedule:
    """Planned avail frames + static attributes, before any outcome.

    Everything here is knowable *before* execution starts: ship
    assignment, plan dates, avail type, planned scope and the static
    modeling attributes.  Both generation paths — the trouble-factor
    sampler below and the lifecycle simulator in
    :mod:`repro.data.lifecycle` — consume the same schedule and differ
    only in how they produce outcomes (delay, actual dates, RCCs).
    Rows are sorted by ``plan_start``.
    """

    ship_rows: np.ndarray
    ship_class: np.ndarray
    displacement: np.ndarray
    rmc_id: np.ndarray
    commission_year: np.ndarray
    plan_start: np.ndarray
    plan_end: np.ndarray
    planned_duration: np.ndarray
    avail_type: np.ndarray
    ship_age: np.ndarray
    start_quarter: np.ndarray
    n_prior: np.ndarray

    @property
    def n_total(self) -> int:
        return len(self.ship_rows)


def schedule_avails(
    config: SyntheticNmdConfig, rng: np.random.Generator, ships: ColumnTable
) -> AvailSchedule:
    """Draw the outcome-free part of the avail table (plans + statics)."""
    n_total = config.n_closed_avails + config.n_ongoing_avails
    # Each ship gets at least one avail; the rest are spread randomly so
    # some ships accumulate a maintenance history (n_prior_avails > 0).
    ship_rows = np.concatenate(
        [
            np.arange(config.n_ships),
            rng.integers(0, config.n_ships, max(n_total - config.n_ships, 0)),
        ]
    )[:n_total]
    rng.shuffle(ship_rows)

    ship_class = ships["ship_class"][ship_rows]
    displacement = ships["displacement"][ship_rows]
    rmc_id = ships["rmc_id"][ship_rows]
    commission_year = ships["commission_year"][ship_rows]

    first_day = iso_to_day(config.first_plan_start)
    last_day = iso_to_day(config.last_plan_start)
    plan_start = np.sort(rng.integers(first_day, last_day, n_total))

    avail_type = rng.choice(["docking", "pierside"], size=n_total, p=[0.55, 0.45])
    planned_duration = np.where(
        avail_type == "docking",
        rng.integers(300, 651, n_total),
        rng.integers(100, 301, n_total),
    ).astype(np.int64)
    plan_end = plan_start + planned_duration

    start_year = np.array(
        [int(d) for d in (plan_start - first_day) // 365], dtype=np.int64
    )
    ship_age = np.maximum((2015 + start_year) - commission_year, 1)
    start_quarter = ((plan_start - first_day) // 91) % 4 + 1

    # prior avails per ship (chronological rank within each ship)
    n_prior = np.zeros(n_total, dtype=np.int64)
    seen: dict[int, int] = {}
    for i, ship in enumerate(ship_rows):
        n_prior[i] = seen.get(int(ship), 0)
        seen[int(ship)] = n_prior[i] + 1

    return AvailSchedule(
        ship_rows=ship_rows,
        ship_class=ship_class,
        displacement=displacement,
        rmc_id=rmc_id,
        commission_year=commission_year,
        plan_start=plan_start,
        plan_end=plan_end,
        planned_duration=planned_duration,
        avail_type=avail_type,
        ship_age=ship_age,
        start_quarter=start_quarter,
        n_prior=n_prior,
    )


def finalize_avails(
    config: SyntheticNmdConfig,
    schedule: AvailSchedule,
    ships: ColumnTable,
    delay: np.ndarray,
    late_start: np.ndarray,
) -> ColumnTable:
    """Assemble the avail table from a schedule + per-avail outcomes.

    ``delay`` is the duration overrun in days (already clipped/rounded);
    ``late_start`` the days each avail starts after its plan.  Ongoing
    avails (the last ``n_ongoing_avails`` rows) get a missing actual end
    and a NaN delay.
    """
    n_total = schedule.n_total
    act_start = schedule.plan_start + late_start
    act_end = act_start + schedule.planned_duration + delay

    status = np.array(["closed"] * n_total, dtype=object)
    if config.n_ongoing_avails:
        ongoing_rows = np.arange(n_total - config.n_ongoing_avails, n_total)
        status[ongoing_rows] = "ongoing"
        act_end[ongoing_rows] = MISSING_DATE

    delay_column = delay.astype(np.float64)
    delay_column[status == "ongoing"] = np.nan

    return ColumnTable(
        {
            "avail_id": np.arange(n_total, dtype=np.int64),
            "ship_id": ships["ship_id"][schedule.ship_rows],
            "status": status,
            "plan_start": schedule.plan_start.astype(np.int64),
            "plan_end": schedule.plan_end.astype(np.int64),
            "act_start": act_start.astype(np.int64),
            "act_end": act_end.astype(np.int64),
            "delay": delay_column,
            "ship_class": schedule.ship_class.astype(object),
            "rmc_id": schedule.rmc_id.astype(np.int64),
            "ship_age": schedule.ship_age.astype(np.int64),
            "planned_duration": schedule.planned_duration,
            "n_prior_avails": schedule.n_prior,
            "avail_type": schedule.avail_type.astype(object),
            "start_quarter": schedule.start_quarter.astype(np.int64),
            "displacement": schedule.displacement,
        }
    )


def _generate_avails(
    config: SyntheticNmdConfig, rng: np.random.Generator, ships: ColumnTable
) -> tuple[ColumnTable, np.ndarray]:
    schedule = schedule_avails(config, rng, ships)
    n_total = schedule.n_total
    ship_class = schedule.ship_class
    planned_duration = schedule.planned_duration
    rmc_id = schedule.rmc_id
    ship_age = schedule.ship_age
    avail_type = schedule.avail_type
    n_prior = schedule.n_prior

    # ---- trouble factor -------------------------------------------------
    # Deterministic severity from static attributes (class risk, age,
    # planned scope, maintenance-center efficiency) times a latent
    # multiplicative factor only observable through RCC churn.
    class_risk = np.array([SHIP_CLASSES[c][2] for c in ship_class])
    age_factor = np.clip(1.0 + 0.03 * (ship_age - 15), 0.55, 2.4)
    duration_factor = 0.45 + planned_duration / 420.0
    rmc_factor = _RMC_EFFICIENCY[rmc_id]
    severity = class_risk * age_factor * duration_factor * rmc_factor
    # Super-linear severity widens the cross-avail delay spread (the
    # paper's Figure 2 spans on-time to multi-year); the constant keeps
    # the mean invariant to the exponent.
    severity = severity**1.7 / 1.55
    latent = rng.gamma(config.trouble_shape, config.trouble_scale, n_total)
    trouble = severity * latent

    # ---- delay ---------------------------------------------------------
    # The delay responds *non-linearly* to trouble: past a critical load
    # the yard saturates and every extra unit of churn costs double
    # (hinge term), and docking avails amplify trouble while pierside
    # work absorbs it (interaction with a static attribute).  Both
    # effects favour tree models over linear fits, as in the paper.
    noise = rng.normal(0.0, config.delay_noise_sd, n_total)
    saturation = trouble + 0.6 * np.maximum(trouble - 1.2, 0.0)
    type_amplifier = np.where(avail_type == "docking", 1.2, 0.85)
    delay = (
        config.delay_per_trouble * saturation * type_amplifier
        - config.early_shift_days
        + 6.0 * (n_prior - 1)
        + noise
    )
    delay = np.clip(np.round(delay), -45, 1100).astype(np.int64)

    # ---- actual dates ---------------------------------------------------
    late_start = (rng.random(n_total) < 0.12) * rng.integers(3, 30, n_total)
    avails = finalize_avails(config, schedule, ships, delay, late_start)
    return avails, trouble


# ----------------------------------------------------------------------
# RCCs
# ----------------------------------------------------------------------
def _generate_rccs(
    config: SyntheticNmdConfig,
    rng: np.random.Generator,
    avails: ColumnTable,
    trouble: np.ndarray,
) -> ColumnTable:
    n_avails = avails.n_rows
    # RCC volume scales with trouble: troubled avails see far more
    # contract churn.  Normalise so the grand total hits the target.
    # Concave coupling: RCC volume saturates with trouble (yards throttle
    # paperwork under load), so delay is *convex* in the observable
    # feature scale — a relation trees capture and linear fits cannot.
    weight = 0.3 + trouble**0.55
    # Largest-remainder apportionment: every avail gets at least one RCC
    # and the total hits the target exactly for any target >= n_avails.
    remaining = config.target_n_rccs - n_avails
    if remaining < 0:
        raise DataGenerationError("need at least one RCC per avail")
    shares = weight / weight.sum() * remaining
    extra = np.floor(shares).astype(np.int64)
    leftovers = np.argsort(shares - extra)[::-1][: remaining - int(extra.sum())]
    extra[leftovers] += 1
    counts = 1 + extra
    assert int(counts.sum()) == config.target_n_rccs and counts.min() >= 1

    act_start = np.asarray(avails["act_start"], dtype=np.int64)
    act_end = np.asarray(avails["act_end"], dtype=np.int64)
    plan_duration = np.asarray(avails["planned_duration"], dtype=np.int64)
    ship_class = avails["ship_class"]
    status = avails["status"]

    total = int(counts.sum())
    rcc_avail = np.repeat(np.arange(n_avails, dtype=np.int64), counts)
    rcc_trouble = np.repeat(trouble, counts)

    # Effective execution window: ongoing avails are observed up to their
    # planned end; closed avails up to their actual end.
    window_end = np.where(status == "ongoing", act_start + plan_duration, act_end)
    window_days = np.maximum(window_end - act_start, 30)
    rcc_window = np.repeat(window_days, counts)
    rcc_start_day = np.repeat(act_start, counts)
    rcc_planned = np.repeat(plan_duration, counts)

    # Creation times: a trouble-scaled share of RCCs surfaces during the
    # opening "inspection phase" (first ~15% of the *planned* window —
    # open-and-inspect findings drive early growth work), the rest are
    # Beta-distributed over the full execution window.  The early burst
    # is what makes DoMD predictable soon after work starts.
    inspection_share = np.clip(
        config.inspection_base
        + config.inspection_slope * np.minimum(rcc_trouble, 2.0),
        0.0,
        0.6,
    )
    is_inspection = rng.random(total) < inspection_share
    inspection_offset = rng.beta(1.2, 4.0, total) * 0.15 * rcc_planned
    execution_offset = rng.beta(1.4, 1.6, total) * rcc_window
    create_offset = np.where(is_inspection, inspection_offset, execution_offset)
    create_date = (rcc_start_day + np.round(create_offset)).astype(np.int64)

    # Settlement: gamma-distributed resolution lag, truncated at the
    # window end plus a closeout slack.
    settle_lag = np.maximum(np.round(rng.gamma(2.0, 25.0, total)), 1).astype(np.int64)
    settle_date = np.minimum(create_date + settle_lag, rcc_start_day + rcc_window + 30)
    settle_date = np.maximum(settle_date, create_date + 1)

    # Type mix tilts toward growth/new-growth on troubled avails.
    tilt = np.clip(rcc_trouble / (1.0 + rcc_trouble), 0.0, 0.8)
    u = rng.random(total)
    p_growth = 0.45 + 0.15 * tilt
    p_new = 0.35 - 0.10 * tilt
    rcc_type = np.where(u < p_growth, "G", np.where(u < p_growth + p_new, "N", "NG")).astype(
        object
    )

    # SWLIN codes: class-specific subsystem mix for the first digit.
    first_digit = np.empty(total, dtype=np.int64)
    rcc_class = np.repeat(ship_class, counts)
    for cls, weights in _SWLIN_FIRST_DIGIT_WEIGHTS.items():
        mask = rcc_class == cls
        n = int(mask.sum())
        if n:
            first_digit[mask] = rng.choice(np.arange(1, 10), size=n, p=weights)
    mid = rng.integers(0, 100, total)
    sub = rng.integers(0, 100, total)
    item = rng.integers(0, 1000, total)
    swlin = np.array(
        [
            f"{d}{m:02d}-{s:02d}-{i:03d}"
            for d, m, s, i in zip(first_digit, mid, sub, item)
        ],
        dtype=object,
    )

    # Settled amounts: lognormal, scaled by type and trouble.
    type_scale = np.where(rcc_type == "G", 1.0, np.where(rcc_type == "N", 1.6, 1.3))
    amount = (
        rng.lognormal(mean=np.log(9_000.0), sigma=0.9, size=total)
        * type_scale
        * (1.0 + 0.5 * rcc_trouble**0.55)
    ).round(2)

    return ColumnTable(
        {
            "rcc_id": np.arange(total, dtype=np.int64),
            "avail_id": rcc_avail,
            "rcc_type": rcc_type,
            "swlin": swlin,
            "create_date": create_date,
            "settle_date": settle_date.astype(np.int64),
            "status": np.array(["settled"] * total, dtype=object),
            "amount": amount,
        }
    )
