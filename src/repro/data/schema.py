"""NMD data model: ships, availabilities, RCCs (paper Section 2).

The dataset is a pair of large tables (plus a ship dimension table):

* **avail table** — one row per maintenance period ("availability"):
  ``a_i = <i, t_planS, t_planE, t_actS, t_actE>`` plus the static
  attributes used for modeling (ship class, RMC, age, planned duration,
  ...).  Delay is ``(actE - actS) - (planE - planS)`` — agnostic of late
  starts by definition.
* **RCC table** — one row per Request for Contract Change:
  ``r_j = <j, a_i, w_j, t_s, t_e, m_j>`` (type, SWLIN, creation date,
  settled date, settled amount).

Record classes are provided for ergonomic single-row access; bulk storage
stays columnar in :class:`~repro.table.table.ColumnTable`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.dates import MISSING_DATE, logical_time
from repro.errors import SchemaError
from repro.table.table import ColumnTable

#: Columns of the avail table, in canonical order.
AVAIL_COLUMNS = (
    "avail_id",
    "ship_id",
    "status",
    "plan_start",
    "plan_end",
    "act_start",
    "act_end",
    "delay",
    # static modeling attributes (the paper's 8 static features)
    "ship_class",
    "rmc_id",
    "ship_age",
    "planned_duration",
    "n_prior_avails",
    "avail_type",
    "start_quarter",
    "displacement",
)

#: Columns of the RCC table, in canonical order.
RCC_COLUMNS = (
    "rcc_id",
    "avail_id",
    "rcc_type",
    "swlin",
    "create_date",
    "settle_date",
    "status",
    "amount",
)

#: Columns of the ship dimension table.
SHIP_COLUMNS = ("ship_id", "ship_class", "commission_year", "rmc_id", "displacement")

#: The 8 static features used for the "base prediction" (Section 5.2.1).
STATIC_FEATURES = (
    "ship_class_code",
    "rmc_id",
    "ship_age",
    "planned_duration",
    "n_prior_avails",
    "avail_type_code",
    "start_quarter",
    "displacement",
)

AVAIL_STATUS_VALUES = ("closed", "ongoing")
AVAIL_TYPE_VALUES = ("docking", "pierside")


@dataclass(frozen=True)
class Avail:
    """One availability record (convenience view over an avail-table row)."""

    avail_id: int
    ship_id: int
    status: str
    plan_start: int
    plan_end: int
    act_start: int
    act_end: int

    @property
    def planned_duration(self) -> int:
        """``s_plan = t_planE - t_planS``."""
        return self.plan_end - self.plan_start

    @property
    def actual_duration(self) -> int | None:
        """``s_act`` or None for ongoing avails."""
        if self.act_end == MISSING_DATE:
            return None
        return self.act_end - self.act_start

    @property
    def delay(self) -> int | None:
        """``d = s_act - s_plan`` (None while ongoing)."""
        actual = self.actual_duration
        if actual is None:
            return None
        return actual - self.planned_duration

    def logical_time_of(self, physical_day: float) -> float:
        """Logical timestamp ``t*`` of a physical day for this avail."""
        return float(
            logical_time(physical_day, self.act_start, self.planned_duration)
        )


@dataclass(frozen=True)
class Rcc:
    """One Request-for-Contract-Change record."""

    rcc_id: int
    avail_id: int
    rcc_type: str
    swlin: str
    create_date: int
    settle_date: int
    amount: float

    @property
    def duration(self) -> int:
        """Days between creation and settlement."""
        return self.settle_date - self.create_date


@dataclass
class NavyMaintenanceDataset:
    """The full NMD snapshot: ship dimension + avail and RCC fact tables."""

    ships: ColumnTable
    avails: ColumnTable
    rccs: ColumnTable
    seed: int | None = None
    scaling_factor: int = 1
    notes: dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for table, expected, label in (
            (self.ships, SHIP_COLUMNS, "ship"),
            (self.avails, AVAIL_COLUMNS, "avail"),
            (self.rccs, RCC_COLUMNS, "RCC"),
        ):
            missing = [c for c in expected if c not in table]
            if missing:
                raise SchemaError(f"{label} table missing columns: {missing}")

    # ------------------------------------------------------------------
    # statistics (Table 5)
    # ------------------------------------------------------------------
    @property
    def n_ships(self) -> int:
        return self.ships.n_rows

    @property
    def n_avails(self) -> int:
        return self.avails.n_rows

    @property
    def n_rccs(self) -> int:
        return self.rccs.n_rows

    def statistics(self) -> dict[str, int]:
        """Dataset statistics in the shape of the paper's Table 5."""
        return {
            "n_ships": self.n_ships,
            "n_avails": self.n_avails,
            "n_closed_avails": int(np.sum(self.avails["status"] == "closed")),
            "n_rccs": self.n_rccs,
            "scaling_factor": self.scaling_factor,
        }

    def fingerprint(self) -> str:
        """Content fingerprint of the snapshot (artifact-cache key).

        Hashes every column of all three tables, so any edit to the
        data — including what-if RCC injection — changes the key.
        """
        from repro.runtime.cache import fingerprint_array, fingerprint_of

        parts: list[object] = []
        for label, table in (
            ("ships", self.ships),
            ("avails", self.avails),
            ("rccs", self.rccs),
        ):
            parts.append(label)
            for name in table.column_names:
                parts.append(name)
                parts.append(fingerprint_array(np.asarray(table[name])))
        return fingerprint_of(*parts)

    # ------------------------------------------------------------------
    # row access
    # ------------------------------------------------------------------
    def avail(self, avail_id: int) -> Avail:
        """Fetch one avail as a record object."""
        ids = self.avails["avail_id"]
        rows = np.flatnonzero(ids == avail_id)
        if len(rows) == 0:
            raise SchemaError(f"no avail with id {avail_id}")
        row = self.avails.row(int(rows[0]))
        return Avail(
            avail_id=row["avail_id"],
            ship_id=row["ship_id"],
            status=row["status"],
            plan_start=row["plan_start"],
            plan_end=row["plan_end"],
            act_start=row["act_start"],
            act_end=row["act_end"],
        )

    def rccs_of(self, avail_id: int) -> ColumnTable:
        """All RCC rows of one avail."""
        return self.rccs.filter(self.rccs["avail_id"] == avail_id)

    def closed_avails(self) -> ColumnTable:
        """Avails with a known delay (the modeling population)."""
        return self.avails.filter(self.avails["status"] == "closed")

    # ------------------------------------------------------------------
    # logical time
    # ------------------------------------------------------------------
    def rccs_with_logical_times(self) -> ColumnTable:
        """RCC table extended with ``t_start``/``t_end`` logical columns.

        Each RCC's creation and settled dates are converted to the
        logical timeline of its avail (Equation 1).  The output also
        carries ``amount`` duplicated so it satisfies the Status Query
        engine's required schema directly.
        """
        avail_cols = self.avails.select(["avail_id", "act_start", "planned_duration"])
        joined = self.rccs.merge(avail_cols, on="avail_id")
        t_start = logical_time(
            joined["create_date"].astype(np.float64),
            joined["act_start"].astype(np.float64),
            joined["planned_duration"].astype(np.float64),
        )
        t_end = logical_time(
            joined["settle_date"].astype(np.float64),
            joined["act_start"].astype(np.float64),
            joined["planned_duration"].astype(np.float64),
        )
        return joined.with_column("t_start", t_start).with_column("t_end", t_end)

    def delays(self) -> np.ndarray:
        """Delay (days) of closed avails, aligned with :meth:`closed_avails`."""
        closed = self.closed_avails()
        return np.asarray(closed["delay"], dtype=np.float64)
