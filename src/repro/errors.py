"""Exception hierarchy for the repro package.

All errors raised intentionally by this library derive from
:class:`ReproError` so callers can catch library failures with a single
``except`` clause while letting programming errors propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SchemaError(ReproError):
    """A table or dataset violates an expected schema."""


class ColumnNotFoundError(SchemaError, KeyError):
    """A requested column does not exist in a table."""

    def __init__(self, name: str, available: tuple[str, ...] = ()):
        self.name = name
        self.available = available
        message = f"column {name!r} not found"
        if available:
            message += f"; available columns: {', '.join(available)}"
        super().__init__(message)

    def __str__(self) -> str:  # KeyError would repr() the message otherwise
        return self.args[0]


class LengthMismatchError(SchemaError):
    """Columns of a single table have inconsistent lengths."""


class IndexCorruptionError(ReproError):
    """An index structure failed an internal invariant check."""


class NotFittedError(ReproError):
    """A model or transformer was used before ``fit`` was called."""


class ConfigurationError(ReproError):
    """An invalid parameter value or combination was supplied."""


class DeadlineExceeded(ReproError):
    """A cooperative per-request deadline expired before completion.

    Raised from checkpoints (:func:`repro.runtime.concurrency.check_deadline`)
    threaded through the estimator and Status Query sweep loops; the
    service layer maps it to a structured ``deadline_exceeded`` error
    envelope instead of letting it propagate to callers.
    """


class DataGenerationError(ReproError):
    """The synthetic data generator was asked for an impossible dataset."""


class WalCorruptionError(ReproError):
    """A write-ahead-log record failed its integrity check.

    Raised only for corruption *before* the tail: a torn or garbled
    final write is expected after a crash and handled leniently by
    :func:`repro.stream.wal.read_wal` (the tail is dropped and counted,
    mirroring ``load_events_lenient``).
    """


class StreamStateError(ReproError):
    """An event stream violated ingestion invariants (e.g. a settle for
    an RCC that never existed reaching the index layer, or a watermark
    moving backwards)."""
