"""Edge-triggered alerting: pending / firing / resolved state machines.

The :class:`AlertManager` is deliberately dumb about *why* an alert
condition holds — burn-rate breaches arrive from the
:class:`~repro.runtime.telemetry.slo.SloEngine`, drift flags from the
:class:`~repro.runtime.telemetry.drift.DriftMonitor` via the hub — and
smart only about *when to say something*:

* a condition that turns active enters **pending**, and is promoted to
  **firing** once it has held for the rule's ``pending_for`` seconds
  (``0`` fires immediately — the drift route, whose monitor already
  applies its own hysteresis);
* a firing condition that clears must *stay* clear for
  ``resolve_after`` seconds before the alert **resolves** — flapping
  inputs around the threshold produce one fire and one resolve, not a
  storm;
* every transition is **edge-triggered**: exactly one ``alert`` event
  (``state`` pending/firing/resolved) lands in the structured event
  log, so the full timeline reconstructs from JSONL alone
  (:func:`alert_timeline`), and the ``repro_alert_*`` gauges expose the
  current states to scrapes.

States are per alert name.  ``resolved`` is a transition, not a resting
state: after emitting it the alert returns to ``inactive``.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Mapping

from repro.errors import ConfigurationError

#: Resting states an alert can be observed in (``resolved`` only ever
#: appears as a transition event).
ALERT_STATES = ("inactive", "pending", "firing")

#: Numeric encoding used by the ``repro_alert_state`` gauge.
ALERT_STATE_CODES = {"inactive": 0, "pending": 1, "firing": 2}


@dataclass(frozen=True)
class AlertRule:
    """Transition timing and metadata of one alert.

    Attributes
    ----------
    name:
        Alert identity (``slo:<objective>`` / ``drift:<channel>:<w>``).
    pending_for:
        Seconds the condition must hold before ``pending`` promotes to
        ``firing``; ``0`` skips the pending dwell entirely.
    resolve_after:
        Seconds the condition must stay clear before a firing alert
        resolves (the flap damper).
    severity:
        Free-form label carried on every event and exposition row.
    """

    name: str
    pending_for: float = 0.0
    resolve_after: float = 0.0
    severity: str = "page"
    description: str = ""

    def __post_init__(self) -> None:
        if self.pending_for < 0 or self.resolve_after < 0:
            raise ConfigurationError("alert rule durations must be >= 0")


class _AlertState:
    __slots__ = (
        "state",
        "active_since",
        "clear_since",
        "since",
        "fired",
        "fields",
    )

    def __init__(self) -> None:
        self.state = "inactive"
        self.active_since: float | None = None
        self.clear_since: float | None = None
        self.since: float | None = None  # ts of the last transition
        self.fired = 0  # lifetime fire count
        self.fields: dict[str, Any] = {}


class AlertManager:
    """Per-name alert state machines over boolean conditions."""

    def __init__(
        self,
        clock: Callable[[], float] = time.time,
        emit: Callable[..., Any] | None = None,
    ):
        self._clock = clock
        self._emit = emit
        self._lock = threading.Lock()
        self._rules: dict[str, AlertRule] = {}
        self._states: dict[str, _AlertState] = {}

    # ------------------------------------------------------------------
    # configuration
    # ------------------------------------------------------------------
    def rule(self, rule: AlertRule) -> AlertRule:
        """Register (or replace) the rule governing one alert name."""
        with self._lock:
            self._rules[rule.name] = rule
        return rule

    def _rule_for(self, name: str) -> AlertRule:
        rule = self._rules.get(name)
        if rule is None:
            rule = self._rules[name] = AlertRule(name=name)
        return rule

    # ------------------------------------------------------------------
    # the condition feed
    # ------------------------------------------------------------------
    def set_condition(
        self,
        name: str,
        active: bool,
        now: float | None = None,
        **fields: Any,
    ) -> str | None:
        """Report the condition's current truth; returns a transition.

        Idempotent per state: repeated ``active=True`` while firing (or
        ``active=False`` while inactive) neither re-emits nor resets
        timers.  ``fields`` (burn rates, z-scores, ...) are remembered
        on the state and stamped onto the next transition event.
        """
        transitions: list[tuple[str, AlertRule, dict[str, Any]]] = []
        with self._lock:
            ts = float(now) if now is not None else self._clock()
            rule = self._rule_for(name)
            state = self._states.get(name)
            if state is None:
                state = self._states[name] = _AlertState()
            if fields:
                state.fields.update(fields)
            transition: str | None = None
            if active:
                state.clear_since = None
                if state.state == "inactive":
                    state.active_since = ts
                    if rule.pending_for <= 0:
                        transition = "firing"
                    else:
                        transition = "pending"
                elif state.state == "pending":
                    assert state.active_since is not None
                    if ts - state.active_since >= rule.pending_for:
                        transition = "firing"
            else:
                state.active_since = None
                if state.state == "pending":
                    # A pending alert that clears never fired; resolve
                    # immediately — there is nothing to damp.
                    transition = "resolved"
                elif state.state == "firing":
                    if state.clear_since is None:
                        state.clear_since = ts
                    if ts - state.clear_since >= rule.resolve_after:
                        transition = "resolved"
            if transition is not None:
                previous = state.state
                state.state = "inactive" if transition == "resolved" else transition
                state.since = ts
                if transition == "firing":
                    state.fired += 1
                if transition == "resolved":
                    state.clear_since = None
                payload = dict(state.fields)
                payload.update(
                    name=name,
                    state=transition,
                    previous=previous,
                    severity=rule.severity,
                )
                transitions.append((transition, rule, payload))
        # Emit outside the lock: sinks (JSONL) do their own locking and
        # must not nest under ours.
        for transition, _rule, payload in transitions:
            if self._emit is not None:
                self._emit("alert", **payload)
        return transitions[0][0] if transitions else None

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def firing(self) -> list[str]:
        with self._lock:
            return sorted(
                name for name, s in self._states.items() if s.state == "firing"
            )

    def healthy(self) -> bool:
        with self._lock:
            return not any(s.state == "firing" for s in self._states.values())

    def status(self) -> dict[str, dict[str, Any]]:
        """Per-alert state for ``health`` and the telemetry snapshot."""
        with self._lock:
            out: dict[str, dict[str, Any]] = {}
            for name in sorted(self._states):
                state = self._states[name]
                rule = self._rule_for(name)
                entry: dict[str, Any] = {
                    "state": state.state,
                    "severity": rule.severity,
                    "fired": state.fired,
                }
                if state.since is not None:
                    entry["since"] = round(state.since, 6)
                if state.fields:
                    entry["context"] = dict(state.fields)
                out[name] = entry
            return out

    def __repr__(self) -> str:
        with self._lock:
            firing = sum(1 for s in self._states.values() if s.state == "firing")
            return f"AlertManager(alerts={len(self._states)}, firing={firing})"


# ----------------------------------------------------------------------
# event-log reconstruction (the ``repro telemetry report`` / ``top`` path)
# ----------------------------------------------------------------------
def alert_timeline(events: Iterable[Mapping[str, Any]]) -> list[dict[str, Any]]:
    """Every alert transition of an event log, in order."""
    return [
        {
            "ts": event.get("ts"),
            "name": event.get("name"),
            "state": event.get("state"),
            "previous": event.get("previous"),
            "severity": event.get("severity"),
        }
        for event in events
        if event.get("kind") == "alert"
    ]


def alert_states_from_events(
    events: Iterable[Mapping[str, Any]],
) -> dict[str, dict[str, Any]]:
    """Final state per alert name, replayed from transition events.

    Mirrors :meth:`AlertManager.status` closely enough for ``repro top``
    to render live and offline views identically: a ``resolved``
    transition rests at ``inactive``, and ``fired`` counts firing
    transitions.
    """
    states: dict[str, dict[str, Any]] = {}
    for event in events:
        if event.get("kind") != "alert":
            continue
        name = str(event.get("name"))
        entry = states.setdefault(
            name, {"state": "inactive", "severity": event.get("severity"), "fired": 0}
        )
        transition = event.get("state")
        entry["state"] = "inactive" if transition == "resolved" else transition
        entry["severity"] = event.get("severity", entry["severity"])
        entry["since"] = event.get("ts")
        if transition == "firing":
            entry["fired"] += 1
    return states
