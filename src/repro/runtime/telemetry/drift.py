"""Timeline drift monitoring over the paper's logical windows.

The framework trains one model per logical-time window (Problem 2);
each window's prediction quality can degrade independently as the fleet
mix or RCC behaviour shifts.  :class:`DriftMonitor` keeps per-
``(channel, window)`` rolling statistics — ``residual`` observations
arrive from :meth:`DomdEstimator.evaluate` (realised delay minus fused
estimate) and ``prediction`` observations from every live query — and
flags a window when the rolling mean departs from a frozen baseline by
more than ``z_threshold`` standard errors.

A baseline is either set explicitly (:meth:`set_baseline`) or frozen
automatically from the first ``baseline_samples`` observations of a
channel/window, after which the rolling window restarts and tracks the
*recent* regime.  Alerts are edge-triggered: :meth:`observe` returns a
:class:`DriftAlert` only on the transition into the drifted state, with
hysteresis at half the threshold before the window is considered
recovered.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Any

from repro.errors import ConfigurationError

_EPS = 1e-9


@dataclass(frozen=True)
class DriftThresholds:
    """Knobs of the drift detector.

    Attributes
    ----------
    z_threshold:
        Mean-shift z-score (in standard errors of the rolling mean)
        above which a window is flagged.
    min_samples:
        Rolling observations required before a verdict is attempted.
    baseline_samples:
        Observations frozen into the baseline when none was set
        explicitly.
    window_size:
        Rolling window length (recent regime).
    """

    z_threshold: float = 4.0
    min_samples: int = 20
    baseline_samples: int = 50
    window_size: int = 200

    def __post_init__(self) -> None:
        if self.z_threshold <= 0:
            raise ConfigurationError("z_threshold must be positive")
        if self.min_samples < 2 or self.baseline_samples < 2 or self.window_size < 2:
            raise ConfigurationError("sample counts must be >= 2")


@dataclass(frozen=True)
class DriftAlert:
    """One flagged shift of a channel/window."""

    channel: str
    window: int
    z: float
    recent_mean: float
    baseline_mean: float
    baseline_std: float
    n_recent: int

    def as_dict(self) -> dict[str, Any]:
        return {
            "channel": self.channel,
            "window": self.window,
            "z": round(self.z, 3),
            "recent_mean": round(self.recent_mean, 6),
            "baseline_mean": round(self.baseline_mean, 6),
            "baseline_std": round(self.baseline_std, 6),
            "n_recent": self.n_recent,
        }


class _WindowState:
    __slots__ = ("recent", "baseline_mean", "baseline_std", "baseline_n", "flagged")

    def __init__(self, window_size: int):
        self.recent: deque[float] = deque(maxlen=window_size)
        self.baseline_mean: float | None = None
        self.baseline_std: float | None = None
        self.baseline_n: int = 0
        self.flagged = False


def _mean_std(values) -> tuple[float, float]:
    n = len(values)
    mean = sum(values) / n
    if n < 2:
        return mean, 0.0
    var = sum((v - mean) ** 2 for v in values) / (n - 1)
    return mean, math.sqrt(var)


class DriftMonitor:
    """Per-(channel, logical-window) rolling drift detection."""

    def __init__(self, thresholds: DriftThresholds | None = None):
        self.thresholds = thresholds or DriftThresholds()
        self._states: dict[tuple[str, int], _WindowState] = {}

    def _state(self, channel: str, window: int) -> _WindowState:
        key = (str(channel), int(window))
        state = self._states.get(key)
        if state is None:
            state = self._states[key] = _WindowState(self.thresholds.window_size)
        return state

    # ------------------------------------------------------------------
    def set_baseline(
        self, channel: str, window: int, mean: float, std: float, n: int = 0
    ) -> None:
        """Pin the expected distribution of one channel/window."""
        state = self._state(channel, window)
        state.baseline_mean = float(mean)
        state.baseline_std = float(std)
        state.baseline_n = int(n)

    def observe(self, channel: str, window: int, value: float) -> DriftAlert | None:
        """Record one observation; returns an alert on a fresh flag."""
        state = self._state(channel, window)
        state.recent.append(float(value))
        if state.baseline_mean is None:
            if len(state.recent) >= self.thresholds.baseline_samples:
                mean, std = _mean_std(state.recent)
                state.baseline_mean, state.baseline_std = mean, std
                state.baseline_n = len(state.recent)
                state.recent.clear()
            return None
        return self._evaluate(channel, window, state)

    def observe_many(self, channel: str, window: int, values) -> list[DriftAlert]:
        """Feed a batch (e.g. all residuals of one evaluation window)."""
        alerts = []
        for value in values:
            alert = self.observe(channel, window, float(value))
            if alert is not None:
                alerts.append(alert)
        return alerts

    def _evaluate(
        self, channel: str, window: int, state: _WindowState
    ) -> DriftAlert | None:
        n = len(state.recent)
        if n < self.thresholds.min_samples:
            return None
        recent_mean, _ = _mean_std(state.recent)
        assert state.baseline_mean is not None and state.baseline_std is not None
        spread = max(state.baseline_std, _EPS)
        z = abs(recent_mean - state.baseline_mean) / (spread / math.sqrt(n))
        if state.flagged:
            if z < self.thresholds.z_threshold / 2.0:
                state.flagged = False
            return None
        if z >= self.thresholds.z_threshold:
            state.flagged = True
            return DriftAlert(
                channel=channel,
                window=int(window),
                z=z,
                recent_mean=recent_mean,
                baseline_mean=state.baseline_mean,
                baseline_std=state.baseline_std,
                n_recent=n,
            )
        return None

    # ------------------------------------------------------------------
    def is_flagged(self, channel: str, window: int) -> bool:
        """Whether one channel/window is currently in the drifted state.

        This is the condition feed of the ``drift:<channel>:<window>``
        alerts: the hub reports it to the
        :class:`~repro.runtime.telemetry.alerts.AlertManager` after
        every observation, so the alert resolves when the monitor's own
        hysteresis (recovery below half the threshold) clears the flag.
        """
        state = self._states.get((str(channel), int(window)))
        return state.flagged if state is not None else False

    def flagged(self) -> list[dict[str, Any]]:
        """Currently drifted channel/windows."""
        return [
            {"channel": channel, "window": window}
            for (channel, window), state in sorted(self._states.items())
            if state.flagged
        ]

    def status(self) -> dict[str, dict[str, Any]]:
        """Full per-channel/window state (the ``health`` payload)."""
        out: dict[str, dict[str, Any]] = {}
        for (channel, window), state in sorted(self._states.items()):
            entry: dict[str, Any] = {
                "n_recent": len(state.recent),
                "flagged": state.flagged,
            }
            if state.recent:
                mean, std = _mean_std(state.recent)
                entry["recent_mean"] = round(mean, 6)
                entry["recent_std"] = round(std, 6)
            if state.baseline_mean is not None:
                entry["baseline_mean"] = round(state.baseline_mean, 6)
                entry["baseline_std"] = round(float(state.baseline_std or 0.0), 6)
                entry["baseline_n"] = state.baseline_n
            out[f"{channel}:{window}"] = entry
        return out

    def healthy(self) -> bool:
        return not any(state.flagged for state in self._states.values())
