"""W3C-traceparent-style trace-context serialisation.

The hub's native ids (``T%08x`` traces, ``S%08x`` spans from one
process-wide counter) are great inside a process but useless across a
process boundary: the WAL appender and the serving follower are often
different programs.  :class:`TraceContext` is the frozen, serialisable
form of "where am I in the causal tree" that crosses those boundaries:

* **thread handoff** — :meth:`TelemetryHub.current_context
  <repro.runtime.telemetry.hub.TelemetryHub.current_context>` captures
  the submitter's context; the pool worker reopens the request trace
  with ``parent=`` so the ``trace_open`` event carries
  ``parent_traceparent`` and the two traces stitch offline.
* **process handoff** — :class:`~repro.stream.wal.WalWriter` stamps the
  appender's serialised context on every WAL record (the ``tp`` field,
  outside the CRC'd event payload); the follower's apply trace links
  back to it, so ``repro telemetry trace`` can walk a served prediction
  all the way to the originating append even when the two halves wrote
  different JSONL files.

The wire format is W3C trace-context *style*::

    00-<32 hex trace-id>-<16 hex span-id>-01

Native ids round-trip exactly (the hex payload is the native counter,
left-zero-padded); foreign ids — anything not ``[TS][0-9a-f]+`` — are
hashed into the field instead, which keeps the header well-formed but
is one-way (documented, and irrelevant for logs this stack wrote
itself).  A zero span field means "no span open", which plain W3C
forbids but an append outside any span legitimately produces.
"""

from __future__ import annotations

import hashlib
import re
from dataclasses import dataclass

_NATIVE_RE = re.compile(r"^([TS])([0-9a-f]+)$")
_HEADER_RE = re.compile(
    r"^00-([0-9a-f]{32})-([0-9a-f]{16})-([0-9a-f]{2})$"
)

#: Minimum hex width of a native id's counter part (``T%08x``).
_NATIVE_WIDTH = 8


def _encode_id(native: str | None, width: int) -> str:
    """Native id -> fixed-width lowercase hex field (zero = absent)."""
    if native is None:
        return "0" * width
    match = _NATIVE_RE.match(native)
    if match is not None and len(match.group(2)) <= width:
        return match.group(2).zfill(width)
    # Foreign id: hash it so the header stays well-formed (one-way).
    digest = hashlib.sha256(native.encode("utf-8")).hexdigest()[:width]
    return digest if int(digest, 16) else "1".zfill(width)


def _decode_id(field: str, prefix: str) -> str | None:
    """Hex field -> native id (``None`` for the all-zero field)."""
    if int(field, 16) == 0:
        return None
    return prefix + field.lstrip("0").zfill(_NATIVE_WIDTH)


@dataclass(frozen=True)
class TraceContext:
    """One position in the causal tree: a trace and (optionally) a span.

    ``trace_id``/``span_id`` are hub-native ids (``T…``/``S…``).  The
    serialised form is :meth:`to_traceparent`; :meth:`from_traceparent`
    round-trips it.  Frozen so a captured context can be handed between
    threads without aliasing the capturing thread's mutable stacks.
    """

    trace_id: str
    span_id: str | None = None

    def to_traceparent(self) -> str:
        """Serialise as ``00-<trace>-<span>-01``."""
        return (
            f"00-{_encode_id(self.trace_id, 32)}"
            f"-{_encode_id(self.span_id, 16)}-01"
        )

    @classmethod
    def from_traceparent(cls, header: object) -> "TraceContext | None":
        """Parse a traceparent header; ``None`` for anything malformed.

        Lenient by design: headers arrive from request payloads and
        on-disk logs, and a bad one must degrade to "no parent", never
        to an exception on the serving path.
        """
        if not isinstance(header, str):
            return None
        match = _HEADER_RE.match(header.strip().lower())
        if match is None:
            return None
        trace_field, span_field = match.group(1), match.group(2)
        trace_id = _decode_id(trace_field, "T")
        if trace_id is None:
            return None
        return cls(trace_id=trace_id, span_id=_decode_id(span_field, "S"))

    def __str__(self) -> str:
        return self.to_traceparent()
