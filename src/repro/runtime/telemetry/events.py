"""Structured event logs: in-memory ring buffer and rotating JSONL files.

Every telemetry event is a flat JSON-serialisable dict with at least
``ts`` (unix seconds), ``kind`` and ``trace_id``.  Kinds emitted by the
stack:

=================  ====================================================
kind               payload
=================  ====================================================
``trace_open``     ``name`` plus caller attributes (request type, ...)
``trace_close``    ``name``
``span_open``      ``name, span_id, parent_id``
``span_close``     ``name, span_id, seconds`` (+ ``error: true``)
``counter``        ``name, delta, total``
``planner_decision``  the :class:`PlanDecision` payload
``drift_alert``    channel/window/z-score of a flagged shift
``error``          ``code, message`` (service error envelopes)
``link``           a causal edge: ``relation`` (``wal_append``/``wal_apply``),
                   optional ``traceparent`` of the far end, seq range
``provenance``     an ok envelope's reproducibility stamp (hashes,
                   watermark, planner design) inside its request trace
``sample``         one sampler tick: flat ``metrics`` mapping, ``interval``
``alert``          an alert transition: ``name, state, previous, severity``
``slo``            budget accounting: ``objective, bad_delta, budget_spent``
=================  ====================================================

The in-memory :class:`MemoryEventLog` bounds retention by event count;
:class:`JsonlEventLog` persists an append-only JSONL file with
size-bounded rotation (``events.jsonl`` -> ``events.jsonl.1`` -> ...).
Both sinks serialise appends internally, so a pool of worker threads
sharing one hub drops or duplicates no events.
"""

from __future__ import annotations

import json
import os
import threading
from collections import deque
from pathlib import Path
from typing import Any, Iterable

from repro.errors import ConfigurationError

Event = dict[str, Any]


class MemoryEventLog:
    """Bounded ring buffer of recent events (always-on default sink)."""

    def __init__(self, max_events: int = 4096):
        if max_events < 1:
            raise ConfigurationError(f"max_events must be >= 1, got {max_events}")
        self.max_events = max_events
        self._events: deque[Event] = deque(maxlen=max_events)
        self._lock = threading.Lock()
        self.total_emitted = 0

    def emit(self, event: Event) -> None:
        # append + count move together so total_emitted is exact even
        # when many worker threads emit concurrently.
        with self._lock:
            self._events.append(event)
            self.total_emitted += 1

    def events(self) -> list[Event]:
        with self._lock:
            return list(self._events)

    def clear(self) -> None:
        with self._lock:
            self._events.clear()

    def close(self) -> None:  # symmetry with the file-backed log
        pass

    def __len__(self) -> int:
        return len(self._events)


class JsonlEventLog:
    """Append-only JSONL event file with size-bounded rotation.

    When appending a line would push the current file past
    ``max_bytes``, the file is rotated: ``path.(n-1)`` -> ``path.n`` for
    ``n`` up to ``max_files``, then ``path`` -> ``path.1`` and a fresh
    file is started.  The oldest rotation falls off the end, so total
    disk use is bounded by roughly ``max_bytes * (max_files + 1)``.
    """

    def __init__(self, path: str | Path, max_bytes: int = 2_000_000, max_files: int = 3):
        if max_bytes < 1024:
            raise ConfigurationError(f"max_bytes must be >= 1024, got {max_bytes}")
        if max_files < 1:
            raise ConfigurationError(f"max_files must be >= 1, got {max_files}")
        self.path = Path(path)
        self.max_bytes = max_bytes
        self.max_files = max_files
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = None
        self._lock = threading.Lock()
        self._size = self.path.stat().st_size if self.path.exists() else 0

    def _rotate(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        for n in range(self.max_files, 0, -1):
            src = self.path if n == 1 else Path(f"{self.path}.{n - 1}")
            dst = Path(f"{self.path}.{n}")
            if src.exists():
                os.replace(src, dst)
        self._size = 0

    def emit(self, event: Event) -> None:
        line = json.dumps(event, separators=(",", ":")) + "\n"
        encoded = len(line.encode("utf-8"))
        with self._lock:
            if self._size and self._size + encoded > self.max_bytes:
                self._rotate()
            if self._handle is None:
                self._handle = open(self.path, "a", encoding="utf-8")
            self._handle.write(line)
            self._handle.flush()
            self._size += encoded

    def events(self) -> list[Event]:
        """Events in the *current* (unrotated) file."""
        self.close()
        if not self.path.exists():
            return []
        return load_events(self.path)

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def __len__(self) -> int:
        return len(self.events())


def load_events(path: str | Path) -> list[Event]:
    """Parse one JSONL event file (skipping blank lines).

    Raises :class:`ConfigurationError` on the first malformed line; use
    :func:`load_events_lenient` when a partially corrupt log (truncated
    write, disk-full run) should still render.
    """
    path = Path(path)
    events: list[Event] = []
    with open(path, encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise ConfigurationError(
                    f"{path}:{lineno}: malformed event line: {exc}"
                ) from None
    return events


def load_events_lenient(path: str | Path) -> tuple[list[Event], int]:
    """Parse one JSONL event file, dropping corrupt/truncated lines.

    Returns ``(events, n_dropped)``: lines that fail to parse — or parse
    to something other than a JSON object — are counted instead of
    raising, so ``repro telemetry report`` can render what survives of a
    log cut short mid-write.
    """
    path = Path(path)
    events: list[Event] = []
    dropped = 0
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError:
                dropped += 1
                continue
            if not isinstance(event, dict):
                dropped += 1
                continue
            events.append(event)
    return events, dropped


def counters_from_events(events: Iterable[Event]) -> dict[str, float]:
    """Summed counter deltas by name over an event stream."""
    totals: dict[str, float] = {}
    for event in events:
        if event.get("kind") == "counter":
            name = event["name"]
            totals[name] = totals.get(name, 0) + event.get("delta", 0)
    return totals
