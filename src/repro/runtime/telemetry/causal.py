"""Causal-chain reconstruction: a served response → its WAL appends.

Everything here works from the JSONL event log alone (the same
``load_events_lenient`` stream that feeds ``repro telemetry report``),
so the reconstruction is identical live (over the hub's ring buffer)
and offline (over a log file).  The chain stitches four event kinds:

* ``trace_open`` — ``parent_traceparent`` hops across threads
  (submitter → pool worker) and processes (request ``traceparent``);
* ``provenance`` — the ok envelope's stamp, logged inside the request
  trace; its ``watermark`` says which WAL records the answer saw;
* ``link`` with ``relation="wal_apply"`` — one per applied batch from
  the ingest side, carrying the applied seq range and the *appender's*
  serialised context (``traceparent``);
* ``link`` with ``relation="wal_append"`` — emitted by the
  :class:`~repro.stream.wal.WalWriter` inside the appender's trace.

:func:`causal_chain` walks response → provenance → applies ≤ watermark
→ appends; :func:`critical_path` reduces one reconstructed trace to its
longest root-to-leaf span chain with per-component self-time — the
``repro telemetry report`` critical-path table.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from repro.runtime.telemetry.events import Event
from repro.runtime.telemetry.exporters import (
    reconstruct_traces,
    render_trace_tree,
)
from repro.runtime.telemetry.tracecontext import TraceContext


def _trace_index(events: Iterable[Event]) -> dict[str, dict[str, Any]]:
    """Span trees by trace id (one pass over ``reconstruct_traces``)."""
    return {trace["trace_id"]: trace for trace in reconstruct_traces(events)}


def _parent_of(events: Sequence[Event], trace_id: str) -> str | None:
    """The parent trace id recorded on a trace's ``trace_open`` event."""
    for event in events:
        if (
            event.get("kind") == "trace_open"
            and event.get("trace_id") == trace_id
        ):
            parent = TraceContext.from_traceparent(
                event.get("parent_traceparent")
            )
            return parent.trace_id if parent is not None else None
    return None


def causal_chain(
    events: Sequence[Event], trace_id: str
) -> dict[str, Any]:
    """Reconstruct the full ingest→index→prediction chain of one trace.

    Returns a dict with:

    * ``trace_id`` / ``found`` — the queried trace and whether the log
      holds it at all;
    * ``request`` — its reconstructed span tree;
    * ``parents`` — submitter trace ids, innermost first (cross-thread
      ``parent_traceparent`` hops, cycles cut);
    * ``provenance`` — the deterministic stamp logged while serving it
      (``None`` for traces that never produced an ok envelope);
    * ``watermark`` — the data vintage the answer saw;
    * ``ingest`` — every ``wal_apply`` batch at or below that
      watermark, each with its apply-trace tree and (when the WAL
      records carried an appender context) the matching ``wal_append``
      link and trace;
    * ``complete`` — ``True`` when the chain reaches at least one
      originating WAL append, or when the response was served from a
      static snapshot (no watermark — nothing upstream to reach).
    """
    traces = _trace_index(events)
    trace = traces.get(trace_id)
    out: dict[str, Any] = {
        "trace_id": trace_id,
        "found": trace is not None,
        "request": trace,
        "parents": [],
        "provenance": None,
        "watermark": None,
        "ingest": [],
        "complete": False,
    }
    if trace is None:
        return out

    seen = {trace_id}
    current: str | None = trace_id
    while current is not None:
        current = _parent_of(events, current)
        if current is None or current in seen:
            break
        seen.add(current)
        out["parents"].append(current)

    for event in events:
        if (
            event.get("kind") == "provenance"
            and event.get("trace_id") == trace_id
        ):
            stamp = {
                key: value
                for key, value in event.items()
                if key not in ("ts", "kind", "trace_id")
            }
            out["provenance"] = stamp
            watermark = stamp.get("watermark")
            if isinstance(watermark, (int, float)):
                out["watermark"] = int(watermark)
            break

    watermark = out["watermark"]
    if watermark is None:
        # Static snapshot serving: there is no stream upstream of the
        # answer, so the chain is complete at the request itself.
        out["complete"] = out["provenance"] is not None
        return out

    appends_by_trace: dict[str, list[Event]] = {}
    for event in events:
        if (
            event.get("kind") == "link"
            and event.get("relation") == "wal_append"
        ):
            appends_by_trace.setdefault(
                str(event.get("trace_id")), []
            ).append(event)

    reached_append = False
    for event in events:
        if event.get("kind") != "link" or event.get("relation") != "wal_apply":
            continue
        first_seq = event.get("first_seq")
        if not isinstance(first_seq, int) or first_seq > watermark:
            continue
        entry: dict[str, Any] = {
            "trace_id": event.get("trace_id"),
            "first_seq": first_seq,
            "last_seq": event.get("last_seq"),
            "watermark": event.get("watermark"),
            "spans": traces.get(str(event.get("trace_id"))),
            "append": None,
        }
        appender = TraceContext.from_traceparent(event.get("traceparent"))
        if appender is not None:
            append_entry: dict[str, Any] = {
                "trace_id": appender.trace_id,
                "span_id": appender.span_id,
            }
            for link in appends_by_trace.get(appender.trace_id, []):
                link_first = link.get("first_seq")
                link_last = link.get("last_seq")
                if (
                    isinstance(link_first, int)
                    and isinstance(link_last, int)
                    and not (
                        link_last < first_seq
                        or (
                            isinstance(entry["last_seq"], int)
                            and link_first > entry["last_seq"]
                        )
                    )
                ):
                    append_entry.update(
                        first_seq=link_first,
                        last_seq=link_last,
                        wal=link.get("wal"),
                        synced=link.get("synced"),
                    )
                    break
            entry["append"] = append_entry
            reached_append = True
        out["ingest"].append(entry)

    out["complete"] = reached_append and out["provenance"] is not None
    return out


def render_causal_chain(chain: dict[str, Any]) -> str:
    """Human-readable rendering of one :func:`causal_chain` result."""
    lines: list[str] = []
    if not chain["found"]:
        return f"trace {chain['trace_id']} not found in event log"
    request = chain["request"]
    lines.append(render_trace_tree(request))
    for parent in chain["parents"]:
        lines.append(f"parented by trace {parent} (submitter)")
    stamp = chain["provenance"]
    if stamp is not None:
        parts = [
            f"{key}={stamp[key]}"
            for key in sorted(stamp)
            if key != "request_type"
        ]
        lines.append("provenance: " + " ".join(parts))
    if chain["watermark"] is None:
        lines.append("served from a static snapshot (no stream upstream)")
    else:
        lines.append(f"data lineage (watermark {chain['watermark']}):")
        for entry in chain["ingest"]:
            lines.append(
                f"  apply {entry['trace_id']} "
                f"seq {entry['first_seq']}..{entry['last_seq']}"
            )
            append = entry["append"]
            if append is None:
                lines.append("    append: (unknown — WAL records carried no tp)")
            else:
                where = (
                    f" seq {append['first_seq']}..{append['last_seq']}"
                    f" wal={append['wal']} synced={append['synced']}"
                    if "first_seq" in append
                    else ""
                )
                lines.append(f"    append {append['trace_id']}{where}")
    lines.append(
        "chain complete: the response traces back to its WAL append(s)"
        if chain["complete"]
        else "chain incomplete: no originating WAL append reachable"
    )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# critical paths (the ``repro telemetry report`` table)
# ----------------------------------------------------------------------
def _self_times(nodes: Sequence[dict[str, Any]], acc: dict[str, float]) -> None:
    for node in nodes:
        seconds = node.get("seconds") or 0.0
        children = node.get("children") or []
        child_sum = sum((c.get("seconds") or 0.0) for c in children)
        component = str(node.get("name") or "?").split(".", 1)[0]
        acc[component] = acc.get(component, 0.0) + max(
            seconds - child_sum, 0.0
        )
        _self_times(children, acc)


def critical_path(trace: dict[str, Any]) -> dict[str, Any]:
    """The longest root-to-leaf span chain of one reconstructed trace.

    At each level the chain descends into the child with the largest
    recorded duration.  ``components`` attributes *self-time* (span
    seconds minus child seconds) to the span-name prefix before the
    first dot — "where inside this trace did the time actually go".
    """
    roots = trace.get("spans") or []
    path: list[dict[str, Any]] = []
    current = max(
        roots, key=lambda n: n.get("seconds") or 0.0, default=None
    )
    while current is not None:
        path.append(
            {"name": current.get("name"), "seconds": current.get("seconds")}
        )
        children = current.get("children") or []
        current = max(
            children, key=lambda n: n.get("seconds") or 0.0, default=None
        )
    components: dict[str, float] = {}
    _self_times(roots, components)
    return {
        "trace_id": trace.get("trace_id"),
        "name": trace.get("name"),
        "seconds": path[0]["seconds"] if path else None,
        "path": path,
        "components": components,
    }


def critical_path_summaries(
    events: Iterable[Event], min_seconds: float = 0.0
) -> list[dict[str, Any]]:
    """Per-trace critical paths, slowest first (report table rows)."""
    summaries = [
        critical_path(trace)
        for trace in reconstruct_traces(events)
        if trace.get("spans")
    ]
    summaries = [
        s
        for s in summaries
        if s["seconds"] is not None and s["seconds"] >= min_seconds
    ]
    summaries.sort(key=lambda s: s["seconds"], reverse=True)
    return summaries
