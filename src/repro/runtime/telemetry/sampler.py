"""The background telemetry sampler: request metrics → time series.

Everything the serving stack measures is request-scoped until it passes
through here.  A :class:`TelemetrySampler` runs on a
:class:`~repro.runtime.concurrency.PeriodicWorker` and, once per tick:

1. **collects** a flat gauge snapshot — counter totals *and* per-tick
   rates from the :class:`~repro.runtime.metrics.MetricsSink`, windowed
   histogram percentiles (delta between consecutive ticks, so a
   latency spike decays when the traffic does, unlike the cumulative
   histograms), drift-flag counts, and every registered source
   (:meth:`ServicePool.sample_gauges
   <repro.core.server.ServicePool.sample_gauges>`,
   :meth:`StreamIngestor.gauges <repro.stream.ingest.StreamIngestor.gauges>`);
2. **records** the snapshot atomically into the
   :class:`~repro.runtime.telemetry.timeseries.TimeSeriesStore`;
3. **persists** it as one ``sample`` event through the hub (ring buffer
   + any JSONL sinks), so the history survives the process and
   ``repro top`` can reconstruct it offline;
4. **evaluates** the :class:`~repro.runtime.telemetry.slo.SloEngine`
   and feeds each objective's breach verdict to the hub's
   :class:`~repro.runtime.telemetry.alerts.AlertManager` as an
   ``slo:<objective>`` condition (emitting ``slo`` budget events when
   bad samples arrived).

The sampler never touches the request path: collection reads locked
snapshots the serving threads already maintain, which is why its
measured overhead on ``bench_pool_throughput`` stays under 2%.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Mapping

from repro.errors import ConfigurationError
from repro.runtime.concurrency import PeriodicWorker
from repro.runtime.metrics import MetricsSink
from repro.runtime.telemetry.histogram import Histogram
from repro.runtime.telemetry.slo import SloEngine
from repro.runtime.telemetry.timeseries import (
    TimeSeriesStore,
    sample_gauge_values,
)

#: Histogram quantiles sampled per tick.
_HIST_QUANTILES = ((0.5, "p50"), (0.99, "p99"))

#: Per-type request histograms (``span.request.<type>``) additionally
#: fold into one synthetic ``span.request`` family series per tick —
#: the series the default latency SLO watches.
_REQUEST_FAMILY = "span.request"


class _HistCursor:
    """Last-seen cumulative state of one histogram (delta computation)."""

    __slots__ = ("bucket_counts", "count", "total")

    def __init__(self) -> None:
        self.bucket_counts: tuple[int, ...] = ()
        self.count = 0
        self.total = 0.0


class TelemetrySampler:
    """Periodic gauge snapshots over one runtime's metrics sink.

    Parameters
    ----------
    sink:
        The runtime's :class:`MetricsSink`; its attached hub supplies
        histograms, the drift monitor, the alert manager and the event
        log.
    store:
        Time-series destination; a fresh bounded store by default.
    interval:
        Seconds between ticks when run via :meth:`start`.
    slo:
        Optional SLO engine evaluated every tick.
    clock:
        Wall-clock override for tests; defaults to ``time.time``.
    emit_events:
        When false the sampler fills the store without emitting
        ``sample`` events (benchmark isolation).
    """

    def __init__(
        self,
        sink: MetricsSink,
        store: TimeSeriesStore | None = None,
        interval: float = 1.0,
        slo: SloEngine | None = None,
        clock: Callable[[], float] = time.time,
        emit_events: bool = True,
    ):
        if interval <= 0:
            raise ConfigurationError(
                f"sampler interval must be positive, got {interval}"
            )
        if sink.telemetry is None:
            raise ConfigurationError("sampler needs a sink with a telemetry hub")
        self.sink = sink
        self.hub = sink.telemetry
        self.store = store if store is not None else TimeSeriesStore()
        self.interval = float(interval)
        self.slo = slo
        self.emit_events = emit_events
        self._clock = clock
        self._sources: list[tuple[str, Callable[[], Mapping[str, Any]]]] = []
        self._prev_counters: dict[str, float] = {}
        self._hist_cursors: dict[str, _HistCursor] = {}
        self._last_tick_ts: float | None = None
        self._worker: PeriodicWorker | None = None
        self.ticks = 0

    # ------------------------------------------------------------------
    # sources
    # ------------------------------------------------------------------
    def add_source(
        self, prefix: str, fn: Callable[[], Mapping[str, Any]]
    ) -> None:
        """Register a gauge source polled every tick.

        ``fn`` returns a status dict; numeric entries (one nested level
        allowed) become ``<prefix>.<key>`` series.  A source that raises
        is skipped for that tick — observability must not crash serving.
        """
        self._sources.append((str(prefix), fn))

    # ------------------------------------------------------------------
    # collection
    # ------------------------------------------------------------------
    def _collect_counters(self, metrics: dict[str, float], dt: float | None) -> None:
        counters = self.sink.counters
        for name, total in counters.items():
            metrics[f"counter.{name}"] = float(total)
            if dt is not None and dt > 0:
                delta = float(total) - self._prev_counters.get(name, 0.0)
                metrics[f"rate.{name}"] = max(delta, 0.0) / dt
        # Derived error-envelope ratio per tick (an SLO input): errors
        # per request over this tick's fresh traffic only.
        if dt is not None:
            req_delta = counters.get("service.requests", 0.0) - self._prev_counters.get(
                "service.requests", 0.0
            )
            err_delta = counters.get("service.errors", 0.0) - self._prev_counters.get(
                "service.errors", 0.0
            )
            if req_delta > 0:
                metrics["ratio.service.error_rate"] = max(err_delta, 0.0) / req_delta
        self._prev_counters = dict(counters)

    def _collect_histograms(self, metrics: dict[str, float]) -> None:
        aggregate: Histogram | None = None
        for name, histogram in self.hub.histograms.items():
            cursor = self._hist_cursors.get(name)
            if cursor is None:
                cursor = self._hist_cursors[name] = _HistCursor()
                cursor.bucket_counts = (0,) * len(histogram.bucket_counts)
            delta_count = histogram.count - cursor.count
            if delta_count <= 0:
                # No fresh observations this tick: emit nothing rather
                # than repeating stale percentiles — SLO windows then
                # see only ticks that carried traffic.
                continue
            delta = Histogram(histogram.bounds)
            delta.bucket_counts = [
                current - previous
                for current, previous in zip(
                    histogram.bucket_counts, cursor.bucket_counts
                )
            ]
            delta.count = delta_count
            delta.total = histogram.total - cursor.total
            # Interpolation cap for the overflow bucket: the cumulative
            # max is the tightest bound we still have for the delta.
            delta.max = histogram.max
            delta.min = histogram.min
            for q, label in _HIST_QUANTILES:
                metrics[f"hist.{name}.{label}"] = delta.percentile(q)
            metrics[f"hist.{name}.count"] = float(delta_count)
            cursor.bucket_counts = tuple(histogram.bucket_counts)
            cursor.count = histogram.count
            cursor.total = histogram.total
            # Fold every request-family delta (``span.request.<type>``)
            # into one synthetic ``span.request`` series — the latency
            # SLO watches requests as a whole, not one type at a time.
            if name == _REQUEST_FAMILY or name.startswith(_REQUEST_FAMILY + "."):
                if aggregate is None:
                    aggregate = Histogram(histogram.bounds)
                    aggregate.max = delta.max
                    aggregate.min = delta.min
                if aggregate.bounds == delta.bounds:
                    aggregate.bucket_counts = [
                        a + b
                        for a, b in zip(
                            aggregate.bucket_counts, delta.bucket_counts
                        )
                    ]
                    aggregate.count += delta.count
                    aggregate.total += delta.total
                    aggregate.max = max(aggregate.max, delta.max)
                    aggregate.min = min(aggregate.min, delta.min)
        if aggregate is not None and aggregate.count > 0:
            for q, label in _HIST_QUANTILES:
                metrics[f"hist.{_REQUEST_FAMILY}.{label}"] = aggregate.percentile(q)
            metrics[f"hist.{_REQUEST_FAMILY}.count"] = float(aggregate.count)

    def collect(self, now: float) -> dict[str, float]:
        """One flat gauge snapshot (pure read; no store/event writes)."""
        metrics: dict[str, float] = {}
        dt = None if self._last_tick_ts is None else now - self._last_tick_ts
        self._collect_counters(metrics, dt)
        self._collect_histograms(metrics)
        metrics["drift.flagged"] = float(len(self.hub.drift.flagged()))
        for prefix, fn in self._sources:
            try:
                raw = fn()
            except Exception:  # noqa: BLE001 — a dead source must not stop the tick
                continue
            metrics.update(sample_gauge_values(raw, prefix))
        return metrics

    # ------------------------------------------------------------------
    # the tick
    # ------------------------------------------------------------------
    def tick(self, now: float | None = None) -> dict[str, float]:
        """Collect, record, persist and evaluate once; returns the gauges."""
        ts = round(float(now) if now is not None else self._clock(), 6)
        metrics = self.collect(ts)
        self._last_tick_ts = ts
        self.store.record_many(ts, metrics)
        if self.emit_events:
            # ``ts`` overrides the hub's own stamp so the persisted
            # event reconstructs the store bit-for-bit (offline parity).
            self.hub.emit("sample", ts=ts, metrics=metrics, interval=self.interval)
        if self.slo is not None:
            for verdict in self.slo.evaluate(ts):
                worst = max(
                    verdict["windows"],
                    key=lambda w: min(w["burn_short"], w["burn_long"]),
                )
                self.hub.alerts.set_condition(
                    f"slo:{verdict['objective']}",
                    verdict["breached"],
                    now=ts,
                    burn_short=worst["burn_short"],
                    burn_long=worst["burn_long"],
                    budget_spent=verdict["budget_spent"],
                )
                if verdict["bad_delta"] and self.emit_events:
                    self.hub.emit(
                        "slo",
                        objective=verdict["objective"],
                        bad_delta=verdict["bad_delta"],
                        bad_total=verdict["bad_total"],
                        samples_total=verdict["samples_total"],
                        budget_spent=verdict["budget_spent"],
                    )
        self.ticks += 1
        return metrics

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start the background worker (ticks once immediately)."""
        if self._worker is not None:
            return
        self._worker = PeriodicWorker(
            self.tick, self.interval, name="repro-sampler"
        )
        self._worker.start()

    def stop(self) -> None:
        """Stop the worker; one final tick captures shutdown state."""
        worker, self._worker = self._worker, None
        if worker is not None:
            worker.stop(final_run=True)

    def status(self) -> dict[str, Any]:
        worker = self._worker
        return {
            "ticks": self.ticks,
            "interval": self.interval,
            "running": worker is not None and worker.is_alive(),
            "worker_errors": worker.errors if worker is not None else 0,
            "series": len(self.store.names()),
        }

    def __enter__(self) -> "TelemetrySampler":
        self.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    def __repr__(self) -> str:
        return (
            f"TelemetrySampler(interval={self.interval}, ticks={self.ticks}, "
            f"series={len(self.store.names())})"
        )
