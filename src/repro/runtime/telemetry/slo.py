"""Declarative SLOs with error budgets and multi-window burn rates.

An :class:`SloObjective` promises that a **target fraction** of sampler
ticks satisfy a predicate over one time series — "p99 request latency
stays under 500 ms for 99% of samples", "watermark lag is zero for 95%
of samples".  The complement of the target is the **error budget**; the
**burn rate** of a window is the fraction of bad samples in that window
divided by the budget, so ``burn == 1`` means "spending the budget
exactly as fast as the SLO allows" and ``burn == 6`` means "the whole
budget gone in 1/6 of the compliance period".

Alerting follows the multi-window pattern: a :class:`BurnRateRule`
breaches only when *both* its short and its long window exceed the
rule's burn threshold — the long window proves the problem is real, the
short window proves it is still happening (and lets the alert resolve
quickly once the bleeding stops).  The
:class:`~repro.runtime.telemetry.sampler.TelemetrySampler` evaluates the
engine every tick and feeds the verdicts to the
:class:`~repro.runtime.telemetry.alerts.AlertManager` as ``slo:<name>``
conditions.

The engine also keeps **cumulative budget accounting** — lifetime
good/bad sample counts and the fraction of budget spent — emitted as
``slo`` events whenever bad samples arrive, so total spend reconstructs
from the event log alone (the ``repro telemetry report`` Alerts
section).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.errors import ConfigurationError
from repro.runtime.telemetry.timeseries import TimeSeriesStore

_EPS = 1e-12


@dataclass(frozen=True)
class BurnRateRule:
    """One (short window, long window, threshold) burn-rate pairing."""

    short_seconds: float
    long_seconds: float
    max_burn_rate: float

    def __post_init__(self) -> None:
        if self.short_seconds <= 0 or self.long_seconds <= 0:
            raise ConfigurationError("burn-rate windows must be positive")
        if self.short_seconds > self.long_seconds:
            raise ConfigurationError(
                "short window must not exceed the long window"
            )
        if self.max_burn_rate <= 0:
            raise ConfigurationError("max_burn_rate must be positive")

    @property
    def label(self) -> str:
        return f"{self.short_seconds:g}s/{self.long_seconds:g}s"


#: Default pairing in the spirit of the classic page/ticket split:
#: a fast-burn rule over 1m/5m and a slow-burn rule over 5m/30m.
DEFAULT_BURN_RULES: tuple[BurnRateRule, ...] = (
    BurnRateRule(short_seconds=60.0, long_seconds=300.0, max_burn_rate=6.0),
    BurnRateRule(short_seconds=300.0, long_seconds=1800.0, max_burn_rate=2.0),
)


@dataclass(frozen=True)
class SloObjective:
    """One service-level objective over a sampled time series.

    A sample is **good** when ``value <= threshold`` (comparison
    ``"le"``) or ``value >= threshold`` (``"ge"``).  ``target`` is the
    promised good fraction; its complement is the error budget.
    """

    name: str
    series: str
    threshold: float
    comparison: str = "le"
    target: float = 0.99
    rules: tuple[BurnRateRule, ...] = field(default=DEFAULT_BURN_RULES)
    description: str = ""

    def __post_init__(self) -> None:
        if self.comparison not in ("le", "ge"):
            raise ConfigurationError(
                f"comparison must be 'le' or 'ge', got {self.comparison!r}"
            )
        if not 0.0 < self.target < 1.0:
            raise ConfigurationError(
                f"target must be in (0, 1), got {self.target}"
            )
        if not self.rules:
            raise ConfigurationError("an objective needs at least one rule")

    @property
    def budget(self) -> float:
        """Allowed bad fraction (1 − target)."""
        return 1.0 - self.target

    def is_good(self, value: float) -> bool:
        if self.comparison == "le":
            return value <= self.threshold
        return value >= self.threshold


def default_objectives(
    latency_threshold_s: float = 0.5,
    error_rate_threshold: float = 0.01,
    max_lag_events: float = 0.0,
    include_ingest: bool = False,
    freshness_lag_s: float = 5.0,
    rules: Sequence[BurnRateRule] = DEFAULT_BURN_RULES,
) -> list[SloObjective]:
    """The serving stack's stock objectives (``repro serve`` defaults).

    * ``request_latency`` — per-tick p99 of ``span.request`` stays under
      the latency threshold for 99% of samples;
    * ``error_rate`` — the per-tick error-envelope ratio stays under
      the error-rate threshold for 99% of samples;
    * ``watermark_lag`` (``include_ingest``) — WAL lag stays at or below
      ``max_lag_events`` for 95% of samples (a looser target: brief lag
      behind a bursty WAL is normal, sustained lag is an incident);
    * ``freshness`` (``include_ingest``) — the oldest unapplied WAL
      record waits at most ``freshness_lag_s`` seconds for 95% of
      samples.  This is the *pending-side* freshness SLI: a stalled
      follower applies nothing (so the event-to-queryable histogram
      goes silent), but this gauge keeps rising until the burn-rate
      rules fire.
    """
    rules = tuple(rules)
    objectives = [
        SloObjective(
            name="request_latency",
            series="hist.span.request.p99",
            threshold=float(latency_threshold_s),
            comparison="le",
            target=0.99,
            rules=rules,
            description="p99 service request latency per sampler tick",
        ),
        SloObjective(
            name="error_rate",
            series="ratio.service.error_rate",
            threshold=float(error_rate_threshold),
            comparison="le",
            target=0.99,
            rules=rules,
            description="error envelopes / requests per sampler tick",
        ),
    ]
    if include_ingest:
        objectives.append(
            SloObjective(
                name="watermark_lag",
                series="ingest.lag_events",
                threshold=float(max_lag_events),
                comparison="le",
                target=0.95,
                rules=rules,
                description="WAL records applied behind the log end",
            )
        )
        objectives.append(
            SloObjective(
                name="freshness",
                series="ingest.freshness_lag_seconds",
                threshold=float(freshness_lag_s),
                comparison="le",
                target=0.95,
                rules=rules,
                description="seconds the oldest unapplied WAL record has waited",
            )
        )
    return objectives


class _Budget:
    __slots__ = ("good", "bad", "last_ts")

    def __init__(self) -> None:
        self.good = 0
        self.bad = 0
        self.last_ts = float("-inf")


class SloEngine:
    """Evaluates objectives against a :class:`TimeSeriesStore`."""

    def __init__(
        self, objectives: Sequence[SloObjective], store: TimeSeriesStore
    ):
        names = [o.name for o in objectives]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate objective names in {names}")
        self.objectives = tuple(objectives)
        self.store = store
        self._budgets = {o.name: _Budget() for o in self.objectives}

    # ------------------------------------------------------------------
    def _burn(self, objective: SloObjective, seconds: float, now: float) -> tuple[float, int]:
        """(burn rate, sample count) over one trailing window."""
        values = self.store.window(objective.series, seconds, now)
        if not values:
            return 0.0, 0
        bad = sum(0 if objective.is_good(v) else 1 for v in values)
        bad_fraction = bad / len(values)
        return bad_fraction / max(objective.budget, _EPS), len(values)

    def _account(self, objective: SloObjective, now: float) -> tuple[int, int]:
        """Fold samples newer than the last accounting into the budget.

        Returns ``(bad_delta, good_delta)`` for event emission.
        """
        budget = self._budgets[objective.name]
        fresh = [
            (ts, value)
            for ts, value in self.store.series(objective.series)
            if ts > budget.last_ts and ts <= now
        ]
        bad_delta = good_delta = 0
        for ts, value in fresh:
            if objective.is_good(value):
                good_delta += 1
            else:
                bad_delta += 1
            budget.last_ts = ts
        budget.good += good_delta
        budget.bad += bad_delta
        return bad_delta, good_delta

    def evaluate(self, now: float) -> list[dict[str, Any]]:
        """One verdict per objective: burn rates, breach flag, budget.

        ``budget_spent`` is the fraction of lifetime error budget
        consumed (``bad / (budget * samples)``); values above 1 mean
        the SLO is already blown for the period the samples cover.
        """
        verdicts: list[dict[str, Any]] = []
        for objective in self.objectives:
            bad_delta, _good_delta = self._account(objective, now)
            budget = self._budgets[objective.name]
            total = budget.good + budget.bad
            spent = (
                budget.bad / max(objective.budget * total, _EPS)
                if total
                else 0.0
            )
            windows: list[dict[str, Any]] = []
            breached = False
            for rule in objective.rules:
                burn_short, n_short = self._burn(
                    objective, rule.short_seconds, now
                )
                burn_long, n_long = self._burn(objective, rule.long_seconds, now)
                rule_breached = (
                    n_short > 0
                    and n_long > 0
                    and burn_short >= rule.max_burn_rate
                    and burn_long >= rule.max_burn_rate
                )
                breached = breached or rule_breached
                windows.append(
                    {
                        "rule": rule.label,
                        "burn_short": round(burn_short, 4),
                        "burn_long": round(burn_long, 4),
                        "threshold": rule.max_burn_rate,
                        "breached": rule_breached,
                    }
                )
            verdicts.append(
                {
                    "objective": objective.name,
                    "series": objective.series,
                    "breached": breached,
                    "windows": windows,
                    "bad_delta": bad_delta,
                    "bad_total": budget.bad,
                    "samples_total": total,
                    "budget_spent": round(spent, 4),
                }
            )
        return verdicts

    def __repr__(self) -> str:
        return f"SloEngine(objectives={[o.name for o in self.objectives]})"
