"""Continuous low-overhead stack profiler over ``sys._current_frames()``.

Span traces show where *instrumented* time goes; the continuous profiler
shows where **all** wall time goes, including code no span wraps.  A
:class:`StackProfiler` wakes on a
:class:`~repro.runtime.concurrency.PeriodicWorker`, snapshots every
thread's current Python frame stack, and aggregates identical stacks
into sample counts — statistical profiling with no tracing hooks, no
per-call overhead, and bounded memory (one counter per distinct stack,
capped at ``max_stacks``).

**Per-worker attribution.**  Each sample is keyed by the *thread name*
(``repro-pool-0`` … for serving workers, ``wal-follower``, ``MainThread``),
so a hot worker shows up as a wide lane of its own in the flamegraph
rather than dissolving into a process-wide blur.

The aggregate renders through the PR-3 interchange formats:
:meth:`collapsed` emits ``thread;frame;frame <µs>`` lines
(``flamegraph.pl`` / speedscope), and :meth:`as_traces` produces the
span-tree shape that :func:`~repro.runtime.profile.chrome_trace`
renders for ``chrome://tracing``.  Sampled self time is
``samples × interval`` — an estimate, as with every sampling profiler.
"""

from __future__ import annotations

import gc
import sys
import threading
from pathlib import Path
from typing import Any, Mapping

from repro.errors import ConfigurationError
from repro.runtime.concurrency import PeriodicWorker

#: Microseconds per second (collapsed-stack values are integer µs).
_US = 1e6


#: Frame labels are memoised per code object: ``Path(...).stem`` costs
#: more than the rest of a sample combined, and the set of live code
#: objects is small and stable.  Cleared wholesale if pathological code
#: generation ever grows it past this bound.
_LABEL_CACHE_LIMIT = 65_536


def _frame_label(frame: Any) -> str:
    """``module.function`` for one frame (file stem, not full path)."""
    code = frame.f_code
    return f"{Path(code.co_filename).stem}.{code.co_name}"


class StackProfiler:
    """Sampling profiler aggregating per-thread collapsed stacks.

    Parameters
    ----------
    interval:
        Seconds between samples (default 20 ms ≈ 50 Hz — low enough to
        stay under the bench overhead bar, high enough to resolve
        10 ms-scale stages).
    max_depth:
        Frames kept per stack (deepest first trimmed).
    max_stacks:
        Bound on distinct ``(thread, stack)`` aggregates; once reached,
        new stacks fold into a ``(truncated)`` bucket so memory stays
        fixed on pathological workloads.
    """

    def __init__(
        self,
        interval: float = 0.02,
        max_depth: int = 64,
        max_stacks: int = 10_000,
    ):
        if interval <= 0:
            raise ConfigurationError(
                f"profiler interval must be positive, got {interval}"
            )
        if max_depth < 1 or max_stacks < 1:
            raise ConfigurationError("max_depth and max_stacks must be >= 1")
        self.interval = float(interval)
        self.max_depth = max_depth
        self.max_stacks = max_stacks
        self._lock = threading.Lock()
        self._counts: dict[tuple[str, tuple[str, ...]], int] = {}
        self._label_cache: dict[Any, str] = {}
        self._thread_names: dict[int, str] = {}
        self._worker: PeriodicWorker | None = None
        self.samples = 0
        self.truncated = 0

    # ------------------------------------------------------------------
    # sampling
    # ------------------------------------------------------------------
    def sample_once(
        self, frames: Mapping[int, Any] | None = None
    ) -> int:
        """Record one snapshot of every thread; returns threads sampled.

        ``frames`` may be injected for tests; by default
        ``sys._current_frames()`` is read.  The profiler's own worker
        thread is excluded — it would otherwise dominate its own
        profile with ``stackprof.sample_once``.
        """
        if frames is None:
            # CPython 3.11's ``_PyThread_CurrentFrames`` materialises
            # frame objects while holding the runtime head lock; if that
            # allocation crosses a GC threshold, the collection path can
            # re-enter runtime locks and deadlock the whole process with
            # the GIL held (observed deterministically on 1-CPU hosts
            # deep into long test runs).  Keep the collector out of the
            # snapshot window.
            gc_was_enabled = gc.isenabled()
            if gc_was_enabled:
                gc.disable()
            try:
                frames = sys._current_frames()
            finally:
                if gc_was_enabled:
                    gc.enable()
        own_ident = threading.get_ident()
        # The ident -> name map only changes when a thread starts or
        # dies; rebuild it from ``threading.enumerate()`` only when an
        # unknown ident shows up instead of on every sample.
        names = self._thread_names
        if any(i not in names for i in frames if i != own_ident):
            names = {t.ident: t.name for t in threading.enumerate()}
            self._thread_names = names
        label_cache = self._label_cache
        if len(label_cache) >= _LABEL_CACHE_LIMIT:
            label_cache.clear()
        keys: list[tuple[str, tuple[str, ...]]] = []
        for ident, frame in frames.items():
            if ident == own_ident:
                continue
            stack: list[str] = []
            node = frame
            while node is not None and len(stack) < self.max_depth:
                code = node.f_code
                label = label_cache.get(code)
                if label is None:
                    label = label_cache[code] = _frame_label(node)
                stack.append(label)
                node = node.f_back
            stack.reverse()
            keys.append((names.get(ident, f"thread-{ident}"), tuple(stack)))
        with self._lock:
            for key in keys:
                if key not in self._counts and len(self._counts) >= self.max_stacks:
                    key = (key[0], ("(truncated)",))
                    self.truncated += 1
                self._counts[key] = self._counts.get(key, 0) + 1
            self.samples += 1
        return len(keys)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._worker is not None:
            return
        self._worker = PeriodicWorker(
            self.sample_once, self.interval, name="repro-stackprof"
        )
        self._worker.start()

    def stop(self) -> None:
        worker, self._worker = self._worker, None
        if worker is not None:
            worker.stop(final_run=False)

    def __enter__(self) -> "StackProfiler":
        self.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------
    def counts(self) -> dict[tuple[str, tuple[str, ...]], int]:
        with self._lock:
            return dict(self._counts)

    def collapsed(self) -> list[str]:
        """Collapsed-stack lines: ``thread;frame;... <estimated µs>``."""
        lines = []
        for (label, stack), count in sorted(self.counts().items()):
            frames = ";".join(
                frame.replace(";", ":") for frame in (label, *stack)
            )
            lines.append(f"{frames} {int(round(count * self.interval * _US))}")
        return lines

    def as_traces(self) -> list[dict[str, Any]]:
        """Aggregated call trees per thread, in the profiler trace shape.

        Compatible with :func:`repro.runtime.profile.chrome_trace` /
        :func:`~repro.runtime.profile.collapsed_stacks`: one trace per
        thread, node ``seconds`` = total sampled time through that
        frame (children included).
        """
        roots: dict[str, dict[str, Any]] = {}
        for (label, stack), count in sorted(self.counts().items()):
            seconds = count * self.interval
            trace = roots.setdefault(
                label, {"trace_id": label, "name": "stack-samples", "spans": []}
            )
            children = trace["spans"]
            for frame in stack:
                node = next((c for c in children if c["name"] == frame), None)
                if node is None:
                    node = {"name": frame, "seconds": 0.0, "children": []}
                    children.append(node)
                node["seconds"] = round(node["seconds"] + seconds, 9)
                children = node["children"]
        return list(roots.values())

    def status(self) -> dict[str, Any]:
        with self._lock:
            distinct = len(self._counts)
            threads = len({label for label, _ in self._counts})
        worker = self._worker
        return {
            "samples": self.samples,
            "distinct_stacks": distinct,
            "threads_seen": threads,
            "truncated": self.truncated,
            "interval": self.interval,
            "running": worker is not None and worker.is_alive(),
        }

    def __repr__(self) -> str:
        status = self.status()
        return (
            f"StackProfiler(samples={status['samples']}, "
            f"stacks={status['distinct_stacks']}, "
            f"threads={status['threads_seen']})"
        )
