"""Fixed-bucket histograms with percentile summaries.

The telemetry layer records latency distributions (service requests,
per-backend Status Queries) into :class:`Histogram` instances with a
fixed, shared bucket layout so p50/p90/p99 summaries and Prometheus
expositions stay comparable across runs and across backends.  Buckets
are cumulative-upper-bound (``le``) style: bucket ``i`` counts values
``bounds[i-1] < v <= bounds[i]``, with a final overflow bucket above
the largest bound.

Percentiles are estimated by linear interpolation inside the winning
bucket — exact enough for the default log-spaced layout, and bounded
memory regardless of how many observations were recorded.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Sequence

from repro.errors import ConfigurationError

#: Default latency buckets in seconds: log-spaced 10us .. 10s.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    1e-5,
    2.5e-5,
    5e-5,
    1e-4,
    2.5e-4,
    5e-4,
    1e-3,
    2.5e-3,
    5e-3,
    1e-2,
    2.5e-2,
    5e-2,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

#: Percentiles every summary reports.
SUMMARY_PERCENTILES = (0.5, 0.9, 0.99)


class Histogram:
    """Bounded-memory distribution sketch over fixed buckets."""

    __slots__ = ("bounds", "bucket_counts", "count", "total", "min", "max")

    def __init__(self, bounds: Sequence[float] = DEFAULT_LATENCY_BUCKETS):
        bounds = tuple(float(b) for b in bounds)
        if not bounds:
            raise ConfigurationError("histogram needs at least one bucket bound")
        if any(b <= a for a, b in zip(bounds, bounds[1:])):
            raise ConfigurationError("histogram bounds must be strictly ascending")
        self.bounds = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)  # +1 overflow (+Inf)
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def record(self, value: float) -> None:
        """Add one observation."""
        value = float(value)
        self.bucket_counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def merge(self, other: "Histogram") -> "Histogram":
        """Fold another histogram with identical bounds into this one."""
        if other.bounds != self.bounds:
            raise ConfigurationError("cannot merge histograms with different bounds")
        for i, c in enumerate(other.bucket_counts):
            self.bucket_counts[i] += c
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        return self

    # ------------------------------------------------------------------
    def percentile(self, q: float) -> float:
        """Estimated value at quantile ``q`` in [0, 1].

        Returns 0.0 for an empty histogram; the overflow bucket
        interpolates toward the observed maximum.
        """
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        target = q * self.count
        cumulative = 0.0
        for i, bucket_count in enumerate(self.bucket_counts):
            if bucket_count and cumulative + bucket_count >= target:
                lo = self.bounds[i - 1] if i > 0 else 0.0
                hi = self.bounds[i] if i < len(self.bounds) else max(self.max, lo)
                fraction = (target - cumulative) / bucket_count
                return lo + (hi - lo) * min(max(fraction, 0.0), 1.0)
            cumulative += bucket_count
        return self.max

    def summary(self) -> dict[str, float]:
        """count / sum / min / max / mean plus p50, p90, p99."""
        if self.count == 0:
            return {"count": 0, "sum": 0.0}
        out: dict[str, float] = {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.total / self.count,
        }
        for q in SUMMARY_PERCENTILES:
            out[f"p{int(q * 100)}"] = self.percentile(q)
        return out

    def as_dict(self) -> dict[str, Any]:
        """Summary plus the cumulative ``le`` bucket table."""
        cumulative = 0
        buckets = []
        for bound, bucket_count in zip(self.bounds, self.bucket_counts):
            cumulative += bucket_count
            buckets.append({"le": bound, "count": cumulative})
        buckets.append({"le": "+Inf", "count": self.count})
        out = self.summary()
        out["buckets"] = buckets
        return out

    def __repr__(self) -> str:
        return f"Histogram(count={self.count}, buckets={len(self.bounds) + 1})"
