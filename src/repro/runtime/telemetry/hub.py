"""The telemetry hub: trace-context propagation and metric fan-out.

One :class:`TelemetryHub` hangs off a
:class:`~repro.runtime.metrics.MetricsSink` (and therefore off every
:class:`~repro.runtime.context.ExecutionContext`).  The sink forwards
span open/close and counter updates; the hub

* assigns **trace ids** and **span ids** — every span event carries
  ``(trace_id, span_id, parent_id)`` so a request can be reconstructed
  end-to-end from the event log alone,
* maintains **histograms** — every span close records its duration into
  ``span.<name>``, and components may :meth:`observe` arbitrary values,
* appends **structured events** to an always-on in-memory ring buffer
  plus any attached sinks (rotating JSONL files),
* hosts the :class:`~repro.runtime.telemetry.drift.DriftMonitor` and
  turns its alerts into ``drift_alert`` events.

Spans opened outside an explicit :meth:`trace` block belong to one
ambient per-thread trace (a CLI run); :class:`DomdService` opens a fresh
trace per request.  The hub reads the wall clock only to timestamp
events — durations still come exclusively from the sink.

**Thread safety.**  One hub may be shared by a pool of worker threads:
trace and span stacks are *thread-local* (each request's trace id stays
with the thread serving it), histogram updates are lock-protected so
``count`` equals the number of observations exactly, and the event ring
serialises appends so no event is dropped or duplicated under load.
"""

from __future__ import annotations

import itertools
import threading
import time
from contextlib import contextmanager
from typing import Any, Callable, Iterator, Sequence

from repro.runtime.telemetry.alerts import AlertManager
from repro.runtime.telemetry.drift import DriftAlert, DriftMonitor
from repro.runtime.telemetry.events import Event, MemoryEventLog
from repro.runtime.telemetry.histogram import DEFAULT_LATENCY_BUCKETS, Histogram
from repro.runtime.telemetry.tracecontext import TraceContext


class TelemetryHub:
    """Trace, histogram and event-log state shared by one runtime."""

    def __init__(
        self,
        buffer: MemoryEventLog | None = None,
        drift: DriftMonitor | None = None,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
        clock: Callable[[], float] = time.time,
    ):
        # `is None` rather than `or`: an *empty* MemoryEventLog is falsy
        # (len() == 0), and a caller-supplied buffer must not be dropped.
        self.buffer = buffer if buffer is not None else MemoryEventLog()
        self.drift = drift if drift is not None else DriftMonitor()
        #: The runtime's alert state machines.  Transitions emit
        #: ``alert`` events through this hub, so they land in the same
        #: ring buffer and JSONL sinks as everything else.
        self.alerts = AlertManager(clock=clock, emit=self.emit)
        self._buckets = tuple(buckets)
        self._clock = clock
        self._lock = threading.Lock()
        self._sinks: list[Any] = []
        self._histograms: dict[str, Histogram] = {}
        # itertools.count.__next__ is a single C call — atomic under the
        # GIL, so id assignment needs no lock even across workers.
        self._ids = itertools.count(1)
        # Trace/span stacks are per thread: each worker's request keeps
        # its own trace id and span parentage (ambient context).
        self._tls = threading.local()

    def _stacks(self) -> "threading.local":
        tls = self._tls
        if not hasattr(tls, "trace_stack"):
            tls.trace_stack = []
            tls.span_stack = []
            tls.ambient_trace = None
        return tls

    # ------------------------------------------------------------------
    # event sinks
    # ------------------------------------------------------------------
    def add_sink(self, sink: Any) -> Any:
        """Attach an extra event sink (e.g. a :class:`JsonlEventLog`)."""
        with self._lock:
            self._sinks.append(sink)
        return sink

    def close(self) -> None:
        for sink in self._sinks:
            sink.close()

    def events(self) -> list[Event]:
        """The buffered (recent) events."""
        return self.buffer.events()

    def emit(self, kind: str, **fields: Any) -> Event:
        """Append one structured event to the buffer and all sinks."""
        event: Event = {
            "ts": round(self._clock(), 6),
            "kind": kind,
            "trace_id": self.trace_id,
        }
        event.update(fields)
        self.buffer.emit(event)
        for sink in self._sinks:
            sink.emit(event)
        return event

    # ------------------------------------------------------------------
    # trace / span ids
    # ------------------------------------------------------------------
    def _next_id(self, prefix: str) -> str:
        return f"{prefix}{next(self._ids):08x}"

    @property
    def trace_id(self) -> str:
        """The active trace id of *this thread* (ambient when none open)."""
        tls = self._stacks()
        if tls.trace_stack:
            return tls.trace_stack[-1]
        if tls.ambient_trace is None:
            tls.ambient_trace = self._next_id("T")
        return tls.ambient_trace

    def current_context(self) -> TraceContext:
        """This thread's position in the causal tree, as a frozen value.

        Captures the active trace id (ambient when none is open) and the
        innermost open span id.  The result is safe to hand to another
        thread or serialise across a process boundary
        (:meth:`TraceContext.to_traceparent`).
        """
        tls = self._stacks()
        span_id = tls.span_stack[-1] if tls.span_stack else None
        return TraceContext(trace_id=self.trace_id, span_id=span_id)

    def open_trace_context(self) -> TraceContext | None:
        """Like :meth:`current_context`, but only for an *explicit* trace.

        Returns ``None`` when this thread has no :meth:`trace` block
        open — the cross-thread propagation hook
        (:meth:`ServicePool.submit <repro.core.server.ServicePool.submit>`)
        links a submitted request to its submitter's trace only when the
        submitter deliberately opened one, not to every thread's ambient
        catch-all trace.
        """
        tls = self._stacks()
        if not tls.trace_stack:
            return None
        return self.current_context()

    @contextmanager
    def trace(
        self, name: str, parent: TraceContext | None = None, **attrs: Any
    ) -> Iterator[str]:
        """Open a fresh trace; spans inside carry its trace id.

        Span parentage does not leak across the boundary: the span stack
        is swapped out for the duration, so a request traced inside an
        outer span still yields a self-contained tree.  Traces are
        per-thread — concurrent workers each hold their own open trace.

        ``parent`` (a :class:`TraceContext` captured on another thread
        or parsed from a request's ``traceparent`` field) stamps
        ``parent_traceparent`` on the ``trace_open`` event, which is how
        cross-thread and cross-process causal chains stitch offline.
        """
        tls = self._stacks()
        trace_id = self._next_id("T")
        tls.trace_stack.append(trace_id)
        outer_spans = tls.span_stack
        tls.span_stack = []
        if parent is not None:
            attrs = {"parent_traceparent": parent.to_traceparent(), **attrs}
        self.emit("trace_open", name=name, **attrs)
        try:
            yield trace_id
        finally:
            self.emit("trace_close", name=name)
            tls.span_stack = outer_spans
            tls.trace_stack.pop()

    def link(
        self,
        relation: str,
        target: TraceContext | str | None = None,
        **fields: Any,
    ) -> Event:
        """Emit a ``link`` event tying this trace to another context.

        ``relation`` names the edge (``wal_append``, ``wal_apply``, …);
        ``target`` — a :class:`TraceContext` or an already-serialised
        traceparent header — is recorded as ``traceparent`` when given.
        The event carries the emitting thread's own trace id and open
        span id, so both endpoints of the edge reconstruct from the log.
        """
        tls = self._stacks()
        if isinstance(target, TraceContext):
            fields = {"traceparent": target.to_traceparent(), **fields}
        elif target is not None:
            fields = {"traceparent": str(target), **fields}
        if tls.span_stack:
            fields.setdefault("span_id", tls.span_stack[-1])
        return self.emit("link", relation=relation, **fields)

    def span_opened(self, name: str) -> str:
        """Sink hook: a span was entered; returns its span id."""
        tls = self._stacks()
        span_id = self._next_id("S")
        parent = tls.span_stack[-1] if tls.span_stack else None
        self.emit("span_open", name=name, span_id=span_id, parent_id=parent)
        tls.span_stack.append(span_id)
        return span_id

    def span_closed(
        self, span_id: str, name: str, seconds: float, error: bool = False
    ) -> None:
        """Sink hook: a span exited; records its latency histogram."""
        tls = self._stacks()
        if tls.span_stack and tls.span_stack[-1] == span_id:
            tls.span_stack.pop()
        fields: dict[str, Any] = {
            "name": name,
            "span_id": span_id,
            "seconds": round(seconds, 9),
        }
        if error:
            fields["error"] = True
        self.emit("span_close", **fields)
        self.observe(f"span.{name}", seconds)

    def counter_changed(self, name: str, delta: float, total: float) -> None:
        """Sink hook: a counter moved."""
        self.emit("counter", name=name, delta=delta, total=total)

    # ------------------------------------------------------------------
    # histograms
    # ------------------------------------------------------------------
    def observe(self, name: str, value: float) -> None:
        """Record one value into the named histogram (created lazily).

        Creation and the record itself happen under the hub lock, so a
        histogram's ``count`` equals the number of observations exactly
        even when many workers observe concurrently.
        """
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = Histogram(self._buckets)
            histogram.record(value)

    def histogram(self, name: str) -> Histogram | None:
        with self._lock:
            return self._histograms.get(name)

    @property
    def histograms(self) -> dict[str, Histogram]:
        with self._lock:
            return dict(self._histograms)

    # ------------------------------------------------------------------
    # drift
    # ------------------------------------------------------------------
    def drift_observe(
        self, channel: str, window: int, value: float
    ) -> DriftAlert | None:
        """Feed the drift monitor; flagged shifts become events."""
        with self._lock:
            alert = self.drift.observe(channel, window, value)
            flagged = self.drift.is_flagged(channel, window)
        if alert is not None:
            self.emit("drift_alert", **alert.as_dict())
        self._sync_drift_alert(channel, window, flagged, alert)
        return alert

    def drift_observe_many(self, channel: str, window: int, values) -> list[DriftAlert]:
        with self._lock:
            alerts = self.drift.observe_many(channel, window, values)
            flagged = self.drift.is_flagged(channel, window)
        for alert in alerts:
            self.emit("drift_alert", **alert.as_dict())
        self._sync_drift_alert(channel, window, flagged, alerts[-1] if alerts else None)
        return alerts

    def _sync_drift_alert(
        self,
        channel: str,
        window: int,
        flagged: bool,
        alert: DriftAlert | None,
    ) -> None:
        """Route the monitor's flag through the alert state machine.

        The monitor applies its own hysteresis (recovery below half the
        z threshold), so the alert rule uses no extra dwell: the flag
        *is* the condition, and the manager contributes only the
        edge-triggered pending/firing/resolved event protocol.
        """
        fields = {"z": round(alert.z, 3)} if alert is not None else {}
        self.alerts.set_condition(
            f"drift:{channel}:{int(window)}", flagged, **fields
        )

    def __repr__(self) -> str:
        return (
            f"TelemetryHub(events={self.buffer.total_emitted}, "
            f"histograms={len(self._histograms)}, sinks={len(self._sinks)})"
        )
