"""The telemetry hub: trace-context propagation and metric fan-out.

One :class:`TelemetryHub` hangs off a
:class:`~repro.runtime.metrics.MetricsSink` (and therefore off every
:class:`~repro.runtime.context.ExecutionContext`).  The sink forwards
span open/close and counter updates; the hub

* assigns **trace ids** and **span ids** — every span event carries
  ``(trace_id, span_id, parent_id)`` so a request can be reconstructed
  end-to-end from the event log alone,
* maintains **histograms** — every span close records its duration into
  ``span.<name>``, and components may :meth:`observe` arbitrary values,
* appends **structured events** to an always-on in-memory ring buffer
  plus any attached sinks (rotating JSONL files),
* hosts the :class:`~repro.runtime.telemetry.drift.DriftMonitor` and
  turns its alerts into ``drift_alert`` events.

Spans opened outside an explicit :meth:`trace` block belong to one
ambient per-hub trace (a CLI run); :class:`DomdService` opens a fresh
trace per request.  The hub reads the wall clock only to timestamp
events — durations still come exclusively from the sink.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Callable, Iterator, Sequence

from repro.runtime.telemetry.drift import DriftAlert, DriftMonitor
from repro.runtime.telemetry.events import Event, MemoryEventLog
from repro.runtime.telemetry.histogram import DEFAULT_LATENCY_BUCKETS, Histogram


class TelemetryHub:
    """Trace, histogram and event-log state shared by one runtime."""

    def __init__(
        self,
        buffer: MemoryEventLog | None = None,
        drift: DriftMonitor | None = None,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
        clock: Callable[[], float] = time.time,
    ):
        self.buffer = buffer or MemoryEventLog()
        self.drift = drift or DriftMonitor()
        self._buckets = tuple(buckets)
        self._clock = clock
        self._sinks: list[Any] = []
        self._histograms: dict[str, Histogram] = {}
        self._id_counter = 0
        self._trace_stack: list[str] = []
        self._span_stack: list[str] = []
        self._ambient_trace: str | None = None

    # ------------------------------------------------------------------
    # event sinks
    # ------------------------------------------------------------------
    def add_sink(self, sink: Any) -> Any:
        """Attach an extra event sink (e.g. a :class:`JsonlEventLog`)."""
        self._sinks.append(sink)
        return sink

    def close(self) -> None:
        for sink in self._sinks:
            sink.close()

    def events(self) -> list[Event]:
        """The buffered (recent) events."""
        return self.buffer.events()

    def emit(self, kind: str, **fields: Any) -> Event:
        """Append one structured event to the buffer and all sinks."""
        event: Event = {
            "ts": round(self._clock(), 6),
            "kind": kind,
            "trace_id": self.trace_id,
        }
        event.update(fields)
        self.buffer.emit(event)
        for sink in self._sinks:
            sink.emit(event)
        return event

    # ------------------------------------------------------------------
    # trace / span ids
    # ------------------------------------------------------------------
    def _next_id(self, prefix: str) -> str:
        self._id_counter += 1
        return f"{prefix}{self._id_counter:08x}"

    @property
    def trace_id(self) -> str:
        """The active trace id (ambient run trace when none is open)."""
        if self._trace_stack:
            return self._trace_stack[-1]
        if self._ambient_trace is None:
            self._ambient_trace = self._next_id("T")
        return self._ambient_trace

    @contextmanager
    def trace(self, name: str, **attrs: Any) -> Iterator[str]:
        """Open a fresh trace; spans inside carry its trace id.

        Span parentage does not leak across the boundary: the span stack
        is swapped out for the duration, so a request traced inside an
        outer span still yields a self-contained tree.
        """
        trace_id = self._next_id("T")
        self._trace_stack.append(trace_id)
        outer_spans = self._span_stack
        self._span_stack = []
        self.emit("trace_open", name=name, **attrs)
        try:
            yield trace_id
        finally:
            self.emit("trace_close", name=name)
            self._span_stack = outer_spans
            self._trace_stack.pop()

    def span_opened(self, name: str) -> str:
        """Sink hook: a span was entered; returns its span id."""
        span_id = self._next_id("S")
        parent = self._span_stack[-1] if self._span_stack else None
        self.emit("span_open", name=name, span_id=span_id, parent_id=parent)
        self._span_stack.append(span_id)
        return span_id

    def span_closed(
        self, span_id: str, name: str, seconds: float, error: bool = False
    ) -> None:
        """Sink hook: a span exited; records its latency histogram."""
        if self._span_stack and self._span_stack[-1] == span_id:
            self._span_stack.pop()
        fields: dict[str, Any] = {
            "name": name,
            "span_id": span_id,
            "seconds": round(seconds, 9),
        }
        if error:
            fields["error"] = True
        self.emit("span_close", **fields)
        self.observe(f"span.{name}", seconds)

    def counter_changed(self, name: str, delta: float, total: float) -> None:
        """Sink hook: a counter moved."""
        self.emit("counter", name=name, delta=delta, total=total)

    # ------------------------------------------------------------------
    # histograms
    # ------------------------------------------------------------------
    def observe(self, name: str, value: float) -> None:
        """Record one value into the named histogram (created lazily)."""
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram(self._buckets)
        histogram.record(value)

    def histogram(self, name: str) -> Histogram | None:
        return self._histograms.get(name)

    @property
    def histograms(self) -> dict[str, Histogram]:
        return dict(self._histograms)

    # ------------------------------------------------------------------
    # drift
    # ------------------------------------------------------------------
    def drift_observe(
        self, channel: str, window: int, value: float
    ) -> DriftAlert | None:
        """Feed the drift monitor; flagged shifts become events."""
        alert = self.drift.observe(channel, window, value)
        if alert is not None:
            self.emit("drift_alert", **alert.as_dict())
        return alert

    def drift_observe_many(self, channel: str, window: int, values) -> list[DriftAlert]:
        alerts = self.drift.observe_many(channel, window, values)
        for alert in alerts:
            self.emit("drift_alert", **alert.as_dict())
        return alerts

    def __repr__(self) -> str:
        return (
            f"TelemetryHub(events={self.buffer.total_emitted}, "
            f"histograms={len(self._histograms)}, sinks={len(self._sinks)})"
        )
