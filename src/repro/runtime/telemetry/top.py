"""``repro top`` — the live/offline terminal dashboard.

Both modes read the same structured event log: live mode re-reads the
JSONL the serving process is appending, offline mode reads it after the
fact, and both funnel through :func:`top_snapshot`, so the numbers on a
live screen and an offline replay are identical by construction (the
acceptance test pins this).  The snapshot rebuilds the time-series
store from ``sample`` events and the alert states from ``alert``
events — nothing in the dashboard requires the serving process to still
exist.

:func:`render_top` draws the text view: one header line, then qps /
latency / error-rate rows with unicode sparkline trends, pool and
ingest gauge rows, and a FIRING section naming active alerts.  With
``--format json`` the raw snapshot is printed instead, which is what
the CI smoke asserts against.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

from repro.runtime.telemetry.alerts import alert_states_from_events
from repro.runtime.telemetry.timeseries import (
    TimeSeriesStore,
    timeseries_from_events,
)

#: Sparkline ramp, lowest to highest.
_SPARK = "▁▂▃▄▅▆▇█"


def sparkline(values: Iterable[float], width: int = 24) -> str:
    """Render values as a fixed-width unicode sparkline.

    The most recent ``width`` values are shown; a flat series renders
    as a run of the lowest glyph (the baseline carries no information,
    only shape does).
    """
    values = [float(v) for v in values][-width:]
    if not values:
        return ""
    lo, hi = min(values), max(values)
    span = hi - lo
    if span <= 0:
        return _SPARK[0] * len(values)
    return "".join(
        _SPARK[min(int((v - lo) / span * len(_SPARK)), len(_SPARK) - 1)]
        for v in values
    )


def _round(value: float | None, digits: int = 3) -> float | None:
    return None if value is None else round(float(value), digits)


def _latest(store: TimeSeriesStore, name: str) -> float | None:
    point = store.latest(name)
    return point[1] if point is not None else None


def _trend(
    store: TimeSeriesStore, name: str, window: float, now: float
) -> list[float]:
    return [round(v, 6) for v in store.window(name, window, now)]


def _prefixed_latest(
    store: TimeSeriesStore, prefix: str
) -> dict[str, float]:
    """Latest value of every ``<prefix>.<key>`` series, untorn."""
    names = [n for n in store.names() if n.startswith(prefix)]
    return {
        name[len(prefix) :]: round(point[1], 6)
        for name, point in store.latest_many(names).items()
    }


def _shard_gauges(store: TimeSeriesStore) -> dict[str, dict[str, float]]:
    """Regroup ``shard.<id>.<gauge>`` series into per-shard maps.

    The ``fleet`` pseudo-shard (the router's global-watermark series)
    rides along under its own key.
    """
    shards: dict[str, dict[str, float]] = {}
    for name, value in _prefixed_latest(store, "shard.").items():
        shard_id, _, gauge = name.partition(".")
        if gauge:
            shards.setdefault(shard_id, {})[gauge] = value
    return shards


def top_snapshot(
    events: Iterable[Mapping[str, Any]],
    now: float | None = None,
    window: float = 300.0,
) -> dict[str, Any]:
    """One dashboard frame, reconstructed from an event log alone.

    ``now`` defaults to the newest sample timestamp in the log — the
    right anchor for both live tails (the file ends "now") and offline
    replays (wall-clock now would put every sample outside the window).
    """
    events = list(events)
    store = timeseries_from_events(events)
    alert_states = alert_states_from_events(events)
    sample_count = sum(1 for e in events if e.get("kind") == "sample")

    latest_ts = [p[0] for name in store.names() if (p := store.latest(name))]
    ts = float(now) if now is not None else (max(latest_ts) if latest_ts else 0.0)

    p99 = _latest(store, "hist.span.request.p99")
    p50 = _latest(store, "hist.span.request.p50")
    fresh_p50 = _latest(store, "hist.freshness.event_to_queryable.p50")
    fresh_p99 = _latest(store, "hist.freshness.event_to_queryable.p99")
    link_counts: dict[str, int] = {}
    for event in events:
        if event.get("kind") == "link":
            relation = str(event.get("relation"))
            link_counts[relation] = link_counts.get(relation, 0) + 1
    snapshot: dict[str, Any] = {
        "ts": round(ts, 6),
        "window_seconds": window,
        "samples": sample_count,
        "series": len(store.names()),
        "qps": {
            "current": _round(_latest(store, "rate.service.requests")),
            "trend": _trend(store, "rate.service.requests", window, ts),
        },
        "latency_ms": {
            "p50": _round(p50 * 1000.0 if p50 is not None else None),
            "p99": _round(p99 * 1000.0 if p99 is not None else None),
            "p99_trend": [
                round(v * 1000.0, 3)
                for v in store.window("hist.span.request.p99", window, ts)
            ],
        },
        "error_rate": {
            "current": _round(_latest(store, "ratio.service.error_rate"), 6),
            "trend": _trend(store, "ratio.service.error_rate", window, ts),
        },
        "pool": _prefixed_latest(store, "pool."),
        "ingest": _prefixed_latest(store, "ingest."),
        "freshness": {
            # Pending side: how long the oldest unapplied record has
            # waited (the stalled-follower signal) ...
            "lag_seconds": _round(
                _latest(store, "ingest.freshness_lag_seconds"), 6
            ),
            # ... and applied side: event-appended→queryable latency of
            # what *did* land (the sampler's histogram series).
            "p50_ms": _round(
                fresh_p50 * 1000.0 if fresh_p50 is not None else None
            ),
            "p99_ms": _round(
                fresh_p99 * 1000.0 if fresh_p99 is not None else None
            ),
            "trend": _trend(
                store, "ingest.freshness_lag_seconds", window, ts
            ),
            # Causal link events tell freshness volume without gauges:
            # one wal_append per appended batch, one wal_apply per
            # appender context applied.
            "appends": link_counts.get("wal_append", 0),
            "applies": link_counts.get("wal_apply", 0),
        },
        "shards": _shard_gauges(store),
        "drift_flagged": _latest(store, "drift.flagged") or 0.0,
        "alerts": {
            "firing": sorted(
                name
                for name, s in alert_states.items()
                if s.get("state") == "firing"
            ),
            "states": alert_states,
        },
    }
    snapshot["ingest"].setdefault("lag_events", None)
    return snapshot


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------
def _fmt(value: Any, digits: int = 2) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.{digits}f}"
    return str(value)


def render_top(snapshot: Mapping[str, Any]) -> str:
    """The text dashboard for one snapshot frame."""
    firing = snapshot["alerts"]["firing"]
    health = f"ALERTS FIRING: {len(firing)}" if firing else "healthy"
    lines = [
        f"repro top — ts={_fmt(snapshot.get('ts'), 1)}  "
        f"samples={snapshot.get('samples', 0)}  "
        f"series={snapshot.get('series', 0)}  [{health}]",
        "",
    ]

    qps = snapshot["qps"]
    lines.append(
        f"  qps        {_fmt(qps['current']):>10}  {sparkline(qps['trend'])}"
    )
    latency = snapshot["latency_ms"]
    lines.append(
        f"  p99 ms     {_fmt(latency['p99']):>10}  "
        f"{sparkline(latency['p99_trend'])}"
    )
    lines.append(f"  p50 ms     {_fmt(latency['p50']):>10}")
    error_rate = snapshot["error_rate"]
    lines.append(
        f"  err ratio  {_fmt(error_rate['current'], 4):>10}  "
        f"{sparkline(error_rate['trend'])}"
    )

    pool = snapshot.get("pool") or {}
    if pool:
        depth = pool.get("queue_depth")
        capacity = pool.get("queue_capacity")
        lines.append(
            f"  pool       depth={_fmt(depth, 0)}/{_fmt(capacity, 0)}"
            f"  peak={_fmt(pool.get('queue_peak'), 0)}"
            f"  workers={_fmt(pool.get('workers'), 0)}"
            f"  saturated={_fmt(pool.get('saturated'), 0)}"
        )

    ingest = snapshot.get("ingest") or {}
    if any(v is not None for v in ingest.values()):
        lines.append(
            f"  ingest     lag={_fmt(ingest.get('lag_events'), 0)}"
            f"  watermark={_fmt(ingest.get('watermark_seq'), 0)}"
            f"  age_s={_fmt(ingest.get('watermark_age_seconds'), 2)}"
        )

    freshness = snapshot.get("freshness") or {}
    if freshness.get("lag_seconds") is not None or freshness.get("applies"):
        lines.append(
            f"  freshness  lag_s={_fmt(freshness.get('lag_seconds'), 3)}"
            f"  p50_ms={_fmt(freshness.get('p50_ms'))}"
            f"  p99_ms={_fmt(freshness.get('p99_ms'))}"
            f"  applies={_fmt(freshness.get('applies'), 0)}"
            f"  appends={_fmt(freshness.get('appends'), 0)}"
            f"  {sparkline(freshness.get('trend') or [])}"
        )

    shards = snapshot.get("shards") or {}
    shard_rows = sorted(
        (s for s in shards if s != "fleet"), key=lambda s: (len(s), s)
    )
    if shard_rows:
        fleet = shards.get("fleet") or {}
        lines.append(
            f"  shards     n={len(shard_rows)}"
            f"  fleet_watermark={_fmt(fleet.get('watermark'), 0)}"
        )
        for shard_id in shard_rows:
            gauges = shards[shard_id]
            up = gauges.get("up")
            state = "up" if up else "DOWN"
            lines.append(
                f"    shard {shard_id:<4} {state:<5}"
                f" depth={_fmt(gauges.get('queue_depth'), 0)}"
                f" inflight={_fmt(gauges.get('in_flight'), 0)}"
                f" done={_fmt(gauges.get('completed'), 0)}"
                f" watermark={_fmt(gauges.get('watermark_seq'), 0)}"
                f" lag={_fmt(gauges.get('lag_events'), 0)}"
            )

    lines.append(f"  drift      flagged={_fmt(snapshot.get('drift_flagged'), 0)}")

    states = snapshot["alerts"]["states"]
    if states:
        lines.append("")
        lines.append("  alerts:")
        for name in sorted(states):
            state = states[name]
            marker = {"firing": "!!", "pending": " ~"}.get(
                state.get("state", ""), "  "
            )
            lines.append(
                f"  {marker} {name:<32} {state.get('state', '?'):<8} "
                f"fired={state.get('fired', 0)}"
            )
    return "\n".join(lines) + "\n"
