"""Exposition formats over the telemetry state.

Three consumers, three formats:

* :func:`prometheus_text` — Prometheus text exposition (counters,
  histograms with cumulative ``le`` buckets, drift/cache gauges) for a
  scrape endpoint or the service ``metrics`` request.
* :func:`telemetry_snapshot` — one JSON-serialisable dict with counter
  totals, histogram summaries (p50/p90/p99), cache hit ratio and drift
  status; the machine-readable twin of the Prometheus text.
* :func:`render_report` — a human-readable run report reconstructed
  *purely from a JSONL event log*: per-trace span trees plus a latency
  histogram table (what ``repro telemetry report`` prints).
* :func:`collapsed_from_events` / :func:`chrome_trace_from_events` —
  profiler interchange formats (flamegraph collapsed stacks, Chrome
  ``traceEvents`` JSON) rebuilt from the same event log; the
  ``repro telemetry profile`` path.  The rendering itself lives in
  :mod:`repro.runtime.profile`.
"""

from __future__ import annotations

import re
from typing import Any, Iterable, Sequence

from repro.runtime.metrics import MetricsSink
from repro.runtime.telemetry.alerts import ALERT_STATE_CODES, alert_timeline
from repro.runtime.telemetry.events import Event, counters_from_events
from repro.runtime.telemetry.histogram import Histogram

_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")


def _metric_name(name: str) -> str:
    return "repro_" + _NAME_RE.sub("_", name)


def _cache_ratio(counters: dict[str, float]) -> float | None:
    hits = counters.get("cache.hits", 0)
    misses = counters.get("cache.misses", 0)
    if hits + misses == 0:
        return None
    return hits / (hits + misses)


#: Pool-status keys exported as ``repro_pool_*`` gauges, in order.
_POOL_GAUGES = (
    ("workers", "configured worker threads"),
    ("queue_depth", "requests waiting in the bounded queue"),
    ("queue_capacity", "bounded queue capacity"),
    ("queue_peak", "peak queue depth since the last sampler tick"),
    ("in_flight", "requests currently executing"),
    ("saturated", "1 while the queue is full"),
    ("accepted", "requests accepted into the queue"),
    ("rejected", "requests rejected with an overloaded envelope"),
    ("deadline_exceeded", "requests cancelled by their deadline"),
    ("completed", "requests fully served"),
)


#: Ingest-status keys exported as ``repro_ingest_*`` gauges, in order.
_INGEST_GAUGES = (
    ("watermark_seq", "highest WAL seq fully applied to store and indexes"),
    ("wal_end_seq", "highest WAL seq observed in the log"),
    ("lag_events", "WAL records not yet applied (wal_end - watermark)"),
    ("freshness_lag_seconds", "seconds the oldest unapplied WAL record has waited"),
    ("watermark_age_seconds", "seconds since the watermark last advanced"),
    ("applied_batches", "WAL batches applied"),
    ("applied_events", "WAL events applied"),
    ("skipped_duplicates", "WAL records skipped as already applied"),
    ("deferred_events", "events buffered awaiting their rcc_created"),
    ("orphans_pending", "RCC ids with buffered out-of-order events"),
    ("n_rccs", "RCC rows in the streaming store"),
)


def prometheus_text(
    sink: MetricsSink,
    pool_status: dict[str, Any] | None = None,
    ingest_status: dict[str, Any] | None = None,
    shard_status: dict[str, dict[str, Any]] | None = None,
) -> str:
    """Render the sink + hub state in Prometheus text format.

    ``pool_status`` (a :meth:`ServicePool.status
    <repro.core.server.ServicePool.status>` dict) adds the serving-pool
    saturation gauges to the exposition.  ``ingest_status`` (a
    :meth:`StreamIngestor.status
    <repro.stream.ingest.StreamIngestor.status>` dict) adds the
    ``repro_ingest_*`` streaming gauges, including per-design rebuild
    counts.  ``shard_status`` (a :meth:`ShardRouter.sample_gauges
    <repro.serve.router.ShardRouter.sample_gauges>` dict — one flat
    numeric map per shard id, plus an optional ``fleet`` entry) adds
    ``repro_shard_*{shard="<id>"}`` gauges and ``repro_fleet_*``
    fleet-wide gauges.
    """
    lines: list[str] = []
    counters = sink.counters
    for name in sorted(counters):
        metric = _metric_name(name) + "_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {counters[name]:g}")
    hub = sink.telemetry
    if hub is not None:
        for name, histogram in sorted(hub.histograms.items()):
            metric = _metric_name(name) + "_seconds"
            lines.append(f"# TYPE {metric} histogram")
            cumulative = 0
            for bound, count in zip(histogram.bounds, histogram.bucket_counts):
                cumulative += count
                lines.append(f'{metric}_bucket{{le="{bound:g}"}} {cumulative}')
            lines.append(f'{metric}_bucket{{le="+Inf"}} {histogram.count}')
            lines.append(f"{metric}_sum {histogram.total:.9g}")
            lines.append(f"{metric}_count {histogram.count}")
        for key, state in hub.drift.status().items():
            channel, window = key.rsplit(":", 1)
            lines.append(
                f'repro_drift_flagged{{channel="{channel}",window="{window}"}} '
                f"{int(state['flagged'])}"
            )
        alert_status = hub.alerts.status()
        if alert_status:
            lines.append(
                "# HELP repro_alert_state 0=inactive 1=pending 2=firing"
            )
            lines.append("# TYPE repro_alert_state gauge")
            firing = 0
            for name, state in alert_status.items():
                code = ALERT_STATE_CODES.get(state["state"], 0)
                firing += int(code == 2)
                lines.append(
                    f'repro_alert_state{{name="{name}",'
                    f'severity="{state["severity"]}"}} {code}'
                )
                lines.append(
                    f'repro_alert_fired_total{{name="{name}"}} {state["fired"]}'
                )
            lines.append("# TYPE repro_alerts_firing gauge")
            lines.append(f"repro_alerts_firing {firing}")
    ratio = _cache_ratio(counters)
    if ratio is not None:
        lines.append("# TYPE repro_cache_hit_ratio gauge")
        lines.append(f"repro_cache_hit_ratio {ratio:.6f}")
    if pool_status is not None:
        for key, help_text in _POOL_GAUGES:
            if key not in pool_status:
                continue
            metric = f"repro_pool_{key}"
            lines.append(f"# HELP {metric} {help_text}")
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric} {float(pool_status[key]):g}")
    if ingest_status is not None:
        for key, help_text in _INGEST_GAUGES:
            value = ingest_status.get(key)
            if value is None:
                continue
            metric = f"repro_ingest_{key}"
            lines.append(f"# HELP {metric} {help_text}")
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric} {float(value):g}")
        for design in sorted(ingest_status.get("rebuilds", {})):
            lines.append(
                f'repro_ingest_rebuilds{{design="{design}"}} '
                f"{float(ingest_status['rebuilds'][design]):g}"
            )
        for design in sorted(ingest_status.get("staged", {})):
            lines.append(
                f'repro_ingest_staged_rows{{design="{design}"}} '
                f"{float(ingest_status['staged'][design]):g}"
            )
    if shard_status is not None:
        # Group samples per metric (the text format wants one TYPE line
        # followed by every labelled sample of that metric).
        shard_keys = sorted(
            {
                key
                for shard_id, gauges in shard_status.items()
                if shard_id != "fleet"
                for key, value in gauges.items()
                if isinstance(value, (int, float))
            }
        )
        for key in shard_keys:
            metric = "repro_shard_" + _NAME_RE.sub("_", key)
            lines.append(f"# TYPE {metric} gauge")
            for shard_id in sorted(
                (s for s in shard_status if s != "fleet"),
                key=lambda s: (len(s), s),
            ):
                value = shard_status[shard_id].get(key)
                if isinstance(value, (int, float)):
                    lines.append(
                        f'{metric}{{shard="{shard_id}"}} {float(value):g}'
                    )
        for key in sorted(shard_status.get("fleet", {})):
            value = shard_status["fleet"][key]
            if not isinstance(value, (int, float)):
                continue
            metric = "repro_fleet_" + _NAME_RE.sub("_", key)
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric} {float(value):g}")
    return "\n".join(lines) + "\n"


def telemetry_snapshot(
    sink: MetricsSink,
    pool_status: dict[str, Any] | None = None,
    ingest_status: dict[str, Any] | None = None,
    shard_status: dict[str, dict[str, Any]] | None = None,
) -> dict[str, Any]:
    """JSON snapshot: counters, histogram summaries, cache, drift.

    ``pool_status`` adds a ``pool`` block mirroring the
    ``repro_pool_*`` gauges of :func:`prometheus_text`;
    ``ingest_status`` likewise adds an ``ingest`` block, and
    ``shard_status`` a per-shard ``shards`` block.
    """
    counters = sink.counters
    out: dict[str, Any] = {
        "counters": counters,
        "histograms": {},
        "cache": {
            "hits": counters.get("cache.hits", 0),
            "misses": counters.get("cache.misses", 0),
            "hit_ratio": _cache_ratio(counters),
        },
    }
    hub = sink.telemetry
    if hub is not None:
        out["histograms"] = {
            name: histogram.summary()
            for name, histogram in sorted(hub.histograms.items())
        }
        out["drift"] = hub.drift.status()
        out["alerts"] = hub.alerts.status()
        out["events_buffered"] = len(hub.buffer)
    if pool_status is not None:
        out["pool"] = dict(pool_status)
    if ingest_status is not None:
        out["ingest"] = dict(ingest_status)
    if shard_status is not None:
        out["shards"] = {
            shard_id: dict(gauges)
            for shard_id, gauges in shard_status.items()
        }
    return out


# ----------------------------------------------------------------------
# event-log reconstruction (the ``repro telemetry report`` path)
# ----------------------------------------------------------------------
def reconstruct_traces(events: Iterable[Event]) -> list[dict[str, Any]]:
    """Rebuild span trees per trace id from span_open/span_close events.

    Returns one dict per trace (in first-seen order):
    ``{"trace_id", "name", "spans": [tree...]}`` where each span node is
    ``{"name", "span_id", "seconds", "error"?, "children": [...]}``.
    Spans never closed (crash mid-run) keep ``seconds=None``.
    """
    traces: dict[str, dict[str, Any]] = {}
    nodes: dict[tuple[str, str], dict[str, Any]] = {}
    for event in events:
        kind = event.get("kind")
        trace_id = event.get("trace_id", "?")
        trace = traces.get(trace_id)
        if trace is None:
            trace = traces[trace_id] = {
                "trace_id": trace_id,
                "name": None,
                "spans": [],
            }
        if kind == "trace_open":
            trace["name"] = event.get("name")
        elif kind == "span_open":
            node = {
                "name": event.get("name"),
                "span_id": event.get("span_id"),
                "seconds": None,
                "children": [],
            }
            nodes[(trace_id, event["span_id"])] = node
            parent = nodes.get((trace_id, event.get("parent_id")))
            if parent is not None:
                parent["children"].append(node)
            else:
                trace["spans"].append(node)
        elif kind == "span_close":
            node = nodes.get((trace_id, event.get("span_id")))
            if node is not None:
                node["seconds"] = event.get("seconds")
                if event.get("error"):
                    node["error"] = True
    return list(traces.values())


def collapsed_from_events(events: Iterable[Event]) -> list[str]:
    """Collapsed-stack flamegraph lines rebuilt from an event log."""
    from repro.runtime.profile import collapsed_stacks

    return collapsed_stacks(reconstruct_traces(events))


def chrome_trace_from_events(events: Iterable[Event]) -> dict[str, Any]:
    """Chrome ``traceEvents`` JSON rebuilt from an event log."""
    from repro.runtime.profile import chrome_trace

    return chrome_trace(reconstruct_traces(events))


def histograms_from_events(
    events: Iterable[Event], buckets: Sequence[float] | None = None
) -> dict[str, Histogram]:
    """Latency histograms per span name, rebuilt from span_close events."""
    histograms: dict[str, Histogram] = {}
    for event in events:
        if event.get("kind") != "span_close":
            continue
        seconds = event.get("seconds")
        if seconds is None:
            continue
        name = event.get("name", "?")
        histogram = histograms.get(name)
        if histogram is None:
            histogram = histograms[name] = (
                Histogram(buckets) if buckets is not None else Histogram()
            )
        histogram.record(float(seconds))
    return histograms


def _format_seconds(seconds: float | None) -> str:
    if seconds is None:
        return "(open)"
    return f"{seconds * 1000:.2f} ms"


def render_trace_tree(trace: dict[str, Any]) -> str:
    """Pretty text tree of one reconstructed trace."""
    title = trace["trace_id"]
    if trace.get("name"):
        title += f" {trace['name']}"
    lines = [f"trace {title}"]

    def walk(node: dict[str, Any], depth: int) -> None:
        flag = " !" if node.get("error") else ""
        lines.append(
            f"{'  ' * depth}- {node['name']}: {_format_seconds(node['seconds'])}{flag}"
        )
        for child in node["children"]:
            walk(child, depth + 1)

    for node in trace["spans"]:
        walk(node, 1)
    return "\n".join(lines)


def render_report(
    events: Sequence[Event], max_traces: int = 20, dropped_lines: int = 0
) -> str:
    """Full text report of an event log: traces, latencies, counters.

    ``dropped_lines`` is the count of corrupt JSONL lines the loader
    skipped (see :func:`~repro.runtime.telemetry.events.load_events_lenient`);
    when non-zero the report closes with a warning footer.
    """
    from repro.bench.reporting import format_table

    blocks: list[str] = []
    traces = reconstruct_traces(events)
    shown = traces[:max_traces]
    for trace in shown:
        blocks.append(render_trace_tree(trace))
    if len(traces) > len(shown):
        blocks.append(f"... {len(traces) - len(shown)} more trace(s) omitted")

    # Lazy import: causal imports reconstruct_traces from this module.
    from repro.runtime.telemetry.causal import critical_path_summaries

    paths = critical_path_summaries(events)[:max_traces]
    if paths:
        blocks.append("Critical paths")
        blocks.append(
            format_table(
                ["trace", "name", "total ms", "critical path", "top component"],
                [
                    [
                        p["trace_id"],
                        p["name"] or "?",
                        f"{p['seconds'] * 1000:.2f}",
                        " > ".join(str(step["name"]) for step in p["path"]),
                        max(
                            p["components"],
                            key=lambda c: p["components"][c],
                            default="?",
                        ),
                    ]
                    for p in paths
                ],
            )
        )

    histograms = histograms_from_events(events)
    if histograms:
        rows = []
        for name in sorted(histograms):
            summary = histograms[name].summary()
            rows.append(
                [
                    name,
                    int(summary["count"]),
                    f"{summary['p50'] * 1000:.2f}",
                    f"{summary['p90'] * 1000:.2f}",
                    f"{summary['p99'] * 1000:.2f}",
                    f"{summary['max'] * 1000:.2f}",
                ]
            )
        blocks.append(
            format_table(
                ["span", "count", "p50 ms", "p90 ms", "p99 ms", "max ms"], rows
            )
        )

    counters = counters_from_events(events)
    if counters:
        blocks.append(
            format_table(
                ["counter", "total"],
                [[name, f"{counters[name]:g}"] for name in sorted(counters)],
            )
        )

    alerts = [e for e in events if e.get("kind") == "drift_alert"]
    if alerts:
        blocks.append(
            format_table(
                ["drift alert", "window", "z", "recent mean", "baseline mean"],
                [
                    [
                        a.get("channel"),
                        a.get("window"),
                        a.get("z"),
                        a.get("recent_mean"),
                        a.get("baseline_mean"),
                    ]
                    for a in alerts
                ],
            )
        )
    timeline = alert_timeline(events)
    if timeline:
        blocks.append("Alerts")
        blocks.append(
            format_table(
                ["ts", "alert", "transition", "previous", "severity"],
                [
                    [
                        t["ts"],
                        t["name"],
                        t["state"],
                        t["previous"],
                        t["severity"],
                    ]
                    for t in timeline
                ],
            )
        )
    # Budget spend reconstructs from the cumulative ``slo`` events: the
    # last (max) budget_spent per objective is the total for the run.
    budget_spent: dict[str, float] = {}
    for event in events:
        if event.get("kind") != "slo":
            continue
        objective = str(event.get("objective"))
        spent = event.get("budget_spent")
        if isinstance(spent, (int, float)):
            budget_spent[objective] = max(
                budget_spent.get(objective, 0.0), float(spent)
            )
    if budget_spent:
        blocks.append(
            format_table(
                ["slo objective", "error budget spent"],
                [
                    [name, f"{budget_spent[name]:.1%}"]
                    for name in sorted(budget_spent)
                ],
            )
        )
    if dropped_lines:
        blocks.append(
            f"warning: skipped {dropped_lines} corrupt event-log line(s)"
        )
    return "\n\n".join(blocks) if blocks else "(no events)"
