"""In-process time-series store: the sampler's bounded history ring.

Request-scoped telemetry (histograms, traces) answers "what happened to
the requests that arrived"; the time-series store answers "what did the
runtime look like at 12:03:17" — the substrate of SLO burn rates,
alerting and ``repro top``.  One :class:`TimeSeriesStore` holds many
named series, each a fixed-capacity ring of ``(ts, value)`` points, so
memory is bounded by ``n_series * max_samples`` regardless of uptime.

**Consistency.**  A sampler tick writes one multi-metric sample with
:meth:`record_many` — all points of a tick land under a single lock
acquisition, and readers (:meth:`latest_many`, :meth:`snapshot`) take
the same lock, so a query never observes a *torn* sample (half of tick
``i``, half of tick ``i-1``).  The concurrent regression suite in
``tests/runtime/test_timeseries.py`` pins exactly that.

**Persistence.**  The store itself is volatile; durability comes from
the ``sample`` events the :class:`~repro.runtime.telemetry.sampler.
TelemetrySampler` emits into the structured event log (JSONL when a
sink is attached).  :func:`timeseries_from_events` rebuilds an
equivalent store from those events alone — the offline path of
``repro top``.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Iterable, Mapping, Sequence

from repro.errors import ConfigurationError

Point = tuple[float, float]


class TimeSeriesStore:
    """Named fixed-capacity rings of ``(ts, value)`` samples."""

    def __init__(self, max_samples: int = 720):
        if max_samples < 1:
            raise ConfigurationError(
                f"max_samples must be >= 1, got {max_samples}"
            )
        self.max_samples = max_samples
        self._series: dict[str, deque[Point]] = {}
        self._lock = threading.Lock()
        #: Lifetime point count (exact under concurrency, like the
        #: event ring's ``total_emitted``).
        self.total_recorded = 0

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def record(self, name: str, ts: float, value: float) -> None:
        """Append one point to one series (created lazily)."""
        with self._lock:
            self._append(name, float(ts), float(value))

    def record_many(self, ts: float, metrics: Mapping[str, float]) -> None:
        """Append one sampler tick — every metric under one lock.

        This is the write path that makes a tick atomic: a concurrent
        reader sees either all of this tick's points or none of them.
        """
        ts = float(ts)
        with self._lock:
            for name, value in metrics.items():
                self._append(name, ts, float(value))

    def _append(self, name: str, ts: float, value: float) -> None:
        ring = self._series.get(name)
        if ring is None:
            ring = self._series[name] = deque(maxlen=self.max_samples)
        ring.append((ts, value))
        self.total_recorded += 1

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._series)

    def series(
        self,
        name: str,
        since: float | None = None,
        until: float | None = None,
    ) -> list[Point]:
        """Points of one series, optionally clipped to ``[since, until]``."""
        with self._lock:
            ring = self._series.get(name)
            points = list(ring) if ring is not None else []
        if since is not None:
            points = [p for p in points if p[0] >= since]
        if until is not None:
            points = [p for p in points if p[0] <= until]
        return points

    def values(
        self, name: str, since: float | None = None, until: float | None = None
    ) -> list[float]:
        """Just the values of :meth:`series` (burn-rate arithmetic)."""
        return [value for _, value in self.series(name, since, until)]

    def window(self, name: str, seconds: float, now: float) -> list[float]:
        """Values within the trailing ``seconds`` before ``now``."""
        return self.values(name, since=now - float(seconds), until=now)

    def latest(self, name: str) -> Point | None:
        with self._lock:
            ring = self._series.get(name)
            return ring[-1] if ring else None

    def latest_many(self, names: Iterable[str]) -> dict[str, Point]:
        """Latest point per name under ONE lock (untorn cross-series read)."""
        with self._lock:
            out: dict[str, Point] = {}
            for name in names:
                ring = self._series.get(name)
                if ring:
                    out[name] = ring[-1]
            return out

    def counts(self) -> dict[str, int]:
        """Retained point count per series (exactness pinned by tests)."""
        with self._lock:
            return {name: len(ring) for name, ring in sorted(self._series.items())}

    def snapshot(self) -> dict[str, list[Point]]:
        """A consistent copy of every series."""
        with self._lock:
            return {name: list(ring) for name, ring in sorted(self._series.items())}

    def __len__(self) -> int:
        with self._lock:
            return sum(len(ring) for ring in self._series.values())

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"TimeSeriesStore(series={len(self._series)}, "
                f"points={sum(len(r) for r in self._series.values())}, "
                f"max_samples={self.max_samples})"
            )


def timeseries_from_events(
    events: Iterable[Mapping[str, Any]], max_samples: int = 720
) -> TimeSeriesStore:
    """Rebuild a store from ``sample`` events of a structured event log.

    The inverse of the sampler's emission: each ``sample`` event carries
    ``ts`` plus a flat ``metrics`` mapping; anything else is ignored, so
    the function accepts a full mixed event log (the ``repro top``
    offline path reads the same JSONL the serve process wrote).
    """
    store = TimeSeriesStore(max_samples=max_samples)
    for event in events:
        if event.get("kind") != "sample":
            continue
        metrics = event.get("metrics")
        ts = event.get("ts")
        if not isinstance(metrics, Mapping) or ts is None:
            continue
        numeric = {
            str(name): float(value)
            for name, value in metrics.items()
            if isinstance(value, (int, float)) and not isinstance(value, bool)
        }
        store.record_many(float(ts), numeric)
    return store


def sample_gauge_values(raw: Mapping[str, Any], prefix: str) -> dict[str, float]:
    """Flatten one source's status dict into prefixed numeric gauges.

    Non-numeric entries (design lists, nested rebuild maps) are skipped
    — except one level of nested numeric mappings, which flatten as
    ``prefix.key.subkey``.  Booleans become 0/1 so ``pool.saturated``
    charts like any other gauge.
    """
    out: dict[str, float] = {}
    for key, value in raw.items():
        name = f"{prefix}.{key}"
        if isinstance(value, bool):
            out[name] = float(value)
        elif isinstance(value, (int, float)):
            out[name] = float(value)
        elif isinstance(value, Mapping):
            for sub, subvalue in value.items():
                if isinstance(subvalue, bool) or not isinstance(
                    subvalue, (int, float)
                ):
                    continue
                out[f"{name}.{sub}"] = float(subvalue)
    return out
