"""Observability subsystem: traces, histograms, events, drift, exporters.

Layered on the PR-1 runtime: the
:class:`~repro.runtime.metrics.MetricsSink` forwards span and counter
activity to a :class:`TelemetryHub`, which assigns trace/span ids,
maintains latency :class:`Histogram` s, appends structured events to an
in-memory ring buffer (plus optional rotating JSONL files) and hosts
the per-logical-window :class:`DriftMonitor`.  Exposition lives in
:mod:`~repro.runtime.telemetry.exporters` (Prometheus text, JSON
snapshots, and event-log report rendering for the CLI).

See ``docs/observability.md`` for the event schema, bucket layout,
drift thresholds and exposition formats.
"""

from repro.runtime.telemetry.drift import DriftAlert, DriftMonitor, DriftThresholds
from repro.runtime.telemetry.events import (
    JsonlEventLog,
    MemoryEventLog,
    counters_from_events,
    load_events,
    load_events_lenient,
)
from repro.runtime.telemetry.exporters import (
    chrome_trace_from_events,
    collapsed_from_events,
    histograms_from_events,
    prometheus_text,
    reconstruct_traces,
    render_report,
    render_trace_tree,
    telemetry_snapshot,
)
from repro.runtime.telemetry.histogram import (
    DEFAULT_LATENCY_BUCKETS,
    Histogram,
)
from repro.runtime.telemetry.hub import TelemetryHub

__all__ = [
    "TelemetryHub",
    "Histogram",
    "DEFAULT_LATENCY_BUCKETS",
    "MemoryEventLog",
    "JsonlEventLog",
    "load_events",
    "load_events_lenient",
    "counters_from_events",
    "DriftMonitor",
    "DriftThresholds",
    "DriftAlert",
    "prometheus_text",
    "telemetry_snapshot",
    "reconstruct_traces",
    "render_trace_tree",
    "render_report",
    "histograms_from_events",
    "collapsed_from_events",
    "chrome_trace_from_events",
]
