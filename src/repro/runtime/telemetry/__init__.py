"""Observability subsystem: traces, histograms, events, drift, exporters.

Layered on the PR-1 runtime: the
:class:`~repro.runtime.metrics.MetricsSink` forwards span and counter
activity to a :class:`TelemetryHub`, which assigns trace/span ids,
maintains latency :class:`Histogram` s, appends structured events to an
in-memory ring buffer (plus optional rotating JSONL files) and hosts
the per-logical-window :class:`DriftMonitor`.  Exposition lives in
:mod:`~repro.runtime.telemetry.exporters` (Prometheus text, JSON
snapshots, and event-log report rendering for the CLI).

The **always-on plane** sits on top of the request-scoped layer: a
background :class:`TelemetrySampler` snapshots counters, windowed
histogram percentiles and pool/ingest gauges into a bounded
:class:`TimeSeriesStore` every tick, the :class:`SloEngine` turns those
series into multi-window burn rates, and the hub's
:class:`AlertManager` turns breaches (and drift flags) into
edge-triggered pending/firing/resolved alert events.  A
:class:`StackProfiler` samples ``sys._current_frames()`` continuously,
and :func:`top_snapshot` / :func:`render_top` rebuild the ``repro top``
dashboard from the event log alone.

See ``docs/observability.md`` for the event schema, bucket layout,
drift thresholds, SLO semantics and exposition formats.
"""

from repro.runtime.telemetry.alerts import (
    ALERT_STATE_CODES,
    ALERT_STATES,
    AlertManager,
    AlertRule,
    alert_states_from_events,
    alert_timeline,
)
from repro.runtime.telemetry.causal import (
    causal_chain,
    critical_path,
    critical_path_summaries,
    render_causal_chain,
)
from repro.runtime.telemetry.drift import DriftAlert, DriftMonitor, DriftThresholds
from repro.runtime.telemetry.events import (
    JsonlEventLog,
    MemoryEventLog,
    counters_from_events,
    load_events,
    load_events_lenient,
)
from repro.runtime.telemetry.exporters import (
    chrome_trace_from_events,
    collapsed_from_events,
    histograms_from_events,
    prometheus_text,
    reconstruct_traces,
    render_report,
    render_trace_tree,
    telemetry_snapshot,
)
from repro.runtime.telemetry.histogram import (
    DEFAULT_LATENCY_BUCKETS,
    Histogram,
)
from repro.runtime.telemetry.hub import TelemetryHub
from repro.runtime.telemetry.sampler import TelemetrySampler
from repro.runtime.telemetry.slo import (
    DEFAULT_BURN_RULES,
    BurnRateRule,
    SloEngine,
    SloObjective,
    default_objectives,
)
from repro.runtime.telemetry.stackprof import StackProfiler
from repro.runtime.telemetry.timeseries import (
    TimeSeriesStore,
    sample_gauge_values,
    timeseries_from_events,
)
from repro.runtime.telemetry.top import render_top, sparkline, top_snapshot
from repro.runtime.telemetry.tracecontext import TraceContext

__all__ = [
    "TelemetryHub",
    "TraceContext",
    "causal_chain",
    "critical_path",
    "critical_path_summaries",
    "render_causal_chain",
    "Histogram",
    "DEFAULT_LATENCY_BUCKETS",
    "MemoryEventLog",
    "JsonlEventLog",
    "load_events",
    "load_events_lenient",
    "counters_from_events",
    "DriftMonitor",
    "DriftThresholds",
    "DriftAlert",
    "prometheus_text",
    "telemetry_snapshot",
    "reconstruct_traces",
    "render_trace_tree",
    "render_report",
    "histograms_from_events",
    "collapsed_from_events",
    "chrome_trace_from_events",
    "TimeSeriesStore",
    "timeseries_from_events",
    "sample_gauge_values",
    "TelemetrySampler",
    "AlertManager",
    "AlertRule",
    "ALERT_STATES",
    "ALERT_STATE_CODES",
    "alert_timeline",
    "alert_states_from_events",
    "SloEngine",
    "SloObjective",
    "BurnRateRule",
    "DEFAULT_BURN_RULES",
    "default_objectives",
    "StackProfiler",
    "top_snapshot",
    "render_top",
    "sparkline",
]
