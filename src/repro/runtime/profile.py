"""Zero-dependency span-tree profiler: collapsed stacks and Chrome traces.

Any span tree the runtime can produce — live (a
:class:`~repro.runtime.metrics.RunReport` snapshot) or rebuilt from the
JSONL event log (:func:`~repro.runtime.telemetry.exporters.reconstruct_traces`)
— renders into the two de-facto profiling interchange formats:

* **collapsed stacks** (:func:`collapsed_stacks`) — one
  ``frame;frame;frame value`` line per unique stack, value in integer
  microseconds of *self* time; the input format of Brendan Gregg's
  ``flamegraph.pl`` and of speedscope's "collapsed" importer.
* **Chrome trace JSON** (:func:`chrome_trace`) — a ``traceEvents`` array
  of complete (``"ph": "X"``) events loadable in ``chrome://tracing``
  and Perfetto; one timeline row (``tid``) per trace.

Neither format carries absolute wall-clock timestamps here: spans are
laid out deterministically — traces sequentially, children at their
parent's offset plus the durations of earlier siblings — so the output
is reproducible and golden-testable while preserving every duration and
parent/child relation.  Both trace shapes share one node schema:
``{"name", "seconds", "children": [...]}``; spans that never closed
(crash mid-run) carry ``seconds=None`` and render with zero width.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Sequence

from repro.runtime.metrics import RunReport, SpanRecord

#: Microseconds per second — both formats speak integer µs.
_US = 1e6

TraceDict = Mapping[str, Any]


def spans_from_report(report: RunReport, label: str = "run") -> list[dict[str, Any]]:
    """Wrap a :class:`RunReport` span tree as one profiler-ready trace.

    Aggregated span records (``count > 1``) keep their summed seconds —
    the flamegraph width of a loop is its total cost, which is exactly
    what a profile should show.
    """

    def convert(record: SpanRecord) -> dict[str, Any]:
        return {
            "name": record.name,
            "seconds": record.seconds,
            "children": [convert(child) for child in record.children.values()],
        }

    return [
        {
            "trace_id": label,
            "name": report.meta.get("command") if report.meta else None,
            "spans": [convert(record) for record in report.spans],
        }
    ]


def _trace_root_frame(trace: TraceDict) -> str:
    name = trace.get("name")
    trace_id = trace.get("trace_id", "trace")
    return f"{trace_id} {name}" if name else str(trace_id)


def _node_seconds(node: Mapping[str, Any]) -> float:
    seconds = node.get("seconds")
    return float(seconds) if seconds is not None else 0.0


def _self_seconds(node: Mapping[str, Any]) -> float:
    children = sum(_node_seconds(child) for child in node.get("children", ()))
    return max(_node_seconds(node) - children, 0.0)


def collapsed_stacks(traces: Iterable[TraceDict]) -> list[str]:
    """Render traces as collapsed-stack lines (``a;b;c <self µs>``).

    Identical stacks across traces are folded together (values summed),
    matching what ``flamegraph.pl`` would do anyway; lines come out in
    first-seen order.  Frames containing ``;`` are sanitised to ``:``
    so they cannot split the stack.
    """
    totals: dict[str, int] = {}

    def frame(name: Any) -> str:
        return str(name).replace(";", ":")

    def walk(node: Mapping[str, Any], prefix: str) -> None:
        stack = f"{prefix};{frame(node.get('name'))}"
        value = int(round(_self_seconds(node) * _US))
        totals[stack] = totals.get(stack, 0) + value
        for child in node.get("children", ()):
            walk(child, stack)

    for trace in traces:
        root = frame(_trace_root_frame(trace))
        for node in trace.get("spans", ()):
            walk(node, root)
    return [f"{stack} {value}" for stack, value in totals.items()]


def chrome_trace(traces: Sequence[TraceDict]) -> dict[str, Any]:
    """Render traces as a Chrome ``traceEvents`` JSON object.

    Each trace gets its own ``tid`` (named via a thread-name metadata
    event); spans become complete events with deterministic synthetic
    offsets: a child starts where its parent starts plus the durations
    of its earlier siblings, and traces are laid out back to back.
    """
    events: list[dict[str, Any]] = []

    def emit(node: Mapping[str, Any], start_us: float, tid: int, trace_id: Any) -> float:
        duration_us = _node_seconds(node) * _US
        event: dict[str, Any] = {
            "name": str(node.get("name")),
            "ph": "X",
            "cat": "span",
            "ts": int(round(start_us)),
            "dur": int(round(duration_us)),
            "pid": 1,
            "tid": tid,
            "args": {"trace_id": trace_id},
        }
        if node.get("seconds") is None:
            event["args"]["open"] = True
        if node.get("error"):
            event["args"]["error"] = True
        events.append(event)
        child_start = start_us
        for child in node.get("children", ()):
            child_start += emit(child, child_start, tid, trace_id)
        return duration_us

    offset_us = 0.0
    for tid, trace in enumerate(traces, start=1):
        trace_id = trace.get("trace_id", f"trace-{tid}")
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": tid,
                "args": {"name": _trace_root_frame(trace)},
            }
        )
        start = offset_us
        for node in trace.get("spans", ()):
            start += emit(node, start, tid, trace_id)
        offset_us = start
    return {"traceEvents": events, "displayTimeUnit": "ms"}
