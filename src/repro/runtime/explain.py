"""EXPLAIN/ANALYZE for Status Queries: plan capture and cost residuals.

PR 1 put a cost-based :class:`~repro.runtime.planner.QueryPlanner` in
front of the four logical-time index backends; this module closes the
loop between the planner's *decision* and the query's *execution*, the
way a database's ``EXPLAIN ANALYZE`` does:

* :class:`QueryPlan` — the structured plan of one executed Status
  Query: the planner's candidate costs (when ``design="auto"`` chose
  the backend), per-operator ANALYZE stats
  (:class:`OperatorStats`: calls, rows in/out, wall seconds per stage)
  and the cost-model residual (predicted vs actual seconds).
* :class:`OperatorRecorder` — the capture hook a
  :class:`~repro.index.status_query.StatusQueryEngine` invokes around
  each operator while explaining.  When no recorder is attached the
  engine pays a single ``is None`` check per stage, keeping the
  non-explaining hot path unchanged.
* :func:`explain_point` / :func:`explain_sweep` — run a query (or
  timeline sweep) under capture and return results *plus* plan.
* **Cost-residual tracking** — every explained execution feeds its
  predicted/actual ratio into the ``planner_calibration.<backend>``
  telemetry histogram and a ``planner_residual`` event, so drift of the
  committed cost constants on new hardware is observable in the same
  pipelines as any other metric.
* :func:`doctor_report` — renders ``repro planner doctor``: per-backend
  measured/modelled ratios (from
  :func:`repro.bench.calibrate_planner`) with backends more than
  ``threshold``x off flagged as miscalibrated.
* :func:`plan_from_report` — degrades any
  :class:`~repro.runtime.metrics.RunReport` delta (e.g. a service
  request capture) into plan-shaped operator rows, powering the
  service's opt-in ``explain: true`` response field.

Wall time flows exclusively through the context's
:class:`~repro.runtime.metrics.MetricsSink` spans — the recorder opens
an ``op.<name>`` span per operator, so explained executions also gain
per-operator latency histograms and event-log entries for free.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterator

from repro.runtime.context import ExecutionContext
from repro.runtime.metrics import RunReport, SpanRecord
from repro.runtime.planner import PlanDecision, WorkloadSpec

if TYPE_CHECKING:  # pragma: no cover
    from repro.index.status_query import StatusQueryEngine, StatusQuery
    from repro.table.table import ColumnTable

#: Ratio beyond which a backend's cost constants count as miscalibrated.
DOCTOR_RATIO_THRESHOLD = 2.0

#: Placeholder for timing fields in redacted (golden-file) renderings.
_REDACTED = "***"


@dataclass
class OperatorStats:
    """ANALYZE statistics of one plan operator (one execution stage)."""

    op: str
    calls: int = 0
    rows_in: int = 0
    rows_out: int = 0
    seconds: float = 0.0
    extra: dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "op": self.op,
            "calls": self.calls,
            "rows_in": self.rows_in,
            "rows_out": self.rows_out,
            "seconds": round(self.seconds, 9),
        }
        if self.extra:
            out["extra"] = dict(self.extra)
        return out


class OperatorRecorder:
    """Accumulates per-operator stats while an engine executes.

    One recorder observes one explained execution; operators hit
    multiple times (a sweep's ``advance``) fold into one
    :class:`OperatorStats` row with ``calls`` counting entries.  Each
    operator entry runs inside an ``op.<name>`` span on the context's
    sink, which is the stack's only wall-clock reader.
    """

    def __init__(self, context: ExecutionContext):
        self.context = context
        self._ops: dict[str, OperatorStats] = {}
        self.notes: dict[str, Any] = {}

    def _stats(self, name: str) -> OperatorStats:
        stats = self._ops.get(name)
        if stats is None:
            stats = self._ops[name] = OperatorStats(op=name)
        return stats

    @contextmanager
    def op(self, name: str, rows_in: int = 0) -> Iterator[OperatorStats]:
        """Time one operator entry; the caller sets ``rows_out`` inside."""
        stats = self._stats(name)
        stats.calls += 1
        stats.rows_in += rows_in
        with self.context.span(f"op.{name}") as handle:
            yield stats
        stats.seconds += handle.seconds

    def add(
        self,
        name: str,
        seconds: float,
        rows_in: int = 0,
        rows_out: int = 0,
        calls: int = 1,
    ) -> OperatorStats:
        """Fold in an operator timed by an existing span (no new span).

        ``calls`` lets a batched kernel report the logical per-timestamp
        call count (a fused sweep chunk advances many timestamps in one
        pass but still reads as one ``advance`` row per timestamp).
        """
        stats = self._stats(name)
        stats.calls += calls
        stats.rows_in += rows_in
        stats.rows_out += rows_out
        stats.seconds += seconds
        return stats

    def note(self, **notes: Any) -> None:
        """Attach plan-level annotations (e.g. ``stat_reused=True``)."""
        self.notes.update(notes)

    def operators(self) -> list[OperatorStats]:
        return list(self._ops.values())


def _format_ms(seconds: float, redact: bool) -> str:
    return _REDACTED if redact else f"{seconds * 1000:.2f}"


@dataclass
class QueryPlan:
    """Captured plan + ANALYZE stats of one executed Status Query."""

    mode: str  # "point" | "sweep"
    design: str
    n_rccs: int
    n_timestamps: int
    operators: list[OperatorStats]
    total_seconds: float
    decision: PlanDecision | None = None
    incremental: bool | None = None
    notes: dict[str, Any] = field(default_factory=dict)
    residual: dict[str, float] | None = None

    def operator_seconds(self) -> float:
        return sum(stats.seconds for stats in self.operators)

    def operator_coverage(self) -> float:
        """Fraction of the execution span the operators account for."""
        if self.total_seconds <= 0:
            return 1.0
        return min(self.operator_seconds() / self.total_seconds, 1.0)

    def as_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "mode": self.mode,
            "design": self.design,
            "n_rccs": self.n_rccs,
            "n_timestamps": self.n_timestamps,
            "total_seconds": round(self.total_seconds, 9),
            "operators": [stats.as_dict() for stats in self.operators],
            "operator_coverage": round(self.operator_coverage(), 4),
        }
        if self.incremental is not None:
            out["incremental"] = self.incremental
        if self.decision is not None:
            out["planner"] = self.decision.as_dict()
        if self.notes:
            out["notes"] = dict(self.notes)
        if self.residual is not None:
            out["cost_model"] = {
                k: round(v, 9) for k, v in self.residual.items()
            }
        return out

    def format(self, redact_timings: bool = False) -> str:
        """Human-readable EXPLAIN ANALYZE block.

        With ``redact_timings=True`` every machine-speed number is
        replaced by ``***`` so the output is stable across hosts — the
        golden-file representation used by the test suite.
        """
        header = (
            f"QueryPlan mode={self.mode} design={self.design} "
            f"n_rccs={self.n_rccs} timestamps={self.n_timestamps}"
        )
        if self.incremental is not None:
            header += f" incremental={str(self.incremental).lower()}"
        lines = [header]
        if self.decision is not None:
            others = sorted(
                name for name in self.decision.estimated_seconds
                if name != self.design
            )
            lines.append(
                f"planner: auto chose {self.design!r} over {', '.join(others)}"
            )
        else:
            lines.append("planner: design pinned by caller")
        for key in sorted(self.notes):
            lines.append(f"note: {key}={self.notes[key]}")
        rows = [
            (
                stats.op,
                str(stats.calls),
                str(stats.rows_in),
                str(stats.rows_out),
                _format_ms(stats.seconds, redact_timings),
            )
            for stats in self.operators
        ]
        headers = ("operator", "calls", "rows_in", "rows_out", "ms")
        widths = [
            max(len(headers[i]), *(len(row[i]) for row in rows)) if rows else len(headers[i])
            for i in range(len(headers))
        ]
        lines.append(
            "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)).rstrip()
        )
        for row in rows:
            lines.append(
                "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)).rstrip()
            )
        coverage = (
            _REDACTED if redact_timings else f"{self.operator_coverage() * 100:.1f}%"
        )
        lines.append(
            f"total {_format_ms(self.total_seconds, redact_timings)} ms"
            f" · operators cover {coverage}"
        )
        if self.residual is not None:
            predicted = _format_ms(self.residual["predicted_seconds"], redact_timings)
            actual = _format_ms(self.residual["actual_seconds"], redact_timings)
            ratio = (
                _REDACTED if redact_timings else f"{self.residual['ratio']:.2f}"
            )
            lines.append(
                f"cost model [{self.design}]: predicted {predicted} ms"
                f" · actual {actual} ms · ratio {ratio}"
            )
        return "\n".join(lines)


@dataclass
class ExplainResult:
    """Results + captured plan of one explained execution."""

    results: "list[ColumnTable]"
    plan: QueryPlan


def _residual(
    engine: "StatusQueryEngine", mode: str, n_timestamps: int, actual: float
) -> dict[str, float]:
    """Predicted-vs-actual query cost for the executed workload shape.

    ``predicted`` is the planner's *query-phase* estimate (the index is
    already built, so build cost is excluded); ``actual`` is the whole
    execution — the same end-to-end seconds the calibration constants
    were fitted against.
    """
    spec = WorkloadSpec(
        n_rccs=len(engine.index), n_timestamps=n_timestamps, mode=mode
    )
    components = engine.context.planner.estimate_components(engine.design, spec)
    predicted = components["query"]
    ratio = actual / predicted if predicted > 0 else float("inf")
    return {
        "predicted_seconds": predicted,
        "actual_seconds": actual,
        "ratio": ratio,
    }


def _record_residual(engine: "StatusQueryEngine", plan: QueryPlan) -> None:
    context = engine.context
    assert plan.residual is not None
    context.counter("planner.residuals")
    telemetry = context.metrics.telemetry
    if telemetry is not None:
        telemetry.observe(
            f"planner_calibration.{plan.design}", plan.residual["ratio"]
        )
        telemetry.emit(
            "planner_residual",
            backend=plan.design,
            mode=plan.mode,
            n_rccs=plan.n_rccs,
            n_timestamps=plan.n_timestamps,
            predicted_seconds=round(plan.residual["predicted_seconds"], 9),
            actual_seconds=round(plan.residual["actual_seconds"], 9),
            ratio=round(plan.residual["ratio"], 6),
        )


def _stamp_watermark(engine: "StatusQueryEngine", recorder: OperatorRecorder) -> None:
    """Note the ingestion watermark on live-maintained indexes.

    A streaming :class:`~repro.stream.mutable.MutableIndexAdapter`
    carries the WAL seq it reflects; the plan records it so an EXPLAIN
    over a live engine states exactly which state it analysed.
    """
    watermark = getattr(engine.index, "watermark", None)
    if watermark is not None:
        recorder.note(watermark=watermark)


def explain_point(engine: "StatusQueryEngine", query: "StatusQuery") -> ExplainResult:
    """Run one Status Query under EXPLAIN ANALYZE capture."""
    recorder = OperatorRecorder(engine.context)
    _stamp_watermark(engine, recorder)
    with engine.recording(recorder):
        with engine.context.metrics.span("explain.query") as handle:
            result = engine.execute(query)
    plan = QueryPlan(
        mode="point",
        design=engine.design,
        n_rccs=len(engine.index),
        n_timestamps=1,
        operators=recorder.operators(),
        total_seconds=handle.seconds,
        decision=engine.plan_decision,
        notes=recorder.notes,
        residual=_residual(engine, "point", 1, handle.seconds),
    )
    _record_residual(engine, plan)
    return ExplainResult(results=[result], plan=plan)


def explain_sweep(
    engine: "StatusQueryEngine",
    t_stars: list[float],
    group_by_type: bool = True,
    swlin_level: int | None = 1,
    incremental: bool = True,
) -> ExplainResult:
    """Run a timeline sweep under EXPLAIN ANALYZE capture."""
    recorder = OperatorRecorder(engine.context)
    _stamp_watermark(engine, recorder)
    with engine.recording(recorder):
        with engine.context.metrics.span("explain.sweep") as handle:
            results = engine.execute_sweep(
                t_stars,
                group_by_type=group_by_type,
                swlin_level=swlin_level,
                incremental=incremental,
            )
    plan = QueryPlan(
        mode="sweep",
        design=engine.design,
        n_rccs=len(engine.index),
        n_timestamps=len(t_stars),
        operators=recorder.operators(),
        total_seconds=handle.seconds,
        decision=engine.plan_decision,
        incremental=incremental,
        notes=recorder.notes,
        residual=_residual(engine, "sweep", len(t_stars), handle.seconds),
    )
    _record_residual(engine, plan)
    return ExplainResult(results=results, plan=plan)


# ----------------------------------------------------------------------
# plan view over arbitrary run reports (service ``explain: true``)
# ----------------------------------------------------------------------
def plan_from_report(report: RunReport) -> dict[str, Any]:
    """Flatten a :class:`RunReport` delta into plan-shaped operator rows.

    Used by :class:`~repro.core.service.DomdService` for the opt-in
    ``plan`` response field: every span becomes an operator row keyed by
    its ``/``-joined path, so the caller sees where the request's time
    went without needing engine-level capture.
    """
    operators: list[dict[str, Any]] = []

    def walk(record: SpanRecord, prefix: str) -> None:
        path = f"{prefix}/{record.name}" if prefix else record.name
        row: dict[str, Any] = {
            "op": path,
            "calls": record.count,
            "seconds": round(record.seconds, 9),
        }
        if record.errors:
            row["errors"] = record.errors
        operators.append(row)
        for child in record.children.values():
            walk(child, path)

    for record in report.spans:
        walk(record, "")
    total = sum(record.seconds for record in report.spans)
    return {
        "total_seconds": round(total, 9),
        "operators": operators,
        "counters": dict(report.counters),
    }


# ----------------------------------------------------------------------
# planner doctor (cost-constant calibration report)
# ----------------------------------------------------------------------
def doctor_report(
    measurements: dict[str, dict[str, float]],
    threshold: float = DOCTOR_RATIO_THRESHOLD,
) -> tuple[str, list[str]]:
    """Render the ``repro planner doctor`` report.

    ``measurements`` is the per-backend ``measured`` / ``modelled`` /
    ``ratio`` mapping produced by :func:`repro.bench.calibrate_planner`.
    Returns ``(report text, flagged backend names)`` where a backend is
    flagged when its measured/modelled ratio falls outside
    ``[1/threshold, threshold]``.
    """
    if threshold <= 1.0:
        raise ValueError(f"threshold must be > 1, got {threshold}")
    flagged: list[str] = []
    rows: list[tuple[str, str, str, str, str]] = []
    for backend in sorted(measurements):
        row = measurements[backend]
        ratio = float(row["ratio"])
        off = not (1.0 / threshold <= ratio <= threshold)
        if off:
            flagged.append(backend)
        rows.append(
            (
                backend,
                f"{row['measured']:.6f}",
                f"{row['modelled']:.6f}",
                f"{ratio:.2f}",
                f"MISCALIBRATED (> {threshold:g}x off)" if off else "ok",
            )
        )
    headers = ("backend", "measured s", "modelled s", "ratio", "verdict")
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rows)) if rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines = ["planner doctor — cost-model calibration on this machine"]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)).rstrip())
    for row in rows:
        lines.append(
            "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)).rstrip()
        )
    if flagged:
        lines.append(
            f"{len(flagged)} backend(s) more than {threshold:g}x off: "
            f"{', '.join(flagged)} — re-fit the constants with "
            "repro.bench.calibrate_planner() and ship the scaled costs."
        )
    else:
        lines.append(
            f"all backends within {threshold:g}x of the committed constants."
        )
    return "\n".join(lines), flagged
