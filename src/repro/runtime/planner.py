"""Cost-based index planning over the logical-time index backends.

The paper's Section 4.1 compares three index designs by asymptotics;
the deployed engine needs the choice made *per workload* — a nightly
feature-extraction sweep, a live point query against a continuously
refreshed index and a one-shot ad-hoc query all favour different
backends.  :class:`QueryPlanner` encodes the designs' cost shapes

* build:   ``b1 * n * log2(n)`` (bulk construction),
* query:   ``q0 + q_log * log2(n) + q_scan * n + q_out * k``
  with expected output size ``k = n/2``,
* insert:  ``O(log n)`` for the trees, ``O(n)`` rebuild/copy for the
  array designs,

with per-backend calibration constants.  The defaults were fitted
against this repository's own Figure 5a/5b benchmarks at 1x-20x RCC
scale; :func:`repro.bench.calibrate_planner` re-measures them on the
current machine.

The resulting decision table (pinned by the test suite):

* batch sweeps and one-shot queries -> ``sorted_array`` (vectorised
  cuts, near-free build — its build-time argsorts are shared with the
  columnar frame),
* point queries on a live index     -> ``avl`` (O(log n) maintenance;
  the sorted arrays pay an O(n) rebuild per insert),
* ``interval`` never wins on defaults — the pure-Python interval tree
  loses on constants, the same inversion Figure 5a documents; ``naive``
  only wins degenerate shapes (a single scan over millions of rows,
  where building any structure cannot amortise).

The planner is deliberately import-light: index classes are resolved
lazily through :class:`IndexRegistry` so ``repro.runtime`` can be
imported from anywhere in the stack without cycles.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any, Callable

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.index.base import LogicalTimeIndex

#: Workload execution modes the planner distinguishes.
WORKLOAD_MODES = ("point", "sweep")


def _load_backends() -> dict[str, type]:
    from repro.index.avl_index import DualAvlIndex
    from repro.index.interval_index import IntervalTreeIndex
    from repro.index.naive import NaiveJoinIndex
    from repro.index.sorted_array import SortedArrayIndex

    return {
        "naive": NaiveJoinIndex,
        "avl": DualAvlIndex,
        "interval": IntervalTreeIndex,
        "sorted_array": SortedArrayIndex,
    }


class IndexRegistry:
    """Name -> :class:`LogicalTimeIndex` backend registry.

    Backends are resolved lazily on first use; ``sorted`` is accepted
    as an alias of ``sorted_array`` (the class' own short name).
    """

    _ALIASES = {"sorted": "sorted_array"}

    def __init__(self, loader: Callable[[], dict[str, type]] = _load_backends):
        self._loader = loader
        self._backends: dict[str, type] | None = None

    def _resolved(self) -> dict[str, type]:
        if self._backends is None:
            self._backends = dict(self._loader())
        return self._backends

    def names(self) -> tuple[str, ...]:
        return tuple(self._resolved())

    def register(self, name: str, cls: type) -> None:
        self._resolved()[name] = cls

    def get(self, name: str) -> type:
        name = self._ALIASES.get(name, name)
        backends = self._resolved()
        if name not in backends:
            raise ConfigurationError(
                f"unknown index backend {name!r}; expected one of {sorted(backends)}"
            )
        return backends[name]

    def create(self, name: str, starts, ends, ids) -> "LogicalTimeIndex":
        return self.get(name)(starts, ends, ids)


#: Process-wide default registry over the four shipped backends.
DEFAULT_REGISTRY = IndexRegistry()


@dataclass(frozen=True)
class WorkloadSpec:
    """Shape of an index workload, as the planner sees it.

    Attributes
    ----------
    n_rccs:
        Rows the index will hold.
    n_timestamps:
        Distinct logical timestamps that will be queried.
    mode:
        ``"sweep"`` — the timestamps arrive as one ascending batch
        (feature extraction, Figure 5 benchmarks); ``"point"`` — they
        arrive one at a time (live Status Queries).
    n_inserts:
        RCC insertions expected while the index is live (a continuously
        refreshed deployment); array-backed designs pay O(n) each.
    """

    n_rccs: int
    n_timestamps: int = 1
    mode: str = "point"
    n_inserts: int = 0

    def __post_init__(self) -> None:
        if self.n_rccs < 0 or self.n_timestamps < 0 or self.n_inserts < 0:
            raise ConfigurationError("workload sizes must be non-negative")
        if self.mode not in WORKLOAD_MODES:
            raise ConfigurationError(
                f"mode must be one of {WORKLOAD_MODES}, got {self.mode!r}"
            )


@dataclass(frozen=True)
class BackendCosts:
    """Calibration constants of one backend (seconds per unit work)."""

    build_per_event: float  # x n log2(n): bulk construction
    query_base: float  # fixed per-query overhead
    query_per_log: float  # x log2(n): threshold descent
    query_per_scan: float  # x n: full-scan predicates (naive re-join)
    query_per_result: float  # x k: materialising the result ids
    insert_per_log: float  # x log2(n): tree maintenance
    insert_per_event: float  # x n: array rebuild / copy maintenance


#: Defaults re-fitted against the columnar execution benches
#: (benchmarks/bench_fig5a, bench_fig5b_columnar) at 1x-20x RCC scale
#: via the per-phase ``repro planner doctor`` probe.  What moved with
#: the columnar engine:
#:
#: * ``avl``/``interval`` result constants dropped ~5x and 2x — sweeps
#:   run through the fused frame kernels, and avl additionally shares
#:   its build-time event orders with the frame;
#: * ``interval``'s build constant rose to match its measured bulk
#:   construction (~5 s at 20x, Figure 5a);
#: * ``sorted_array``'s per-query base/result constants rose to cover
#:   sweep-state setup (event-order gathers), while its build constant
#:   stays marginal — the argsorts it pays at build are *shared* with
#:   the columnar frame (``event_time_orders``), not paid twice;
#: * ``naive``'s scan constant prices its scalar fallback path; the
#:   columnar point kernel bypasses the scan, which the fitted value
#:   reflects.
DEFAULT_COSTS: dict[str, BackendCosts] = {
    "naive": BackendCosts(
        build_per_event=4e-10,
        query_base=2e-6,
        query_per_log=0.0,
        query_per_scan=8e-8,
        query_per_result=0.0,
        insert_per_log=0.0,
        insert_per_event=6e-9,
    ),
    "avl": BackendCosts(
        build_per_event=1e-7,
        query_base=2e-6,
        query_per_log=1e-6,
        query_per_scan=0.0,
        query_per_result=2.5e-8,
        insert_per_log=2e-6,
        insert_per_event=0.0,
    ),
    "interval": BackendCosts(
        build_per_event=2.5e-7,
        query_base=3e-6,
        query_per_log=2e-6,
        query_per_scan=0.0,
        query_per_result=1.2e-7,
        insert_per_log=3e-6,
        insert_per_event=0.0,
    ),
    "sorted_array": BackendCosts(
        build_per_event=5e-9,
        query_base=3e-6,
        query_per_log=5e-7,
        query_per_scan=0.0,
        query_per_result=2.4e-8,
        insert_per_log=0.0,
        insert_per_event=1e-7,
    ),
}


@dataclass(frozen=True)
class PlanDecision:
    """Outcome of one planning call."""

    backend: str
    spec: WorkloadSpec
    estimated_seconds: dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        return {
            "backend": self.backend,
            "spec": {
                "n_rccs": self.spec.n_rccs,
                "n_timestamps": self.spec.n_timestamps,
                "mode": self.spec.mode,
                "n_inserts": self.spec.n_inserts,
            },
            "estimated_seconds": {
                k: round(v, 9) for k, v in self.estimated_seconds.items()
            },
        }


class QueryPlanner:
    """Pick the cheapest index backend for a workload shape."""

    def __init__(
        self,
        costs: dict[str, BackendCosts] | None = None,
        registry: IndexRegistry | None = None,
    ):
        self.costs = dict(costs or DEFAULT_COSTS)
        self.registry = registry or DEFAULT_REGISTRY

    # ------------------------------------------------------------------
    def estimate_components(self, backend: str, spec: WorkloadSpec) -> dict[str, float]:
        """Modelled seconds for ``spec`` on ``backend``, by cost phase.

        Returns ``{"build", "query", "insert", "total"}`` — the EXPLAIN
        cost-residual tracker compares the ``query`` component alone
        against the measured execution time of an already-built index.
        """
        if backend not in self.costs:
            raise ConfigurationError(
                f"no calibration for backend {backend!r}; "
                f"known: {sorted(self.costs)}"
            )
        c = self.costs[backend]
        n = max(spec.n_rccs, 1)
        log_n = math.log2(n + 1)
        expected_k = n / 2.0  # threshold queries return half the rows on average
        build = c.build_per_event * n * log_n
        query = (
            c.query_base
            + c.query_per_log * log_n
            + c.query_per_scan * n
            + c.query_per_result * expected_k
        )
        queries = spec.n_timestamps * query
        if spec.mode == "sweep" and spec.n_timestamps > 1:
            # Ascending batches share the descent and amortise output
            # materialisation over the delta between cuts.
            queries *= 0.5
        insert = (c.insert_per_log * log_n + c.insert_per_event * n) * spec.n_inserts
        return {
            "build": build,
            "query": queries,
            "insert": insert,
            "total": build + queries + insert,
        }

    def estimate(self, backend: str, spec: WorkloadSpec) -> float:
        """Modelled total seconds for running ``spec`` on ``backend``."""
        return self.estimate_components(backend, spec)["total"]

    def plan(self, spec: WorkloadSpec) -> PlanDecision:
        """Estimate every calibrated backend and pick the cheapest."""
        estimates = {
            backend: self.estimate(backend, spec) for backend in self.costs
        }
        backend = min(estimates, key=lambda k: estimates[k])
        return PlanDecision(backend=backend, spec=spec, estimated_seconds=estimates)

    def choose(self, spec: WorkloadSpec) -> str:
        return self.plan(spec).backend

    # ------------------------------------------------------------------
    def with_costs(self, **per_backend: BackendCosts) -> "QueryPlanner":
        """Copy with some backends' constants replaced (calibration)."""
        costs = dict(self.costs)
        costs.update(per_backend)
        return QueryPlanner(costs=costs, registry=self.registry)

    @staticmethod
    def scale_costs(costs: BackendCosts, factor: float) -> BackendCosts:
        """Uniformly rescale one backend's constants by ``factor``."""
        return replace(
            costs,
            build_per_event=costs.build_per_event * factor,
            query_base=costs.query_base * factor,
            query_per_log=costs.query_per_log * factor,
            query_per_scan=costs.query_per_scan * factor,
            query_per_result=costs.query_per_result * factor,
            insert_per_log=costs.insert_per_log * factor,
            insert_per_event=costs.insert_per_event * factor,
        )
