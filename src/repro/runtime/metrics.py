"""Metrics instrumentation: counters, stage timers and nestable spans.

One :class:`MetricsSink` travels with an
:class:`~repro.runtime.context.ExecutionContext` through every layer of
the stack (feature extraction, index queries, model fitting, serving).
Components record *named counters* (monotone totals such as
``estimator.queries``) and *spans* (timed stages that may nest, such as
``fit`` > ``select``).  Spans with the same name under the same parent
are aggregated — a loop that opens ``predict`` a thousand times yields
one span record with ``count=1000`` — so the exported
:class:`RunReport` stays bounded regardless of workload size.

The sink measures durations as the stack's only wall-clock reader
(the telemetry hub additionally timestamps events); everything above it
(optimizer, service, CLI) expresses timing through spans.  When a
:class:`~repro.runtime.telemetry.TelemetryHub` is attached via the
``telemetry`` attribute, every span open/close and counter update is
forwarded to it — gaining trace/span ids, structured events and latency
histograms without changing any call site.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterator

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.telemetry.hub import TelemetryHub


@dataclass
class SpanRecord:
    """Aggregated timing of one named stage at one nesting position."""

    name: str
    seconds: float = 0.0
    count: int = 0
    errors: int = 0
    children: dict[str, "SpanRecord"] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "name": self.name,
            "seconds": round(self.seconds, 6),
            "count": self.count,
        }
        if self.errors:
            out["errors"] = self.errors
        if self.children:
            out["children"] = [c.as_dict() for c in self.children.values()]
        return out

    def copy(self) -> "SpanRecord":
        return SpanRecord(
            name=self.name,
            seconds=self.seconds,
            count=self.count,
            errors=self.errors,
            children={k: v.copy() for k, v in self.children.items()},
        )


@dataclass
class RunReport:
    """Exportable snapshot of a :class:`MetricsSink`.

    ``spans`` is the nested stage tree, ``counters`` the named totals.
    ``as_dict``/``to_json`` feed machine consumers (the service's
    ``timings`` envelope, the CLI's ``--trace`` output); ``format``
    renders a human-readable tree.
    """

    counters: dict[str, float] = field(default_factory=dict)
    spans: list[SpanRecord] = field(default_factory=list)
    meta: dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "counters": dict(self.counters),
            "spans": [s.as_dict() for s in self.spans],
        }
        if self.meta:
            out["meta"] = dict(self.meta)
        return out

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.as_dict(), indent=indent)

    def span_names(self) -> set[str]:
        """Every span name anywhere in the tree (tests, assertions)."""
        names: set[str] = set()
        stack = list(self.spans)
        while stack:
            record = stack.pop()
            names.add(record.name)
            stack.extend(record.children.values())
        return names

    def span_seconds(self, name: str) -> float:
        """Total seconds of all spans with ``name`` anywhere in the tree."""
        total = 0.0
        stack = list(self.spans)
        while stack:
            record = stack.pop()
            if record.name == name:
                total += record.seconds
            stack.extend(record.children.values())
        return total

    def format(self) -> str:
        """Pretty text tree (what ``repro --trace`` prints)."""
        lines: list[str] = ["RunReport"]
        for key in sorted(self.counters):
            lines.append(f"  counter {key} = {self.counters[key]:g}")

        def walk(record: SpanRecord, depth: int) -> None:
            suffix = f" x{record.count}" if record.count > 1 else ""
            lines.append(
                f"{'  ' * depth}- {record.name}: {record.seconds * 1000:.2f} ms{suffix}"
            )
            for child in record.children.values():
                walk(child, depth + 1)

        for record in self.spans:
            walk(record, 1)
        return "\n".join(lines)


class _OpenSpan:
    """Handle yielded by :meth:`MetricsSink.span`.

    ``seconds`` holds the elapsed wall time of the *last completed*
    entry once the ``with`` block exits (optimizer stages read it to
    fill their reports without touching the clock themselves).
    """

    __slots__ = ("record", "seconds", "_t0")

    def __init__(self, record: SpanRecord):
        self.record = record
        self.seconds = 0.0
        self._t0 = 0.0


class MetricsSink:
    """Collects counters and nested span timings for one execution."""

    def __init__(self, telemetry: "TelemetryHub | None" = None) -> None:
        self._counters: dict[str, float] = {}
        self._roots: dict[str, SpanRecord] = {}
        self._stack: list[SpanRecord] = []
        self._capturing = False
        #: Optional telemetry hub receiving span/counter hooks.
        self.telemetry = telemetry

    # ------------------------------------------------------------------
    # counters
    # ------------------------------------------------------------------
    def counter(self, name: str, by: float = 1) -> float:
        """Add ``by`` to a named counter; returns the new total."""
        total = self._counters.get(name, 0) + by
        self._counters[name] = total
        if self.telemetry is not None:
            self.telemetry.counter_changed(name, by, total)
        return total

    def counter_value(self, name: str) -> float:
        return self._counters.get(name, 0)

    @property
    def counters(self) -> dict[str, float]:
        return dict(self._counters)

    # ------------------------------------------------------------------
    # spans
    # ------------------------------------------------------------------
    @contextmanager
    def span(self, name: str) -> Iterator[_OpenSpan]:
        """Time a named stage; spans opened inside it nest under it.

        A span aborted by an exception still records its elapsed time
        (the record's ``errors`` count increments, and the telemetry
        span-close event carries ``error: true``) before the exception
        propagates.
        """
        siblings = self._stack[-1].children if self._stack else self._roots
        record = siblings.get(name)
        if record is None:
            record = siblings[name] = SpanRecord(name=name)
        handle = _OpenSpan(record)
        span_id = (
            self.telemetry.span_opened(name) if self.telemetry is not None else None
        )
        handle._t0 = time.perf_counter()
        self._stack.append(record)
        error = False
        try:
            yield handle
        except BaseException:
            error = True
            raise
        finally:
            self._stack.pop()
            elapsed = time.perf_counter() - handle._t0
            handle.seconds = elapsed
            record.seconds += elapsed
            record.count += 1
            if error:
                record.errors += 1
            if span_id is not None:
                assert self.telemetry is not None
                self.telemetry.span_closed(span_id, name, elapsed, error=error)

    def stage_seconds(self, name: str) -> float:
        """Total seconds recorded under span ``name`` (any nesting)."""
        return self.report().span_seconds(name)

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def report(self, meta: dict[str, Any] | None = None) -> RunReport:
        """Snapshot the current state as a :class:`RunReport`."""
        return RunReport(
            counters=dict(self._counters),
            spans=[r.copy() for r in self._roots.values()],
            meta=dict(meta or {}),
        )

    @contextmanager
    def capture(self) -> Iterator["_Capture"]:
        """Collect only the activity inside the block.

        Yields a box whose ``report`` attribute is filled on exit with
        the *delta* (spans entered, counters bumped) relative to the
        state at entry — the per-request ``timings`` envelope of
        :class:`~repro.core.service.DomdService` uses this.

        Captures do **not** nest: the delta diff is taken against one
        entry snapshot, so an inner capture would silently swallow the
        outer one's activity.  Nested (or concurrent, on a shared sink)
        captures raise ``RuntimeError`` instead of mis-reporting.
        """
        if self._capturing:
            raise RuntimeError(
                "MetricsSink.capture() does not nest; one capture is already open"
            )
        self._capturing = True
        before = self.report()
        box = _Capture()
        try:
            yield box
        finally:
            self._capturing = False
            box.report = _diff_report(before, self.report())


class _Capture:
    """Result box for :meth:`MetricsSink.capture`."""

    def __init__(self) -> None:
        self.report = RunReport()


def _diff_report(before: RunReport, after: RunReport) -> RunReport:
    counters = {}
    for name, value in after.counters.items():
        delta = value - before.counters.get(name, 0)
        if delta:
            counters[name] = delta
    before_spans = {s.name: s for s in before.spans}
    spans = _diff_children(
        before_spans, {s.name: s for s in after.spans}
    )
    return RunReport(counters=counters, spans=list(spans.values()))


def _diff_children(
    before: dict[str, SpanRecord], after: dict[str, SpanRecord]
) -> dict[str, SpanRecord]:
    out: dict[str, SpanRecord] = {}
    for name, record in after.items():
        prior = before.get(name)
        if prior is None:
            out[name] = record.copy()
            continue
        count = record.count - prior.count
        children = _diff_children(prior.children, record.children)
        if count <= 0 and not children:
            continue
        out[name] = SpanRecord(
            name=name,
            seconds=max(record.seconds - prior.seconds, 0.0),
            count=count,
            errors=max(record.errors - prior.errors, 0),
            children=children,
        )
    return out
