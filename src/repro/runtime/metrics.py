"""Metrics instrumentation: counters, stage timers and nestable spans.

One :class:`MetricsSink` travels with an
:class:`~repro.runtime.context.ExecutionContext` through every layer of
the stack (feature extraction, index queries, model fitting, serving).
Components record *named counters* (monotone totals such as
``estimator.queries``) and *spans* (timed stages that may nest, such as
``fit`` > ``select``).  Spans with the same name under the same parent
are aggregated — a loop that opens ``predict`` a thousand times yields
one span record with ``count=1000`` — so the exported
:class:`RunReport` stays bounded regardless of workload size.

The sink measures durations as the stack's only wall-clock reader
(the telemetry hub additionally timestamps events); everything above it
(optimizer, service, CLI) expresses timing through spans.  When a
:class:`~repro.runtime.telemetry.TelemetryHub` is attached via the
``telemetry`` attribute, every span open/close and counter update is
forwarded to it — gaining trace/span ids, structured events and latency
histograms without changing any call site.

**Thread safety.**  One sink may be shared by a pool of worker threads
(:class:`~repro.core.server.ServicePool`): counter totals are
lock-protected so concurrent increments sum exactly, while span stacks
and span trees are kept *per thread* — each worker records its own
correctly-nested tree, and :meth:`MetricsSink.report` merges the
per-thread trees by name into one aggregate view.  :meth:`capture` is
likewise per-thread: concurrent requests each capture only their own
thread's activity, and only *nesting* a capture within the same thread
raises.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterator

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.telemetry.hub import TelemetryHub


@dataclass
class SpanRecord:
    """Aggregated timing of one named stage at one nesting position."""

    name: str
    seconds: float = 0.0
    count: int = 0
    errors: int = 0
    children: dict[str, "SpanRecord"] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "name": self.name,
            "seconds": round(self.seconds, 6),
            "count": self.count,
        }
        if self.errors:
            out["errors"] = self.errors
        if self.children:
            out["children"] = [c.as_dict() for c in self.children.values()]
        return out

    def copy(self) -> "SpanRecord":
        return SpanRecord(
            name=self.name,
            seconds=self.seconds,
            count=self.count,
            errors=self.errors,
            children={k: v.copy() for k, v in self.children.items()},
        )


@dataclass
class RunReport:
    """Exportable snapshot of a :class:`MetricsSink`.

    ``spans`` is the nested stage tree, ``counters`` the named totals.
    ``as_dict``/``to_json`` feed machine consumers (the service's
    ``timings`` envelope, the CLI's ``--trace`` output); ``format``
    renders a human-readable tree.
    """

    counters: dict[str, float] = field(default_factory=dict)
    spans: list[SpanRecord] = field(default_factory=list)
    meta: dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "counters": dict(self.counters),
            "spans": [s.as_dict() for s in self.spans],
        }
        if self.meta:
            out["meta"] = dict(self.meta)
        return out

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.as_dict(), indent=indent)

    def span_names(self) -> set[str]:
        """Every span name anywhere in the tree (tests, assertions)."""
        names: set[str] = set()
        stack = list(self.spans)
        while stack:
            record = stack.pop()
            names.add(record.name)
            stack.extend(record.children.values())
        return names

    def span_seconds(self, name: str) -> float:
        """Total seconds of all spans with ``name`` anywhere in the tree."""
        total = 0.0
        stack = list(self.spans)
        while stack:
            record = stack.pop()
            if record.name == name:
                total += record.seconds
            stack.extend(record.children.values())
        return total

    def format(self) -> str:
        """Pretty text tree (what ``repro --trace`` prints)."""
        lines: list[str] = ["RunReport"]
        for key in sorted(self.counters):
            lines.append(f"  counter {key} = {self.counters[key]:g}")

        def walk(record: SpanRecord, depth: int) -> None:
            suffix = f" x{record.count}" if record.count > 1 else ""
            lines.append(
                f"{'  ' * depth}- {record.name}: {record.seconds * 1000:.2f} ms{suffix}"
            )
            for child in record.children.values():
                walk(child, depth + 1)

        for record in self.spans:
            walk(record, 1)
        return "\n".join(lines)


class _OpenSpan:
    """Handle yielded by :meth:`MetricsSink.span`.

    ``seconds`` holds the elapsed wall time of the *last completed*
    entry once the ``with`` block exits (optimizer stages read it to
    fill their reports without touching the clock themselves).
    """

    __slots__ = ("record", "seconds", "_t0")

    def __init__(self, record: SpanRecord):
        self.record = record
        self.seconds = 0.0
        self._t0 = 0.0


class _ThreadState:
    """One thread's private recording state on a shared sink."""

    __slots__ = ("counters", "roots", "stack", "capturing")

    def __init__(self) -> None:
        self.counters: dict[str, float] = {}
        self.roots: dict[str, SpanRecord] = {}
        self.stack: list[SpanRecord] = []
        self.capturing = False


class MetricsSink:
    """Collects counters and nested span timings for one execution.

    Safe to share across worker threads: global counter totals are
    guarded by a lock, span trees are recorded per thread and merged on
    :meth:`report`, and :meth:`capture` deltas are per-thread.
    """

    def __init__(self, telemetry: "TelemetryHub | None" = None) -> None:
        self._lock = threading.RLock()
        self._counters: dict[str, float] = {}
        self._local = threading.local()
        self._states: list[_ThreadState] = []
        #: Optional telemetry hub receiving span/counter hooks.
        self.telemetry = telemetry

    def _state(self) -> _ThreadState:
        state = getattr(self._local, "state", None)
        if state is None:
            state = self._local.state = _ThreadState()
            with self._lock:
                self._states.append(state)
        return state

    # ------------------------------------------------------------------
    # counters
    # ------------------------------------------------------------------
    def counter(self, name: str, by: float = 1) -> float:
        """Add ``by`` to a named counter; returns the new global total.

        Concurrent increments from multiple threads sum exactly (the
        global total is updated under the sink lock); a per-thread delta
        is additionally tracked so :meth:`capture` can report only the
        calling thread's activity.
        """
        state = self._state()
        state.counters[name] = state.counters.get(name, 0) + by
        with self._lock:
            total = self._counters.get(name, 0) + by
            self._counters[name] = total
        if self.telemetry is not None:
            self.telemetry.counter_changed(name, by, total)
        return total

    def counter_value(self, name: str) -> float:
        with self._lock:
            return self._counters.get(name, 0)

    @property
    def counters(self) -> dict[str, float]:
        with self._lock:
            return dict(self._counters)

    # ------------------------------------------------------------------
    # spans
    # ------------------------------------------------------------------
    @contextmanager
    def span(self, name: str) -> Iterator[_OpenSpan]:
        """Time a named stage; spans opened inside it nest under it.

        Nesting is tracked per thread, so concurrent workers each build
        a correctly-nested tree without contending on a shared stack.
        A span aborted by an exception still records its elapsed time
        (the record's ``errors`` count increments, and the telemetry
        span-close event carries ``error: true``) before the exception
        propagates.
        """
        state = self._state()
        siblings = state.stack[-1].children if state.stack else state.roots
        record = siblings.get(name)
        if record is None:
            record = siblings[name] = SpanRecord(name=name)
        handle = _OpenSpan(record)
        span_id = (
            self.telemetry.span_opened(name) if self.telemetry is not None else None
        )
        handle._t0 = time.perf_counter()
        state.stack.append(record)
        error = False
        try:
            yield handle
        except BaseException:
            error = True
            raise
        finally:
            state.stack.pop()
            elapsed = time.perf_counter() - handle._t0
            handle.seconds = elapsed
            record.seconds += elapsed
            record.count += 1
            if error:
                record.errors += 1
            if span_id is not None:
                assert self.telemetry is not None
                self.telemetry.span_closed(span_id, name, elapsed, error=error)

    def stage_seconds(self, name: str) -> float:
        """Total seconds recorded under span ``name`` (any nesting)."""
        return self.report().span_seconds(name)

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def report(self, meta: dict[str, Any] | None = None) -> RunReport:
        """Snapshot the current state as a :class:`RunReport`.

        Per-thread span trees are merged by name (seconds, counts and
        errors fold together, children merge recursively), so the report
        of a pooled run looks exactly like the report of the same
        workload executed sequentially.
        """
        with self._lock:
            counters = dict(self._counters)
            merged: dict[str, SpanRecord] = {}
            for state in self._states:
                _merge_children(merged, state.roots)
        return RunReport(
            counters=counters, spans=list(merged.values()), meta=dict(meta or {})
        )

    def _thread_report(self, state: _ThreadState) -> RunReport:
        """Snapshot of one thread's private activity (capture baseline)."""
        with self._lock:
            return RunReport(
                counters=dict(state.counters),
                spans=[r.copy() for r in state.roots.values()],
            )

    @contextmanager
    def capture(self) -> Iterator["_Capture"]:
        """Collect only the *current thread's* activity inside the block.

        Yields a box whose ``report`` attribute is filled on exit with
        the delta (spans entered, counters bumped) relative to the
        thread's state at entry — the per-request ``timings`` envelope
        of :class:`~repro.core.service.DomdService` uses this.  Worker
        threads of a pool may capture concurrently; each sees only its
        own request.

        Captures do **not** nest within one thread: the delta diff is
        taken against one entry snapshot, so an inner capture would
        silently swallow the outer one's activity.  Nested captures
        raise ``RuntimeError`` instead of mis-reporting.
        """
        state = self._state()
        if state.capturing:
            raise RuntimeError(
                "MetricsSink.capture() does not nest; one capture is already open"
            )
        state.capturing = True
        before = self._thread_report(state)
        box = _Capture()
        try:
            yield box
        finally:
            state.capturing = False
            box.report = _diff_report(before, self._thread_report(state))


class _Capture:
    """Result box for :meth:`MetricsSink.capture`."""

    def __init__(self) -> None:
        self.report = RunReport()


def _merge_children(
    dst: dict[str, SpanRecord], src: dict[str, SpanRecord]
) -> None:
    """Fold ``src`` records into ``dst`` by name, recursively.

    ``src`` may be a *live* per-thread tree another thread is still
    appending to, so iteration snapshots each level and records are
    folded field-by-field instead of shallow-copied.
    """
    for name, record in list(src.items()):
        into = dst.get(name)
        if into is None:
            into = dst[name] = SpanRecord(name=name)
        into.seconds += record.seconds
        into.count += record.count
        into.errors += record.errors
        _merge_children(into.children, record.children)


def _diff_report(before: RunReport, after: RunReport) -> RunReport:
    counters = {}
    for name, value in after.counters.items():
        delta = value - before.counters.get(name, 0)
        if delta:
            counters[name] = delta
    before_spans = {s.name: s for s in before.spans}
    spans = _diff_children(
        before_spans, {s.name: s for s in after.spans}
    )
    return RunReport(counters=counters, spans=list(spans.values()))


def _diff_children(
    before: dict[str, SpanRecord], after: dict[str, SpanRecord]
) -> dict[str, SpanRecord]:
    out: dict[str, SpanRecord] = {}
    for name, record in after.items():
        prior = before.get(name)
        if prior is None:
            out[name] = record.copy()
            continue
        count = record.count - prior.count
        children = _diff_children(prior.children, record.children)
        if count <= 0 and not children:
            continue
        out[name] = SpanRecord(
            name=name,
            seconds=max(record.seconds - prior.seconds, 0.0),
            count=count,
            errors=max(record.errors - prior.errors, 0),
            children=children,
        )
    return out
