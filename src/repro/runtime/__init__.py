"""Unified execution runtime: context, metrics, planning and caching.

Public API::

    from repro.runtime import (
        ExecutionContext, ensure_context,
        MetricsSink, RunReport, SpanRecord,
        IndexRegistry, DEFAULT_REGISTRY,
        QueryPlanner, WorkloadSpec, BackendCosts, PlanDecision,
        ArtifactCache, fingerprint_of, fingerprint_array,
    )

Every layer of the stack routes through this package: index backends
are chosen by the cost-based :class:`QueryPlanner`, stage timings and
counters flow into the :class:`MetricsSink`, feature tensors are
memoised in the :class:`ArtifactCache`, and the
:class:`ExecutionContext` carries all three (plus config and a seeded
RNG) through :class:`StatusQueryEngine`, :class:`StatusFeatureExtractor`,
:class:`PipelineOptimizer`, :class:`DomdEstimator`, :class:`DomdService`
and the CLI.

The observability layer lives in :mod:`repro.runtime.telemetry`: a
:class:`TelemetryHub` attached to every sink provides trace-context
propagation, latency histograms, a structured event log (with rotating
JSONL persistence), Prometheus/JSON exposition and a per-logical-window
drift monitor.  See ``docs/observability.md``.

Concurrency primitives live in :mod:`repro.runtime.concurrency`:
cooperative :class:`Deadline` cancellation threaded through the sweep
and estimator loops via :func:`check_deadline`, per-request ambient
state (:func:`ambient_scope`) and deterministic per-worker RNG streams
(:func:`worker_rng_streams`) — the substrate under the
:class:`~repro.core.server.ServicePool` serving pool.
"""

from repro.runtime.cache import (
    ArtifactCache,
    fingerprint_array,
    fingerprint_bytes,
    fingerprint_of,
)
from repro.runtime.concurrency import (
    Deadline,
    ambient_scope,
    check_deadline,
    current_deadline,
    current_rng,
    worker_rng_streams,
)
from repro.runtime.context import ExecutionContext, ensure_context
from repro.runtime.explain import (
    ExplainResult,
    OperatorRecorder,
    OperatorStats,
    QueryPlan,
    doctor_report,
    explain_point,
    explain_sweep,
    plan_from_report,
)
from repro.runtime.profile import chrome_trace, collapsed_stacks, spans_from_report
from repro.runtime.metrics import MetricsSink, RunReport, SpanRecord
from repro.runtime.planner import (
    DEFAULT_COSTS,
    DEFAULT_REGISTRY,
    WORKLOAD_MODES,
    BackendCosts,
    IndexRegistry,
    PlanDecision,
    QueryPlanner,
    WorkloadSpec,
)
from repro.runtime.concurrency import PeriodicWorker
from repro.runtime.telemetry import (
    DEFAULT_LATENCY_BUCKETS,
    AlertManager,
    AlertRule,
    BurnRateRule,
    DriftAlert,
    DriftMonitor,
    DriftThresholds,
    Histogram,
    JsonlEventLog,
    MemoryEventLog,
    SloEngine,
    SloObjective,
    StackProfiler,
    TelemetryHub,
    TelemetrySampler,
    TimeSeriesStore,
    TraceContext,
    causal_chain,
    chrome_trace_from_events,
    collapsed_from_events,
    critical_path,
    critical_path_summaries,
    default_objectives,
    load_events,
    load_events_lenient,
    prometheus_text,
    render_causal_chain,
    render_report,
    render_top,
    telemetry_snapshot,
    timeseries_from_events,
    top_snapshot,
)

__all__ = [
    "ExplainResult",
    "OperatorRecorder",
    "OperatorStats",
    "QueryPlan",
    "doctor_report",
    "explain_point",
    "explain_sweep",
    "plan_from_report",
    "chrome_trace",
    "collapsed_stacks",
    "spans_from_report",
    "TelemetryHub",
    "TraceContext",
    "causal_chain",
    "critical_path",
    "critical_path_summaries",
    "render_causal_chain",
    "Histogram",
    "DEFAULT_LATENCY_BUCKETS",
    "MemoryEventLog",
    "JsonlEventLog",
    "load_events",
    "load_events_lenient",
    "collapsed_from_events",
    "chrome_trace_from_events",
    "DriftMonitor",
    "DriftThresholds",
    "DriftAlert",
    "prometheus_text",
    "telemetry_snapshot",
    "render_report",
    "TimeSeriesStore",
    "timeseries_from_events",
    "TelemetrySampler",
    "AlertManager",
    "AlertRule",
    "SloEngine",
    "SloObjective",
    "BurnRateRule",
    "default_objectives",
    "StackProfiler",
    "top_snapshot",
    "render_top",
    "PeriodicWorker",
    "Deadline",
    "ambient_scope",
    "check_deadline",
    "current_deadline",
    "current_rng",
    "worker_rng_streams",
    "ExecutionContext",
    "ensure_context",
    "MetricsSink",
    "RunReport",
    "SpanRecord",
    "ArtifactCache",
    "fingerprint_array",
    "fingerprint_bytes",
    "fingerprint_of",
    "IndexRegistry",
    "DEFAULT_REGISTRY",
    "QueryPlanner",
    "WorkloadSpec",
    "BackendCosts",
    "PlanDecision",
    "DEFAULT_COSTS",
    "WORKLOAD_MODES",
]
