"""Concurrency primitives for the serving runtime.

The deployed engine serves many logged-in SMDII users at once, so the
runtime needs three things a single-threaded reproduction does not:

* **Deadlines** — a :class:`Deadline` carries one request's time budget.
  Cancellation is *cooperative*: long-running loops (the estimator's
  per-avail query loop, the Status Query sweep) call
  :func:`check_deadline` at natural checkpoints, which raises
  :class:`~repro.errors.DeadlineExceeded` once the budget is spent.  A
  cancelled request therefore returns within one checkpoint interval of
  its deadline instead of running to completion.
* **Ambient per-thread state** — the deadline (and the per-worker RNG
  stream) travel through the stack without touching any call signature:
  :func:`ambient_scope` installs them in a ``threading.local`` for the
  duration of one request, and checkpoints read them back from there.
  Each worker thread sees only its own request's state.
* **Deterministic per-worker RNG streams** —
  :func:`worker_rng_streams` derives one independent
  ``numpy.random.Generator`` per worker from a single seed via
  ``SeedSequence.spawn``, so a seeded run stays reproducible no matter
  how many workers serve it.  :meth:`ExecutionContext.rng
  <repro.runtime.context.ExecutionContext.rng>` resolves to the ambient
  worker stream when one is installed.

Everything here is stdlib ``threading`` + numpy; there is no hidden
event loop and no non-cooperative cancellation.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Callable, Iterator

import numpy as np

from repro.errors import ConfigurationError, DeadlineExceeded


class Deadline:
    """One request's time budget against a monotonic clock.

    Parameters
    ----------
    budget_seconds:
        Wall-clock budget; the deadline is ``now + budget_seconds``.
    clock:
        Monotonic clock override (tests inject a fake clock).
    """

    __slots__ = ("budget_seconds", "_expires_at", "_clock")

    def __init__(
        self, budget_seconds: float, clock: Callable[[], float] = time.monotonic
    ):
        budget_seconds = float(budget_seconds)
        if not budget_seconds > 0:
            raise ConfigurationError(
                f"deadline budget must be > 0 seconds, got {budget_seconds}"
            )
        self.budget_seconds = budget_seconds
        self._clock = clock
        self._expires_at = clock() + budget_seconds

    @classmethod
    def after_ms(
        cls, budget_ms: float, clock: Callable[[], float] = time.monotonic
    ) -> "Deadline":
        """Deadline ``budget_ms`` milliseconds from now."""
        return cls(float(budget_ms) / 1000.0, clock=clock)

    def remaining(self) -> float:
        """Seconds until expiry (negative once expired)."""
        return self._expires_at - self._clock()

    def expired(self) -> bool:
        return self._clock() >= self._expires_at

    def check(self, checkpoint: str = "") -> None:
        """Raise :class:`DeadlineExceeded` if the budget is spent."""
        overrun = self._clock() - self._expires_at
        if overrun >= 0:
            where = f" at {checkpoint}" if checkpoint else ""
            raise DeadlineExceeded(
                f"deadline of {self.budget_seconds * 1000:.0f} ms exceeded"
                f"{where} ({overrun * 1000:.1f} ms over budget)"
            )

    def __repr__(self) -> str:
        return (
            f"Deadline(budget={self.budget_seconds:.3f}s, "
            f"remaining={self.remaining():.3f}s)"
        )


# ----------------------------------------------------------------------
# ambient per-thread request state
# ----------------------------------------------------------------------
_AMBIENT = threading.local()


@contextmanager
def ambient_scope(
    deadline: Deadline | None = None,
    rng: np.random.Generator | None = None,
) -> Iterator[None]:
    """Install per-request ambient state for the current thread.

    Scopes nest: the previous deadline/rng are restored on exit, so a
    request served inside another scoped region (tests, nested pools)
    cannot leak its budget outward.  ``None`` values *clear* the slot
    for the duration rather than inheriting the outer value — a scope
    describes exactly one request.
    """
    previous = (
        getattr(_AMBIENT, "deadline", None),
        getattr(_AMBIENT, "rng", None),
    )
    _AMBIENT.deadline = deadline
    _AMBIENT.rng = rng
    try:
        yield
    finally:
        _AMBIENT.deadline, _AMBIENT.rng = previous


def current_deadline() -> Deadline | None:
    """The ambient deadline of the current thread, if any."""
    return getattr(_AMBIENT, "deadline", None)


def current_rng() -> np.random.Generator | None:
    """The ambient per-worker RNG stream of the current thread, if any."""
    return getattr(_AMBIENT, "rng", None)


def check_deadline(checkpoint: str = "") -> None:
    """Cooperative cancellation checkpoint.

    No-op when the current thread has no ambient deadline (every
    pre-existing single-threaded call path), so sprinkling checkpoints
    through hot loops costs one ``threading.local`` attribute read.
    """
    deadline = getattr(_AMBIENT, "deadline", None)
    if deadline is not None:
        deadline.check(checkpoint)


# ----------------------------------------------------------------------
# deterministic per-worker randomness
# ----------------------------------------------------------------------
def worker_rng_streams(seed: int, n_workers: int) -> list[np.random.Generator]:
    """``n_workers`` independent, deterministic RNG streams from one seed.

    Uses ``numpy.random.SeedSequence.spawn`` so the streams are both
    statistically independent and stable across runs and platforms:
    worker ``i`` of a pool seeded with ``seed`` always draws the same
    sequence, regardless of how many requests land on it.
    """
    if n_workers < 1:
        raise ConfigurationError(f"n_workers must be >= 1, got {n_workers}")
    return [
        np.random.default_rng(sequence)
        for sequence in np.random.SeedSequence(int(seed)).spawn(n_workers)
    ]


# ----------------------------------------------------------------------
# periodic background work (sampler, continuous profiler)
# ----------------------------------------------------------------------
class PeriodicWorker(threading.Thread):
    """Daemon thread invoking one callback at a fixed interval.

    The substrate of the always-on observability plane: the telemetry
    sampler and the continuous stack profiler both run as one of these.
    The callback runs once immediately on start (so even a short-lived
    process leaves at least one observation behind) and once more on
    :meth:`stop` (so shutdown state is captured deterministically).
    Exceptions are counted and remembered, never propagated — a broken
    observer must not take the serving loop down with it.
    """

    def __init__(
        self,
        fn: Callable[[], object],
        interval: float,
        name: str = "repro-periodic",
    ):
        if interval <= 0:
            raise ConfigurationError(
                f"interval must be positive, got {interval}"
            )
        super().__init__(name=name, daemon=True)
        self.fn = fn
        self.interval = float(interval)
        self.runs = 0
        self.errors = 0
        self.last_error: str | None = None
        self._stop_event = threading.Event()

    def _invoke(self) -> None:
        try:
            self.fn()
        except Exception as exc:  # noqa: BLE001 — observers must not kill serving
            self.errors += 1
            self.last_error = f"{type(exc).__name__}: {exc}"
        self.runs += 1

    def run(self) -> None:
        self._invoke()
        while not self._stop_event.wait(self.interval):
            self._invoke()

    def stop(self, timeout: float | None = 5.0, final_run: bool = True) -> None:
        """Signal the thread to exit, join it, optionally run once more."""
        self._stop_event.set()
        if self.is_alive():
            self.join(timeout=timeout)
        if final_run:
            self._invoke()


# ----------------------------------------------------------------------
# read/write gate (streaming ingest vs. query serving)
# ----------------------------------------------------------------------
class ReadWriteGate:
    """A writer-preference readers/writer gate.

    Query workers hold the *read* side while answering a request; the
    WAL follower holds the *write* side while applying a batch and
    rebinding the service.  Any number of readers share the gate, the
    writer is exclusive, and waiting writers block *new* readers so a
    steady query load cannot starve ingestion (bounded staleness —
    exactly the watermark-lag guarantee the gauges report).

    Both sides are context managers::

        with gate.read():
            ... answer queries ...
        with gate.write():
            ... apply a batch ...
    """

    def __init__(self):
        self._cond = threading.Condition()
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0
        #: Lifetime acquisition counters (exposed via pool/ingest status).
        self.reads = 0
        self.writes = 0

    @contextmanager
    def read(self) -> Iterator[None]:
        with self._cond:
            while self._writer or self._writers_waiting:
                self._cond.wait()
            self._readers += 1
            self.reads += 1
        try:
            yield
        finally:
            with self._cond:
                self._readers -= 1
                if self._readers == 0:
                    self._cond.notify_all()

    @contextmanager
    def write(self) -> Iterator[None]:
        with self._cond:
            self._writers_waiting += 1
            while self._writer or self._readers:
                self._cond.wait()
            self._writers_waiting -= 1
            self._writer = True
            self.writes += 1
        try:
            yield
        finally:
            with self._cond:
                self._writer = False
                self._cond.notify_all()

    def status(self) -> dict[str, int]:
        with self._cond:
            return {
                "readers": self._readers,
                "writer": int(self._writer),
                "writers_waiting": self._writers_waiting,
                "reads": self.reads,
                "writes": self.writes,
            }
