"""Content-keyed artifact caching for expensive derived tensors.

Feature extraction is the dominant fixed cost of every fit / serve /
optimize call: the same dataset snapshot swept over the same timeline
with the same feature grid always yields the same tensor.
:class:`ArtifactCache` memoises such artifacts under *content
fingerprints* — a key derived from the bytes of the inputs, not object
identity — so re-binding a fitted estimator to an unchanged snapshot
(:meth:`DomdEstimator.serve`) or constructing a second optimizer over
the same dataset skips the sweep entirely.

Entries are kept in insertion-refreshing LRU order with a bounded
entry count; hits and misses are reported to the owning
:class:`~repro.runtime.metrics.MetricsSink` when one is attached.

The cache is safe to share across a pool of worker threads:  all map
operations run under an internal lock, and :meth:`get_or_build` is
**single-flight** — when N threads ask for the same missing key at
once, exactly one executes the builder while the rest wait for its
result (counted as ``cache.coalesced``), so an expensive feature-tensor
sweep is never duplicated under concurrent load.  Builders run
*outside* the lock, so unrelated keys build in parallel.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Any, Callable, Hashable

import numpy as np

from repro.runtime.metrics import MetricsSink


def fingerprint_bytes(*chunks: bytes) -> str:
    """Stable hex digest of a sequence of byte chunks."""
    digest = hashlib.sha256()
    for chunk in chunks:
        digest.update(len(chunk).to_bytes(8, "little"))
        digest.update(chunk)
    return digest.hexdigest()[:16]


def fingerprint_array(array: np.ndarray) -> str:
    """Content fingerprint of one numpy array (dtype + shape + bytes)."""
    array = np.asarray(array)
    if array.dtype == object:
        payload = "\x1f".join(str(v) for v in array.ravel()).encode()
    else:
        payload = np.ascontiguousarray(array).tobytes()
    return fingerprint_bytes(
        str(array.dtype).encode(), str(array.shape).encode(), payload
    )


def fingerprint_of(*parts: Any) -> str:
    """Fingerprint heterogeneous parts (arrays, strings, numbers)."""
    chunks: list[bytes] = []
    for part in parts:
        if isinstance(part, np.ndarray):
            chunks.append(fingerprint_array(part).encode())
        elif isinstance(part, bytes):
            chunks.append(part)
        else:
            chunks.append(repr(part).encode())
    return fingerprint_bytes(*chunks)


class _Flight:
    """One in-progress build that followers wait on (single-flight)."""

    __slots__ = ("done", "value", "success")

    def __init__(self) -> None:
        self.done = threading.Event()
        self.value: Any = None
        self.success = False


class ArtifactCache:
    """Bounded, thread-safe LRU cache keyed by content fingerprints."""

    def __init__(self, max_entries: int = 8, metrics: MetricsSink | None = None):
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self.metrics = metrics
        self._entries: OrderedDict[Hashable, Any] = OrderedDict()
        self._lock = threading.Lock()
        self._flights: dict[Hashable, _Flight] = {}

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def _count(self, event: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(f"cache.{event}")

    def get(self, key: Hashable, default: Any = None) -> Any:
        with self._lock:
            hit = key in self._entries
            entry = self._entries.get(key, default)
            if hit:
                self._entries.move_to_end(key)
        self._count("hits" if hit else "misses")
        return entry

    def put(self, key: Hashable, value: Any) -> Any:
        evictions = 0
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                evictions += 1
        for _ in range(evictions):
            self._count("evictions")
        return value

    def get_or_build(self, key: Hashable, build: Callable[[], Any]) -> Any:
        """Return the cached artifact or build, store and return it.

        Single-flight: concurrent callers for the same missing key
        coalesce onto one build — the first caller (the *leader*)
        executes ``build`` outside the lock, followers block until the
        leader finishes and then share its stored value.  If the
        leader's build raises, followers retry (one of them becomes the
        next leader) instead of receiving a poisoned result.
        """
        while True:
            with self._lock:
                if key in self._entries:
                    self._entries.move_to_end(key)
                    value = self._entries[key]
                    self._count("hits")
                    return value
                flight = self._flights.get(key)
                if flight is None:
                    flight = self._flights[key] = _Flight()
                    leader = True
                else:
                    leader = False
            if not leader:
                self._count("coalesced")
                flight.done.wait()
                if flight.success:
                    self._count("hits")
                    return flight.value
                continue  # leader failed; loop to contend for leadership
            self._count("misses")
            try:
                value = build()
            except BaseException:
                with self._lock:
                    del self._flights[key]
                flight.done.set()
                raise
            self._count("builds")
            flight.value = value
            flight.success = True
            self.put(key, value)
            with self._lock:
                del self._flights[key]
            flight.done.set()
            return value

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
