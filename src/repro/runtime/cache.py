"""Content-keyed artifact caching for expensive derived tensors.

Feature extraction is the dominant fixed cost of every fit / serve /
optimize call: the same dataset snapshot swept over the same timeline
with the same feature grid always yields the same tensor.
:class:`ArtifactCache` memoises such artifacts under *content
fingerprints* — a key derived from the bytes of the inputs, not object
identity — so re-binding a fitted estimator to an unchanged snapshot
(:meth:`DomdEstimator.serve`) or constructing a second optimizer over
the same dataset skips the sweep entirely.

Entries are kept in insertion-refreshing LRU order with a bounded
entry count; hits and misses are reported to the owning
:class:`~repro.runtime.metrics.MetricsSink` when one is attached.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Any, Callable, Hashable

import numpy as np

from repro.runtime.metrics import MetricsSink


def fingerprint_bytes(*chunks: bytes) -> str:
    """Stable hex digest of a sequence of byte chunks."""
    digest = hashlib.sha256()
    for chunk in chunks:
        digest.update(len(chunk).to_bytes(8, "little"))
        digest.update(chunk)
    return digest.hexdigest()[:16]


def fingerprint_array(array: np.ndarray) -> str:
    """Content fingerprint of one numpy array (dtype + shape + bytes)."""
    array = np.asarray(array)
    if array.dtype == object:
        payload = "\x1f".join(str(v) for v in array.ravel()).encode()
    else:
        payload = np.ascontiguousarray(array).tobytes()
    return fingerprint_bytes(
        str(array.dtype).encode(), str(array.shape).encode(), payload
    )


def fingerprint_of(*parts: Any) -> str:
    """Fingerprint heterogeneous parts (arrays, strings, numbers)."""
    chunks: list[bytes] = []
    for part in parts:
        if isinstance(part, np.ndarray):
            chunks.append(fingerprint_array(part).encode())
        elif isinstance(part, bytes):
            chunks.append(part)
        else:
            chunks.append(repr(part).encode())
    return fingerprint_bytes(*chunks)


class ArtifactCache:
    """Bounded LRU cache keyed by content fingerprints."""

    def __init__(self, max_entries: int = 8, metrics: MetricsSink | None = None):
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self.metrics = metrics
        self._entries: OrderedDict[Hashable, Any] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def _count(self, event: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(f"cache.{event}")

    def get(self, key: Hashable, default: Any = None) -> Any:
        entry = self._entries.get(key, default)
        if key in self._entries:
            self._entries.move_to_end(key)
            self._count("hits")
        else:
            self._count("misses")
        return entry

    def put(self, key: Hashable, value: Any) -> Any:
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self._count("evictions")
        return value

    def get_or_build(self, key: Hashable, build: Callable[[], Any]) -> Any:
        """Return the cached artifact or build, store and return it."""
        if key in self._entries:
            self._entries.move_to_end(key)
            self._count("hits")
            return self._entries[key]
        self._count("misses")
        return self.put(key, build())

    def clear(self) -> None:
        self._entries.clear()
