"""The execution context threaded through every layer of the stack.

An :class:`ExecutionContext` bundles the cross-cutting runtime state a
request or batch job needs — configuration, a seeded RNG, a
:class:`~repro.runtime.metrics.MetricsSink`, an
:class:`~repro.runtime.cache.ArtifactCache` and a
:class:`~repro.runtime.planner.QueryPlanner` — so components share one
seam instead of five ad-hoc parameters.  Every public entry point
(:class:`StatusQueryEngine`, :class:`StatusFeatureExtractor`,
:class:`PipelineOptimizer`, :class:`DomdEstimator`,
:class:`DomdService`, the CLI) accepts an optional context; when none
is supplied a private one is created, keeping the call sites that
predate the runtime working unchanged.
"""

from __future__ import annotations

from typing import Any, Iterator

import numpy as np

from repro.runtime.cache import ArtifactCache
from repro.runtime.concurrency import current_rng
from repro.runtime.metrics import MetricsSink, RunReport
from repro.runtime.planner import QueryPlanner
from repro.runtime.telemetry.hub import TelemetryHub


class ExecutionContext:
    """Shared runtime state for one execution (a request, a job, a run).

    Parameters
    ----------
    seed:
        Seeds the context RNG; components that need randomness draw
        from ``context.rng`` instead of seeding privately.
    config:
        Optional configuration object carried for downstream
        components (usually a :class:`~repro.core.config.PipelineConfig`).
    metrics / cache / planner / telemetry:
        Pre-built subsystems to share across contexts; fresh defaults
        are created when omitted.  The cache reports hit/miss counters
        to this context's sink; the telemetry hub is attached to the
        sink so every span/counter gains trace ids, events and latency
        histograms.
    """

    def __init__(
        self,
        seed: int = 0,
        config: Any = None,
        metrics: MetricsSink | None = None,
        cache: ArtifactCache | None = None,
        planner: QueryPlanner | None = None,
        telemetry: TelemetryHub | None = None,
    ):
        self.seed = int(seed)
        self.config = config
        self.metrics = metrics or MetricsSink()
        if telemetry is not None:
            self.metrics.telemetry = telemetry
        elif self.metrics.telemetry is None:
            self.metrics.telemetry = TelemetryHub()
        self.cache = cache or ArtifactCache(metrics=self.metrics)
        if self.cache.metrics is None:
            self.cache.metrics = self.metrics
        self.planner = planner or QueryPlanner()
        self._rng = np.random.default_rng(self.seed)

    @property
    def rng(self) -> np.random.Generator:
        """The context RNG, or the ambient per-worker stream when set.

        Inside a :class:`~repro.core.server.ServicePool` worker the
        ambient stream installed by
        :func:`~repro.runtime.concurrency.ambient_scope` takes
        precedence, so components drawing from ``context.rng`` stay
        deterministic per worker without the context being mutated.
        """
        ambient = current_rng()
        if ambient is not None:
            return ambient
        return self._rng

    @rng.setter
    def rng(self, value: np.random.Generator) -> None:
        self._rng = value

    @property
    def telemetry(self) -> TelemetryHub:
        """The telemetry hub attached to this context's sink."""
        assert self.metrics.telemetry is not None
        return self.metrics.telemetry

    # ------------------------------------------------------------------
    # conveniences so call sites read context.span(...) / context.counter(...)
    # ------------------------------------------------------------------
    def span(self, name: str) -> Iterator:
        return self.metrics.span(name)

    def counter(self, name: str, by: float = 1) -> float:
        return self.metrics.counter(name, by)

    def report(self, meta: dict[str, Any] | None = None) -> RunReport:
        return self.metrics.report(meta=meta)

    def __repr__(self) -> str:
        return (
            f"ExecutionContext(seed={self.seed}, "
            f"counters={len(self.metrics.counters)}, cache={len(self.cache)})"
        )


def ensure_context(
    context: ExecutionContext | None, seed: int = 0, config: Any = None
) -> ExecutionContext:
    """Return ``context`` or a fresh private one (compat shim)."""
    if context is not None:
        return context
    return ExecutionContext(seed=seed, config=config)
