"""repro — reproduction of the EDBT 2025 DoMD estimation framework.

The package is organised bottom-up:

- :mod:`repro.table` — columnar table engine (pandas stand-in).
- :mod:`repro.index` — logical-time index structures and Status Query
  processing (paper Section 4).
- :mod:`repro.data` — NMD data model and synthetic dataset generator.
- :mod:`repro.features` — feature engineering and selection (Section 3.1).
- :mod:`repro.ml` — gradient boosting, linear models, losses, metrics,
  and TPE hyperparameter tuning (the sklearn/XGBoost/Optuna stand-ins).
- :mod:`repro.core` — the DoMD estimation framework itself: logical
  timeline models, architectures, fusion, the greedy pipeline optimizer,
  and the DoMD query API (Sections 2 and 3.2).
- :mod:`repro.bench` — experiment harness utilities shared by the
  benchmark scripts.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
