"""Model persistence: serialise fitted pipelines to JSON.

The deployed SMDII engine must survive process restarts without
refitting, and the paper's enclave workflow ships *fitted designs*
across environments.  This module serialises:

* :class:`~repro.ml.gbm.GradientBoostedTrees` — full tree structure;
* :class:`~repro.ml.linear.ElasticNet` — coefficients;
* :class:`~repro.core.timeline_models.TimelineModelSet` — per-window
  models, selections and design names;
* :class:`~repro.core.estimator.DomdEstimator` — the full service
  state, minus the dataset (features are re-extracted on load from the
  dataset you supply, which keeps the artefact small and CUI-free).

Format: a single JSON document with a version tag; everything is plain
lists/numbers so artefacts are diffable and auditable.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path
from typing import Any

import numpy as np

from repro.core.config import PipelineConfig
from repro.core.estimator import DomdEstimator
from repro.core.models import BaseModelAdapter, GbmAdapter, LinearAdapter
from repro.core.timeline_models import TimelineModelSet, WindowModel
from repro.data.schema import NavyMaintenanceDataset
from repro.errors import ConfigurationError, NotFittedError
from repro.ml.gbm import GbmParams, GradientBoostedTrees
from repro.ml.linear import ElasticNet
from repro.ml.tree import RegressionTree, TreeParams, _Node

FORMAT_VERSION = 1

_NODE_FIELDS = ("value", "n_samples", "cover", "feature", "threshold", "gain", "left", "right")


# ----------------------------------------------------------------------
# trees / GBM
# ----------------------------------------------------------------------
def tree_to_payload(tree: RegressionTree) -> dict[str, Any]:
    """Serialise one regression tree."""
    if not tree._nodes:
        raise NotFittedError("cannot serialise an unfitted tree")
    return {
        "params": asdict(tree.params),
        "n_features": tree._n_features,
        "nodes": [[getattr(node, f) for f in _NODE_FIELDS] for node in tree._nodes],
    }


def tree_from_payload(payload: dict[str, Any]) -> RegressionTree:
    """Rebuild a regression tree."""
    tree = RegressionTree(TreeParams(**payload["params"]))
    tree._n_features = int(payload["n_features"])
    tree._nodes = [
        _Node(**dict(zip(_NODE_FIELDS, values))) for values in payload["nodes"]
    ]
    return tree


def gbm_to_payload(model: GradientBoostedTrees) -> dict[str, Any]:
    """Serialise a boosted ensemble."""
    model._check_fitted()
    return {
        "kind": "gbm",
        "params": asdict(model.params),
        "base_score": model._base_score,
        "n_features": model._n_features,
        "trees": [tree_to_payload(tree) for tree in model._trees],
    }


def gbm_from_payload(payload: dict[str, Any]) -> GradientBoostedTrees:
    """Rebuild a boosted ensemble."""
    model = GradientBoostedTrees(GbmParams(**payload["params"]))
    model._base_score = float(payload["base_score"])
    model._n_features = int(payload["n_features"])
    model._trees = [tree_from_payload(item) for item in payload["trees"]]
    return model


# ----------------------------------------------------------------------
# linear
# ----------------------------------------------------------------------
def elastic_net_to_payload(model: ElasticNet) -> dict[str, Any]:
    """Serialise an Elastic-Net model."""
    if model.coef_ is None:
        raise NotFittedError("cannot serialise an unfitted ElasticNet")
    return {
        "kind": "elastic_net",
        "alpha": model.alpha,
        "l1_ratio": model.l1_ratio,
        "coef": model.coef_.tolist(),
        "intercept": model.intercept_,
    }


def elastic_net_from_payload(payload: dict[str, Any]) -> ElasticNet:
    """Rebuild an Elastic-Net model."""
    model = ElasticNet(alpha=payload["alpha"], l1_ratio=payload["l1_ratio"])
    model.coef_ = np.asarray(payload["coef"], dtype=np.float64)
    model.intercept_ = float(payload["intercept"])
    model._fitted = True
    return model


# ----------------------------------------------------------------------
# adapters
# ----------------------------------------------------------------------
def adapter_to_payload(adapter: BaseModelAdapter) -> dict[str, Any]:
    """Serialise a base-model adapter (GBM or linear)."""
    if isinstance(adapter, GbmAdapter):
        return {"family": "gbm", "model": gbm_to_payload(adapter._fitted())}
    if isinstance(adapter, LinearAdapter):
        payload = {"family": "linear", "model": elastic_net_to_payload(adapter._fitted())}
        assert adapter._train_mean is not None
        payload["train_mean"] = adapter._train_mean.tolist()
        return payload
    raise ConfigurationError(f"cannot serialise adapter {type(adapter).__name__}")


def adapter_from_payload(payload: dict[str, Any]) -> BaseModelAdapter:
    """Rebuild a base-model adapter."""
    if payload["family"] == "gbm":
        model = gbm_from_payload(payload["model"])
        adapter = GbmAdapter(model.params)
        adapter._model = model
        return adapter
    if payload["family"] == "linear":
        inner = elastic_net_from_payload(payload["model"])
        adapter = LinearAdapter(alpha=inner.alpha, l1_ratio=inner.l1_ratio)
        adapter._model = inner
        adapter._train_mean = np.asarray(payload["train_mean"], dtype=np.float64)
        return adapter
    raise ConfigurationError(f"unknown adapter family {payload['family']!r}")


# ----------------------------------------------------------------------
# timeline model set / estimator
# ----------------------------------------------------------------------
def model_set_to_payload(model_set: TimelineModelSet) -> dict[str, Any]:
    """Serialise a fitted timeline model set."""
    model_set._check_fitted()
    return {
        "config": _config_to_payload(model_set.config),
        "dyn_feature_names": list(model_set.dyn_feature_names),
        "static_feature_names": list(model_set.static_feature_names),
        "base_model": (
            adapter_to_payload(model_set._base_model)
            if model_set._base_model is not None
            else None
        ),
        "windows": [
            {
                "t_star": window.t_star,
                "selected": window.selected.tolist(),
                "design_names": list(window.design_names),
                "model": adapter_to_payload(window.model),
            }
            for window in model_set.windows
        ],
    }


def model_set_from_payload(payload: dict[str, Any]) -> TimelineModelSet:
    """Rebuild a fitted timeline model set."""
    model_set = TimelineModelSet(
        config=_config_from_payload(payload["config"]),
        dyn_feature_names=list(payload["dyn_feature_names"]),
        static_feature_names=list(payload["static_feature_names"]),
    )
    if payload["base_model"] is not None:
        model_set._base_model = adapter_from_payload(payload["base_model"])
    model_set._windows = [
        WindowModel(
            t_star=float(item["t_star"]),
            selected=np.asarray(item["selected"], dtype=np.int64),
            model=adapter_from_payload(item["model"]),
            design_names=list(item["design_names"]),
        )
        for item in payload["windows"]
    ]
    return model_set


def _config_to_payload(config: PipelineConfig) -> dict[str, Any]:
    payload = asdict(config)
    payload["gbm"] = asdict(config.gbm)
    return payload


def _config_from_payload(payload: dict[str, Any]) -> PipelineConfig:
    payload = dict(payload)
    payload["gbm"] = GbmParams(**payload["gbm"])
    return PipelineConfig(**payload)


def save_estimator(estimator: DomdEstimator, path: str | Path) -> None:
    """Write a fitted estimator's model state to a JSON artefact.

    The dataset is *not* stored (it may be CUI); pass it again at load.
    """
    estimator._check_fitted()
    assert estimator._model_set is not None
    payload = {
        "format_version": FORMAT_VERSION,
        "config": _config_to_payload(estimator.config),
        "model_set": model_set_to_payload(estimator._model_set),
    }
    if estimator._static_vocab is not None:
        # Fit-time categorical vocabulary: loading the artefact against a
        # subset of the fit dataset (a shard's ship slice) must encode
        # exactly like the monolith.  Optional for old artefacts.
        payload["static_vocab"] = {
            column: {str(label): int(code) for label, code in mapping.items()}
            for column, mapping in estimator._static_vocab.items()
        }
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload), encoding="utf-8")


def load_estimator(
    path: str | Path,
    dataset: NavyMaintenanceDataset,
    context: "ExecutionContext | None" = None,
) -> DomdEstimator:
    """Rebuild an estimator from an artefact + the dataset to serve.

    Features are re-extracted from ``dataset`` (fast, and memoised in
    ``context``'s artifact cache), the fitted window models come from
    the artefact — no retraining happens.
    """
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise ConfigurationError(
            f"artefact format {version!r} unsupported (expected {FORMAT_VERSION})"
        )
    config = _config_from_payload(payload["config"])
    estimator = DomdEstimator(config, context=context)
    from repro.features.static import static_features_for
    from repro.features.transform import StatusFeatureExtractor

    estimator._dataset = dataset
    estimator._tensor = StatusFeatureExtractor(
        dataset, estimator.timeline.t_stars, context=estimator.context
    ).extract()
    estimator._static_vocab = payload.get("static_vocab")
    X_static, estimator._static_names, static_ids = static_features_for(
        dataset, vocab=estimator._static_vocab
    )
    estimator._X_static = X_static
    estimator._avail_ids = static_ids
    estimator._model_set = model_set_from_payload(payload["model_set"])
    estimator._model_set.context = estimator.context
    return estimator


# ----------------------------------------------------------------------
# streaming snapshots (snapshot + WAL-tail replay = recovery)
# ----------------------------------------------------------------------
STREAM_FORMAT_VERSION = 1


def save_stream_snapshot(ingestor: Any, path: str | Path) -> None:
    """Checkpoint a :class:`~repro.stream.ingest.StreamIngestor`.

    The snapshot pins the watermark and the full store state (tables +
    the orphan buffer of out-of-order events), so recovery is *snapshot
    + WAL-tail replay from the pinned watermark*: indexes are rebuilt
    from the restored triples, acknowledged batches are never lost
    (pinned by ``tests/stream/test_snapshot_restore.py``).
    """
    from repro.stream.events import table_to_payload

    store = ingestor.store
    payload = {
        "stream_format_version": STREAM_FORMAT_VERSION,
        "watermark": {
            "seq": ingestor.watermark,
            "applied_batches": ingestor.applied_batches,
            "applied_events": ingestor.applied_events,
            "skipped_duplicates": ingestor.skipped_duplicates,
        },
        "designs": sorted(ingestor.adapters),
        "seed": store.seed,
        "scaling_factor": store.scaling_factor,
        "ships": table_to_payload(store.ships),
        "avails": table_to_payload(store.avails_table()),
        "rccs": table_to_payload(store.rcc_table(order="slot")),
        "orphans": store.orphans_payload(),
        "store_counts": dict(store.counts),
    }
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload), encoding="utf-8")


def load_stream_snapshot(
    path: str | Path,
    context: "ExecutionContext | None" = None,
    designs: "list[str] | None" = None,
    rebuild_threshold: int | None = None,
) -> Any:
    """Rebuild a :class:`~repro.stream.ingest.StreamIngestor` from a
    snapshot; replay the WAL tail past its watermark to catch up."""
    from repro.stream.events import table_from_payload
    from repro.stream.ingest import StreamIngestor
    from repro.stream.store import StreamingRccStore

    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    version = payload.get("stream_format_version")
    if version != STREAM_FORMAT_VERSION:
        raise ConfigurationError(
            f"stream snapshot format {version!r} unsupported "
            f"(expected {STREAM_FORMAT_VERSION})"
        )
    store = StreamingRccStore(
        ships=table_from_payload(payload["ships"]),
        avails=table_from_payload(payload["avails"]),
        seed=payload.get("seed"),
        scaling_factor=int(payload.get("scaling_factor", 1)),
    )
    rccs = table_from_payload(payload["rccs"])
    # Rows were saved in slot order; replaying them as create(+settle)
    # pairs reconstructs identical slots, logical times and status.
    from repro.data.dates import MISSING_DATE as _MISSING
    from repro.stream.events import RccCreated, RccSettled

    for row in range(rccs.n_rows):
        store.apply(
            RccCreated(
                rcc_id=int(rccs["rcc_id"][row]),
                avail_id=int(rccs["avail_id"][row]),
                rcc_type=str(rccs["rcc_type"][row]),
                swlin=str(rccs["swlin"][row]),
                create_date=int(rccs["create_date"][row]),
                amount=float(rccs["amount"][row]),
            )
        )
        settle_date = int(rccs["settle_date"][row])
        if str(rccs["status"][row]) == "settled" and settle_date != _MISSING:
            store.apply(
                RccSettled(rcc_id=int(rccs["rcc_id"][row]), settle_date=settle_date)
            )
    store.restore_orphans(payload.get("orphans", {}))
    store.counts = dict(payload.get("store_counts", store.counts))
    watermark = payload.get("watermark", {})
    ingestor = StreamIngestor(
        store,
        designs=designs if designs is not None else payload.get("designs", ["avl"]),
        rebuild_threshold=rebuild_threshold,
        context=context,
        watermark=int(watermark.get("seq", 0)),
    )
    ingestor.applied_batches = int(watermark.get("applied_batches", 0))
    ingestor.applied_events = int(watermark.get("applied_events", 0))
    ingestor.skipped_duplicates = int(watermark.get("skipped_duplicates", 0))
    return ingestor
