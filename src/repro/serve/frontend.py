"""The asyncio socket front-end: many clients in, one dispatch out.

:class:`FleetFrontend` is the fleet service's front door — an asyncio
TCP server speaking the length-prefixed JSON protocol
(:mod:`repro.serve.framing`).  The event loop owns *connections* (it
can hold thousands open cheaply); actual request work is handed to a
bounded thread pool whose threads drive the router's blocking
scatter-gather.  That split keeps the loop responsive while shard round
trips run, and gives saturation a crisp shape: when every dispatch slot
is taken, new requests are answered **immediately** with a retryable
``overloaded`` envelope — the front-end never queues unboundedly, so
p99 latency stays bounded at saturation instead of growing with the
backlog.

Per-request deadlines come from the wire: a ``deadline_ms`` field is
validated here, enforced with ``asyncio.wait_for`` around the dispatch,
and travels with the request so shards can bound their own queues with
the same budget.  A request that blows its budget gets a
``deadline_exceeded`` envelope — retryable, by the pinned enumeration.

Connection-level failures normalise exactly like the shard servers
(one enumeration, every transport): oversize frame → drained +
``bad_request`` (connection survives); zero-length frame → ``bad_json``
"malformed frame" (stream untrustworthy, connection closes); malformed
JSON payload → ``bad_json`` (connection survives); EOF inside a frame →
counted mid-request disconnect.
"""

from __future__ import annotations

import asyncio
import json
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable

from repro.core.service import error_envelope
from repro.serve.framing import HEADER_BYTES, MAX_FRAME_BYTES, _HEADER, encode_frame

#: Grace (seconds) past the wire deadline before the front-end gives up
#: waiting on a dispatch — covers envelope construction, not work.
_DEADLINE_GRACE = 0.25


class FleetFrontend:
    """Asyncio frame server delegating requests to a blocking dispatcher.

    Parameters
    ----------
    dispatch:
        ``request-dict -> response-envelope``; typically
        :meth:`ShardRouter.dispatch` (fleet) or a
        :class:`RequestHandler`-backed closure (single process).  Runs
        on the executor, must never raise.
    host / port:
        Bind address; ``port=0`` picks an ephemeral port (see
        :attr:`port` after :meth:`start`).
    max_inflight:
        Dispatch-slot bound — the saturation point where ``overloaded``
        envelopes begin.
    context:
        Optional :class:`~repro.runtime.ExecutionContext` for counters.
    """

    def __init__(
        self,
        dispatch: Callable[[dict[str, Any]], dict[str, Any]],
        host: str = "127.0.0.1",
        port: int = 0,
        max_inflight: int = 64,
        max_frame_bytes: int = MAX_FRAME_BYTES,
        context: Any | None = None,
    ):
        self.dispatch = dispatch
        self.host = host
        self._requested_port = int(port)
        self.max_inflight = int(max_inflight)
        self.max_frame_bytes = int(max_frame_bytes)
        self.context = context
        self._executor = ThreadPoolExecutor(
            max_workers=self.max_inflight, thread_name_prefix="repro-frontend"
        )
        self._loop: asyncio.AbstractEventLoop | None = None
        self._server: asyncio.base_events.Server | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._stopping = threading.Event()
        self._stop_event: asyncio.Event | None = None
        self._drain_on_stop = True
        self._stop_timeout = 10.0
        self._startup_error: BaseException | None = None
        self._port: int | None = None
        self._active_requests = 0
        self._counters = {
            "connections": 0,
            "requests": 0,
            "overloaded": 0,
            "deadline_exceeded": 0,
            "oversize_frames": 0,
            "protocol_errors": 0,
            "disconnects_mid_request": 0,
        }

    # ------------------------------------------------------------------
    # lifecycle (thread-hosted loop: blocking callers just start/stop)
    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        assert self._port is not None, "frontend not started"
        return self._port

    def start(self, timeout: float = 10.0) -> int:
        """Start the loop thread; returns the bound port."""
        self._thread = threading.Thread(
            target=self._run_loop, name="repro-frontend-loop", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError("frontend event loop did not start in time")
        if self._startup_error is not None:
            raise RuntimeError(
                f"frontend failed to bind {self.host}:{self._requested_port}"
            ) from self._startup_error
        assert self._port is not None
        return self._port

    def _run_loop(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        try:
            self._server = await asyncio.start_server(
                self._handle_connection, host=self.host, port=self._requested_port
            )
        except OSError as exc:
            self._startup_error = exc
            self._ready.set()
            return
        self._port = self._server.sockets[0].getsockname()[1]
        self._ready.set()
        async with self._server:
            # Returning (rather than stopping the loop) lets asyncio.run
            # cancel lingering connection tasks through its own teardown.
            await self._stop_event.wait()
            self._server.close()
            await self._server.wait_closed()
            if self._drain_on_stop:
                deadline = self._loop.time() + self._stop_timeout
                while (
                    self._active_requests > 0 and self._loop.time() < deadline
                ):
                    await asyncio.sleep(0.01)

    def stop(self, drain: bool = True, timeout: float = 10.0) -> None:
        """Stop accepting; optionally wait out in-flight dispatches."""
        loop = self._loop
        if loop is None or self._stop_event is None or self._stopping.is_set():
            return
        self._stopping.set()
        self._drain_on_stop = drain
        self._stop_timeout = timeout
        try:
            loop.call_soon_threadsafe(self._stop_event.set)
        except RuntimeError:
            pass  # loop already gone
        if self._thread is not None:
            self._thread.join(timeout + 5.0)
        self._executor.shutdown(wait=False)

    # ------------------------------------------------------------------
    # per-connection protocol loop
    # ------------------------------------------------------------------
    def _count(self, name: str, value: int = 1) -> None:
        self._counters[name] += value
        if self.context is not None:
            self.context.counter(f"frontend.{name}", value)

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._count("connections")
        try:
            while True:
                try:
                    header = await reader.readexactly(HEADER_BYTES)
                except asyncio.IncompleteReadError as exc:
                    if exc.partial:
                        self._count("disconnects_mid_request")
                    return  # clean EOF between frames otherwise
                except (ConnectionError, OSError):
                    return
                (length,) = _HEADER.unpack(header)
                if length == 0:
                    self._count("protocol_errors")
                    await self._send(
                        writer,
                        error_envelope(
                            "bad_json", "malformed frame: zero-length frame"
                        ),
                    )
                    return  # the stream cannot be trusted past this
                if length > self.max_frame_bytes:
                    self._count("oversize_frames")
                    if not await self._drain_oversize(reader, length):
                        self._count("disconnects_mid_request")
                        return
                    await self._send(
                        writer,
                        error_envelope(
                            "bad_request",
                            f"frame declares {length} bytes, exceeding the "
                            f"{self.max_frame_bytes}-byte frame limit",
                        ),
                    )
                    continue
                try:
                    payload = await reader.readexactly(length)
                except asyncio.IncompleteReadError:
                    self._count("disconnects_mid_request")
                    return
                except (ConnectionError, OSError):
                    self._count("disconnects_mid_request")
                    return
                response = await self._respond(payload)
                if not await self._send(writer, response):
                    return
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _drain_oversize(
        self, reader: asyncio.StreamReader, length: int
    ) -> bool:
        """Discard an oversize payload so the stream stays framed."""
        remaining = length
        while remaining:
            chunk = await reader.read(min(remaining, 65536))
            if not chunk:
                return False
            remaining -= len(chunk)
        return True

    async def _send(
        self, writer: asyncio.StreamWriter, response: dict[str, Any]
    ) -> bool:
        try:
            writer.write(encode_frame(response, max_bytes=self.max_frame_bytes))
            await writer.drain()
            return True
        except (ConnectionError, OSError):
            self._count("disconnects_mid_request")
            return False

    # ------------------------------------------------------------------
    # request execution
    # ------------------------------------------------------------------
    async def _respond(self, payload: bytes) -> dict[str, Any]:
        try:
            request = json.loads(payload.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            return error_envelope("bad_json", f"malformed JSON: {exc}")
        budget: float | None = None
        if isinstance(request, dict):
            deadline_ms = request.get("deadline_ms")
            if deadline_ms is not None:
                if (
                    isinstance(deadline_ms, bool)
                    or not isinstance(deadline_ms, (int, float))
                    or not deadline_ms > 0
                ):
                    return error_envelope(
                        "bad_request",
                        "'deadline_ms' must be a positive number, "
                        f"got {deadline_ms!r}",
                    )
                budget = float(deadline_ms) / 1000.0
        if self._active_requests >= self.max_inflight:
            # Immediate, honest backpressure: the retryable envelope is
            # cheaper for everyone than an invisible queue.
            self._count("overloaded")
            return error_envelope(
                "overloaded",
                f"front-end at capacity ({self.max_inflight} requests in"
                " flight); retry with backoff",
            )
        self._count("requests")
        self._active_requests += 1
        assert self._loop is not None
        try:
            future = self._loop.run_in_executor(
                self._executor, self._dispatch_safely, request
            )
            if budget is None:
                return await future
            try:
                return await asyncio.wait_for(future, budget + _DEADLINE_GRACE)
            except asyncio.TimeoutError:
                self._count("deadline_exceeded")
                return error_envelope(
                    "deadline_exceeded",
                    f"request exceeded its {deadline_ms}ms wire deadline"
                    " at the front-end",
                )
        finally:
            self._active_requests -= 1

    def _dispatch_safely(self, request: Any) -> dict[str, Any]:
        try:
            return self.dispatch(request)
        except Exception as exc:  # noqa: BLE001 — the envelope contract
            return error_envelope(
                "internal", f"dispatch failure ({type(exc).__name__}: {exc})"
            )

    # ------------------------------------------------------------------
    def status(self) -> dict[str, Any]:
        out = dict(self._counters)
        out["active_requests"] = self._active_requests
        out["max_inflight"] = self.max_inflight
        return out
