"""The sharded networked fleet service.

Layers, bottom-up — each importable on its own:

* :mod:`~repro.serve.framing` — the length-prefixed JSON wire protocol;
* :mod:`~repro.serve.ring` — the consistent-hash ring (ship → shard);
* :mod:`~repro.serve.partition` — per-shard dataset slicing;
* :mod:`~repro.serve.handler` — transport-agnostic request dispatch
  (shared with the ``repro serve`` stdin loop);
* :mod:`~repro.serve.shard` / :mod:`~repro.serve.supervisor` — the
  worker processes and their lifecycle;
* :mod:`~repro.serve.client` / :mod:`~repro.serve.router` — per-shard
  connections, point routing and scatter-gather;
* :mod:`~repro.serve.frontend` / :mod:`~repro.serve.fleet` — the
  asyncio front door and the one-constructor assembly.

See ``docs/serving.md`` for the wire protocol, sharding layout,
failure modes and the drain/restart runbook.
"""

from repro.serve.client import FrameClient, ShardUnavailable
from repro.serve.fleet import FleetService, build_shard_specs, shard_wal_path
from repro.serve.framing import (
    MAX_FRAME_BYTES,
    FrameDecoder,
    FrameError,
    FrameProtocolError,
    FrameTooLarge,
    FrameTruncated,
    encode_frame,
    recv_frame,
    send_frame,
)
from repro.serve.frontend import FleetFrontend
from repro.serve.handler import RequestHandler, serve_stdin
from repro.serve.partition import fleet_assignment, shard_dataset, ships_of_shard
from repro.serve.ring import (
    DEFAULT_VNODES,
    ConsistentHashRing,
    ship_key,
    stable_hash,
)
from repro.serve.router import RoutingTable, ShardRouter
from repro.serve.shard import ShardServer, build_shard_runtime, shard_entry
from repro.serve.supervisor import ShardStartupError, ShardSupervisor

__all__ = [
    "MAX_FRAME_BYTES",
    "DEFAULT_VNODES",
    "ConsistentHashRing",
    "FleetFrontend",
    "FleetService",
    "FrameClient",
    "FrameDecoder",
    "FrameError",
    "FrameProtocolError",
    "FrameTooLarge",
    "FrameTruncated",
    "RequestHandler",
    "RoutingTable",
    "ShardRouter",
    "ShardServer",
    "ShardStartupError",
    "ShardSupervisor",
    "ShardUnavailable",
    "build_shard_runtime",
    "build_shard_specs",
    "encode_frame",
    "fleet_assignment",
    "recv_frame",
    "send_frame",
    "serve_stdin",
    "shard_dataset",
    "shard_entry",
    "shard_wal_path",
    "ship_key",
    "ships_of_shard",
    "stable_hash",
]
