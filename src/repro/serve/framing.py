"""Length-prefixed JSON framing: the fleet service's wire protocol.

One frame is a 4-byte big-endian unsigned payload length followed by
exactly that many bytes of UTF-8 JSON — the shape every layer of the
sharded service speaks: client → front-end, front-end → shard, and the
test/bench drivers.  Length prefixing (rather than newline delimiting)
keeps the protocol binary-safe, makes oversize requests rejectable
*before* buffering them, and gives torn connections an unambiguous
failure mode: a partial frame at EOF is a mid-request disconnect, never
a silently truncated request.

Failure taxonomy (normalised into the pinned error-envelope enumeration
by the servers, see :mod:`repro.serve.frontend`):

* **oversize** — a header declaring more than ``max_bytes``: the frame
  is rejected without reading the payload (:class:`FrameTooLarge`).
  The declared length is still trusted for resynchronisation, so a
  server can answer with a structured envelope instead of dropping the
  connection mid-stream.
* **corrupt header** — a zero-length frame (:class:`FrameProtocolError`);
  the stream cannot be trusted past it.
* **torn frame** — EOF inside a header or payload
  (:class:`FrameTruncated`): the peer disconnected mid-request.
* **malformed payload** — a complete frame whose bytes are not valid
  JSON; surfaced by :func:`decode_payload` as ``ValueError`` so servers
  map it to a ``bad_json`` envelope and *keep the connection open* (the
  framing layer already resynchronised).
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Any

#: Frames above this are rejected without buffering (4 MiB).
MAX_FRAME_BYTES = 4 * 1024 * 1024

_HEADER = struct.Struct(">I")
HEADER_BYTES = _HEADER.size


class FrameError(Exception):
    """Base class of every framing failure."""


class FrameTooLarge(FrameError):
    """A header declared a payload larger than the negotiated maximum."""

    def __init__(self, declared: int, max_bytes: int):
        super().__init__(
            f"frame declares {declared} bytes, exceeding the "
            f"{max_bytes}-byte frame limit"
        )
        self.declared = declared
        self.max_bytes = max_bytes


class FrameProtocolError(FrameError):
    """The byte stream violates the framing protocol (zero-length frame)."""


class FrameTruncated(FrameError):
    """EOF arrived inside a frame — the peer disconnected mid-request."""


def encode_frame(obj: Any, max_bytes: int = MAX_FRAME_BYTES) -> bytes:
    """Serialise one JSON value into a length-prefixed frame."""
    payload = json.dumps(obj, separators=(",", ":")).encode("utf-8")
    if len(payload) > max_bytes:
        raise FrameTooLarge(len(payload), max_bytes)
    return _HEADER.pack(len(payload)) + payload


def decode_payload(payload: bytes) -> Any:
    """Parse one frame payload; raises ``ValueError`` on malformed JSON."""
    return json.loads(payload.decode("utf-8"))


class FrameDecoder:
    """Incremental decoder: feed arbitrary byte chunks, get payloads out.

    The decoder never raises from :meth:`feed` alone — errors surface
    from :meth:`frames` as it walks the buffered stream, after yielding
    every complete frame before the fault.  An oversize frame is
    consumed (its declared payload is skipped as it streams in), so the
    caller can answer with an envelope and keep decoding.
    """

    def __init__(self, max_bytes: int = MAX_FRAME_BYTES):
        self.max_bytes = int(max_bytes)
        self._buffer = bytearray()
        #: Bytes of an oversize payload still to be discarded.
        self._skip = 0
        #: Raised descriptor of the oversize frame being skipped.
        self._oversize: FrameTooLarge | None = None

    def feed(self, data: bytes) -> None:
        self._buffer.extend(data)

    @property
    def buffered(self) -> int:
        return len(self._buffer)

    def frames(self) -> list[Any]:
        """Every complete, in-limit frame payload buffered so far.

        Raises :class:`FrameTooLarge` once per oversize frame — *after*
        its bytes are fully skipped — and :class:`FrameProtocolError` on
        a zero-length frame.  Payload JSON is **not** parsed here; each
        returned element is the raw payload ``bytes`` (callers decide
        how to map a malformed payload to their error surface).
        """
        out: list[bytes] = []
        while True:
            if self._skip:
                drop = min(self._skip, len(self._buffer))
                del self._buffer[:drop]
                self._skip -= drop
                if self._skip:
                    break  # need more bytes to finish skipping
            if self._oversize is not None:
                if out:
                    # Deliver the good frames first; the error re-raises
                    # on the next call with an empty prefix.
                    break
                oversize, self._oversize = self._oversize, None
                raise oversize
            if len(self._buffer) < HEADER_BYTES:
                break
            (length,) = _HEADER.unpack_from(self._buffer)
            if length == 0:
                if out:
                    break  # deliver good frames; re-raise next call
                raise FrameProtocolError("zero-length frame")
            if length > self.max_bytes:
                del self._buffer[:HEADER_BYTES]
                self._skip = length
                self._oversize = FrameTooLarge(length, self.max_bytes)
                continue
            if len(self._buffer) < HEADER_BYTES + length:
                break
            payload = bytes(self._buffer[HEADER_BYTES : HEADER_BYTES + length])
            del self._buffer[: HEADER_BYTES + length]
            out.append(payload)
        return out


# ----------------------------------------------------------------------
# blocking-socket helpers (shard servers, clients, tests)
# ----------------------------------------------------------------------
def send_frame(
    sock: socket.socket, obj: Any, max_bytes: int = MAX_FRAME_BYTES
) -> None:
    sock.sendall(encode_frame(obj, max_bytes=max_bytes))


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    chunks = bytearray()
    while len(chunks) < n:
        chunk = sock.recv(min(n - len(chunks), 65536))
        if not chunk:
            raise FrameTruncated(
                f"connection closed after {len(chunks)} of {n} frame bytes"
            )
        chunks.extend(chunk)
    return bytes(chunks)


def recv_frame(
    sock: socket.socket, max_bytes: int = MAX_FRAME_BYTES
) -> Any | None:
    """Read one frame; returns the parsed JSON value, or ``None`` at a
    clean EOF (the peer closed between frames).

    Raises :class:`FrameTruncated` on a mid-frame EOF,
    :class:`FrameTooLarge`/:class:`FrameProtocolError` on protocol
    violations, and ``ValueError`` on a malformed JSON payload.
    """
    try:
        header = sock.recv(HEADER_BYTES)
    except ConnectionResetError:
        return None
    if not header:
        return None
    if len(header) < HEADER_BYTES:
        header += _recv_exact(sock, HEADER_BYTES - len(header))
    (length,) = _HEADER.unpack(header)
    if length == 0:
        raise FrameProtocolError("zero-length frame")
    if length > max_bytes:
        # Drain the declared payload so the stream stays framed — the
        # caller can answer with an envelope and keep the connection.
        remaining = length
        while remaining:
            chunk = sock.recv(min(remaining, 65536))
            if not chunk:
                raise FrameTruncated(
                    f"connection closed inside an oversize {length}-byte frame"
                )
            remaining -= len(chunk)
        raise FrameTooLarge(length, max_bytes)
    return decode_payload(_recv_exact(sock, length))
