"""The :class:`ShardRouter`: consistent-hash routing + scatter-gather.

The front-end hands every parsed request to one router call
(:meth:`ShardRouter.dispatch`) and gets back one response envelope.
Behind that call:

* **point requests** (``domd_query``, ``explain``) route to the shard
  owning the avail's ship; a multi-avail query spanning shards is
  split, scattered, and merged back in request order;
* **``fleet_status``** scatters to every shard with a per-shard timeout
  and merges, **never hangs**: shards that miss the deadline or are
  unreachable are listed in a structured ``degraded`` block on an
  otherwise-ok envelope;
* **``ingest``** routes each event to its owning shard (creates by
  avail, settles/revisions by the RCC routing table), scatters the
  per-shard sub-batches, and acks only when every target shard has
  fsynced.  Shard-level acks are durable even when the overall request
  degrades — events are idempotent by rcc id, so a client retry after a
  partial failure is safe;
* **``health``** merges per-shard watermark/lag with the global minimum
  and the front-end's own alert plane — and feeds the
  ``shard:<id>:lagging`` condition into the
  :class:`~repro.runtime.telemetry.alerts.AlertManager`;
* **watermarks**: the router remembers the last watermark each shard
  reported; the fleet watermark is their minimum (everything at or
  below it is applied on *every* shard), and every ok envelope is
  stamped with it — the shard's own value moves to ``shard_watermark``.

Unreachable shards surface as retryable ``overloaded`` envelopes on
point requests: the shard may be mid-restart, and the supervisor's
recovery makes a retry genuinely likely to succeed.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Iterable, Mapping

import numpy as np

from repro.core.service import error_envelope
from repro.data.schema import NavyMaintenanceDataset
from repro.runtime.telemetry.alerts import AlertRule
from repro.serve.client import FrameClient, ShardUnavailable
from repro.serve.ring import ConsistentHashRing

#: Event kinds routed by avail id directly.
_AVAIL_ROUTED = {"rcc_created", "avail_extended"}
#: Event kinds routed through the RCC → avail table.
_RCC_ROUTED = {"rcc_settled", "amount_revised"}


class RoutingTable:
    """Who owns what: ship → shard via the ring, avail → ship, rcc → avail.

    The avail → ship map comes from the base dataset; the rcc → avail
    map is seeded from the base dataset's RCC table and **grows** as
    ``rcc_created`` events route through the front-end.  After a
    front-end restart the grown part is rebuilt by scanning the shards'
    WALs (:meth:`recover_from_wals`) — the WALs are the durable record
    of every acknowledged create.
    """

    def __init__(self, dataset: NavyMaintenanceDataset, ring: ConsistentHashRing):
        self.ring = ring
        avails = dataset.avails
        self._ship_of_avail: dict[int, int] = {
            int(a): int(s)
            for a, s in zip(
                np.asarray(avails["avail_id"], dtype=np.int64),
                np.asarray(avails["ship_id"], dtype=np.int64),
            )
        }
        rccs = dataset.rccs
        self._avail_of_rcc: dict[int, int] = {
            int(r): int(a)
            for r, a in zip(
                np.asarray(rccs["rcc_id"], dtype=np.int64),
                np.asarray(rccs["avail_id"], dtype=np.int64),
            )
        }
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def shard_of_avail(self, avail_id: int) -> int | None:
        ship = self._ship_of_avail.get(int(avail_id))
        if ship is None:
            return None
        return self.ring.owner_of_ship(ship)

    def shard_of_rcc(self, rcc_id: int) -> int | None:
        with self._lock:
            avail = self._avail_of_rcc.get(int(rcc_id))
        if avail is None:
            return None
        return self.shard_of_avail(avail)

    def note_created(self, rcc_id: int, avail_id: int) -> None:
        """Record a routed-and-acknowledged ``rcc_created``."""
        with self._lock:
            self._avail_of_rcc[int(rcc_id)] = int(avail_id)

    def recover_from_wals(self, wal_paths: Iterable[str]) -> int:
        """Rebuild the grown rcc → avail entries from shard WALs."""
        from repro.stream.wal import read_wal

        recovered = 0
        for path in wal_paths:
            for record in read_wal(path).records:
                event = record.event
                if event.get("kind") == "rcc_created":
                    self.note_created(int(event["rcc_id"]), int(event["avail_id"]))
                    recovered += 1
        return recovered


class ShardRouter:
    """Routes parsed requests across the fleet's shard servers.

    Parameters
    ----------
    ring / routing:
        The ownership model (shared, deterministic).
    clients:
        ``{shard_id: FrameClient}`` — replaced per shard on restart via
        :meth:`reconnect`.
    context:
        The front-end's :class:`~repro.runtime.ExecutionContext`; its
        alert manager receives the ``shard:<id>:lagging`` conditions
        and its counters the routing stats.  Optional (unit tests).
    scatter_timeout:
        Per-shard budget (seconds) for scatter-gather requests — the
        "never a hang" bound of ``fleet_status``.
    lag_alert_events:
        A reachable shard whose ingest lag exceeds this many events is
        reported lagging.
    ingest_enabled:
        Whether shards run WAL-backed ingestion; enables watermark
        stamping on ok envelopes.
    """

    def __init__(
        self,
        ring: ConsistentHashRing,
        clients: Mapping[int, FrameClient],
        routing: RoutingTable,
        context: Any | None = None,
        scatter_timeout: float = 5.0,
        lag_alert_events: int = 500,
        ingest_enabled: bool = False,
    ):
        self.ring = ring
        self.routing = routing
        self.context = context
        self.scatter_timeout = float(scatter_timeout)
        self.lag_alert_events = int(lag_alert_events)
        self.ingest_enabled = bool(ingest_enabled)
        self._clients: dict[int, FrameClient] = dict(clients)
        self._watermarks: dict[int, int] = {}
        self._lock = threading.Lock()
        self._scatter = ThreadPoolExecutor(
            max_workers=max(8, 4 * len(self._clients)),
            thread_name_prefix="repro-scatter",
        )
        if context is not None and context.telemetry is not None:
            for shard_id in ring.shard_ids:
                context.telemetry.alerts.rule(
                    AlertRule(
                        name=f"shard:{shard_id}:lagging",
                        pending_for=0.0,
                        resolve_after=0.0,
                        severity="page",
                        description=(
                            "shard unreachable or its ingest watermark is"
                            " falling behind its WAL"
                        ),
                    )
                )

    # ------------------------------------------------------------------
    # shard membership / connections
    # ------------------------------------------------------------------
    @property
    def shard_ids(self) -> tuple[int, ...]:
        return self.ring.shard_ids

    def reconnect(self, shard_id: int, host: str, port: int) -> None:
        """Point one shard's client at a restarted process."""
        client = FrameClient(host, port, timeout=self.scatter_timeout)
        with self._lock:
            old = self._clients.get(shard_id)
            self._clients[shard_id] = client
        if old is not None:
            old.close()

    def close(self) -> None:
        self._scatter.shutdown(wait=False)
        with self._lock:
            clients, self._clients = dict(self._clients), {}
        for client in clients.values():
            client.close()

    # ------------------------------------------------------------------
    # watermark bookkeeping
    # ------------------------------------------------------------------
    def _note_watermark(self, shard_id: int, response: Mapping[str, Any]) -> None:
        watermark = response.get("watermark")
        if isinstance(watermark, int) and not isinstance(watermark, bool):
            with self._lock:
                self._watermarks[shard_id] = watermark

    def global_watermark(self) -> int | None:
        """min over shards — the seq every shard has fully applied.

        ``None`` until every shard has reported at least once (a min
        over a partial view would overstate fleet durability).
        """
        with self._lock:
            if set(self._watermarks) < set(self.ring.shard_ids):
                return None
            return min(self._watermarks.values())

    def watermarks(self) -> dict[int, int]:
        with self._lock:
            return dict(self._watermarks)

    def _stamp(self, response: dict[str, Any]) -> dict[str, Any]:
        """Fleet-watermark stamping of one outgoing ok envelope."""
        if not self.ingest_enabled or not response.get("ok"):
            return response
        if "watermark" in response:
            response["shard_watermark"] = response.pop("watermark")
        fleet = self.global_watermark()
        if fleet is not None:
            response["watermark"] = fleet
        return response

    # ------------------------------------------------------------------
    # forwarding primitives
    # ------------------------------------------------------------------
    def _count(self, name: str, value: int = 1) -> None:
        if self.context is not None:
            self.context.counter(name, value)

    def _forward(
        self, shard_id: int, request: dict[str, Any], timeout: float | None = None
    ) -> dict[str, Any]:
        """One shard round trip, normalised: never raises."""
        with self._lock:
            client = self._clients.get(shard_id)
        if client is None:
            return error_envelope(
                "overloaded",
                f"shard {shard_id} has no live connection; retry later",
            )
        try:
            response = client.request(request, timeout=timeout)
        except ShardUnavailable as exc:
            self._count("router.shard_unavailable")
            return error_envelope(
                "overloaded",
                f"shard {shard_id} unavailable ({exc}); retry later",
            )
        if isinstance(response, dict):
            self._note_watermark(shard_id, response)
            return response
        return error_envelope(
            "internal", f"shard {shard_id} answered a non-object frame"
        )

    def _scatter_to(
        self,
        requests: Mapping[int, dict[str, Any]],
        timeout: float | None = None,
    ) -> dict[int, dict[str, Any]]:
        """Concurrent forward to several shards; one envelope each."""
        budget = timeout if timeout is not None else self.scatter_timeout
        futures = {
            shard_id: self._scatter.submit(
                self._forward, shard_id, request, budget
            )
            for shard_id, request in requests.items()
        }
        out: dict[int, dict[str, Any]] = {}
        for shard_id, future in futures.items():
            try:
                # The socket timeout bounds the round trip; the small
                # grace covers scheduling, not I/O.
                out[shard_id] = future.result(timeout=budget + 1.0)
            except Exception:  # noqa: BLE001 — a hung scatter leg must not hang the fleet
                out[shard_id] = error_envelope(
                    "overloaded",
                    f"shard {shard_id} did not answer within {budget:.1f}s",
                )
        return out

    def _sub_request(
        self, request: Mapping[str, Any], **overrides: Any
    ) -> dict[str, Any]:
        """A shard-bound copy of a request (deadline + traceparent ride
        along; routing-only fields are overridden per shard)."""
        sub = dict(request)
        sub.update(overrides)
        return sub

    @staticmethod
    def _budget(request: Mapping[str, Any]) -> float | None:
        deadline_ms = request.get("deadline_ms")
        if isinstance(deadline_ms, (int, float)) and not isinstance(
            deadline_ms, bool
        ):
            return max(float(deadline_ms) / 1000.0, 0.001)
        return None

    # ------------------------------------------------------------------
    # the dispatch surface
    # ------------------------------------------------------------------
    def dispatch(self, request: Any) -> dict[str, Any]:
        """One request in, one envelope out; never raises, never hangs."""
        if not isinstance(request, dict):
            return error_envelope("bad_request", "request must be a JSON object")
        request_type = request.get("type")
        try:
            if request_type == "domd_query":
                return self._stamp(self._route_query(request))
            if request_type == "explain":
                return self._stamp(self._route_explain(request))
            if request_type == "fleet_status":
                return self._stamp(self._route_fleet_status(request))
            if request_type == "ingest":
                return self._stamp(self._route_ingest(request))
            if request_type == "health":
                return self._route_health(request)
            if request_type == "metrics":
                return self._route_metrics(request)
            if request_type == "shard_status":
                return {"ok": True, "result": self.shard_statuses()}
            # Unknown types fall through to a shard so the canonical
            # unknown_type envelope comes from the one service surface.
            first = self.ring.shard_ids[0]
            return self._forward(
                first, dict(request), timeout=self._budget(request)
            )
        except Exception as exc:  # noqa: BLE001 — the envelope contract
            self._count("router.internal_errors")
            return error_envelope(
                "internal",
                f"routing failure for {request_type!r} ({type(exc).__name__})",
            )

    # -- point requests ------------------------------------------------
    def _route_query(self, request: dict[str, Any]) -> dict[str, Any]:
        raw_ids = request.get("avail_ids")
        if raw_ids is None:
            return error_envelope(
                "bad_request", "missing required field 'avail_ids'"
            )
        try:
            avail_ids = [int(a) for a in raw_ids]
        except (TypeError, ValueError) as exc:
            return error_envelope("bad_request", str(exc))
        groups: dict[int, list[int]] = {}
        for avail_id in avail_ids:
            shard_id = self.routing.shard_of_avail(avail_id)
            if shard_id is None:
                return error_envelope(
                    "not_found", f"no avail with id {avail_id} in the fleet"
                )
            groups.setdefault(shard_id, []).append(avail_id)
        budget = self._budget(request)
        if len(groups) == 1:
            ((shard_id, ids),) = groups.items()
            return self._forward(
                shard_id,
                self._sub_request(request, avail_ids=ids),
                timeout=budget,
            )
        self._count("router.split_queries")
        responses = self._scatter_to(
            {
                shard_id: self._sub_request(request, avail_ids=ids)
                for shard_id, ids in groups.items()
            },
            timeout=budget,
        )
        by_avail: dict[int, dict[str, Any]] = {}
        provenance: dict[str, Any] = {}
        for shard_id in sorted(responses):
            response = responses[shard_id]
            if not response.get("ok"):
                return response  # first failing shard wins, envelope intact
            for item in response.get("result", []):
                by_avail[int(item["avail_id"])] = item
            provenance[str(shard_id)] = response.get("provenance")
        return {
            "ok": True,
            "result": [by_avail[a] for a in avail_ids],
            "shards": provenance,
        }

    def _route_explain(self, request: dict[str, Any]) -> dict[str, Any]:
        avail_id = request.get("avail_id")
        if avail_id is None:
            return error_envelope(
                "bad_request", "missing required field 'avail_id'"
            )
        try:
            shard_id = self.routing.shard_of_avail(int(avail_id))
        except (TypeError, ValueError) as exc:
            return error_envelope("bad_request", str(exc))
        if shard_id is None:
            return error_envelope(
                "not_found", f"no avail with id {avail_id} in the fleet"
            )
        return self._forward(
            shard_id, dict(request), timeout=self._budget(request)
        )

    # -- scatter-gather ------------------------------------------------
    def _route_fleet_status(self, request: dict[str, Any]) -> dict[str, Any]:
        budget = self._budget(request)
        timeout = (
            min(self.scatter_timeout, budget)
            if budget is not None
            else self.scatter_timeout
        )
        responses = self._scatter_to(
            {
                shard_id: self._sub_request(request)
                for shard_id in self.ring.shard_ids
            },
            timeout=timeout,
        )
        merged: list[dict[str, Any]] = []
        missing: dict[str, str] = {}
        provenance: dict[str, Any] = {}
        for shard_id in sorted(responses):
            response = responses[shard_id]
            if response.get("ok"):
                merged.extend(response.get("result", []))
                provenance[str(shard_id)] = response.get("provenance")
            else:
                missing[str(shard_id)] = response.get("error", {}).get(
                    "message", "no answer"
                )
        merged.sort(key=lambda item: -item["estimated_delay_days"])
        out: dict[str, Any] = {"ok": True, "result": merged, "shards": provenance}
        if missing:
            self._count("router.degraded_fleet_status")
            # Partial answer, honestly labelled: the result covers the
            # reachable shards only, and the client can see which slice
            # of the fleet is missing.
            out["degraded"] = {
                "missing_shards": sorted(int(s) for s in missing),
                "reasons": missing,
            }
        return out

    # -- ingest --------------------------------------------------------
    def _route_ingest(self, request: dict[str, Any]) -> dict[str, Any]:
        if not self.ingest_enabled:
            return error_envelope(
                "bad_request", "fleet was started without --wal-dir; ingest disabled"
            )
        payload = request.get("events")
        if not isinstance(payload, list):
            return error_envelope("bad_request", "'events' must be a list")
        groups: dict[int, list[dict[str, Any]]] = {}
        pending_routes: list[tuple[int, int]] = []
        batch_avail_of_rcc: dict[int, int] = {}
        for index, item in enumerate(payload):
            if not isinstance(item, dict):
                return error_envelope(
                    "bad_request", f"events[{index}] must be an object"
                )
            kind = item.get("kind")
            if kind in _AVAIL_ROUTED:
                try:
                    avail_id = int(item["avail_id"])
                except (KeyError, TypeError, ValueError):
                    return error_envelope(
                        "bad_request",
                        f"events[{index}] ({kind}) needs an integer 'avail_id'",
                    )
                shard_id = self.routing.shard_of_avail(avail_id)
                if shard_id is None:
                    return error_envelope(
                        "not_found",
                        f"events[{index}]: no avail {avail_id} in the fleet",
                    )
                if kind == "rcc_created":
                    rcc_id = item.get("rcc_id")
                    if isinstance(rcc_id, int):
                        pending_routes.append((rcc_id, avail_id))
                        batch_avail_of_rcc[rcc_id] = avail_id
            elif kind in _RCC_ROUTED:
                try:
                    rcc_id = int(item["rcc_id"])
                except (KeyError, TypeError, ValueError):
                    return error_envelope(
                        "bad_request",
                        f"events[{index}] ({kind}) needs an integer 'rcc_id'",
                    )
                # A settle may follow its create within one batch.
                avail_id = batch_avail_of_rcc.get(rcc_id)
                shard_id = (
                    self.routing.shard_of_avail(avail_id)
                    if avail_id is not None
                    else self.routing.shard_of_rcc(rcc_id)
                )
                if shard_id is None:
                    return error_envelope(
                        "not_found",
                        f"events[{index}]: rcc {rcc_id} is not routable"
                        " (no create seen for it)",
                    )
            else:
                return error_envelope(
                    "bad_request", f"events[{index}] has unknown kind {kind!r}"
                )
            groups.setdefault(shard_id, []).append(item)
        if not groups:
            return {"ok": True, "result": {"acked": 0, "per_shard": {}}}
        responses = self._scatter_to(
            {
                shard_id: self._sub_request(request, events=events)
                for shard_id, events in groups.items()
            },
            timeout=self._budget(request),
        )
        per_shard: dict[str, Any] = {}
        failed: list[int] = []
        acked = 0
        acked_shards: set[int] = set()
        for shard_id in sorted(responses):
            response = responses[shard_id]
            if response.get("ok"):
                per_shard[str(shard_id)] = response.get("result")
                acked += len(groups[shard_id])
                acked_shards.add(shard_id)
            else:
                failed.append(shard_id)
                per_shard[str(shard_id)] = response.get("error")
        # Routes for events a shard *did* fsync are durable regardless
        # of the overall verdict — remember them either way, so a retry
        # (idempotent by rcc id) routes consistently.
        for rcc_id, avail_id in pending_routes:
            if self.routing.shard_of_avail(avail_id) in acked_shards:
                self.routing.note_created(rcc_id, avail_id)
        if failed:
            self._count("router.ingest_partial_failures")
            return error_envelope(
                "overloaded",
                f"{len(failed)} shard(s) {sorted(failed)} did not acknowledge;"
                f" {acked} event(s) on {len(acked_shards)} shard(s) are durable;"
                " retry is safe (events are idempotent by rcc id)",
            )
        return {"ok": True, "result": {"acked": acked, "per_shard": per_shard}}

    # -- health / metrics ---------------------------------------------
    def _route_health(self, request: dict[str, Any]) -> dict[str, Any]:
        responses = self._scatter_to(
            {
                shard_id: {"type": "health"}
                for shard_id in self.ring.shard_ids
            },
            timeout=min(self.scatter_timeout, 2.0),
        )
        shards: dict[str, Any] = {}
        per_shard_watermark: dict[str, int | None] = {}
        statuses: list[str] = []
        reachable: dict[int, dict[str, Any]] = {}
        for shard_id in sorted(responses):
            response = responses[shard_id]
            if not response.get("ok"):
                shards[str(shard_id)] = {
                    "status": "unreachable",
                    "error": response.get("error", {}).get("message"),
                }
                per_shard_watermark[str(shard_id)] = None
                statuses.append("unreachable")
                continue
            result = response.get("result", {})
            ingest = result.get("ingest") or {}
            entry = {
                "status": result.get("status"),
                "watermark": ingest.get("watermark_seq"),
                "lag_events": ingest.get("lag_events"),
                "freshness_lag_seconds": ingest.get("freshness_lag_seconds"),
                "pool": result.get("pool"),
            }
            shards[str(shard_id)] = entry
            per_shard_watermark[str(shard_id)] = entry["watermark"]
            statuses.append(str(result.get("status")))
            reachable[shard_id] = {
                "up": True,
                "lag_events": ingest.get("lag_events") or 0,
            }
        self._update_shard_alerts(reachable)
        known = [w for w in per_shard_watermark.values() if w is not None]
        fleet_watermark = (
            min(known) if len(known) == len(per_shard_watermark) else None
        )
        if any(s == "unreachable" for s in statuses):
            status = "degraded"
        elif any(s == "degraded" for s in statuses):
            status = "degraded"
        elif any(s == "saturated" for s in statuses):
            status = "saturated"
        else:
            status = "ok"
        frontend: dict[str, Any] = {}
        if self.context is not None and self.context.telemetry is not None:
            alerts = self.context.telemetry.alerts
            firing = alerts.firing()
            frontend = {"alerts": {"firing": firing, "states": alerts.status()}}
            if firing and status == "ok":
                status = "degraded"
        return {
            "ok": True,
            "result": {
                "status": status,
                "shards": shards,
                "watermark": {
                    "global": fleet_watermark,
                    "per_shard": per_shard_watermark,
                },
                "frontend": frontend,
            },
        }

    def _route_metrics(self, request: dict[str, Any]) -> dict[str, Any]:
        if "avail_ids" in request:
            # Model-quality metrics: only meaningful per shard (the
            # population statistics do not merge across processes).
            shard_ids = set()
            for avail_id in request.get("avail_ids") or []:
                shard_id = self.routing.shard_of_avail(int(avail_id))
                if shard_id is None:
                    return error_envelope(
                        "not_found",
                        f"no avail with id {avail_id} in the fleet",
                    )
                shard_ids.add(shard_id)
            if len(shard_ids) != 1:
                return error_envelope(
                    "bad_request",
                    "metrics over avail populations spanning shards is not"
                    " supported; evaluate one shard's population at a time",
                )
            return self._forward(
                shard_ids.pop(), dict(request), timeout=self._budget(request)
            )
        responses = self._scatter_to(
            {shard_id: dict(request) for shard_id in self.ring.shard_ids},
            timeout=min(self.scatter_timeout, 2.0),
        )
        return {
            "ok": True,
            "result": {
                "shards": {
                    str(shard_id): (
                        response.get("result")
                        if response.get("ok")
                        else {"error": response.get("error")}
                    )
                    for shard_id, response in sorted(responses.items())
                },
            },
        }

    # ------------------------------------------------------------------
    # observability: gauges + the lagging-shard alert condition
    # ------------------------------------------------------------------
    def shard_statuses(
        self, timeout: float = 2.0
    ) -> dict[str, dict[str, Any]]:
        """Raw ``shard_status`` scatter: ``{shard_id: status-or-down}``."""
        responses = self._scatter_to(
            {
                shard_id: {"type": "shard_status"}
                for shard_id in self.ring.shard_ids
            },
            timeout=timeout,
        )
        out: dict[str, dict[str, Any]] = {}
        for shard_id in sorted(responses):
            response = responses[shard_id]
            if response.get("ok"):
                result = dict(response.get("result", {}))
                result["up"] = True
                out[str(shard_id)] = result
            else:
                out[str(shard_id)] = {
                    "shard_id": shard_id,
                    "up": False,
                    "error": response.get("error", {}).get("message"),
                }
        return out

    def sample_gauges(self) -> dict[str, dict[str, float]]:
        """The sampler source: one flat numeric map per shard.

        Registered as ``sampler.add_source("shard", ...)``, so the
        series land as ``shard.<id>.<gauge>`` — what the ``repro top``
        shard panel and the ``repro_shard_*`` exposition read.  Also
        the periodic evaluation point of the ``shard:<id>:lagging``
        alert condition (the sampler tick is the fleet's heartbeat).
        """
        statuses = self.shard_statuses()
        gauges: dict[str, dict[str, float]] = {}
        alert_view: dict[int, dict[str, Any]] = {}
        for key, status in statuses.items():
            up = bool(status.get("up"))
            flat: dict[str, float] = {"up": 1.0 if up else 0.0}
            if up:
                pool = status.get("pool") or {}
                for name in (
                    "queue_depth",
                    "queue_peak",
                    "in_flight",
                    "accepted",
                    "rejected",
                    "deadline_exceeded",
                    "completed",
                    "workers",
                ):
                    value = pool.get(name)
                    if isinstance(value, (int, float)):
                        flat[name] = float(value)
                ingest = status.get("ingest") or {}
                for name in (
                    "watermark_seq",
                    "wal_end_seq",
                    "lag_events",
                    "freshness_lag_seconds",
                    "applied_events",
                    "n_rccs",
                ):
                    value = ingest.get(name)
                    if isinstance(value, (int, float)):
                        flat[name] = float(value)
                server = status.get("server") or {}
                for name, value in server.items():
                    if isinstance(value, (int, float)):
                        flat[name] = float(value)
                watermark = status.get("watermark")
                if isinstance(watermark, int):
                    with self._lock:
                        self._watermarks[int(key)] = watermark
                alert_view[int(key)] = {
                    "up": True,
                    "lag_events": ingest.get("lag_events") or 0,
                }
            gauges[key] = flat
        self._update_shard_alerts(alert_view)
        fleet = self.global_watermark()
        if fleet is not None:
            gauges["fleet"] = {"watermark": float(fleet)}
        return gauges

    def _update_shard_alerts(
        self, reachable: Mapping[int, Mapping[str, Any]]
    ) -> None:
        """Feed per-shard lag/reachability into the alert manager."""
        if self.context is None or self.context.telemetry is None:
            return
        alerts = self.context.telemetry.alerts
        for shard_id in self.ring.shard_ids:
            view = reachable.get(shard_id)
            if view is None:
                alerts.set_condition(
                    f"shard:{shard_id}:lagging", True, reason="unreachable"
                )
                continue
            lag = int(view.get("lag_events") or 0)
            alerts.set_condition(
                f"shard:{shard_id}:lagging",
                lag > self.lag_alert_events,
                lag_events=lag,
                threshold=self.lag_alert_events,
            )
