"""Blocking frame client: one request/response over the fleet protocol.

:class:`FrameClient` speaks the length-prefixed JSON protocol of
:mod:`repro.serve.framing` against any server that serves it — the
front-end (tests, the bench harness, external callers) or an individual
shard (the router's scatter-gather).  It keeps a small pool of idle
connections so concurrent requests from different threads don't
serialise on one socket: each in-flight request owns one connection for
its full round trip (the protocol has no multiplexing — by design, it
keeps framing trivially debuggable with ``nc``/``xxd``).
"""

from __future__ import annotations

import socket
import threading
from typing import Any

from repro.serve.framing import (
    MAX_FRAME_BYTES,
    FrameError,
    recv_frame,
    send_frame,
)


class ShardUnavailable(Exception):
    """The peer could not be reached, or the round trip failed."""


class FrameClient:
    """Pooled blocking client for one ``(host, port)`` frame server.

    Parameters
    ----------
    host, port:
        The server address.
    timeout:
        Default per-request wall timeout (connect + send + receive),
        seconds; per-call override via :meth:`request`.
    max_idle:
        Idle connections kept for reuse; extras close after use.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float | None = 10.0,
        max_idle: int = 8,
        max_frame_bytes: int = MAX_FRAME_BYTES,
    ):
        self.host = host
        self.port = int(port)
        self.timeout = timeout
        self.max_idle = int(max_idle)
        self.max_frame_bytes = int(max_frame_bytes)
        self._idle: list[socket.socket] = []
        self._lock = threading.Lock()
        self._closed = False

    # ------------------------------------------------------------------
    def _checkout(self) -> socket.socket:
        with self._lock:
            if self._idle:
                return self._idle.pop()
        try:
            return socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            )
        except OSError as exc:
            raise ShardUnavailable(
                f"cannot connect to {self.host}:{self.port}: {exc}"
            ) from exc

    def _checkin(self, sock: socket.socket) -> None:
        with self._lock:
            if not self._closed and len(self._idle) < self.max_idle:
                self._idle.append(sock)
                return
        sock.close()

    # ------------------------------------------------------------------
    def request(
        self, obj: Any, timeout: float | None = None
    ) -> dict[str, Any]:
        """One round trip; returns the response envelope.

        Raises :class:`ShardUnavailable` when the peer is unreachable,
        resets mid-request, times out, or closes without answering —
        the caller (router / test driver) decides how that maps onto
        the error-envelope enumeration.
        """
        sock = self._checkout()
        reuse = False
        try:
            if timeout is not None:
                sock.settimeout(timeout)
            elif self.timeout is not None:
                sock.settimeout(self.timeout)
            send_frame(sock, obj, max_bytes=self.max_frame_bytes)
            response = recv_frame(sock, max_bytes=self.max_frame_bytes)
            if response is None:
                raise ShardUnavailable(
                    f"{self.host}:{self.port} closed the connection"
                    " without answering"
                )
            reuse = True
            return response
        except (OSError, FrameError, ValueError) as exc:
            if isinstance(exc, ShardUnavailable):
                raise
            raise ShardUnavailable(
                f"request to {self.host}:{self.port} failed: {exc}"
            ) from exc
        finally:
            if reuse:
                self._checkin(sock)
            else:
                sock.close()

    def close(self) -> None:
        with self._lock:
            self._closed = True
            idle, self._idle = self._idle, []
        for sock in idle:
            sock.close()

    def __enter__(self) -> "FrameClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"FrameClient({self.host}:{self.port}, idle={len(self._idle)})"
