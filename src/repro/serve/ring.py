"""Consistent-hash ring: stable fleet partitioning across shards.

The fleet service partitions ships across shard processes.  Two
properties matter and both are pinned by property tests
(``tests/serve/test_ring.py``):

* **balance** — with ``vnodes`` virtual nodes per shard the keyspace
  splits within ±20% of fair share at fleet scale;
* **minimal movement** — adding or removing one shard reassigns at most
  ~K/N of K keys (only the keys whose arc the new shard claims move);
  a modulo partition would reassign nearly all of them.

Hashing is :func:`hashlib.blake2b` over the raw key bytes — never the
builtin ``hash()``, which is salted per process (``PYTHONHASHSEED``)
and would give every shard process a *different* ring.  The ring is a
pure function of ``(shard_ids, vnodes)``, so the front-end, every shard
process, and an offline debugging session all agree on ownership
without coordination.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable, Sequence

from repro.errors import ConfigurationError

#: Virtual nodes per shard — enough for ~±10% worst-case imbalance at
#: small shard counts (measured over 20k ship keys for N in {2,4,8})
#: while keeping the ring around a thousand entries.
DEFAULT_VNODES = 256


def stable_hash(key: str) -> int:
    """64-bit process-independent hash of a string key."""
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


def ship_key(ship_id: int) -> str:
    """The ring key of one ship — the unit of fleet partitioning."""
    return f"ship:{int(ship_id)}"


class ConsistentHashRing:
    """Maps string keys to shard ids via consistent hashing.

    Parameters
    ----------
    shard_ids:
        The participating shards.  Order does not matter — the ring is
        a pure function of the *set* of ids.
    vnodes:
        Virtual nodes per shard (balance knob).
    """

    def __init__(
        self, shard_ids: Iterable[int], vnodes: int = DEFAULT_VNODES
    ):
        if vnodes < 1:
            raise ConfigurationError(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = int(vnodes)
        self._shards: set[int] = set()
        self._points: list[int] = []
        self._owners: list[int] = []
        for shard_id in shard_ids:
            self.add(int(shard_id))
        if not self._shards:
            raise ConfigurationError("ring needs at least one shard")

    # ------------------------------------------------------------------
    @property
    def shard_ids(self) -> tuple[int, ...]:
        return tuple(sorted(self._shards))

    def __len__(self) -> int:
        return len(self._shards)

    def __contains__(self, shard_id: int) -> bool:
        return int(shard_id) in self._shards

    # ------------------------------------------------------------------
    def add(self, shard_id: int) -> None:
        """Join one shard (its vnodes claim arcs; other arcs are untouched)."""
        shard_id = int(shard_id)
        if shard_id in self._shards:
            return
        self._shards.add(shard_id)
        for vnode in range(self.vnodes):
            point = stable_hash(f"shard:{shard_id}:vnode:{vnode}")
            index = bisect.bisect_left(self._points, point)
            # Identical points across shards are astronomically unlikely
            # with 64-bit hashes; deterministic tie-break on shard id
            # keeps the ring well-defined regardless.
            while (
                index < len(self._points)
                and self._points[index] == point
                and self._owners[index] < shard_id
            ):
                index += 1
            self._points.insert(index, point)
            self._owners.insert(index, shard_id)

    def remove(self, shard_id: int) -> None:
        """Leave one shard; its arcs fall to their ring successors."""
        shard_id = int(shard_id)
        if shard_id not in self._shards:
            return
        if len(self._shards) == 1:
            raise ConfigurationError("cannot remove the last shard from the ring")
        self._shards.discard(shard_id)
        keep = [
            (point, owner)
            for point, owner in zip(self._points, self._owners)
            if owner != shard_id
        ]
        self._points = [point for point, _ in keep]
        self._owners = [owner for _, owner in keep]

    # ------------------------------------------------------------------
    def owner(self, key: str) -> int:
        """The shard owning ``key``: first vnode clockwise of its hash."""
        index = bisect.bisect_right(self._points, stable_hash(key))
        if index == len(self._points):
            index = 0  # wrap past the top of the ring
        return self._owners[index]

    def owner_of_ship(self, ship_id: int) -> int:
        return self.owner(ship_key(ship_id))

    def assignment(self, keys: Sequence[str]) -> dict[int, list[str]]:
        """Bulk ownership: ``{shard_id: [keys...]}`` (all shards present)."""
        out: dict[int, list[str]] = {shard_id: [] for shard_id in self._shards}
        for key in keys:
            out[self.owner(key)].append(key)
        return out

    def __repr__(self) -> str:
        return (
            f"ConsistentHashRing(shards={sorted(self._shards)}, "
            f"vnodes={self.vnodes})"
        )
