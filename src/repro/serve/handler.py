"""Transport-agnostic request dispatch: one body, every transport.

Before the fleet service existed, the request-dispatch body lived
inline in the CLI's stdin loop (``repro serve``), fused to newline
framing and ``print``.  :class:`RequestHandler` is that body extracted:
*parse → dispatch (pooled or inline, under the serving gate) → response
future*, with no opinion about where bytes come from or go to.  The
stdin loop, the shard servers and the TCP front-end all route through
it, so the three transports cannot drift on dispatch semantics —
and a regression test pins the stdin path byte-identical to the
pre-extraction behaviour.
"""

from __future__ import annotations

import json
from contextlib import nullcontext
from typing import IO, Any

from repro.core.server import PoolFuture, ServicePool
from repro.core.service import DomdService, error_envelope


class RequestHandler:
    """Parse-and-dispatch core shared by the stdin, shard and TCP paths.

    Parameters
    ----------
    service:
        The :class:`DomdService` answering requests.
    pool:
        Optional :class:`ServicePool`.  With a pool, dispatch enqueues
        and returns the pool's future; without one, the request is
        served inline on the calling thread and the returned future is
        already resolved.
    gate:
        Optional read/write gate for the inline (unpooled) path — the
        pooled path's workers already read-lock the pool's own gate.
    """

    def __init__(
        self,
        service: DomdService,
        pool: ServicePool | None = None,
        gate: Any | None = None,
    ):
        self.service = service
        self.pool = pool
        self.gate = gate

    # ------------------------------------------------------------------
    def dispatch(
        self,
        request: Any,
        block: bool = True,
        deadline_ms: float | None = None,
    ) -> PoolFuture:
        """Dispatch one parsed request; always returns a future.

        ``block`` only matters with a pool: ``True`` (stdin — the
        producer *is* the client, so backpressure propagates upstream)
        waits for a queue slot; ``False`` (network serving) bounces a
        full queue as an immediate ``overloaded`` envelope.
        """
        if self.pool is not None:
            return self.pool.submit(request, block=block, deadline_ms=deadline_ms)
        scope = self.gate.read() if self.gate is not None else nullcontext()
        with scope:
            return PoolFuture.resolved(self.service.handle(request))

    def handle_line(
        self,
        line: str,
        block: bool = True,
        deadline_ms: float | None = None,
    ) -> PoolFuture | None:
        """One JSON-lines request: ``None`` for blank lines, else a future.

        The ``bad_json`` message format is pinned by the stdin
        regression test — it must stay byte-identical to the historical
        inline loop.
        """
        line = line.strip()
        if not line:
            return None
        try:
            request = json.loads(line)
        except json.JSONDecodeError as exc:
            return PoolFuture.resolved(
                error_envelope("bad_json", f"malformed JSON: {exc}")
            )
        return self.dispatch(request, block=block, deadline_ms=deadline_ms)

    def handle_payload(
        self,
        payload: bytes,
        block: bool = False,
        deadline_ms: float | None = None,
    ) -> PoolFuture:
        """One framed request payload (the TCP path's entry).

        A malformed payload resolves to the same ``bad_json`` envelope
        the stdin path produces — connection-level failures normalise
        into the one pinned error enumeration.
        """
        try:
            request = json.loads(payload.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            return PoolFuture.resolved(
                error_envelope("bad_json", f"malformed JSON: {exc}")
            )
        return self.dispatch(request, block=block, deadline_ms=deadline_ms)


def serve_stdin(handler: RequestHandler, stdin: IO[str], out: IO[str]) -> int:
    """The ``repro serve`` stdin/stdout loop over a :class:`RequestHandler`.

    Responses print in submission order; completed prefixes flush as
    soon as they resolve (so an unpooled handler — whose futures resolve
    inline — prints each response immediately, exactly like the
    historical loop did).
    """
    from collections import deque

    pending: "deque[PoolFuture]" = deque()

    def flush(block: bool) -> None:
        while pending and (block or pending[0].done()):
            print(json.dumps(pending.popleft().result()), file=out, flush=True)

    for line in stdin:
        future = handler.handle_line(line)
        if future is None:
            continue
        pending.append(future)
        flush(block=False)
    flush(block=True)
    return 0
