"""Fleet assembly: supervisor + router + front-end as one service.

:class:`FleetService` is the composition root the CLI (and the tests,
bench harness, CI smoke) build: given a model artefact, a dataset path
and a shard count, it

1. derives one spec per shard (shared model, per-shard WAL under
   ``wal_dir``) and spawns the shard processes via the
   :class:`~repro.serve.supervisor.ShardSupervisor`;
2. loads the dataset *once* in the front-end process to seed the
   :class:`~repro.serve.router.RoutingTable` (avail → ship, rcc →
   avail), recovering routes grown by previous runs from the shards'
   WALs;
3. wires a :class:`~repro.serve.router.ShardRouter` over per-shard
   :class:`~repro.serve.client.FrameClient` pools; and
4. fronts it with the :class:`~repro.serve.frontend.FleetFrontend`.

Shard restarts go through :meth:`restart_shard`, which re-points the
router's client at the new ephemeral port — acknowledged writes survive
because the restarted shard replays its WAL before reporting ready.
"""

from __future__ import annotations

import os
from typing import Any

from repro.serve.client import FrameClient
from repro.serve.frontend import FleetFrontend
from repro.serve.framing import MAX_FRAME_BYTES
from repro.serve.ring import DEFAULT_VNODES, ConsistentHashRing
from repro.serve.router import RoutingTable, ShardRouter
from repro.serve.supervisor import ShardSupervisor


def shard_wal_path(wal_dir: str, shard_id: int) -> str:
    """The canonical per-shard WAL location under ``wal_dir``."""
    return os.path.join(wal_dir, f"shard-{shard_id}.wal")


def build_shard_specs(
    model: str,
    data: str,
    shard_ids: tuple[int, ...],
    vnodes: int = DEFAULT_VNODES,
    wal_dir: str | None = None,
    designs: tuple[str, ...] = ("avl",),
    workers: int = 1,
    queue_depth: int = 16,
    deadline_ms: float | None = None,
    events_dir: str | None = None,
    max_frame_bytes: int = MAX_FRAME_BYTES,
    io_stall_ms: float | None = None,
) -> dict[int, dict[str, Any]]:
    """One picklable assembly spec per shard (shared model artefact)."""
    specs: dict[int, dict[str, Any]] = {}
    for shard_id in shard_ids:
        spec: dict[str, Any] = {
            "shard_id": int(shard_id),
            "shard_ids": list(shard_ids),
            "vnodes": int(vnodes),
            "model": model,
            "data": data,
            "workers": int(workers),
            "queue_depth": int(queue_depth),
            "deadline_ms": deadline_ms,
            "max_frame_bytes": int(max_frame_bytes),
        }
        if io_stall_ms:
            # Bench/smoke only: emulated backend I/O per request.
            spec["io_stall_ms"] = float(io_stall_ms)
        if wal_dir:
            spec["wal_path"] = shard_wal_path(wal_dir, shard_id)
            spec["designs"] = list(designs)
        if events_dir:
            spec["events_path"] = os.path.join(
                events_dir, f"shard-{shard_id}.jsonl"
            )
        specs[int(shard_id)] = spec
    return specs


class FleetService:
    """The whole sharded service, from one constructor.

    Parameters mirror ``repro serve``'s flags; ``shards=N`` partitions
    the fleet over shard ids ``0..N-1``.  ``wal_dir=None`` serves the
    static snapshot (ingest disabled).  The object is inert until
    :meth:`start`; idiomatic use is the context manager.
    """

    def __init__(
        self,
        model: str,
        data: str,
        shards: int = 2,
        vnodes: int = DEFAULT_VNODES,
        wal_dir: str | None = None,
        designs: tuple[str, ...] = ("avl",),
        workers_per_shard: int = 1,
        queue_depth: int = 16,
        deadline_ms: float | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        max_inflight: int = 64,
        scatter_timeout: float = 5.0,
        lag_alert_events: int = 500,
        events_dir: str | None = None,
        context: Any | None = None,
        start_timeout: float = 120.0,
        io_stall_ms: float | None = None,
    ):
        if shards < 1:
            raise ValueError("a fleet needs at least one shard")
        self.model = model
        self.data = data
        self.wal_dir = wal_dir
        self.host = host
        self.context = context
        if wal_dir:
            os.makedirs(wal_dir, exist_ok=True)
        if events_dir:
            os.makedirs(events_dir, exist_ok=True)
        shard_ids = tuple(range(int(shards)))
        self.ring = ConsistentHashRing(shard_ids, vnodes=vnodes)
        self.specs = build_shard_specs(
            model,
            data,
            shard_ids,
            vnodes=vnodes,
            wal_dir=wal_dir,
            designs=designs,
            workers=workers_per_shard,
            queue_depth=queue_depth,
            deadline_ms=deadline_ms,
            events_dir=events_dir,
            io_stall_ms=io_stall_ms,
        )
        self.supervisor = ShardSupervisor(self.specs, start_timeout=start_timeout)
        self.scatter_timeout = float(scatter_timeout)
        self.lag_alert_events = int(lag_alert_events)
        self._frontend_port = int(port)
        self._max_inflight = int(max_inflight)
        self.router: ShardRouter | None = None
        self.routing: RoutingTable | None = None
        self.frontend: FleetFrontend | None = None
        self._started = False

    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        assert self.frontend is not None, "fleet not started"
        return self.frontend.port

    def start(self) -> int:
        """Spawn shards, build routing, open the front door; returns port."""
        from repro.data import load_dataset

        ports = self.supervisor.start()
        try:
            dataset = load_dataset(self.data)
            self.routing = RoutingTable(dataset, self.ring)
            if self.wal_dir:
                existing = [
                    path
                    for shard_id in self.ring.shard_ids
                    if os.path.exists(
                        path := shard_wal_path(self.wal_dir, shard_id)
                    )
                ]
                if existing:
                    self.routing.recover_from_wals(existing)
            clients = {
                shard_id: FrameClient(
                    self.host, ports[shard_id], timeout=self.scatter_timeout
                )
                for shard_id in self.ring.shard_ids
            }
            self.router = ShardRouter(
                self.ring,
                clients,
                self.routing,
                context=self.context,
                scatter_timeout=self.scatter_timeout,
                lag_alert_events=self.lag_alert_events,
                ingest_enabled=bool(self.wal_dir),
            )
            self.frontend = FleetFrontend(
                self.router.dispatch,
                host=self.host,
                port=self._frontend_port,
                max_inflight=self._max_inflight,
                context=self.context,
            )
            self.frontend.start()
        except BaseException:
            self.stop(drain=False)
            raise
        self._started = True
        return self.frontend.port

    def restart_shard(self, shard_id: int, graceful: bool = False) -> int:
        """Bounce one shard and re-point the router; returns the new port.

        ``graceful=False`` is a hard kill — the crash-recovery path the
        durability contract is about; ``graceful=True`` drains first
        (rolling maintenance).
        """
        assert self.router is not None, "fleet not started"
        new_port = self.supervisor.restart_shard(shard_id, graceful=graceful)
        self.router.reconnect(shard_id, self.host, new_port)
        return new_port

    def kill_shard(self, shard_id: int) -> None:
        """SIGKILL one shard, leaving it down (the degraded-mode drill)."""
        self.supervisor.kill_shard(shard_id)

    def stop(self, drain: bool = True) -> None:
        """Front door first (drain in-flight), then shards, then clients."""
        if self.frontend is not None:
            self.frontend.stop(drain=drain)
            self.frontend = None
        self.supervisor.stop_all(graceful=drain)
        if self.router is not None:
            self.router.close()
            self.router = None
        self._started = False

    def status(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "shards": {
                str(shard_id): {
                    "alive": self.supervisor.alive(shard_id),
                    "port": self.supervisor.ports().get(shard_id),
                    "restarts": self.supervisor.restarts_of(shard_id),
                }
                for shard_id in self.ring.shard_ids
            },
        }
        if self.frontend is not None:
            out["frontend"] = self.frontend.status()
        if self.router is not None:
            out["watermark"] = {
                "global": self.router.global_watermark(),
                "per_shard": {
                    str(k): v for k, v in self.router.watermarks().items()
                },
            }
        return out

    def __enter__(self) -> "FleetService":
        self.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.stop(drain=exc_info[0] is None)

    def __repr__(self) -> str:
        state = "up" if self._started else "down"
        return (
            f"FleetService({len(self.ring.shard_ids)} shards, {state}, "
            f"wal={'on' if self.wal_dir else 'off'})"
        )
