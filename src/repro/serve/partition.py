"""Ship-partitioned shard datasets: each shard's slice of the fleet.

A shard serves exactly the ships the ring assigns it: its dataset keeps
those ships' rows, their avails, and those avails' RCCs, and drops
everything else.  This is safe because the estimator's features are
strictly **per-avail** — every group id of the status-feature tensor is
keyed by (avail, rcc type, SWLIN digit), and ``_estimate_one`` reads
only its own avail's tensor row — so a shard's estimate for an avail it
owns is bitwise identical to the monolith's estimate from the full
dataset (pinned by the shard/monolith differential test).

The fitted model artefact is **shared**: every shard loads the same
model file and re-extracts features for its slice only, so shard
startup cost scales with the slice, not the fleet.
"""

from __future__ import annotations

import numpy as np

from repro.data.schema import NavyMaintenanceDataset
from repro.serve.ring import ConsistentHashRing


def ships_of_shard(
    dataset: NavyMaintenanceDataset, ring: ConsistentHashRing, shard_id: int
) -> np.ndarray:
    """Ship ids of ``dataset`` the ring assigns to ``shard_id``."""
    ship_ids = np.asarray(dataset.ships["ship_id"], dtype=np.int64)
    mask = np.fromiter(
        (ring.owner_of_ship(int(s)) == shard_id for s in ship_ids),
        dtype=bool,
        count=len(ship_ids),
    )
    return ship_ids[mask]


def shard_dataset(
    dataset: NavyMaintenanceDataset,
    ring: ConsistentHashRing,
    shard_id: int,
) -> NavyMaintenanceDataset:
    """The slice of ``dataset`` that shard ``shard_id`` owns.

    Ships → their avails → those avails' RCCs; everything else is
    filtered out.  A shard that owns no ships still gets a valid (empty)
    dataset — the service layer answers its queries with ``not_found``
    semantics rather than crashing.
    """
    owned_ships = ships_of_shard(dataset, ring, shard_id)
    ship_mask = np.isin(
        np.asarray(dataset.ships["ship_id"], dtype=np.int64), owned_ships
    )
    avail_mask = np.isin(
        np.asarray(dataset.avails["ship_id"], dtype=np.int64), owned_ships
    )
    owned_avails = np.asarray(dataset.avails["avail_id"], dtype=np.int64)[
        avail_mask
    ]
    rcc_mask = np.isin(
        np.asarray(dataset.rccs["avail_id"], dtype=np.int64), owned_avails
    )
    notes = dict(dataset.notes)
    notes["shard"] = {
        "shard_id": int(shard_id),
        "shard_ids": list(ring.shard_ids),
        "vnodes": ring.vnodes,
        "n_ships": int(len(owned_ships)),
    }
    return NavyMaintenanceDataset(
        ships=dataset.ships.filter(ship_mask),
        avails=dataset.avails.filter(avail_mask),
        rccs=dataset.rccs.filter(rcc_mask),
        seed=dataset.seed,
        scaling_factor=dataset.scaling_factor,
        notes=notes,
    )


def fleet_assignment(
    dataset: NavyMaintenanceDataset, ring: ConsistentHashRing
) -> dict[int, list[int]]:
    """``{shard_id: [ship_ids...]}`` for the whole fleet (audit view)."""
    out: dict[int, list[int]] = {shard_id: [] for shard_id in ring.shard_ids}
    for ship_id in np.asarray(dataset.ships["ship_id"], dtype=np.int64):
        out[ring.owner_of_ship(int(ship_id))].append(int(ship_id))
    return out
