"""Shard process supervision: spawn, handshake, drain, kill, restart.

The supervisor owns the fleet's worker processes.  Each shard is
launched with the **spawn** start method — never fork: the front-end
runs an asyncio loop, a sampler thread, and live sockets, none of which
may leak into a child — and announces itself over a one-shot pipe
handshake: ``("ready", port)`` once its server is listening, or
``("error", traceback)`` if assembly failed.  Ports are ephemeral
(``port=0``); the front-end's router is re-pointed after every
(re)start via :meth:`ShardRouter.reconnect`.

Restart semantics are the durability story's other half: a shard killed
hard (``kill_shard`` is SIGKILL — the CI smoke uses it mid-workload)
replays its WAL during :func:`~repro.serve.shard.build_shard_runtime`,
so the restarted process answers with a watermark equal to the last
acknowledged write.  The supervisor itself holds no request state —
losing it loses nothing.
"""

from __future__ import annotations

import multiprocessing
import time
from typing import Any

from repro.errors import ReproError
from repro.serve.client import FrameClient, ShardUnavailable
from repro.serve.shard import shard_entry


class ShardStartupError(ReproError):
    """A shard process failed to come up (carries the child traceback)."""


class _Managed:
    """Book-keeping for one supervised shard process."""

    __slots__ = ("spec", "process", "port", "restarts")

    def __init__(self, spec: dict[str, Any]):
        self.spec = spec
        self.process: Any | None = None
        self.port: int | None = None
        self.restarts = 0


class ShardSupervisor:
    """Launches and manages one process per shard spec.

    Parameters
    ----------
    specs:
        ``{shard_id: spec}`` — the picklable assembly spec
        :func:`~repro.serve.shard.build_shard_runtime` consumes.
    start_timeout:
        Seconds to wait for a shard's ready handshake (model loading
        dominates; WAL replay extends it after a crash).
    """

    def __init__(
        self, specs: dict[int, dict[str, Any]], start_timeout: float = 120.0
    ):
        self._ctx = multiprocessing.get_context("spawn")
        self._managed: dict[int, _Managed] = {
            int(shard_id): _Managed(dict(spec))
            for shard_id, spec in specs.items()
        }
        self.start_timeout = float(start_timeout)

    # ------------------------------------------------------------------
    @property
    def shard_ids(self) -> tuple[int, ...]:
        return tuple(sorted(self._managed))

    def port_of(self, shard_id: int) -> int:
        port = self._managed[shard_id].port
        if port is None:
            raise ShardStartupError(f"shard {shard_id} is not running")
        return port

    def ports(self) -> dict[int, int]:
        return {
            shard_id: managed.port
            for shard_id, managed in self._managed.items()
            if managed.port is not None
        }

    def alive(self, shard_id: int) -> bool:
        process = self._managed[shard_id].process
        return process is not None and process.is_alive()

    def restarts_of(self, shard_id: int) -> int:
        return self._managed[shard_id].restarts

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start_shard(self, shard_id: int) -> int:
        """Spawn one shard and wait for its ready handshake; returns port."""
        managed = self._managed[shard_id]
        if managed.process is not None and managed.process.is_alive():
            raise ShardStartupError(f"shard {shard_id} is already running")
        parent_conn, child_conn = self._ctx.Pipe(duplex=False)
        process = self._ctx.Process(
            target=shard_entry,
            args=(managed.spec, child_conn),
            name=f"repro-shard-{shard_id}",
            daemon=True,
        )
        process.start()
        child_conn.close()  # the child's end lives in the child now
        try:
            if not parent_conn.poll(self.start_timeout):
                process.kill()
                process.join(5.0)
                raise ShardStartupError(
                    f"shard {shard_id} did not report ready within "
                    f"{self.start_timeout:.0f}s"
                )
            status, detail = parent_conn.recv()
        except EOFError:
            process.join(5.0)
            raise ShardStartupError(
                f"shard {shard_id} exited before its handshake "
                f"(exitcode {process.exitcode})"
            ) from None
        finally:
            parent_conn.close()
        if status != "ready":
            process.join(5.0)
            raise ShardStartupError(
                f"shard {shard_id} failed to start:\n{detail}"
            )
        managed.process = process
        managed.port = int(detail)
        return managed.port

    def start(self) -> dict[int, int]:
        """Start every shard; returns ``{shard_id: port}``.

        Sequential on purpose: spawn + model load is CPU/IO-bound and
        the deterministic order keeps failure attribution obvious.  Any
        failure stops the fleet and tears down what already started.
        """
        try:
            for shard_id in self.shard_ids:
                self.start_shard(shard_id)
        except ShardStartupError:
            self.stop_all(graceful=False)
            raise
        return self.ports()

    def stop_shard(
        self, shard_id: int, graceful: bool = True, timeout: float = 10.0
    ) -> None:
        """Drain-stop one shard (a ``shutdown`` frame), escalating to kill."""
        managed = self._managed[shard_id]
        process = managed.process
        if process is None:
            return
        if graceful and process.is_alive() and managed.port is not None:
            try:
                with FrameClient(
                    "127.0.0.1", managed.port, timeout=timeout
                ) as client:
                    client.request({"type": "shutdown"}, timeout=timeout)
            except ShardUnavailable:
                pass  # already gone or wedged; escalation below
            process.join(timeout)
        if process.is_alive():
            process.terminate()
            process.join(timeout)
        if process.is_alive():
            process.kill()
            process.join(timeout)
        managed.process = None
        managed.port = None

    def kill_shard(self, shard_id: int) -> None:
        """SIGKILL one shard — the crash the durability contract survives."""
        managed = self._managed[shard_id]
        process = managed.process
        if process is None:
            return
        process.kill()
        process.join(10.0)
        managed.process = None
        managed.port = None

    def restart_shard(self, shard_id: int, graceful: bool = False) -> int:
        """Bounce one shard; returns the new port (WAL replay included)."""
        managed = self._managed[shard_id]
        if managed.process is not None:
            if graceful:
                self.stop_shard(shard_id, graceful=True)
            else:
                self.kill_shard(shard_id)
        managed.restarts += 1
        return self.start_shard(shard_id)

    def stop_all(self, graceful: bool = True, timeout: float = 10.0) -> None:
        for shard_id in self.shard_ids:
            self.stop_shard(shard_id, graceful=graceful, timeout=timeout)

    def reap(self) -> dict[int, int]:
        """Exit codes of shards that died without being stopped."""
        dead: dict[int, int] = {}
        for shard_id, managed in self._managed.items():
            process = managed.process
            if process is not None and not process.is_alive():
                dead[shard_id] = process.exitcode
                managed.process = None
                managed.port = None
        return dead

    def __enter__(self) -> "ShardSupervisor":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.stop_all(graceful=True)

    def __repr__(self) -> str:
        up = sum(1 for shard_id in self.shard_ids if self.alive(shard_id))
        return f"ShardSupervisor({up}/{len(self.shard_ids)} shards up)"


def wait_port_open(
    host: str, port: int, timeout: float = 10.0, interval: float = 0.05
) -> bool:
    """Poll until a TCP connect succeeds (test/smoke convenience)."""
    import socket

    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            with socket.create_connection((host, port), timeout=interval * 4):
                return True
        except OSError:
            time.sleep(interval)
    return False
