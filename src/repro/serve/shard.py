"""One fleet shard: a worker process serving its slice of the fleet.

A shard owns the ships the consistent-hash ring assigns it and nothing
else: its own filtered dataset, its own feature tensors, its own
:class:`~repro.core.server.ServicePool`, and — when ingestion is
enabled — its own per-shard WAL and watermark.  The process boundary is
what buys multi-core scaling: each shard runs the estimator under its
own GIL.

:class:`ShardServer` is the in-process serving half (a threaded
length-prefixed frame server — usable directly in tests without
``multiprocessing``); :func:`shard_entry` is the **spawn** target the
:class:`~repro.serve.supervisor.ShardSupervisor` launches.  Spawn, not
fork: shard processes must not inherit the front-end's threads, sockets
or telemetry state, and everything a shard needs travels in a picklable
``spec`` dict — it loads model and dataset from disk itself.

**Durability contract.**  An ``ingest`` request is acknowledged only
after its events are fsynced to this shard's WAL *and* applied under
the write gate.  A killed shard replays its WAL on restart, so every
acknowledged write survives a kill -9 — the zero-loss property the
bench harness and CI smoke verify.

Shard-level request types (beyond the :class:`DomdService` surface):

* ``{"type": "ingest", "events": [...]}`` — WAL append (fsync = ack)
  then apply + rebind under the write gate.
* ``{"type": "shard_status"}`` — shard id, watermark, pool and ingest
  gauges (the router's scatter source for ``repro_shard_*`` series).
* ``{"type": "shutdown"}`` — graceful drain: stop accepting, finish
  in-flight work, ack, exit.
"""

from __future__ import annotations

import socket
import threading
import time
import traceback
from dataclasses import dataclass
from typing import Any

from repro.core.server import ServicePool
from repro.core.service import DomdService, error_envelope
from repro.errors import ReproError
from repro.serve.framing import (
    MAX_FRAME_BYTES,
    FrameProtocolError,
    FrameTooLarge,
    FrameTruncated,
    recv_frame,
    send_frame,
)
from repro.serve.handler import RequestHandler
from repro.serve.partition import shard_dataset
from repro.serve.ring import DEFAULT_VNODES, ConsistentHashRing


def _wire_deadline(request: dict[str, Any]) -> tuple[float | None, str | None]:
    """Pop and validate the wire ``deadline_ms`` field of a request."""
    budget = request.pop("deadline_ms", None)
    if budget is None:
        return None, None
    if (
        isinstance(budget, bool)
        or not isinstance(budget, (int, float))
        or not budget > 0
    ):
        return None, f"'deadline_ms' must be a positive number, got {budget!r}"
    return float(budget), None


class ShardServer:
    """Threaded frame server over one shard's service stack.

    Parameters
    ----------
    shard_id:
        This shard's identity on the ring.
    handler:
        The transport-agnostic dispatch core (pooled).
    gate:
        The shard's read/write gate (ingest takes the write side).
    ingestor / wal:
        The shard's live ingestion pair; ``None`` disables ``ingest``.
    """

    def __init__(
        self,
        shard_id: int,
        handler: RequestHandler,
        gate: Any,
        ingestor: Any | None = None,
        wal: Any | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        max_frame_bytes: int = MAX_FRAME_BYTES,
    ):
        self.shard_id = int(shard_id)
        self.handler = handler
        self.service: DomdService = handler.service
        self.pool: ServicePool | None = handler.pool
        self.gate = gate
        self.ingestor = ingestor
        self.wal = wal
        self.host = host
        self._requested_port = int(port)
        self.max_frame_bytes = int(max_frame_bytes)
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._stopped = threading.Event()
        self._ingest_lock = threading.Lock()
        self._conn_lock = threading.Lock()
        self._connections: set[socket.socket] = set()
        self._active_requests = 0
        self._counters = {
            "connections": 0,
            "requests": 0,
            "disconnects_mid_request": 0,
            "oversize_frames": 0,
            "protocol_errors": 0,
        }
        if ingestor is not None:
            # Avails this shard owns — ingest validates ownership up
            # front so a misrouted event is rejected *before* it can
            # poison the WAL (a bad record would fail every replay).
            self._known_avails = {
                int(a) for a in ingestor.store._avails["avail_id"]
            }
        else:
            self._known_avails = set()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        assert self._listener is not None, "server not started"
        return self._listener.getsockname()[1]

    def start(self) -> None:
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self._requested_port))
        listener.listen(64)
        self._listener = listener
        self._accept_thread = threading.Thread(
            target=self._accept_loop,
            name=f"repro-shard-{self.shard_id}-accept",
            daemon=True,
        )
        self._accept_thread.start()

    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._stopped.is_set():
            try:
                conn, _addr = self._listener.accept()
            except OSError:
                return  # listener closed during stop
            with self._conn_lock:
                if self._stopped.is_set():
                    conn.close()
                    return
                self._connections.add(conn)
                self._counters["connections"] += 1
            threading.Thread(
                target=self._connection_loop,
                args=(conn,),
                name=f"repro-shard-{self.shard_id}-conn",
                daemon=True,
            ).start()

    def wait_stopped(self, timeout: float | None = None) -> bool:
        """Block until a ``shutdown`` request (or :meth:`stop`) lands."""
        return self._stopped.wait(timeout)

    def stop(self, drain: bool = True, timeout: float = 10.0) -> None:
        """Stop accepting; optionally wait for in-flight work to finish."""
        self._stopped.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        if drain:
            deadline = time.monotonic() + timeout
            while time.monotonic() < deadline:
                with self._conn_lock:
                    if self._active_requests == 0:
                        break
                time.sleep(0.01)
        with self._conn_lock:
            connections = list(self._connections)
            self._connections.clear()
        for conn in connections:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            conn.close()

    # ------------------------------------------------------------------
    # the connection loop — where connection-level failures normalise
    # into the pinned error-envelope enumeration
    # ------------------------------------------------------------------
    def _connection_loop(self, conn: socket.socket) -> None:
        try:
            while not self._stopped.is_set():
                try:
                    request = recv_frame(conn, max_bytes=self.max_frame_bytes)
                except FrameTooLarge as exc:
                    # Oversize payload: the frame was drained, the
                    # stream is still framed — answer and carry on.
                    self._counters["oversize_frames"] += 1
                    send_frame(conn, error_envelope("bad_request", str(exc)))
                    continue
                except FrameProtocolError as exc:
                    # The byte stream itself is broken; one last
                    # structured answer, then the connection closes.
                    self._counters["protocol_errors"] += 1
                    send_frame(
                        conn,
                        error_envelope("bad_json", f"malformed frame: {exc}"),
                    )
                    return
                except FrameTruncated:
                    self._counters["disconnects_mid_request"] += 1
                    return
                except ValueError as exc:
                    send_frame(
                        conn,
                        error_envelope("bad_json", f"malformed JSON: {exc}"),
                    )
                    continue
                except OSError:
                    return
                if request is None:
                    return  # clean EOF between frames
                with self._conn_lock:
                    self._active_requests += 1
                    self._counters["requests"] += 1
                try:
                    response, shutdown = self._respond(request)
                finally:
                    with self._conn_lock:
                        self._active_requests -= 1
                try:
                    send_frame(conn, response, max_bytes=self.max_frame_bytes)
                except OSError:
                    self._counters["disconnects_mid_request"] += 1
                    return
                if shutdown:
                    self._stopped.set()
                    return
        finally:
            with self._conn_lock:
                self._connections.discard(conn)
            conn.close()

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def _respond(self, request: Any) -> tuple[dict[str, Any], bool]:
        if isinstance(request, dict):
            request_type = request.get("type")
            if request_type == "ingest":
                return self._handle_ingest(request), False
            if request_type == "shard_status":
                return self._handle_shard_status(), False
            if request_type == "shutdown":
                return (
                    {
                        "ok": True,
                        "result": {"shard_id": self.shard_id, "stopping": True},
                    },
                    True,
                )
            budget, budget_error = _wire_deadline(request)
            if budget_error is not None:
                return error_envelope("bad_request", budget_error), False
            response = self.handler.dispatch(
                request, block=False, deadline_ms=budget
            ).result()
        else:
            response = self.handler.dispatch(request).result()
        if isinstance(response, dict):
            response.setdefault("shard_id", self.shard_id)
        return response, False

    def _handle_ingest(self, request: dict[str, Any]) -> dict[str, Any]:
        from repro.errors import SchemaError
        from repro.stream.events import (
            AvailExtended,
            RccCreated,
            event_from_dict,
            event_to_dict,
        )
        from repro.stream.wal import WalRecord

        if self.wal is None or self.ingestor is None:
            return error_envelope(
                "bad_request", "this shard serves a static snapshot; no WAL"
            )
        payload = request.get("events")
        if not isinstance(payload, list):
            return error_envelope("bad_request", "'events' must be a list")
        try:
            events = [event_from_dict(item) for item in payload]
        except SchemaError as exc:
            return error_envelope("bad_request", str(exc))
        for event in events:
            if isinstance(event, (RccCreated, AvailExtended)):
                if int(event.avail_id) not in self._known_avails:
                    return error_envelope(
                        "bad_request",
                        f"avail {event.avail_id} is not owned by shard "
                        f"{self.shard_id}",
                    )
        if not events:
            return {
                "ok": True,
                "result": {"applied": 0, "synced": False},
                "watermark": self.ingestor.watermark,
                "shard_id": self.shard_id,
            }
        traceparent = request.get("traceparent")
        with self._ingest_lock:
            # Durability first: the fsynced append IS the acknowledgement.
            result = self.wal.append_batch(events)
            records = [
                WalRecord(
                    seq=seq,
                    event=event_to_dict(event),
                    traceparent=traceparent
                    if isinstance(traceparent, str)
                    else None,
                )
                for seq, event in zip(
                    range(result.first_seq, result.last_seq + 1), events
                )
            ]
            try:
                with self.gate.write():
                    summary = self.ingestor.apply_batch(records)
                    self.service.rebind(self.ingestor.dataset())
            except ReproError as exc:
                return error_envelope("domain_error", str(exc))
        return {
            "ok": True,
            "result": {
                "applied": summary["applied"],
                "first_seq": result.first_seq,
                "last_seq": result.last_seq,
                "synced": result.synced,
            },
            "watermark": self.ingestor.watermark,
            "shard_id": self.shard_id,
        }

    def _handle_shard_status(self) -> dict[str, Any]:
        with self._conn_lock:
            counters = dict(self._counters)
            counters["active_requests"] = self._active_requests
        result: dict[str, Any] = {
            "shard_id": self.shard_id,
            "up": True,
            "server": counters,
            "pool": self.pool.status() if self.pool is not None else None,
        }
        if self.ingestor is not None:
            result["watermark"] = self.ingestor.watermark
            result["ingest"] = self.ingestor.status()
        else:
            result["watermark"] = None
        return {
            "ok": True,
            "result": result,
            "shard_id": self.shard_id,
        }


# ----------------------------------------------------------------------
# process assembly
# ----------------------------------------------------------------------
@dataclass
class ShardRuntime:
    """Everything one shard process owns, with ordered teardown."""

    server: ShardServer
    pool: ServicePool
    service: DomdService
    ingestor: Any | None
    wal: Any | None
    context: Any

    def close(self) -> None:
        self.server.stop(drain=True)
        self.pool.close(drain=True)
        if self.wal is not None:
            self.wal.close()


class IoStalledDomdService(DomdService):
    """A :class:`DomdService` stalling a fixed emulated backend I/O wait
    before each request.

    Bench/smoke aid (spec key ``io_stall_ms``), mirroring the pool
    throughput bench's ``IoStalledService``: on hosts with few cores a
    CPU-bound workload cannot demonstrate shard scaling, but an
    I/O-bound one overlaps across shard processes regardless of core
    count — which is exactly the regime sharding buys headroom in.
    Never enabled by production assembly paths.
    """

    def __init__(self, estimator: Any, stall_s: float, context: Any = None):
        super().__init__(estimator, context=context)
        self.stall_s = float(stall_s)

    def handle(self, request: Any, parent: Any = None) -> dict[str, Any]:
        time.sleep(self.stall_s)
        return super().handle(request, parent=parent)


def build_shard_runtime(spec: dict[str, Any]) -> ShardRuntime:
    """Assemble a shard's full serving stack from a picklable spec.

    Spec keys: ``shard_id``, ``shard_ids``, ``vnodes``, ``model``,
    ``data``, optional ``wal_path``/``designs`` (live ingestion),
    ``workers``, ``queue_depth``, ``host``, ``port``, optional
    ``events_path`` (JSONL telemetry sink), optional ``io_stall_ms``
    (emulated backend I/O per request — bench/smoke only).
    """
    from repro.data import load_dataset
    from repro.persistence import load_estimator
    from repro.runtime import ExecutionContext, JsonlEventLog
    from repro.runtime.concurrency import ReadWriteGate

    context = ExecutionContext()
    if spec.get("events_path"):
        context.telemetry.add_sink(JsonlEventLog(spec["events_path"]))
    ring = ConsistentHashRing(
        spec["shard_ids"], vnodes=spec.get("vnodes", DEFAULT_VNODES)
    )
    full = load_dataset(spec["data"])
    slice_ = shard_dataset(full, ring, int(spec["shard_id"]))
    estimator = load_estimator(spec["model"], slice_, context=context)
    stall_ms = spec.get("io_stall_ms")
    if stall_ms:
        service: DomdService = IoStalledDomdService(
            estimator, stall_s=float(stall_ms) / 1000.0
        )
    else:
        service = DomdService(estimator)
    gate = ReadWriteGate()

    ingestor = None
    wal = None
    if spec.get("wal_path"):
        from repro.stream import StreamIngestor, StreamingRccStore
        from repro.stream.wal import WalWriter

        ingestor = StreamIngestor(
            StreamingRccStore.from_dataset(slice_),
            designs=tuple(spec.get("designs") or ("avl",)),
            context=context,
        )
        service.ingest = ingestor
        # Recovery: truncate any torn tail, then replay everything the
        # WAL acknowledged before the previous process died.
        wal = WalWriter(spec["wal_path"], telemetry=context.telemetry)
        replayed = ingestor.replay(spec["wal_path"])
        if replayed["applied"]:
            service.rebind(ingestor.dataset())
        assert ingestor.watermark == wal.last_seq, (
            f"shard {spec['shard_id']} recovery gap: watermark "
            f"{ingestor.watermark} != WAL end {wal.last_seq}"
        )

    pool = ServicePool(
        service,
        workers=int(spec.get("workers", 1)),
        queue_depth=int(spec.get("queue_depth", 16)),
        deadline_ms=spec.get("deadline_ms"),
        gate=gate,
    )
    handler = RequestHandler(service, pool=pool)
    server = ShardServer(
        shard_id=int(spec["shard_id"]),
        handler=handler,
        gate=gate,
        ingestor=ingestor,
        wal=wal,
        host=spec.get("host", "127.0.0.1"),
        port=int(spec.get("port", 0)),
        max_frame_bytes=int(spec.get("max_frame_bytes", MAX_FRAME_BYTES)),
    )
    return ShardRuntime(
        server=server,
        pool=pool,
        service=service,
        ingestor=ingestor,
        wal=wal,
        context=context,
    )


def shard_entry(spec: dict[str, Any], conn: Any) -> None:
    """Spawn target: build the runtime, report readiness, serve, drain.

    ``conn`` is the supervisor's pipe end; the child sends exactly one
    message — ``("ready", port)`` or ``("error", traceback)`` — then
    serves until a ``shutdown`` request lands.
    """
    try:
        runtime = build_shard_runtime(spec)
        runtime.server.start()
    except Exception:  # noqa: BLE001 — the parent needs the traceback
        conn.send(("error", traceback.format_exc()))
        conn.close()
        return
    conn.send(("ready", runtime.server.port))
    conn.close()
    runtime.server.wait_stopped()
    runtime.close()
