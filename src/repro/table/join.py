"""Vectorised equi-joins between :class:`~repro.table.table.ColumnTable`.

The join factorizes the key columns over the combined domain of both
tables, sorts the right side once, and uses ``searchsorted`` to locate the
matching run for every left row — a textbook sort-merge join.  This is the
"generic table join" the paper's naive baseline relies on: the avail table
is joined with the (potentially x-fold scaled) RCC table on every Status
Query, with no reuse across logical timestamps.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.errors import ConfigurationError, SchemaError
from repro.table.table import ColumnTable

_HOW_OPTIONS = ("inner", "left")


def _combined_codes(
    left: ColumnTable, right: ColumnTable, on: Sequence[str]
) -> tuple[np.ndarray, np.ndarray]:
    """Factorize key columns over the union domain of both tables."""
    left_codes = np.zeros(left.n_rows, dtype=np.int64)
    right_codes = np.zeros(right.n_rows, dtype=np.int64)
    for key in on:
        both = np.concatenate([left[key], right[key]])
        _, inverse = np.unique(both, return_inverse=True)
        n_unique = int(inverse.max()) + 1 if len(inverse) else 1
        left_codes = left_codes * n_unique + inverse[: left.n_rows]
        right_codes = right_codes * n_unique + inverse[left.n_rows :]
    return left_codes, right_codes


def _null_fill(array: np.ndarray, n: int) -> np.ndarray:
    """Array of ``n`` nulls matching the dtype family of ``array``."""
    if array.dtype.kind == "O":
        return np.full(n, None, dtype=object)
    return np.full(n, np.nan, dtype=np.float64)


def merge(
    left: ColumnTable,
    right: ColumnTable,
    on: Sequence[str] | str,
    how: str = "inner",
    suffixes: tuple[str, str] = ("_x", "_y"),
) -> ColumnTable:
    """Equi-join two tables on one or more key columns.

    Parameters
    ----------
    left, right:
        Input tables.
    on:
        Key column name(s) present in both tables.
    how:
        ``"inner"`` (default) or ``"left"``.  Left joins fill unmatched
        right columns with ``nan``/``None`` (integer columns widen to
        float).
    suffixes:
        Applied to non-key columns whose names collide.

    Returns
    -------
    ColumnTable
        Key columns first (from the left side), then remaining left
        columns, then right columns.
    """
    if how not in _HOW_OPTIONS:
        raise ConfigurationError(f"how={how!r} not supported; expected one of {_HOW_OPTIONS}")
    if isinstance(on, str):
        on = [on]
    on = list(on)
    if not on:
        raise SchemaError("merge requires at least one key column")
    for key in on:
        left[key]
        right[key]

    left_codes, right_codes = _combined_codes(left, right, on)
    right_order = np.argsort(right_codes, kind="stable")
    right_sorted = right_codes[right_order]
    lo = np.searchsorted(right_sorted, left_codes, side="left")
    hi = np.searchsorted(right_sorted, left_codes, side="right")
    match_counts = hi - lo

    matched_left_mask = match_counts > 0
    # Left row index repeated once per match.
    left_idx = np.repeat(np.arange(left.n_rows), match_counts)
    # For matched rows, enumerate positions inside each run.
    total_matches = int(match_counts.sum())
    if total_matches:
        run_starts = np.repeat(lo, match_counts)
        within = np.arange(total_matches) - np.repeat(
            np.cumsum(match_counts) - match_counts, match_counts
        )
        right_idx = right_order[run_starts + within]
    else:
        right_idx = np.empty(0, dtype=np.int64)

    if how == "left":
        unmatched = np.flatnonzero(~matched_left_mask)
        left_idx = np.concatenate([left_idx, unmatched])
        n_unmatched = len(unmatched)
    else:
        n_unmatched = 0

    collisions = (set(left.column_names) & set(right.column_names)) - set(on)
    columns: dict[str, np.ndarray] = {}
    for key in on:
        columns[key] = left[key][left_idx]
    for name in left.column_names:
        if name in on:
            continue
        out_name = name + suffixes[0] if name in collisions else name
        columns[out_name] = left[name][left_idx]
    for name in right.column_names:
        if name in on:
            continue
        out_name = name + suffixes[1] if name in collisions else name
        matched_part = right[name][right_idx]
        if n_unmatched:
            fill = _null_fill(right[name], n_unmatched)
            if matched_part.dtype.kind in "iu":
                matched_part = matched_part.astype(np.float64)
            if matched_part.dtype.kind == "b":
                matched_part = matched_part.astype(object)
                fill = np.full(n_unmatched, None, dtype=object)
            columns[out_name] = np.concatenate([matched_part, fill])
        else:
            columns[out_name] = matched_part
    n_rows = total_matches + n_unmatched
    return ColumnTable._from_arrays(columns, n_rows)
