"""Columnar table engine (the repo's pandas stand-in).

Public API::

    from repro.table import ColumnTable, merge, read_csv, write_csv
"""

from repro.table.column import as_column, factorize, is_numeric
from repro.table.io import read_csv, write_csv
from repro.table.join import merge
from repro.table.table import ColumnTable, GroupedTable

__all__ = [
    "ColumnTable",
    "GroupedTable",
    "merge",
    "read_csv",
    "write_csv",
    "as_column",
    "factorize",
    "is_numeric",
]
