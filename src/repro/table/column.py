"""Typed column handling for the columnar table engine.

A column is stored as a 1-D numpy array.  This module centralises the
coercion rules so every :class:`~repro.table.table.ColumnTable` constructor
produces predictable dtypes:

* numeric input -> ``float64`` or ``int64``
* booleans      -> ``bool``
* everything else (strings, mixed, ``None``) -> ``object``

``None`` inside a numeric column is converted to ``nan`` (forcing float).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from typing import Any

import numpy as np

#: dtype kinds considered numeric for aggregation purposes.
NUMERIC_KINDS = frozenset("iuf")


def as_column(values: Any, name: str = "<column>") -> np.ndarray:
    """Coerce ``values`` into a 1-D numpy array suitable for a column.

    Parameters
    ----------
    values:
        Any iterable of scalars, or an existing numpy array.
    name:
        Used only for error messages.

    Returns
    -------
    numpy.ndarray
        A 1-D array.  Scalars are rejected.
    """
    if isinstance(values, np.ndarray):
        if values.ndim != 1:
            raise ValueError(f"column {name!r} must be 1-D, got shape {values.shape}")
        return values
    if isinstance(values, (str, bytes)):
        raise TypeError(f"column {name!r} must be an iterable of scalars, got a string")
    if not isinstance(values, Iterable):
        raise TypeError(f"column {name!r} must be an iterable, got {type(values).__name__}")
    items = list(values)
    return _coerce_list(items, name)


def _coerce_list(items: Sequence[Any], name: str) -> np.ndarray:
    """Infer the best dtype for a python list and build the array."""
    if not items:
        return np.empty(0, dtype=np.float64)
    has_none = any(item is None for item in items)
    non_null = [item for item in items if item is not None]
    if not non_null:
        return np.full(len(items), np.nan, dtype=np.float64)
    if all(isinstance(item, bool) for item in non_null):
        if has_none:
            return np.array(items, dtype=object)
        return np.array(items, dtype=bool)
    if all(isinstance(item, (int, np.integer)) and not isinstance(item, bool) for item in non_null):
        if has_none:
            return np.array(
                [np.nan if item is None else float(item) for item in items], dtype=np.float64
            )
        return np.array(items, dtype=np.int64)
    if all(
        isinstance(item, (int, float, np.integer, np.floating)) and not isinstance(item, bool)
        for item in non_null
    ):
        return np.array(
            [np.nan if item is None else float(item) for item in items], dtype=np.float64
        )
    return np.array(items, dtype=object)


def is_numeric(array: np.ndarray) -> bool:
    """Return True when the array participates in numeric aggregation."""
    return array.dtype.kind in NUMERIC_KINDS


def column_nbytes(array: np.ndarray) -> int:
    """Approximate the memory footprint of a column in bytes.

    Object columns report the array of pointers plus the payload of each
    distinct python object (strings dominate in practice).
    """
    if array.dtype.kind != "O":
        return int(array.nbytes)
    import sys

    seen: set[int] = set()
    payload = 0
    for item in array:
        if id(item) in seen:
            continue
        seen.add(id(item))
        payload += sys.getsizeof(item)
    return int(array.nbytes) + payload


def factorize(array: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Encode a column as integer codes plus the array of unique values.

    Returns ``(codes, uniques)`` with ``uniques[codes] == array`` and
    ``uniques`` sorted ascending.  Works for object columns too because
    numpy falls back to python comparison.
    """
    uniques, codes = np.unique(array, return_inverse=True)
    return codes.astype(np.int64, copy=False), uniques
