"""Grouped aggregation kernels.

The group-by implementation factorizes the key columns into a dense group
id per row, sorts rows by group id once, and then applies each requested
aggregation with ``numpy.reduceat``-style segment kernels.  This mirrors
how columnar engines execute ``GROUP BY`` and keeps the hot path fully
vectorised.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.errors import ConfigurationError
from repro.table.column import is_numeric

#: Aggregation name -> segment kernel.  Each kernel receives the column
#: values already sorted by group and the segment start offsets.
_KERNELS: dict[str, Callable[[np.ndarray, np.ndarray], np.ndarray]] = {}


def _kernel(name: str):
    def register(func: Callable[[np.ndarray, np.ndarray], np.ndarray]):
        _KERNELS[name] = func
        return func

    return register


@_kernel("sum")
def _seg_sum(values: np.ndarray, starts: np.ndarray) -> np.ndarray:
    return np.add.reduceat(values, starts)


@_kernel("min")
def _seg_min(values: np.ndarray, starts: np.ndarray) -> np.ndarray:
    return np.minimum.reduceat(values, starts)


@_kernel("max")
def _seg_max(values: np.ndarray, starts: np.ndarray) -> np.ndarray:
    return np.maximum.reduceat(values, starts)


@_kernel("count")
def _seg_count(values: np.ndarray, starts: np.ndarray) -> np.ndarray:
    ends = np.append(starts[1:], len(values))
    return (ends - starts).astype(np.int64)


@_kernel("mean")
def _seg_mean(values: np.ndarray, starts: np.ndarray) -> np.ndarray:
    sums = np.add.reduceat(values.astype(np.float64), starts)
    counts = _seg_count(values, starts)
    return sums / counts


@_kernel("first")
def _seg_first(values: np.ndarray, starts: np.ndarray) -> np.ndarray:
    return values[starts]


@_kernel("last")
def _seg_last(values: np.ndarray, starts: np.ndarray) -> np.ndarray:
    ends = np.append(starts[1:], len(values)) - 1
    return values[ends]


@_kernel("std")
def _seg_std(values: np.ndarray, starts: np.ndarray) -> np.ndarray:
    floats = values.astype(np.float64)
    counts = _seg_count(values, starts).astype(np.float64)
    sums = np.add.reduceat(floats, starts)
    sq_sums = np.add.reduceat(floats * floats, starts)
    variance = np.maximum(sq_sums / counts - (sums / counts) ** 2, 0.0)
    return np.sqrt(variance)


AGG_NAMES = tuple(sorted(_KERNELS))

#: Aggregations that require a numeric input column.
_NUMERIC_ONLY = frozenset({"sum", "mean", "std"})


def apply_aggregation(name: str, values: np.ndarray, starts: np.ndarray) -> np.ndarray:
    """Apply the named aggregation over contiguous segments.

    Parameters
    ----------
    name:
        One of :data:`AGG_NAMES`.
    values:
        Column values sorted so each group occupies one contiguous segment.
    starts:
        Offsets of the first row of each segment (sorted ascending,
        starting at 0).
    """
    kernel = _KERNELS.get(name)
    if kernel is None:
        raise ConfigurationError(f"unknown aggregation {name!r}; expected one of {AGG_NAMES}")
    if name in _NUMERIC_ONLY and not is_numeric(values):
        raise ConfigurationError(f"aggregation {name!r} requires a numeric column")
    if len(starts) == 0:
        if name == "count":
            return np.empty(0, dtype=np.int64)
        return np.empty(0, dtype=values.dtype if name in ("first", "last", "min", "max") else np.float64)
    return kernel(values, starts)
