"""CSV persistence for :class:`~repro.table.table.ColumnTable`.

The synthetic NMD tables are written to / read from plain CSV so the
examples and benchmarks can snapshot datasets without any binary format
dependency.  Type inference on read follows the same rules as column
coercion: ints stay ints, anything with a decimal point or ``nan`` becomes
float, everything else is a string.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Any

from repro.table.table import ColumnTable

_MISSING_TOKENS = {"", "nan", "NaN", "None", "null"}


def write_csv(table: ColumnTable, path: str | Path) -> None:
    """Write the table to ``path`` as UTF-8 CSV with a header row."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(table.column_names)
        arrays = [table[name] for name in table.column_names]
        for i in range(table.n_rows):
            writer.writerow([_format_cell(array[i]) for array in arrays])


def _format_cell(value: Any) -> str:
    if value is None:
        return ""
    if isinstance(value, float) and value != value:  # nan
        return ""
    return str(value)


def read_csv(path: str | Path) -> ColumnTable:
    """Read a CSV file written by :func:`write_csv` (or any simple CSV)."""
    path = Path(path)
    with path.open("r", newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            return ColumnTable()
        raw_columns: list[list[str]] = [[] for _ in header]
        for row in reader:
            for i, cell in enumerate(row):
                raw_columns[i].append(cell)
    data = {name: _parse_column(cells) for name, cells in zip(header, raw_columns)}
    return ColumnTable(data)


def _parse_column(cells: list[str]) -> list[Any]:
    """Infer int / float / str for a raw string column."""
    parsed: list[Any] = []
    kind = "int"
    for cell in cells:
        if cell in _MISSING_TOKENS:
            parsed.append(None)
            if kind == "int":
                kind = "float"
            continue
        if kind in ("int", "float"):
            try:
                value = int(cell)
                parsed.append(value)
                continue
            except ValueError:
                pass
            try:
                value = float(cell)
                parsed.append(value)
                kind = "float"
                continue
            except ValueError:
                kind = "str"
        parsed.append(cell)
    if kind == "str":
        return [("" if cell in _MISSING_TOKENS else cell) for cell in cells]
    return parsed
