"""A small columnar table engine.

:class:`ColumnTable` is the in-memory relational substrate used throughout
the reproduction.  It stands in for the pandas ``DataFrame``/``merge``
machinery the paper uses as its naive baseline: typed numpy columns,
row-filtering, sorting, hash joins and grouped aggregation.

The engine is deliberately simple — no null bitmap (numeric nulls are
``nan``), no categorical dtype — but the operations used by the paper's
Status Query (filter by date predicates, group by RCC type and SWLIN
level, aggregate settled amounts/durations) are fully supported and
vectorised.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from typing import Any

import numpy as np

from repro.errors import ColumnNotFoundError, LengthMismatchError, SchemaError
from repro.table.aggregate import apply_aggregation
from repro.table.column import as_column, column_nbytes, factorize


class ColumnTable:
    """An immutable-by-convention columnar table.

    Parameters
    ----------
    columns:
        Mapping of column name to iterable of values.  All columns must
        have identical length.  Arrays are coerced via
        :func:`repro.table.column.as_column`.

    Examples
    --------
    >>> t = ColumnTable({"id": [1, 2, 3], "amount": [10.0, 20.0, 30.0]})
    >>> t.n_rows
    3
    >>> t.filter(t["amount"] > 15.0).n_rows
    2
    """

    __slots__ = ("_columns", "_n_rows")

    def __init__(self, columns: Mapping[str, Any] | None = None):
        self._columns: dict[str, np.ndarray] = {}
        self._n_rows = 0
        if columns:
            first = True
            for name, values in columns.items():
                array = as_column(values, name)
                if first:
                    self._n_rows = len(array)
                    first = False
                elif len(array) != self._n_rows:
                    raise LengthMismatchError(
                        f"column {name!r} has length {len(array)}, expected {self._n_rows}"
                    )
                self._columns[str(name)] = array

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_rows(cls, rows: Sequence[Mapping[str, Any]]) -> "ColumnTable":
        """Build a table from a sequence of row dicts.

        Missing keys become ``None`` (so numeric columns turn into float
        with ``nan``).  Column order follows first appearance.
        """
        names: list[str] = []
        seen: set[str] = set()
        for row in rows:
            for key in row:
                if key not in seen:
                    seen.add(key)
                    names.append(key)
        data = {name: [row.get(name) for row in rows] for name in names}
        return cls(data)

    @classmethod
    def _from_arrays(cls, columns: dict[str, np.ndarray], n_rows: int) -> "ColumnTable":
        """Internal fast-path constructor that skips coercion."""
        table = cls.__new__(cls)
        table._columns = columns
        table._n_rows = n_rows
        return table

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def n_rows(self) -> int:
        """Number of rows."""
        return self._n_rows

    @property
    def n_columns(self) -> int:
        """Number of columns."""
        return len(self._columns)

    @property
    def column_names(self) -> tuple[str, ...]:
        """Column names in insertion order."""
        return tuple(self._columns)

    def __len__(self) -> int:
        return self._n_rows

    def __contains__(self, name: object) -> bool:
        return name in self._columns

    def __getitem__(self, name: str) -> np.ndarray:
        """Return the backing array of a column (no copy)."""
        try:
            return self._columns[name]
        except KeyError:
            raise ColumnNotFoundError(name, self.column_names) from None

    def column(self, name: str) -> np.ndarray:
        """Alias of ``table[name]``."""
        return self[name]

    def row(self, index: int) -> dict[str, Any]:
        """Materialise a single row as a dict of python scalars."""
        if not -self._n_rows <= index < self._n_rows:
            raise IndexError(f"row {index} out of range for table of {self._n_rows} rows")
        return {name: array[index].item() if array.dtype.kind != "O" else array[index]
                for name, array in self._columns.items()}

    def to_rows(self) -> list[dict[str, Any]]:
        """Materialise the whole table as a list of row dicts."""
        return [self.row(i) for i in range(self._n_rows)]

    def nbytes(self) -> int:
        """Approximate memory footprint of all columns in bytes."""
        return sum(column_nbytes(array) for array in self._columns.values())

    # ------------------------------------------------------------------
    # row/column operations
    # ------------------------------------------------------------------
    def select(self, names: Sequence[str]) -> "ColumnTable":
        """Project onto the given columns, in the given order."""
        missing = [n for n in names if n not in self._columns]
        if missing:
            raise ColumnNotFoundError(missing[0], self.column_names)
        return ColumnTable._from_arrays({n: self._columns[n] for n in names}, self._n_rows)

    def drop(self, names: Sequence[str]) -> "ColumnTable":
        """Return the table without the given columns."""
        drop_set = set(names)
        missing = drop_set - set(self._columns)
        if missing:
            raise ColumnNotFoundError(sorted(missing)[0], self.column_names)
        kept = {n: a for n, a in self._columns.items() if n not in drop_set}
        return ColumnTable._from_arrays(kept, self._n_rows)

    def rename(self, mapping: Mapping[str, str]) -> "ColumnTable":
        """Rename columns according to ``mapping`` (old -> new)."""
        missing = set(mapping) - set(self._columns)
        if missing:
            raise ColumnNotFoundError(sorted(missing)[0], self.column_names)
        renamed = {mapping.get(n, n): a for n, a in self._columns.items()}
        if len(renamed) != len(self._columns):
            raise SchemaError("rename would produce duplicate column names")
        return ColumnTable._from_arrays(renamed, self._n_rows)

    def with_column(self, name: str, values: Any) -> "ColumnTable":
        """Return a new table with ``name`` added or replaced."""
        array = as_column(values, name)
        if len(array) != self._n_rows:
            raise LengthMismatchError(
                f"column {name!r} has length {len(array)}, expected {self._n_rows}"
            )
        columns = dict(self._columns)
        columns[str(name)] = array
        return ColumnTable._from_arrays(columns, self._n_rows)

    def filter(self, mask: np.ndarray) -> "ColumnTable":
        """Keep rows where ``mask`` is True."""
        mask = np.asarray(mask)
        if mask.dtype != bool:
            raise TypeError(f"filter mask must be boolean, got dtype {mask.dtype}")
        if len(mask) != self._n_rows:
            raise LengthMismatchError(
                f"mask has length {len(mask)}, expected {self._n_rows}"
            )
        return self.take(np.flatnonzero(mask))

    def take(self, indices: np.ndarray) -> "ColumnTable":
        """Gather rows by integer position."""
        indices = np.asarray(indices, dtype=np.int64)
        taken = {n: a[indices] for n, a in self._columns.items()}
        return ColumnTable._from_arrays(taken, len(indices))

    def head(self, n: int = 5) -> "ColumnTable":
        """First ``n`` rows."""
        return self.take(np.arange(min(n, self._n_rows)))

    def sort_by(self, names: Sequence[str] | str, ascending: bool = True) -> "ColumnTable":
        """Stable sort by one or more columns (last name is primary for
        ``numpy.lexsort``, so we reverse internally to match SQL order)."""
        if isinstance(names, str):
            names = [names]
        keys = [self[n] for n in reversed(list(names))]
        order = np.lexsort(keys)
        if not ascending:
            order = order[::-1]
        return self.take(order)

    def unique(self, name: str) -> np.ndarray:
        """Sorted unique values of a column."""
        return np.unique(self[name])

    # ------------------------------------------------------------------
    # group-by / aggregation
    # ------------------------------------------------------------------
    def group_by(self, keys: Sequence[str] | str) -> "GroupedTable":
        """Start a grouped aggregation; see :class:`GroupedTable`."""
        if isinstance(keys, str):
            keys = [keys]
        if not keys:
            raise SchemaError("group_by requires at least one key column")
        return GroupedTable(self, tuple(keys))

    def _group_codes(self, keys: Sequence[str]) -> tuple[np.ndarray, dict[str, np.ndarray]]:
        """Dense group id per row plus unique key values per key column."""
        codes = np.zeros(self._n_rows, dtype=np.int64)
        uniques_per_key: dict[str, np.ndarray] = {}
        multiplier = 1
        per_key_codes: list[tuple[str, np.ndarray, np.ndarray]] = []
        for key in keys:
            key_codes, uniques = factorize(self[key])
            per_key_codes.append((key, key_codes, uniques))
            codes = codes * len(uniques) + key_codes if multiplier > 1 else key_codes
            multiplier *= max(len(uniques), 1)
        # Re-densify combined codes (cartesian space may be sparse).
        dense, inverse = np.unique(codes, return_inverse=True)
        # Recover representative key values for each dense group.
        first_row_of_group = np.zeros(len(dense), dtype=np.int64)
        order = np.argsort(inverse, kind="stable")
        sorted_groups = inverse[order]
        starts = np.flatnonzero(np.diff(sorted_groups, prepend=-1))
        first_row_of_group = order[starts]
        for key, _codes, _uniques in per_key_codes:
            uniques_per_key[key] = self[key][first_row_of_group]
        return inverse.astype(np.int64), uniques_per_key

    # ------------------------------------------------------------------
    # joins / concat
    # ------------------------------------------------------------------
    def merge(
        self,
        other: "ColumnTable",
        on: Sequence[str] | str,
        how: str = "inner",
        suffixes: tuple[str, str] = ("_x", "_y"),
    ) -> "ColumnTable":
        """Hash join with another table; see :func:`repro.table.join.merge`."""
        from repro.table.join import merge as _merge

        return _merge(self, other, on=on, how=how, suffixes=suffixes)

    @staticmethod
    def concat(tables: Iterable["ColumnTable"]) -> "ColumnTable":
        """Vertically stack tables with identical column sets."""
        tables = list(tables)
        if not tables:
            return ColumnTable()
        names = tables[0].column_names
        for t in tables[1:]:
            if set(t.column_names) != set(names):
                raise SchemaError("concat requires identical column sets")
        stacked = {
            name: np.concatenate([t[name] for t in tables]) for name in names
        }
        return ColumnTable._from_arrays(stacked, sum(t.n_rows for t in tables))

    # ------------------------------------------------------------------
    # comparison / display
    # ------------------------------------------------------------------
    def equals(self, other: "ColumnTable") -> bool:
        """Exact equality of schema and values (nan == nan)."""
        if not isinstance(other, ColumnTable):
            return False
        if self.column_names != other.column_names or self._n_rows != other._n_rows:
            return False
        for name in self.column_names:
            a, b = self[name], other[name]
            if a.dtype.kind == "f" and b.dtype.kind == "f":
                if not np.array_equal(a, b, equal_nan=True):
                    return False
            elif not np.array_equal(a, b):
                return False
        return True

    def __repr__(self) -> str:
        preview = ", ".join(self.column_names[:6])
        if self.n_columns > 6:
            preview += ", ..."
        return f"ColumnTable({self._n_rows} rows x {self.n_columns} cols: [{preview}])"


class GroupedTable:
    """Lazy handle returned by :meth:`ColumnTable.group_by`.

    Call :meth:`aggregate` with an output-column specification::

        table.group_by(["rcc_type"]).aggregate({
            "total_amount": ("amount", "sum"),
            "n": ("amount", "count"),
        })
    """

    def __init__(self, table: ColumnTable, keys: tuple[str, ...]):
        self._table = table
        self._keys = keys

    def aggregate(self, spec: Mapping[str, tuple[str, str]]) -> ColumnTable:
        """Compute one output column per ``(source_column, agg_name)`` pair."""
        table = self._table
        if table.n_rows == 0:
            columns: dict[str, np.ndarray] = {k: table[k] for k in self._keys}
            for out_name, (source, agg) in spec.items():
                columns[out_name] = apply_aggregation(agg, table[source], np.empty(0, np.int64))
            return ColumnTable._from_arrays(columns, 0)
        group_ids, key_values = table._group_codes(self._keys)
        order = np.argsort(group_ids, kind="stable")
        sorted_ids = group_ids[order]
        starts = np.flatnonzero(np.diff(sorted_ids, prepend=-1))
        columns = dict(key_values)
        for out_name, (source, agg) in spec.items():
            values = table[source][order]
            columns[out_name] = apply_aggregation(agg, values, starts)
        n_groups = len(starts)
        return ColumnTable._from_arrays(columns, n_groups)

    def sizes(self) -> ColumnTable:
        """Group sizes as a table with a ``count`` column."""
        first_key = self._keys[0]
        return self.aggregate({"count": (first_key, "count")})
