"""Command-line interface: ``python -m repro <command>``.

Commands mirror the deployment life cycle:

* ``generate`` — write a synthetic NMD snapshot to a directory of CSVs.
* ``fit``      — fit the final pipeline (or greedily optimize one) on a
  dataset and save the model artefact.
* ``query``    — DoMD query against a saved model (optionally explained).
* ``evaluate`` — Table-7-style metrics on the chronological test split.
* ``serve``    — JSON-lines request loop over stdin/stdout
  (the SMDII back-end contract, see :mod:`repro.core.service`).
  ``--workers N`` serves through a :class:`~repro.core.server.ServicePool`
  (bounded queue via ``--queue-depth``, per-request budgets via
  ``--deadline-ms``); responses stay in submission order.
  ``--follow WAL`` tails a write-ahead log in the background, applying
  fresh RCC events to live indexes between requests (see
  ``docs/streaming.md``).
* ``ingest``   — streaming ingestion: ``append`` writes a stream file
  into a durable WAL; ``replay`` rebuilds state from a WAL (optionally
  restoring a snapshot first), with ``--verify`` diffing the live
  indexes against fresh batch builds.
* ``explain``  — EXPLAIN/ANALYZE a Status Query workload: planner
  decision, per-operator rows/timings, cost-model residual; optionally
  exporting the run as a flamegraph or Chrome trace.
* ``planner doctor`` — re-measure the planner's cost constants on this
  machine and flag backends whose committed constants are >2x off.
* ``telemetry report`` — render a run's trace trees, latency
  histograms and counters from a JSONL event log (corrupt lines are
  skipped and counted in a footer warning).
* ``telemetry profile`` — render the same event log as collapsed-stack
  flamegraph lines or Chrome ``traceEvents`` JSON.
* ``telemetry trace <trace_id>`` — reconstruct one trace's full causal
  chain from the event log alone: the request's span tree, its
  provenance stamp, and the ingest applies / WAL appends that made the
  answered data queryable (exit 1 when the trace is not in the log).
* ``top`` — terminal dashboard over a serving process's JSONL event
  log: qps, latency percentile trends, pool saturation, watermark lag,
  drift and firing alerts, live (refreshing) or ``--once`` for a single
  frame.  Works while the server runs *and* after it exits — the
  dashboard reconstructs purely from the ``sample``/``alert`` events
  the always-on sampler persists.

Every command is a thin shell over the library API; ``main`` returns an
exit code and never raises for user errors.

A single :class:`~repro.runtime.ExecutionContext` is threaded through
whichever command runs.  The global ``--trace`` flag prints its
:class:`~repro.runtime.RunReport` (per-stage spans and counters) as a
final JSON line **on stderr** — command stdout stays pipeable to
``jq``/files — and ``--trace-file`` writes the same JSON to a path
instead.  ``--telemetry-events PATH`` attaches a rotating JSONL event
log to the run (the input of ``telemetry report``).
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import sys
from pathlib import Path
from typing import IO

from repro.core.config import PipelineConfig, paper_final_config
from repro.core.estimator import DomdEstimator
from repro.core.pipeline import PipelineOptimizer
from repro.core.server import ServicePool
from repro.core.service import DomdService, error_envelope
from repro.data.generator import SyntheticNmdConfig, generate_dataset
from repro.data.regimes import REGIMES, generate_regime_dataset, get_regime
from repro.data.loader import load_dataset, save_dataset
from repro.data.scaling import scale_rccs
from repro.data.splits import split_dataset
from repro.errors import ReproError
from repro.index.status_query import StatusQuery, StatusQueryEngine
from repro.persistence import load_estimator, save_estimator
from repro.runtime import (
    ExecutionContext,
    JsonlEventLog,
    chrome_trace_from_events,
    collapsed_from_events,
    doctor_report,
    explain_point,
    explain_sweep,
    load_events_lenient,
    render_report,
)

#: Engine-facing columns of the logical-time RCC table.
_ENGINE_COLUMNS = ["rcc_type", "swlin", "t_start", "t_end", "amount", "avail_id"]

#: Default sweep timeline: the paper's 10%-window logical timestamps.
_DEFAULT_SWEEP = [float(t) for t in range(0, 101, 10)]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="DoMD estimation framework (EDBT 2025 reproduction)"
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="print the run's metrics report (spans + counters) as a final "
        "JSON line on stderr",
    )
    parser.add_argument(
        "--trace-file",
        metavar="PATH",
        help="write the run's metrics report JSON to PATH",
    )
    parser.add_argument(
        "--telemetry-events",
        metavar="PATH",
        help="append the run's structured telemetry events to a rotating "
        "JSONL log at PATH",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a synthetic NMD snapshot")
    gen.add_argument("--out", required=True, help="output directory")
    gen.add_argument("--seed", type=int, default=7)
    gen.add_argument("--scale", type=int, default=1, help="x-fold RCC scaling")
    gen.add_argument(
        "--regime",
        choices=sorted(REGIMES),
        help="generate through the lifecycle simulator under a named "
        "stress regime instead of the direct sampler",
    )
    gen.add_argument("--ships", type=int, help="override fleet size")
    gen.add_argument("--avails", type=int, help="override closed-avail count")
    gen.add_argument("--ongoing", type=int, help="override ongoing-avail count")
    gen.add_argument("--rccs", type=int, help="override total RCC count")
    gen.add_argument(
        "--events-out",
        metavar="PATH",
        help="additionally write the dataset as a time-ordered RCC event "
        "stream (JSONL; header line + rcc_created/rcc_settled events; "
        "stream-perturbing regimes write their delivery order)",
    )

    fit = sub.add_parser("fit", help="fit the pipeline and save the model")
    fit.add_argument("--data", required=True, help="dataset directory")
    fit.add_argument("--out", required=True, help="model artefact path (.json)")
    fit.add_argument(
        "--optimize",
        action="store_true",
        help="run the greedy pipeline optimization instead of the paper's final config",
    )
    fit.add_argument("--window", type=float, default=10.0, help="window width %%")
    fit.add_argument("--split-seed", type=int, default=42)

    query = sub.add_parser("query", help="DoMD query against a saved model")
    query.add_argument("--model", required=True)
    query.add_argument("--data", required=True)
    query.add_argument("--avail", type=int, required=True, action="append")
    group = query.add_mutually_exclusive_group(required=True)
    group.add_argument("--t-star", type=float)
    group.add_argument("--date", type=str)
    query.add_argument("--explain", action="store_true", help="include top-5 drivers")

    evaluate = sub.add_parser("evaluate", help="test-split metrics for a saved model")
    evaluate.add_argument("--model", required=True)
    evaluate.add_argument("--data", required=True)
    evaluate.add_argument("--split-seed", type=int, default=42)

    ingest = sub.add_parser(
        "ingest", help="stream RCC events through the WAL / replay a WAL"
    )
    ingest.add_argument(
        "action",
        choices=["append", "replay"],
        help="'append': write events from a stream file into a WAL; "
        "'replay': rebuild state from a WAL (optionally from a snapshot)",
    )
    ingest.add_argument("--wal", required=True, help="WAL file path")
    ingest.add_argument(
        "--events", help="stream file to append (append action)"
    )
    ingest.add_argument(
        "--stream",
        help="stream file whose header bootstraps the store (replay action)",
    )
    ingest.add_argument(
        "--data", help="dataset directory bootstrapping the store (replay)"
    )
    ingest.add_argument(
        "--restore",
        metavar="SNAPSHOT",
        help="stream snapshot to restore before replaying the WAL tail",
    )
    ingest.add_argument(
        "--design",
        action="append",
        help="index design(s) to maintain (repeatable; default avl)",
    )
    ingest.add_argument("--batch-size", type=int, default=256)
    ingest.add_argument(
        "--fsync-batches",
        type=int,
        default=1,
        help="fsync every N appended batches (append action, default 1)",
    )
    ingest.add_argument(
        "--snapshot-out",
        metavar="PATH",
        help="write a stream snapshot after replay (replay action)",
    )
    ingest.add_argument(
        "--verify",
        action="store_true",
        help="after replay, diff every maintained index against a fresh "
        "batch build at the sweep timestamps; non-zero exit on mismatch",
    )
    ingest.add_argument(
        "--sweep",
        metavar="T0,T1,...",
        help="verification timestamps (default: 0,10,...,100)",
    )

    serve = sub.add_parser(
        "serve",
        help="answer JSON-lines requests on stdin, or serve a sharded "
        "fleet over TCP with --listen",
    )
    serve.add_argument("--model", required=True)
    serve.add_argument("--data", required=True)
    serve.add_argument(
        "--listen",
        metavar="HOST:PORT",
        help="serve the length-prefixed JSON protocol on a TCP socket "
        "instead of stdin, sharding the fleet across worker processes "
        "(PORT 0 picks an ephemeral port; the bound address is printed "
        "as a JSON ready line)",
    )
    serve.add_argument(
        "--shards",
        type=int,
        default=2,
        help="worker processes partitioning the fleet by ship "
        "(--listen mode only, default 2)",
    )
    serve.add_argument(
        "--vnodes",
        type=int,
        default=256,
        help="virtual nodes per shard on the consistent-hash ring "
        "(default 256)",
    )
    serve.add_argument(
        "--wal-dir",
        metavar="DIR",
        help="per-shard write-ahead logs under DIR, enabling the "
        "'ingest' request type with fsync-then-ack durability "
        "(--listen mode only)",
    )
    serve.add_argument(
        "--max-inflight",
        type=int,
        default=64,
        help="front-end dispatch slots before requests bounce with a "
        "retryable 'overloaded' envelope (--listen mode, default 64)",
    )
    serve.add_argument(
        "--scatter-timeout-ms",
        type=float,
        default=5000.0,
        help="per-shard budget for scatter-gather requests; shards "
        "missing it are reported in the 'degraded' block "
        "(--listen mode, default 5000)",
    )
    serve.add_argument(
        "--lag-alert-events",
        type=int,
        default=500,
        help="ingest lag (events) past which a shard's "
        "'shard:<id>:lagging' alert fires (--listen mode, default 500)",
    )
    serve.add_argument(
        "--follow",
        metavar="WAL",
        help="tail a WAL in the background, applying fresh events to live "
        "indexes and re-binding the service between requests",
    )
    serve.add_argument(
        "--follow-poll-ms",
        type=float,
        default=200.0,
        help="WAL poll interval in milliseconds (default 200)",
    )
    serve.add_argument(
        "--follow-designs",
        metavar="D1,D2,...",
        default="avl",
        help="comma-separated index designs maintained live (default avl)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker threads serving requests concurrently (default 1)",
    )
    serve.add_argument(
        "--queue-depth",
        type=int,
        default=16,
        help="bounded request-queue capacity (backpressure knob, default 16)",
    )
    serve.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        help="per-request deadline in milliseconds, measured from submission "
        "(default: no deadline)",
    )
    serve.add_argument(
        "--sample-interval-ms",
        type=float,
        default=1000.0,
        help="background telemetry sampler tick in milliseconds "
        "(default 1000; 0 disables the always-on sampler and SLO alerting)",
    )
    serve.add_argument(
        "--slo-latency-ms",
        type=float,
        default=500.0,
        help="p99 request-latency SLO threshold in milliseconds (default 500)",
    )
    serve.add_argument(
        "--profile-out",
        metavar="PATH",
        help="run the continuous stack profiler and write its collapsed-"
        "stack flamegraph lines to PATH on shutdown",
    )
    serve.add_argument(
        "--profile-interval-ms",
        type=float,
        default=20.0,
        help="stack-profiler sampling interval in milliseconds (default 20)",
    )

    explain = sub.add_parser(
        "explain", help="EXPLAIN/ANALYZE a Status Query workload"
    )
    explain.add_argument("--data", required=True, help="dataset directory")
    explain.add_argument(
        "--design",
        default="auto",
        help="index design (naive/avl/interval/sorted_array) or 'auto' "
        "to let the planner choose (default)",
    )
    mode = explain.add_mutually_exclusive_group()
    mode.add_argument(
        "--t-star", type=float, help="point query at one logical timestamp"
    )
    mode.add_argument(
        "--sweep",
        metavar="T0,T1,...",
        help="comma-separated sweep timestamps (default: 0,10,...,100)",
    )
    explain.add_argument(
        "--swlin-level",
        type=int,
        default=1,
        help="SWLIN grouping level 1..4, or 0 for no SWLIN grouping",
    )
    explain.add_argument(
        "--no-group-type", action="store_true", help="skip RCC-type grouping"
    )
    explain.add_argument(
        "--scratch",
        action="store_true",
        help="sweep from scratch per timestamp instead of incrementally",
    )
    explain.add_argument(
        "--format", choices=["text", "json"], default="text", dest="report_format"
    )
    explain.add_argument(
        "--redact-timings",
        action="store_true",
        help="replace machine-speed numbers with *** (host-stable output)",
    )
    explain.add_argument(
        "--flamegraph",
        metavar="PATH",
        help="write the run's collapsed-stack flamegraph lines to PATH",
    )
    explain.add_argument(
        "--chrome-trace",
        metavar="PATH",
        help="write the run's Chrome traceEvents JSON to PATH",
    )

    planner = sub.add_parser(
        "planner", help="inspect the cost-based query planner"
    )
    planner.add_argument(
        "action",
        choices=["doctor"],
        help="'doctor': measure cost-model calibration on this machine",
    )
    planner.add_argument("--data", required=True, help="dataset directory")
    planner.add_argument(
        "--factor", type=int, default=1, help="x-fold RCC scaling for the probe"
    )
    planner.add_argument(
        "--threshold",
        type=float,
        default=2.0,
        help="flag backends whose measured/modelled ratio is outside "
        "[1/threshold, threshold]",
    )
    planner.add_argument(
        "--format", choices=["text", "json"], default="text", dest="report_format"
    )

    telemetry = sub.add_parser(
        "telemetry", help="inspect telemetry artefacts of a previous run"
    )
    telemetry.add_argument(
        "action",
        choices=["report", "profile", "trace"],
        help="'report': render an event log; 'profile': export it as a "
        "flamegraph or Chrome trace; 'trace': reconstruct one trace's "
        "full causal chain (request -> ingest applies -> WAL appends)",
    )
    telemetry.add_argument(
        "trace_id",
        nargs="?",
        default=None,
        help="trace id to reconstruct (required for 'trace'; e.g. the "
        "trace_id of a response's provenance stamp)",
    )
    telemetry.add_argument(
        "--events", required=True, help="JSONL event log (from --telemetry-events)"
    )
    telemetry.add_argument(
        "--format",
        choices=["text", "json", "collapsed", "chrome"],
        default=None,
        dest="report_format",
        help="report: text|json (default text); profile: collapsed|chrome "
        "(default collapsed)",
    )
    telemetry.add_argument(
        "--out", metavar="PATH", help="write profile output to PATH instead of stdout"
    )

    top = sub.add_parser(
        "top", help="terminal dashboard over a serving process's event log"
    )
    top.add_argument(
        "--events",
        required=True,
        help="JSONL event log the serving process writes (--telemetry-events)",
    )
    top.add_argument(
        "--once", action="store_true", help="render one frame and exit"
    )
    top.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        dest="report_format",
        help="frame format; 'json' prints the raw snapshot (requires --once)",
    )
    top.add_argument(
        "--interval",
        type=float,
        default=2.0,
        help="live-mode refresh interval in seconds (default 2)",
    )
    top.add_argument(
        "--window",
        type=float,
        default=300.0,
        help="trend window in seconds (default 300)",
    )
    return parser


def _cmd_generate(args, out: IO[str]) -> int:
    config = SyntheticNmdConfig(seed=args.seed)
    overrides = {
        name: value
        for name, value in (
            ("n_ships", getattr(args, "ships", None)),
            ("n_closed_avails", getattr(args, "avails", None)),
            ("n_ongoing_avails", getattr(args, "ongoing", None)),
            ("target_n_rccs", getattr(args, "rccs", None)),
        )
        if value is not None
    }
    if overrides:
        config = dataclasses.replace(config, **overrides)
    regime = getattr(args, "regime", None)
    if regime:
        spec = get_regime(regime)
        dataset = generate_regime_dataset(spec, base=config)
    else:
        spec = None
        dataset = generate_dataset(config)
    if args.scale > 1:
        dataset = scale_rccs(dataset, args.scale)
    save_dataset(dataset, args.out)
    stats = dataset.statistics()
    if spec is not None:
        stats["regime"] = spec.name
    if getattr(args, "events_out", None):
        if spec is not None:
            from repro.data.regimes import write_regime_stream

            stats["events_written"] = write_regime_stream(
                spec, dataset, args.events_out
            )
        else:
            from repro.stream import write_event_stream

            stats["events_written"] = write_event_stream(dataset, args.events_out)
        stats["events_path"] = args.events_out
    print(json.dumps(stats), file=out)
    return 0


def _cmd_ingest(args, out: IO[str], context: ExecutionContext) -> int:
    from repro.stream import (
        StreamIngestor,
        StreamingRccStore,
        WalWriter,
        read_event_stream,
    )

    if args.action == "append":
        if not args.events:
            raise ReproError("ingest append requires --events <stream file>")
        _, events = read_event_stream(args.events)
        batches = 0
        # One append trace per CLI invocation: every WAL record written
        # here carries this trace's context (tp), so a later serving
        # process can walk a response all the way back to this command.
        with context.telemetry.trace("ingest.append", wal=args.wal):
            with WalWriter(
                args.wal,
                fsync_batches=args.fsync_batches,
                telemetry=context.telemetry,
            ) as writer:
                first_seq = writer.next_seq
                for lo in range(0, len(events), args.batch_size):
                    with context.span("ingest.append_batch"):
                        writer.append_batch(events[lo : lo + args.batch_size])
                    batches += 1
                last_seq = writer.last_seq
        print(
            json.dumps(
                {
                    "appended": len(events),
                    "batches": batches,
                    "first_seq": first_seq,
                    "last_seq": last_seq,
                    "wal": args.wal,
                }
            ),
            file=out,
        )
        return 0

    # replay: bootstrap a store, then apply the WAL tail.
    sources = [bool(args.stream), bool(args.data), bool(args.restore)]
    if sum(sources) > 1:
        raise ReproError(
            "ingest replay takes at most one of --stream / --data / --restore"
        )
    designs = args.design if args.design else None
    if args.restore:
        from repro.persistence import load_stream_snapshot

        ingestor = load_stream_snapshot(args.restore, context=context, designs=designs)
    else:
        if args.stream:
            header, _ = read_event_stream(args.stream)
            if header is None:
                raise ReproError(
                    f"stream file {args.stream!r} has no stream_header line"
                )
            store = StreamingRccStore.from_header(header)
        elif args.data:
            store = StreamingRccStore.from_dataset(load_dataset(args.data))
        else:
            raise ReproError(
                "ingest replay needs a bootstrap source: --stream, --data or --restore"
            )
        ingestor = StreamIngestor(
            store, designs=designs if designs else ("avl",), context=context
        )
    replayed = ingestor.replay(args.wal, batch_size=args.batch_size)
    summary = {"replay": replayed, "status": ingestor.status()}
    if args.snapshot_out:
        from repro.persistence import save_stream_snapshot

        save_stream_snapshot(ingestor, args.snapshot_out)
        summary["snapshot"] = args.snapshot_out
    code = 0
    if args.verify:
        mismatches = _verify_ingest(ingestor, args.sweep)
        summary["verify"] = {
            "ok": not mismatches,
            "mismatches": mismatches,
        }
        code = 0 if not mismatches else 1
    print(json.dumps(summary), file=out)
    return code


def _verify_ingest(ingestor, sweep: str | None) -> list[dict]:
    """Diff live-maintained indexes against fresh batch builds."""
    import numpy as np

    from repro.index.status_query import StatusQueryEngine

    if sweep:
        t_stars = [float(part) for part in sweep.split(",") if part.strip()]
    else:
        t_stars = list(_DEFAULT_SWEEP)
    table = ingestor.store.engine_table()
    mismatches: list[dict] = []
    for design, adapter in ingestor.adapters.items():
        batch = StatusQueryEngine(table, design=design).index
        for t in t_stars:
            for op in ("active_ids", "settled_ids", "created_ids", "pending_ids"):
                live = getattr(adapter, op)(t)
                reference = getattr(batch, op)(t)
                if not np.array_equal(live, reference):
                    mismatches.append(
                        {"design": design, "op": op, "t_star": t,
                         "live_rows": int(len(live)),
                         "batch_rows": int(len(reference))}
                    )
    return mismatches


def _cmd_fit(args, out: IO[str], context: ExecutionContext) -> int:
    dataset = load_dataset(args.data)
    splits = split_dataset(dataset, seed=args.split_seed)
    if args.optimize:
        optimizer = PipelineOptimizer(
            dataset,
            splits,
            base_config=PipelineConfig(window_pct=args.window),
            context=context,
        )
        report = optimizer.run()
        config = report.config
        print(json.dumps({"optimized": config.describe()}), file=out)
    else:
        config = paper_final_config(window_pct=args.window)
    estimator = DomdEstimator(config, context=context).fit(dataset, splits.train_ids)
    save_estimator(estimator, args.out)
    metrics = estimator.evaluate(splits.test_ids)["average"]
    print(json.dumps({"saved": args.out, "test_metrics": metrics}), file=out)
    return 0


def _cmd_query(args, out: IO[str], context: ExecutionContext) -> int:
    dataset = load_dataset(args.data)
    estimator = load_estimator(args.model, dataset, context=context)
    service = DomdService(estimator)
    request = {"type": "domd_query", "avail_ids": args.avail}
    if args.t_star is not None:
        request["t_star"] = args.t_star
    else:
        request["date"] = args.date
    response = service.handle(request)
    print(json.dumps(response), file=out)
    if response["ok"] and args.explain:
        for item in response["result"]:
            explain = service.handle(
                {
                    "type": "explain",
                    "avail_id": item["avail_id"],
                    "t_star": item["t_star"],
                }
            )
            print(json.dumps(explain), file=out)
    return 0 if response["ok"] else 1


def _cmd_evaluate(args, out: IO[str], context: ExecutionContext) -> int:
    dataset = load_dataset(args.data)
    estimator = load_estimator(args.model, dataset, context=context)
    splits = split_dataset(dataset, seed=args.split_seed)
    metrics = estimator.evaluate(splits.test_ids)
    print(json.dumps(metrics), file=out)
    return 0


def _cmd_serve(args, out: IO[str], stdin: IO[str], context: ExecutionContext) -> int:
    if getattr(args, "listen", None):
        return _cmd_serve_fleet(args, out, context)
    dataset = load_dataset(args.data)
    estimator = load_estimator(args.model, dataset, context=context)
    service = DomdService(estimator)
    workers = getattr(args, "workers", 1)
    deadline_ms = getattr(args, "deadline_ms", None)

    # Live ingestion: tail a WAL on a background thread; every applied
    # batch refreshes the indexes and re-binds the service, all under
    # the write side of a gate the query paths read-lock.
    gate = None
    follower = None
    if getattr(args, "follow", None):
        from repro.runtime.concurrency import ReadWriteGate
        from repro.stream import StreamIngestor, StreamingRccStore, WalFollower

        designs = [
            part.strip()
            for part in getattr(args, "follow_designs", "avl").split(",")
            if part.strip()
        ]
        ingestor = StreamIngestor(
            StreamingRccStore.from_dataset(dataset),
            designs=designs or ("avl",),
            context=context,
        )
        gate = ReadWriteGate()
        service.ingest = ingestor
        follower = WalFollower(
            ingestor,
            args.follow,
            gate=gate,
            on_batch=lambda ing: service.rebind(ing.dataset()),
            poll_interval=max(getattr(args, "follow_poll_ms", 200.0), 1.0) / 1000.0,
        )
        follower.start()

    # Always-on observability plane: a background sampler snapshots
    # counters / windowed percentiles / pool + ingest gauges into a
    # bounded time-series store every tick, persists each tick as a
    # ``sample`` event (so ``repro top`` works live and offline), and
    # drives SLO burn-rate alerting; optionally a continuous stack
    # profiler runs alongside.
    sampler = None
    profiler = None
    sample_interval_ms = getattr(args, "sample_interval_ms", 1000.0)
    if sample_interval_ms and sample_interval_ms > 0:
        from repro.runtime.telemetry import (
            SloEngine,
            TelemetrySampler,
            TimeSeriesStore,
            default_objectives,
        )

        store = TimeSeriesStore()
        objectives = default_objectives(
            latency_threshold_s=getattr(args, "slo_latency_ms", 500.0) / 1000.0,
            include_ingest=follower is not None,
        )
        sampler = TelemetrySampler(
            context.metrics,
            store=store,
            interval=sample_interval_ms / 1000.0,
            slo=SloEngine(objectives, store),
        )
        if service.ingest is not None:
            sampler.add_source("ingest", service.ingest.gauges)
    if getattr(args, "profile_out", None):
        from repro.runtime.telemetry import StackProfiler

        profiler = StackProfiler(
            interval=max(getattr(args, "profile_interval_ms", 20.0), 1.0) / 1000.0
        )
        profiler.start()
    if sampler is not None:
        sampler.start()

    try:
        from repro.serve.handler import RequestHandler, serve_stdin

        if workers <= 1 and deadline_ms is None:
            # Unpooled: dispatch resolves inline, so serve_stdin prints
            # each response immediately — byte-identical to the
            # historical inline loop (pinned by the stdin regression
            # test).
            return serve_stdin(RequestHandler(service, gate=gate), stdin, out)

        # Pooled serving: requests fan out across worker threads, responses
        # are printed in submission order.  Submits block on a full queue —
        # on a stdin pipe the producer *is* the client, so backpressure
        # propagates upstream instead of dropping requests.
        pool = ServicePool(
            service,
            workers=workers,
            queue_depth=getattr(args, "queue_depth", 16),
            deadline_ms=deadline_ms,
            gate=gate,
        )
        if sampler is not None:
            sampler.add_source("pool", pool.sample_gauges)
        try:
            return serve_stdin(RequestHandler(service, pool=pool), stdin, out)
        finally:
            pool.close(drain=True)
    finally:
        if sampler is not None:
            sampler.stop()
        if profiler is not None:
            profiler.stop()
            Path(args.profile_out).write_text(
                "\n".join(profiler.collapsed()) + "\n", encoding="utf-8"
            )
        if follower is not None:
            follower.stop()


def _cmd_serve_fleet(args, out: IO[str], context: ExecutionContext) -> int:
    """``repro serve --listen HOST:PORT``: the sharded TCP fleet service."""
    import signal
    import threading

    from repro.serve import FleetService

    listen = args.listen
    host, sep, port_text = listen.rpartition(":")
    if not sep or not host:
        print(
            json.dumps(
                error_envelope(
                    "bad_request", f"--listen must be HOST:PORT, got {listen!r}"
                )
            ),
            file=out,
            flush=True,
        )
        return 2
    fleet = FleetService(
        model=args.model,
        data=args.data,
        shards=max(getattr(args, "shards", 2), 1),
        vnodes=getattr(args, "vnodes", 256),
        wal_dir=getattr(args, "wal_dir", None),
        workers_per_shard=max(getattr(args, "workers", 1), 1),
        queue_depth=getattr(args, "queue_depth", 16),
        deadline_ms=getattr(args, "deadline_ms", None),
        host=host,
        port=int(port_text),
        max_inflight=getattr(args, "max_inflight", 64),
        scatter_timeout=max(getattr(args, "scatter_timeout_ms", 5000.0), 1.0)
        / 1000.0,
        lag_alert_events=getattr(args, "lag_alert_events", 500),
        context=context,
    )

    sampler = None
    sample_interval_ms = getattr(args, "sample_interval_ms", 1000.0)
    stop = threading.Event()

    def _on_signal(_signum, _frame):
        stop.set()

    previous_term = signal.signal(signal.SIGTERM, _on_signal)
    try:
        bound_port = fleet.start()
        assert fleet.router is not None
        if sample_interval_ms and sample_interval_ms > 0:
            from repro.runtime.telemetry import (
                SloEngine,
                TelemetrySampler,
                TimeSeriesStore,
                default_objectives,
            )

            store = TimeSeriesStore()
            objectives = default_objectives(
                latency_threshold_s=getattr(args, "slo_latency_ms", 500.0)
                / 1000.0,
                include_ingest=False,
            )
            sampler = TelemetrySampler(
                context.metrics,
                store=store,
                interval=sample_interval_ms / 1000.0,
                slo=SloEngine(objectives, store),
            )
            # Every tick scatters shard_status across the fleet: the
            # shard.<id>.* series feed `repro top`'s shard panel and
            # the repro_shard_* exposition, and the same poll evaluates
            # the shard:<id>:lagging alert conditions.
            sampler.add_source("shard", fleet.router.sample_gauges)
            sampler.start()
        print(
            json.dumps(
                {
                    "ok": True,
                    "listening": {"host": host, "port": bound_port},
                    "shards": list(fleet.ring.shard_ids),
                    "ingest": bool(fleet.wal_dir),
                }
            ),
            file=out,
            flush=True,
        )
        try:
            while not stop.is_set():
                stop.wait(0.5)
        except KeyboardInterrupt:
            pass
        return 0
    finally:
        signal.signal(signal.SIGTERM, previous_term)
        if sampler is not None:
            sampler.stop()
        fleet.stop(drain=True)


def _cmd_explain(args, out: IO[str], context: ExecutionContext) -> int:
    dataset = load_dataset(args.data)
    rccs = dataset.rccs_with_logical_times().select(_ENGINE_COLUMNS)
    engine = StatusQueryEngine(rccs, design=args.design, context=context)
    swlin_level = args.swlin_level if args.swlin_level else None
    group_by_type = not args.no_group_type
    if args.t_star is not None:
        query = StatusQuery(
            t_star=args.t_star,
            group_by_type=group_by_type,
            swlin_level=swlin_level,
        )
        explained = explain_point(engine, query)
    else:
        if args.sweep:
            t_stars = [float(part) for part in args.sweep.split(",") if part.strip()]
        else:
            t_stars = list(_DEFAULT_SWEEP)
        explained = explain_sweep(
            engine,
            t_stars,
            group_by_type=group_by_type,
            swlin_level=swlin_level,
            incremental=not args.scratch,
        )
    plan = explained.plan
    if args.report_format == "json":
        print(json.dumps({"plan": plan.as_dict()}), file=out)
    else:
        print(plan.format(redact_timings=args.redact_timings), file=out)
    if args.flamegraph or args.chrome_trace:
        events = context.telemetry.events()
        if args.flamegraph:
            lines = collapsed_from_events(events)
            Path(args.flamegraph).write_text(
                "\n".join(lines) + "\n", encoding="utf-8"
            )
        if args.chrome_trace:
            Path(args.chrome_trace).write_text(
                json.dumps(chrome_trace_from_events(events)) + "\n",
                encoding="utf-8",
            )
    return 0


def _cmd_planner(args, out: IO[str], context: ExecutionContext) -> int:
    # Lazy import: the bench package pulls in the benchmark harness,
    # which no other CLI path needs.
    from repro.bench.workloads import calibrate_planner

    dataset = load_dataset(args.data)
    _, measurements = calibrate_planner(dataset, factor=args.factor, context=context)
    text, flagged = doctor_report(measurements, threshold=args.threshold)
    if args.report_format == "json":
        payload = {
            "measurements": measurements,
            "flagged": flagged,
            "threshold": args.threshold,
        }
        print(json.dumps(payload), file=out)
    else:
        print(text, file=out)
    return 0


def _cmd_telemetry(args, out: IO[str]) -> int:
    events, dropped = load_events_lenient(args.events)
    if args.action == "trace":
        from repro.runtime.telemetry import causal_chain, render_causal_chain

        if not args.trace_id:
            raise ReproError(
                "telemetry trace requires a trace id "
                "(repro telemetry trace <trace_id> --events ...)"
            )
        chain = causal_chain(events, args.trace_id)
        fmt = args.report_format or "text"
        if fmt not in ("text", "json"):
            raise ReproError(
                f"telemetry trace supports --format text|json, got {fmt!r}"
            )
        if fmt == "json":
            print(json.dumps(chain), file=out)
        else:
            print(render_causal_chain(chain), file=out)
        if dropped:
            print(
                f"warning: skipped {dropped} corrupt event-log line(s)",
                file=sys.stderr,
            )
        return 0 if chain["found"] else 1
    if args.action == "profile":
        fmt = args.report_format or "collapsed"
        if fmt not in ("collapsed", "chrome"):
            raise ReproError(
                f"telemetry profile supports --format collapsed|chrome, got {fmt!r}"
            )
        if fmt == "chrome":
            rendered = json.dumps(chrome_trace_from_events(events))
        else:
            rendered = "\n".join(collapsed_from_events(events))
        if args.out:
            Path(args.out).write_text(rendered + "\n", encoding="utf-8")
            print(json.dumps({"written": args.out, "format": fmt}), file=out)
        else:
            print(rendered, file=out)
        if dropped:
            print(
                f"warning: skipped {dropped} corrupt event-log line(s)",
                file=sys.stderr,
            )
        return 0
    fmt = args.report_format or "text"
    if fmt not in ("text", "json"):
        raise ReproError(
            f"telemetry report supports --format text|json, got {fmt!r}"
        )
    if fmt == "json":
        from repro.runtime.telemetry.exporters import (
            histograms_from_events,
            reconstruct_traces,
        )
        from repro.runtime.telemetry.events import counters_from_events

        payload = {
            "traces": reconstruct_traces(events),
            "histograms": {
                name: histogram.summary()
                for name, histogram in sorted(histograms_from_events(events).items())
            },
            "counters": counters_from_events(events),
            "dropped_lines": dropped,
        }
        print(json.dumps(payload), file=out)
    else:
        print(render_report(events, dropped_lines=dropped), file=out)
    return 0


def _cmd_top(args, out: IO[str]) -> int:
    from repro.runtime.telemetry import render_top, top_snapshot

    if args.report_format == "json" and not args.once:
        raise ReproError("top --format json requires --once")

    def frame() -> dict:
        # Re-read the whole log each refresh: live mode then tails the
        # growing file a serve process is appending, and a finished
        # log renders the identical final frame — one code path for
        # both, which is exactly the live/offline-parity guarantee.
        events, _dropped = load_events_lenient(args.events)
        return top_snapshot(events, window=args.window)

    if args.once:
        snapshot = frame()
        if args.report_format == "json":
            print(json.dumps(snapshot), file=out)
        else:
            print(render_top(snapshot), file=out, end="")
        return 0

    import time as time_module

    try:
        while True:
            # ANSI clear + home, then the frame — a plain-escape "top".
            print(
                "\x1b[2J\x1b[H" + render_top(frame()),
                file=out,
                end="",
                flush=True,
            )
            time_module.sleep(max(args.interval, 0.1))
    except KeyboardInterrupt:
        return 0


def main(
    argv: list[str] | None = None,
    out: IO[str] | None = None,
    stdin: IO[str] | None = None,
    err: IO[str] | None = None,
) -> int:
    """CLI entrypoint; returns an exit code."""
    out = out or sys.stdout
    stdin = stdin or sys.stdin
    err = err or sys.stderr
    parser = _build_parser()
    args = parser.parse_args(argv)
    context = ExecutionContext()
    if args.telemetry_events:
        context.telemetry.add_sink(JsonlEventLog(args.telemetry_events))
    code: int
    try:
        if args.command == "generate":
            code = _cmd_generate(args, out)
        elif args.command == "fit":
            code = _cmd_fit(args, out, context)
        elif args.command == "query":
            code = _cmd_query(args, out, context)
        elif args.command == "evaluate":
            code = _cmd_evaluate(args, out, context)
        elif args.command == "ingest":
            code = _cmd_ingest(args, out, context)
        elif args.command == "serve":
            code = _cmd_serve(args, out, stdin, context)
        elif args.command == "explain":
            code = _cmd_explain(args, out, context)
        elif args.command == "planner":
            code = _cmd_planner(args, out, context)
        elif args.command == "telemetry":
            code = _cmd_telemetry(args, out)
        elif args.command == "top":
            code = _cmd_top(args, out)
        else:
            raise AssertionError("unreachable")
    except ReproError as exc:
        print(json.dumps({"ok": False, "error": {"code": "domain_error", "message": str(exc)}}), file=out)
        code = 1
    except FileNotFoundError as exc:
        print(json.dumps({"ok": False, "error": {"code": "not_found", "message": str(exc)}}), file=out)
        code = 1
    except BrokenPipeError:
        # Downstream consumer closed early (`repro telemetry report | head`);
        # silence the interpreter-exit flush of the dead descriptor too.
        try:
            os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        except (OSError, ValueError):
            pass
        code = 0
    finally:
        context.telemetry.close()
    if args.trace or args.trace_file:
        report = context.report(meta={"command": args.command})
        payload = json.dumps({"trace": report.as_dict()})
        if args.trace_file:
            Path(args.trace_file).write_text(payload + "\n", encoding="utf-8")
        if args.trace:
            # stderr, so command stdout stays clean for jq / redirection
            print(payload, file=err)
    return code


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
