"""Command-line interface: ``python -m repro <command>``.

Commands mirror the deployment life cycle:

* ``generate`` — write a synthetic NMD snapshot to a directory of CSVs.
* ``fit``      — fit the final pipeline (or greedily optimize one) on a
  dataset and save the model artefact.
* ``query``    — DoMD query against a saved model (optionally explained).
* ``evaluate`` — Table-7-style metrics on the chronological test split.
* ``serve``    — JSON-lines request loop over stdin/stdout
  (the SMDII back-end contract, see :mod:`repro.core.service`).
* ``telemetry report`` — render a run's trace trees, latency
  histograms and counters from a JSONL event log.

Every command is a thin shell over the library API; ``main`` returns an
exit code and never raises for user errors.

A single :class:`~repro.runtime.ExecutionContext` is threaded through
whichever command runs.  The global ``--trace`` flag prints its
:class:`~repro.runtime.RunReport` (per-stage spans and counters) as a
final JSON line **on stderr** — command stdout stays pipeable to
``jq``/files — and ``--trace-file`` writes the same JSON to a path
instead.  ``--telemetry-events PATH`` attaches a rotating JSONL event
log to the run (the input of ``telemetry report``).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import IO

from repro.core.config import PipelineConfig, paper_final_config
from repro.core.estimator import DomdEstimator
from repro.core.pipeline import PipelineOptimizer
from repro.core.service import DomdService
from repro.data.generator import SyntheticNmdConfig, generate_dataset
from repro.data.loader import load_dataset, save_dataset
from repro.data.scaling import scale_rccs
from repro.data.splits import split_dataset
from repro.errors import ReproError
from repro.persistence import load_estimator, save_estimator
from repro.runtime import ExecutionContext, JsonlEventLog, load_events, render_report


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="DoMD estimation framework (EDBT 2025 reproduction)"
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="print the run's metrics report (spans + counters) as a final "
        "JSON line on stderr",
    )
    parser.add_argument(
        "--trace-file",
        metavar="PATH",
        help="write the run's metrics report JSON to PATH",
    )
    parser.add_argument(
        "--telemetry-events",
        metavar="PATH",
        help="append the run's structured telemetry events to a rotating "
        "JSONL log at PATH",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a synthetic NMD snapshot")
    gen.add_argument("--out", required=True, help="output directory")
    gen.add_argument("--seed", type=int, default=7)
    gen.add_argument("--scale", type=int, default=1, help="x-fold RCC scaling")

    fit = sub.add_parser("fit", help="fit the pipeline and save the model")
    fit.add_argument("--data", required=True, help="dataset directory")
    fit.add_argument("--out", required=True, help="model artefact path (.json)")
    fit.add_argument(
        "--optimize",
        action="store_true",
        help="run the greedy pipeline optimization instead of the paper's final config",
    )
    fit.add_argument("--window", type=float, default=10.0, help="window width %%")
    fit.add_argument("--split-seed", type=int, default=42)

    query = sub.add_parser("query", help="DoMD query against a saved model")
    query.add_argument("--model", required=True)
    query.add_argument("--data", required=True)
    query.add_argument("--avail", type=int, required=True, action="append")
    group = query.add_mutually_exclusive_group(required=True)
    group.add_argument("--t-star", type=float)
    group.add_argument("--date", type=str)
    query.add_argument("--explain", action="store_true", help="include top-5 drivers")

    evaluate = sub.add_parser("evaluate", help="test-split metrics for a saved model")
    evaluate.add_argument("--model", required=True)
    evaluate.add_argument("--data", required=True)
    evaluate.add_argument("--split-seed", type=int, default=42)

    serve = sub.add_parser("serve", help="answer JSON-lines requests on stdin")
    serve.add_argument("--model", required=True)
    serve.add_argument("--data", required=True)

    telemetry = sub.add_parser(
        "telemetry", help="inspect telemetry artefacts of a previous run"
    )
    telemetry.add_argument(
        "action", choices=["report"], help="'report': render an event log"
    )
    telemetry.add_argument(
        "--events", required=True, help="JSONL event log (from --telemetry-events)"
    )
    telemetry.add_argument(
        "--format", choices=["text", "json"], default="text", dest="report_format"
    )
    return parser


def _cmd_generate(args, out: IO[str]) -> int:
    dataset = generate_dataset(SyntheticNmdConfig(seed=args.seed))
    if args.scale > 1:
        dataset = scale_rccs(dataset, args.scale)
    save_dataset(dataset, args.out)
    print(json.dumps(dataset.statistics()), file=out)
    return 0


def _cmd_fit(args, out: IO[str], context: ExecutionContext) -> int:
    dataset = load_dataset(args.data)
    splits = split_dataset(dataset, seed=args.split_seed)
    if args.optimize:
        optimizer = PipelineOptimizer(
            dataset,
            splits,
            base_config=PipelineConfig(window_pct=args.window),
            context=context,
        )
        report = optimizer.run()
        config = report.config
        print(json.dumps({"optimized": config.describe()}), file=out)
    else:
        config = paper_final_config(window_pct=args.window)
    estimator = DomdEstimator(config, context=context).fit(dataset, splits.train_ids)
    save_estimator(estimator, args.out)
    metrics = estimator.evaluate(splits.test_ids)["average"]
    print(json.dumps({"saved": args.out, "test_metrics": metrics}), file=out)
    return 0


def _cmd_query(args, out: IO[str], context: ExecutionContext) -> int:
    dataset = load_dataset(args.data)
    estimator = load_estimator(args.model, dataset, context=context)
    service = DomdService(estimator)
    request = {"type": "domd_query", "avail_ids": args.avail}
    if args.t_star is not None:
        request["t_star"] = args.t_star
    else:
        request["date"] = args.date
    response = service.handle(request)
    print(json.dumps(response), file=out)
    if response["ok"] and args.explain:
        for item in response["result"]:
            explain = service.handle(
                {
                    "type": "explain",
                    "avail_id": item["avail_id"],
                    "t_star": item["t_star"],
                }
            )
            print(json.dumps(explain), file=out)
    return 0 if response["ok"] else 1


def _cmd_evaluate(args, out: IO[str], context: ExecutionContext) -> int:
    dataset = load_dataset(args.data)
    estimator = load_estimator(args.model, dataset, context=context)
    splits = split_dataset(dataset, seed=args.split_seed)
    metrics = estimator.evaluate(splits.test_ids)
    print(json.dumps(metrics), file=out)
    return 0


def _cmd_serve(args, out: IO[str], stdin: IO[str], context: ExecutionContext) -> int:
    dataset = load_dataset(args.data)
    estimator = load_estimator(args.model, dataset, context=context)
    service = DomdService(estimator)
    for line in stdin:
        line = line.strip()
        if not line:
            continue
        try:
            request = json.loads(line)
        except json.JSONDecodeError as exc:
            print(
                json.dumps(
                    {"ok": False, "error": {"code": "bad_json", "message": str(exc)}}
                ),
                file=out,
                flush=True,
            )
            continue
        print(json.dumps(service.handle(request)), file=out, flush=True)
    return 0


def _cmd_telemetry(args, out: IO[str]) -> int:
    events = load_events(args.events)
    if args.report_format == "json":
        from repro.runtime.telemetry.exporters import (
            histograms_from_events,
            reconstruct_traces,
        )
        from repro.runtime.telemetry.events import counters_from_events

        payload = {
            "traces": reconstruct_traces(events),
            "histograms": {
                name: histogram.summary()
                for name, histogram in sorted(histograms_from_events(events).items())
            },
            "counters": counters_from_events(events),
        }
        print(json.dumps(payload), file=out)
    else:
        print(render_report(events), file=out)
    return 0


def main(
    argv: list[str] | None = None,
    out: IO[str] | None = None,
    stdin: IO[str] | None = None,
    err: IO[str] | None = None,
) -> int:
    """CLI entrypoint; returns an exit code."""
    out = out or sys.stdout
    stdin = stdin or sys.stdin
    err = err or sys.stderr
    parser = _build_parser()
    args = parser.parse_args(argv)
    context = ExecutionContext()
    if args.telemetry_events:
        context.telemetry.add_sink(JsonlEventLog(args.telemetry_events))
    code: int
    try:
        if args.command == "generate":
            code = _cmd_generate(args, out)
        elif args.command == "fit":
            code = _cmd_fit(args, out, context)
        elif args.command == "query":
            code = _cmd_query(args, out, context)
        elif args.command == "evaluate":
            code = _cmd_evaluate(args, out, context)
        elif args.command == "serve":
            code = _cmd_serve(args, out, stdin, context)
        elif args.command == "telemetry":
            code = _cmd_telemetry(args, out)
        else:
            raise AssertionError("unreachable")
    except ReproError as exc:
        print(json.dumps({"ok": False, "error": {"code": "domain_error", "message": str(exc)}}), file=out)
        code = 1
    except FileNotFoundError as exc:
        print(json.dumps({"ok": False, "error": {"code": "not_found", "message": str(exc)}}), file=out)
        code = 1
    except BrokenPipeError:
        # Downstream consumer closed early (`repro telemetry report | head`);
        # silence the interpreter-exit flush of the dead descriptor too.
        try:
            os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        except (OSError, ValueError):
            pass
        code = 0
    finally:
        context.telemetry.close()
    if args.trace or args.trace_file:
        report = context.report(meta={"command": args.command})
        payload = json.dumps({"trace": report.as_dict()})
        if args.trace_file:
            Path(args.trace_file).write_text(payload + "\n", encoding="utf-8")
        if args.trace:
            # stderr, so command stdout stays clean for jq / redirection
            print(payload, file=err)
    return code


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
