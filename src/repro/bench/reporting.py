"""Plain-text and JSON reporting for benchmark outputs.

Every benchmark regenerating a paper table/figure writes its rows both to
stdout and to ``benchmarks/results/<experiment>.txt`` so the artefacts
survive pytest's output capturing.  Benchmarks that track machine-speed
numbers additionally emit ``BENCH_<experiment>.json`` metric files; the
suite-level regression guard (``benchmarks/conftest.py``) compares those
against the last committed baseline and warns on large slowdowns.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Sequence

#: Default directory for benchmark artefacts (created on demand).
RESULTS_DIR = Path(__file__).resolve().parents[3] / "benchmarks" / "results"


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """Fixed-width text table (markdown-ish, survives any pager)."""
    def render(value: Any) -> str:
        if isinstance(value, float):
            return f"{value:.4g}"
        return str(value)

    rendered = [[render(v) for v in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rendered)) if rendered else len(headers[i])
        for i in range(len(headers))
    ]
    def line(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    separator = "-+-".join("-" * w for w in widths)
    out = [line(list(headers)), separator]
    out.extend(line(r) for r in rendered)
    return "\n".join(out)


def emit_report(name: str, title: str, text: str, directory: Path | None = None) -> Path:
    """Print a report block and persist it under benchmarks/results/."""
    directory = directory or RESULTS_DIR
    directory.mkdir(parents=True, exist_ok=True)
    block = f"== {title} ==\n{text}\n"
    print("\n" + block)
    path = directory / f"{name}.txt"
    path.write_text(block, encoding="utf-8")
    return path


def emit_json(
    name: str, metrics: dict[str, float], directory: Path | None = None
) -> Path:
    """Persist a benchmark's scalar metrics as ``BENCH_<name>.json``.

    ``metrics`` maps flat metric names (e.g. ``"build.avl.20x"``) to
    seconds; the file is the input of :func:`compare_bench_metrics`.
    """
    directory = directory or RESULTS_DIR
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"BENCH_{name}.json"
    payload = {"name": name, "metrics": {k: float(v) for k, v in sorted(metrics.items())}}
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return path


@dataclass(frozen=True)
class BenchDelta:
    """One metric's change versus the committed baseline."""

    key: str
    before: float
    after: float
    kind: str  # "regression" | "improvement"

    @property
    def pct(self) -> float:
        return (self.after - self.before) / self.before * 100.0

    def message(self) -> str:
        return (
            f"{self.key}: {self.before:.4f}s -> {self.after:.4f}s "
            f"({self.pct:+.0f}%)"
        )


def compare_bench_metrics_detailed(
    baseline: dict[str, Any], current: dict[str, Any], threshold: float = 0.25
) -> list[BenchDelta]:
    """Metrics that moved versus ``baseline`` by more than ``threshold``.

    Both arguments are parsed ``BENCH_*.json`` payloads (or bare
    ``{"metrics": {...}}`` dicts).  Only metrics present in both are
    compared; timing noise below ``min_seconds`` of 1 ms is ignored so
    micro-benchmarks do not trip the guard on scheduler jitter.
    Slowdowns come back as ``kind="regression"``; speedups past the same
    relative threshold as ``kind="improvement"`` — a stale-baseline
    signal (the committed numbers undersell the current code and should
    be refreshed).
    """
    old = baseline.get("metrics", baseline)
    new = current.get("metrics", current)
    min_seconds = 1e-3
    deltas: list[BenchDelta] = []
    for key in sorted(set(old) & set(new)):
        before, after = float(old[key]), float(new[key])
        if before < min_seconds and after < min_seconds:
            continue
        if before <= 0:
            continue
        relative = (after - before) / before
        if relative > threshold:
            deltas.append(BenchDelta(key, before, after, "regression"))
        elif relative < -threshold:
            deltas.append(BenchDelta(key, before, after, "improvement"))
    return deltas


def compare_bench_metrics(
    baseline: dict[str, Any], current: dict[str, Any], threshold: float = 0.25
) -> list[str]:
    """Regression messages for metrics slower than ``baseline`` by > threshold.

    The regressions-only string view of
    :func:`compare_bench_metrics_detailed`, kept for callers that treat
    any returned message as a failure signal.
    """
    return [
        delta.message()
        for delta in compare_bench_metrics_detailed(baseline, current, threshold)
        if delta.kind == "regression"
    ]
