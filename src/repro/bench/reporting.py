"""Plain-text reporting for benchmark outputs.

Every benchmark regenerating a paper table/figure writes its rows both to
stdout and to ``benchmarks/results/<experiment>.txt`` so the artefacts
survive pytest's output capturing.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Sequence

#: Default directory for benchmark artefacts (created on demand).
RESULTS_DIR = Path(__file__).resolve().parents[3] / "benchmarks" / "results"


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """Fixed-width text table (markdown-ish, survives any pager)."""
    def render(value: Any) -> str:
        if isinstance(value, float):
            return f"{value:.4g}"
        return str(value)

    rendered = [[render(v) for v in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rendered)) if rendered else len(headers[i])
        for i in range(len(headers))
    ]
    def line(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    separator = "-+-".join("-" * w for w in widths)
    out = [line(list(headers)), separator]
    out.extend(line(r) for r in rendered)
    return "\n".join(out)


def emit_report(name: str, title: str, text: str, directory: Path | None = None) -> Path:
    """Print a report block and persist it under benchmarks/results/."""
    directory = directory or RESULTS_DIR
    directory.mkdir(parents=True, exist_ok=True)
    block = f"== {title} ==\n{text}\n"
    print("\n" + block)
    path = directory / f"{name}.txt"
    path.write_text(block, encoding="utf-8")
    return path
