"""Experiment-harness utilities shared by the benchmark scripts."""

from repro.bench.reporting import (
    BenchDelta,
    compare_bench_metrics,
    compare_bench_metrics_detailed,
    emit_json,
    emit_report,
    format_table,
)
from repro.bench.workloads import (
    SCALING_FACTORS,
    TIMELINE_10PCT,
    calibrate_planner,
    logical_rcc_arrays,
    scaled_dataset,
    sweep_status_queries,
)

__all__ = [
    "BenchDelta",
    "compare_bench_metrics",
    "compare_bench_metrics_detailed",
    "emit_json",
    "emit_report",
    "format_table",
    "SCALING_FACTORS",
    "TIMELINE_10PCT",
    "calibrate_planner",
    "logical_rcc_arrays",
    "scaled_dataset",
    "sweep_status_queries",
]
