"""Workload builders for the scalability benchmarks (Section 5.1)."""

from __future__ import annotations

import numpy as np

from repro.data.scaling import scale_rccs
from repro.data.schema import NavyMaintenanceDataset
from repro.index.status_query import StatusQuery, StatusQueryEngine
from repro.runtime import ExecutionContext, QueryPlanner, WorkloadSpec, ensure_context
from repro.table.table import ColumnTable

#: The paper's RCC scaling factors (Figure 5 / Table 6).
SCALING_FACTORS = (1, 5, 10, 15, 20)

#: The paper's 10%-window logical timeline.
TIMELINE_10PCT = [float(t) for t in range(0, 101, 10)]

_scaled_cache: dict[tuple[int, int], NavyMaintenanceDataset] = {}
_array_cache: dict[tuple[int, int], tuple[np.ndarray, np.ndarray, np.ndarray, ColumnTable]] = {}


def scaled_dataset(dataset: NavyMaintenanceDataset, factor: int) -> NavyMaintenanceDataset:
    """x-fold scaled dataset, cached per (seed, factor)."""
    key = (dataset.seed or 0, factor)
    if key not in _scaled_cache:
        _scaled_cache[key] = scale_rccs(dataset, factor)
    return _scaled_cache[key]


def logical_rcc_arrays(
    dataset: NavyMaintenanceDataset, factor: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray, ColumnTable]:
    """(t_start, t_end, row ids, engine-ready RCC table) at a scale factor."""
    key = (dataset.seed or 0, factor)
    if key not in _array_cache:
        scaled = scaled_dataset(dataset, factor)
        rccs = scaled.rccs_with_logical_times()
        starts = np.asarray(rccs["t_start"], dtype=np.float64)
        ends = np.asarray(rccs["t_end"], dtype=np.float64)
        ids = np.arange(len(starts), dtype=np.int64)
        engine_table = rccs.select(
            ["rcc_type", "swlin", "t_start", "t_end", "amount", "avail_id"]
        )
        _array_cache[key] = (starts, ends, ids, engine_table)
    return _array_cache[key]


def sweep_status_queries(
    engine: StatusQueryEngine,
    t_stars: list[float] | None = None,
    incremental: bool = True,
) -> float:
    """Run a full timeline sweep; returns elapsed seconds.

    Timing flows through the engine's context sink (span
    ``bench.sweep``) rather than an ad-hoc clock read.
    """
    t_stars = t_stars or TIMELINE_10PCT
    with engine.context.metrics.span("bench.sweep") as span:
        engine.execute_sweep(t_stars, incremental=incremental)
    return span.seconds


def calibrate_planner(
    dataset: NavyMaintenanceDataset,
    factor: int = 1,
    t_stars: list[float] | None = None,
    context: ExecutionContext | None = None,
) -> tuple[QueryPlanner, dict[str, dict[str, float]]]:
    """Re-fit the planner's cost constants on the current machine.

    Per backend at ``factor``-fold RCC scale, the build phase (index
    construction) and the query phase (timeline sweep with the group-
    assignment cache already warm) are timed *separately* and each is
    compared against its own modelled component; the backend's build
    constant is rescaled by the build ratio and its ``query_*``
    constants by the query ratio (insert constants are untouched — this
    probe performs no ingestion).  Fitting per phase keeps a cost that
    the model does not attribute to one phase — e.g. the backend-
    independent group-coding pass — from inflating the cheap backends'
    constants across the board, which is what a single uniform rescale
    does.

    Returns ``(calibrated planner, per-backend measurements)`` where
    each measurement row holds the doctor-report keys ``measured`` /
    ``modelled`` / ``ratio`` (whole run) plus the per-phase
    ``build_ratio`` / ``query_ratio`` actually used for the re-fit.
    """
    from dataclasses import replace

    context = ensure_context(context)
    t_stars = t_stars or TIMELINE_10PCT
    _, _, _, engine_table = logical_rcc_arrays(dataset, factor)
    spec = WorkloadSpec(
        n_rccs=engine_table.n_rows, n_timestamps=len(t_stars), mode="sweep"
    )
    planner = context.planner
    measurements: dict[str, dict[str, float]] = {}
    scaled_costs = {}
    for backend in planner.registry.names():
        with context.metrics.span(f"calibrate.build.{backend}") as build_span:
            engine = StatusQueryEngine(engine_table, design=backend, context=context)
        # warm the grouping cache: group coding is shared by every
        # backend and not part of the per-backend cost model
        engine._group_assignment(StatusQuery(t_stars[0]))
        with context.metrics.span(f"calibrate.query.{backend}") as query_span:
            sweep_status_queries(engine, t_stars)
        components = planner.estimate_components(backend, spec)
        build_ratio = (
            build_span.seconds / components["build"]
            if components["build"] > 0
            else 1.0
        )
        query_ratio = (
            query_span.seconds / components["query"]
            if components["query"] > 0
            else 1.0
        )
        measured = build_span.seconds + query_span.seconds
        modelled = components["build"] + components["query"]
        measurements[backend] = {
            "measured": measured,
            "modelled": modelled,
            "ratio": measured / modelled if modelled > 0 else 1.0,
            "build_ratio": build_ratio,
            "query_ratio": query_ratio,
        }
        costs = planner.costs[backend]
        scaled_costs[backend] = replace(
            costs,
            build_per_event=costs.build_per_event * build_ratio,
            query_base=costs.query_base * query_ratio,
            query_per_log=costs.query_per_log * query_ratio,
            query_per_scan=costs.query_per_scan * query_ratio,
            query_per_result=costs.query_per_result * query_ratio,
        )
    return planner.with_costs(**scaled_costs), measurements
