"""Workload builders for the scalability benchmarks (Section 5.1)."""

from __future__ import annotations

import numpy as np

from repro.data.scaling import scale_rccs
from repro.data.schema import NavyMaintenanceDataset
from repro.index.status_query import StatusQueryEngine
from repro.runtime import ExecutionContext, QueryPlanner, WorkloadSpec, ensure_context
from repro.table.table import ColumnTable

#: The paper's RCC scaling factors (Figure 5 / Table 6).
SCALING_FACTORS = (1, 5, 10, 15, 20)

#: The paper's 10%-window logical timeline.
TIMELINE_10PCT = [float(t) for t in range(0, 101, 10)]

_scaled_cache: dict[tuple[int, int], NavyMaintenanceDataset] = {}
_array_cache: dict[tuple[int, int], tuple[np.ndarray, np.ndarray, np.ndarray, ColumnTable]] = {}


def scaled_dataset(dataset: NavyMaintenanceDataset, factor: int) -> NavyMaintenanceDataset:
    """x-fold scaled dataset, cached per (seed, factor)."""
    key = (dataset.seed or 0, factor)
    if key not in _scaled_cache:
        _scaled_cache[key] = scale_rccs(dataset, factor)
    return _scaled_cache[key]


def logical_rcc_arrays(
    dataset: NavyMaintenanceDataset, factor: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray, ColumnTable]:
    """(t_start, t_end, row ids, engine-ready RCC table) at a scale factor."""
    key = (dataset.seed or 0, factor)
    if key not in _array_cache:
        scaled = scaled_dataset(dataset, factor)
        rccs = scaled.rccs_with_logical_times()
        starts = np.asarray(rccs["t_start"], dtype=np.float64)
        ends = np.asarray(rccs["t_end"], dtype=np.float64)
        ids = np.arange(len(starts), dtype=np.int64)
        engine_table = rccs.select(
            ["rcc_type", "swlin", "t_start", "t_end", "amount", "avail_id"]
        )
        _array_cache[key] = (starts, ends, ids, engine_table)
    return _array_cache[key]


def sweep_status_queries(
    engine: StatusQueryEngine,
    t_stars: list[float] | None = None,
    incremental: bool = True,
) -> float:
    """Run a full timeline sweep; returns elapsed seconds.

    Timing flows through the engine's context sink (span
    ``bench.sweep``) rather than an ad-hoc clock read.
    """
    t_stars = t_stars or TIMELINE_10PCT
    with engine.context.metrics.span("bench.sweep") as span:
        engine.execute_sweep(t_stars, incremental=incremental)
    return span.seconds


def calibrate_planner(
    dataset: NavyMaintenanceDataset,
    factor: int = 1,
    t_stars: list[float] | None = None,
    context: ExecutionContext | None = None,
) -> tuple[QueryPlanner, dict[str, dict[str, float]]]:
    """Re-fit the planner's cost constants on the current machine.

    Runs one build + timeline sweep per backend at ``factor``-fold RCC
    scale, compares measured seconds against the planner's modelled
    cost, and rescales each backend's constants by the observed ratio.
    Returns ``(calibrated planner, per-backend measurements)`` where
    each measurement row holds ``measured`` / ``modelled`` / ``ratio``.
    """
    context = ensure_context(context)
    t_stars = t_stars or TIMELINE_10PCT
    _, _, _, engine_table = logical_rcc_arrays(dataset, factor)
    spec = WorkloadSpec(
        n_rccs=engine_table.n_rows, n_timestamps=len(t_stars), mode="sweep"
    )
    planner = context.planner
    measurements: dict[str, dict[str, float]] = {}
    scaled_costs = {}
    for backend in planner.registry.names():
        with context.metrics.span(f"calibrate.{backend}") as span:
            engine = StatusQueryEngine(engine_table, design=backend, context=context)
            sweep_status_queries(engine, t_stars)
        measured = span.seconds
        modelled = planner.estimate(backend, spec)
        ratio = measured / modelled if modelled > 0 else 1.0
        measurements[backend] = {
            "measured": measured,
            "modelled": modelled,
            "ratio": ratio,
        }
        scaled_costs[backend] = QueryPlanner.scale_costs(
            planner.costs[backend], ratio
        )
    return planner.with_costs(**scaled_costs), measurements
