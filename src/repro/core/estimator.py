"""DoMD query answering (Problem 1) and per-avail explanations.

:class:`DomdEstimator` is the deployable surface of the framework: fit it
on a dataset (optionally restricted to a training population), then ask
for delay estimates of any avail at any physical date or logical time.
A query at logical time ``t*`` returns the per-window estimates
``d_hat(0), d_hat(x), ..., d_hat(t*)`` plus the fused estimate at each
step — exactly the output shape Problem 1 specifies.

For interpretability (a hard requirement of the Navy deployment), the
estimator surfaces the top-k contributing features of any estimate via
the base model's additive per-sample attributions.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field

import numpy as np

from repro.core.config import PipelineConfig, paper_final_config
from repro.core.timeline import LogicalTimeline
from repro.core.timeline_models import TimelineModelSet
from repro.data.schema import NavyMaintenanceDataset
from repro.errors import ConfigurationError, NotFittedError
from repro.features.static import static_features_for
from repro.features.transform import StatusFeatureExtractor
from repro.ml.metrics import metric_suite
from repro.runtime import ExecutionContext, check_deadline, ensure_context


@dataclass(frozen=True)
class DomdEstimate:
    """DoMD query answer for one avail."""

    avail_id: int
    t_star: float
    window_t_stars: np.ndarray  # boundaries 0, x, ..., <= t*
    window_estimates: np.ndarray  # raw per-window model outputs
    fused_estimates: np.ndarray  # progressively fused estimates
    current_estimate: float  # fused estimate at the last window

    def as_dict(self) -> dict:
        return {
            "avail_id": self.avail_id,
            "t_star": self.t_star,
            "windows": [float(t) for t in self.window_t_stars],
            "estimates": [float(v) for v in self.window_estimates],
            "fused": [float(v) for v in self.fused_estimates],
            "current": self.current_estimate,
        }


@dataclass(frozen=True)
class FeatureContribution:
    """One feature's additive contribution to an estimate."""

    name: str
    contribution: float
    value: float


@dataclass
class DomdEstimator:
    """Fit-once, query-anytime DoMD estimation service."""

    config: PipelineConfig = field(default_factory=paper_final_config)
    context: ExecutionContext | None = None

    def __post_init__(self) -> None:
        self.timeline = LogicalTimeline(self.config.window_pct)
        self.context = ensure_context(
            self.context, seed=self.config.seed, config=self.config
        )
        self._model_set: TimelineModelSet | None = None
        self._tensor = None
        self._X_static = None
        self._avail_ids: np.ndarray | None = None
        self._dataset: NavyMaintenanceDataset | None = None
        self._static_vocab: dict[str, dict[str, int]] | None = None
        self._features_pending = False
        self._bind_lock = threading.Lock()
        self._provenance: dict[str, str] | None = None

    # ------------------------------------------------------------------
    # feature binding (eager after fit(); lazy after serve())
    # ------------------------------------------------------------------
    @property
    def _tensor(self):
        if self._tensor_data is None and self._features_pending:
            self._materialize_features()
        return self._tensor_data

    @_tensor.setter
    def _tensor(self, value) -> None:
        self._tensor_data = value

    @property
    def _X_static(self):
        if self._X_static_data is None and self._features_pending:
            self._materialize_features()
        return self._X_static_data

    @_X_static.setter
    def _X_static(self, value) -> None:
        self._X_static_data = value

    def _materialize_features(self) -> None:
        """Extract features for the bound dataset (the lazy serve path).

        Runs inside whatever span/trace is currently open — a service
        request that first touches a freshly served snapshot therefore
        carries the extraction and Status Query spans in its own trace.

        Double-checked under ``_bind_lock`` so that concurrent first
        queries against a freshly served estimator bind exactly once;
        ``_features_pending`` is cleared *last* — after every feature
        attribute is assigned — so an unlocked reader never observes a
        half-bound estimator.  The extraction itself is additionally
        de-duplicated across estimators by the shared artifact cache's
        single-flight :meth:`~repro.runtime.cache.ArtifactCache.get_or_build`.
        """
        with self._bind_lock:
            if not self._features_pending:
                return
            assert self._dataset is not None and self.context is not None
            self._tensor_data = StatusFeatureExtractor(
                self._dataset, self.timeline.t_stars, context=self.context
            ).extract()
            X_static, self._static_names, self._avail_ids = static_features_for(
                self._dataset, vocab=self._static_vocab
            )
            self._X_static_data = X_static
            self._features_pending = False

    # ------------------------------------------------------------------
    def fit(
        self,
        dataset: NavyMaintenanceDataset,
        train_ids: np.ndarray | None = None,
    ) -> "DomdEstimator":
        """Extract features for the whole dataset and fit window models.

        Parameters
        ----------
        dataset:
            NMD snapshot; features are computed for *every* avail so any
            of them can be queried afterwards.
        train_ids:
            Avail ids used for model fitting (default: all closed
            avails).  Ongoing avails can never be trained on (no label).
        """
        assert self.context is not None
        self._dataset = dataset
        self._tensor = StatusFeatureExtractor(
            dataset, self.timeline.t_stars, context=self.context
        ).extract()
        from repro.features.static import static_vocab

        self._static_vocab = static_vocab(dataset.avails)
        X_static, self._static_names, static_ids = static_features_for(
            dataset, vocab=self._static_vocab
        )
        self._X_static = X_static
        self._avail_ids = static_ids

        closed = dataset.closed_avails()
        closed_ids = set(int(a) for a in closed["avail_id"])
        if train_ids is None:
            train_ids = np.array(sorted(closed_ids), dtype=np.int64)
        else:
            train_ids = np.asarray(train_ids, dtype=np.int64)
            not_closed = [int(a) for a in train_ids if int(a) not in closed_ids]
            if not_closed:
                raise ConfigurationError(
                    f"cannot train on ongoing/unknown avails: {not_closed[:5]}"
                )
        delay_by_id = {
            int(a): float(d)
            for a, d in zip(dataset.avails["avail_id"], dataset.avails["delay"])
        }
        rows = self._tensor.rows_for(train_ids)
        y = np.array([delay_by_id[int(a)] for a in train_ids])
        with self.context.span("fit"):
            self._model_set = TimelineModelSet(
                config=self.config,
                dyn_feature_names=list(self._tensor.feature_names),
                static_feature_names=self._static_names,
                context=self.context,
            ).fit(X_static[rows], self._tensor.values[rows], y)
        return self

    def _check_fitted(self) -> None:
        if self._model_set is None:
            raise NotFittedError("DomdEstimator is not fitted")

    def provenance(self) -> dict[str, str]:
        """Content hashes pinning exactly what this estimator serves from.

        * ``model_hash`` — fingerprint of the fitted model set's
          persistence payload (what :func:`~repro.persistence.save_estimator`
          would write), cached on the *shared* model-set object so
          rebound serve-path estimators reuse it.
        * ``config_hash`` — fingerprint of the pipeline configuration.
        * ``feature_key`` — the feature tensor's artifact-cache key
          (dataset fingerprint + grid/timeline fingerprint), i.e. the
          data vintage the features were extracted from.

        Memoised per instance: :meth:`serve` returns a fresh estimator,
        so a dataset rebind naturally invalidates ``feature_key``.
        """
        if self._provenance is not None:
            return self._provenance
        self._check_fitted()
        assert self._model_set is not None and self._dataset is not None
        # Lazy import: persistence imports this module.
        from repro.persistence import _config_to_payload, model_set_to_payload
        from repro.runtime.cache import fingerprint_of

        model_hash = getattr(self._model_set, "_content_hash", None)
        if model_hash is None:
            model_hash = fingerprint_of(
                json.dumps(model_set_to_payload(self._model_set), sort_keys=True)
            )
            self._model_set._content_hash = model_hash
        config_hash = fingerprint_of(
            json.dumps(_config_to_payload(self.config), sort_keys=True)
        )
        feature_key = "/".join(
            StatusFeatureExtractor(
                self._dataset, self.timeline.t_stars, context=self.context
            ).cache_key()
        )
        self._provenance = {
            "model_hash": model_hash,
            "config_hash": config_hash,
            "feature_key": feature_key,
        }
        return self._provenance

    def serve(self, dataset: NavyMaintenanceDataset) -> "DomdEstimator":
        """Bind the fitted models to a *new* dataset snapshot.

        Returns a fresh estimator sharing this one's fitted window models
        (no retraining) with features re-extracted from ``dataset`` —
        the nightly-refresh path of the deployed engine, and the basis of
        counterfactual what-if queries on modified snapshots.

        The binding is **lazy**: extraction is deferred to the first
        query against the served estimator (and memoised by the shared
        artifact cache), so rebinding is instantaneous and the first
        request's trace records the extraction cost where it is paid.
        """
        self._check_fitted()
        served = DomdEstimator(self.config, context=self.context)
        served._dataset = dataset
        served._model_set = self._model_set
        # The fit-time categorical vocabulary travels with the models so
        # a rebind (or a shard slice) encodes exactly like the fit set.
        served._static_vocab = self._static_vocab
        served._features_pending = True
        return served

    # ------------------------------------------------------------------
    def logical_time_of(self, avail_id: int, physical_day: float) -> float:
        """Convert a physical day to an avail's logical time."""
        self._check_fitted()
        assert self._dataset is not None
        avail = self._dataset.avail(int(avail_id))
        return avail.logical_time_of(physical_day)

    def query(
        self,
        avail_ids: np.ndarray | list[int],
        t_star: float | None = None,
        physical_day: float | None = None,
    ) -> list[DomdEstimate]:
        """Answer a DoMD query (Problem 1).

        Exactly one of ``t_star`` (shared logical time) or
        ``physical_day`` (converted per avail) must be given.
        """
        self._check_fitted()
        assert self.context is not None
        if (t_star is None) == (physical_day is None):
            raise ConfigurationError("provide exactly one of t_star / physical_day")
        self.context.counter("estimator.queries")
        self.context.counter("estimator.queried_avails", len(avail_ids))
        estimates = []
        with self.context.span("query"):
            for avail_id in avail_ids:
                # Cooperative cancellation: a pooled request checks its
                # deadline once per avail, so cancellation lands within
                # one avail's worth of work.
                check_deadline("estimator.query")
                avail_t = (
                    float(t_star)
                    if t_star is not None
                    else self.logical_time_of(int(avail_id), float(physical_day))
                )
                if avail_t < 0:
                    raise ConfigurationError(
                        f"avail {avail_id}: queried before its actual start (t*={avail_t:.1f})"
                    )
                estimates.append(self._estimate_one(int(avail_id), avail_t))
        return estimates

    def _estimate_one(self, avail_id: int, t_star: float) -> DomdEstimate:
        assert self._model_set is not None and self._tensor is not None
        assert self._X_static is not None
        assert self.context is not None
        row = self._tensor.rows_for(np.array([avail_id]))
        X_static = self._X_static[row]
        last_window = self.timeline.window_index(t_star)
        raw = np.empty(last_window + 1)
        with self.context.span("predict"):
            for ti in range(last_window + 1):
                X_dyn = self._tensor.values[row, ti, :]
                raw[ti] = self._model_set.predict_window(X_static, X_dyn, ti)[0]
        from repro.core.fusion import fuse_progressive

        with self.context.span("fuse"):
            fused = fuse_progressive(raw[None, :], self.config.fusion)[0]
        telemetry = self.context.metrics.telemetry
        if telemetry is not None:
            # Live prediction-distribution drift per logical window: a
            # shift here flags feature/population drift even before any
            # ground-truth delay is known.
            telemetry.drift_observe("prediction", last_window, float(fused[-1]))
        return DomdEstimate(
            avail_id=avail_id,
            t_star=t_star,
            window_t_stars=self.timeline.t_stars[: last_window + 1].copy(),
            window_estimates=raw,
            fused_estimates=fused,
            current_estimate=float(fused[-1]),
        )

    # ------------------------------------------------------------------
    def explain(
        self, avail_id: int, t_star: float, top: int = 5
    ) -> list[FeatureContribution]:
        """Top contributing features for one avail's estimate at ``t*``.

        Contributions come from the window model at ``t*``'s boundary
        (additive Saabas attributions for GBM, centered linear terms for
        Elastic-Net); the bias term is excluded from the ranking.
        """
        self._check_fitted()
        assert self._model_set is not None and self._tensor is not None
        assert self._X_static is not None
        if top < 1:
            raise ConfigurationError(f"top must be >= 1, got {top}")
        row = self._tensor.rows_for(np.array([int(avail_id)]))
        window_index = self.timeline.window_index(t_star)
        X_static = self._X_static[row]
        X_dyn = self._tensor.values[row, window_index, :]
        contributions, names = self._model_set.contributions_at(
            X_static, X_dyn, window_index
        )
        window = self._model_set.windows[window_index]
        design, _ = self._model_set._design(
            X_static,
            X_dyn,
            window.selected,
            self._model_set._base_model.predict(X_static)
            if self._model_set._base_model is not None
            else None,
        )
        per_feature = contributions[0, :-1]
        order = np.argsort(np.abs(per_feature))[::-1][:top]
        return [
            FeatureContribution(
                name=names[i],
                contribution=float(per_feature[i]),
                value=float(design[0, i]),
            )
            for i in order
        ]

    # ------------------------------------------------------------------
    def evaluate(self, avail_ids: np.ndarray) -> dict[str, dict[str, float]]:
        """Table-7-style metrics of the fused estimate on closed avails.

        Returns ``{"t=<boundary>": suite, ..., "average": suite}``.
        """
        self._check_fitted()
        assert self._dataset is not None and self._tensor is not None
        assert self._X_static is not None and self._model_set is not None
        avail_ids = np.asarray(avail_ids, dtype=np.int64)
        delay_by_id = {
            int(a): float(d)
            for a, d in zip(
                self._dataset.avails["avail_id"], self._dataset.avails["delay"]
            )
        }
        y = np.array([delay_by_id[int(a)] for a in avail_ids])
        if np.any(np.isnan(y)):
            raise ConfigurationError("evaluate() requires closed avails only")
        rows = self._tensor.rows_for(avail_ids)
        assert self.context is not None
        check_deadline("estimator.evaluate")
        with self.context.span("evaluate"):
            fused = self._model_set.predict_fused(
                self._X_static[rows], self._tensor.values[rows]
            )
        telemetry = self.context.metrics.telemetry
        out: dict[str, dict[str, float]] = {}
        for ti, boundary in enumerate(self.timeline.t_stars):
            out[f"t={boundary:g}"] = metric_suite(y, fused[:, ti])
            if telemetry is not None:
                # Residual drift per logical window (Problem 2 models):
                # the first evaluation freezes the baseline; later ones
                # are checked against it and flagged on a mean shift.
                telemetry.drift_observe_many("residual", ti, y - fused[:, ti])
        keys = next(iter(out.values())).keys()
        out["average"] = {
            key: float(np.mean([suite[key] for suite in out.values()])) for key in keys
        }
        return out
