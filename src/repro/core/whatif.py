"""Counterfactual ("what-if") analysis on DoMD estimates.

Planners reason about interventions: *if we discover N more growth items
tomorrow, how many delay-days does the model add?*  These helpers build a
modified dataset snapshot and re-serve the already-fitted estimator over
it — pure inference, no retraining — giving the model's sensitivity to
hypothetical contract churn.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.estimator import DomdEstimator
from repro.data.schema import NavyMaintenanceDataset
from repro.errors import ConfigurationError
from repro.index.hierarchy import RCC_TYPES
from repro.table.table import ColumnTable


def inject_rccs(
    dataset: NavyMaintenanceDataset,
    avail_id: int,
    n_new: int,
    amount_each: float,
    at_t_star: float,
    rcc_type: str = "G",
    settle_after_days: int = 45,
    seed: int = 0,
) -> NavyMaintenanceDataset:
    """Copy the dataset with ``n_new`` hypothetical RCCs on one avail.

    The new RCCs are created at logical time ``at_t_star`` of the avail,
    settle ``settle_after_days`` later, and carry lognormally jittered
    amounts around ``amount_each``.
    """
    if n_new < 1:
        raise ConfigurationError("n_new must be >= 1")
    if rcc_type not in RCC_TYPES:
        raise ConfigurationError(f"rcc_type must be one of {RCC_TYPES}")
    if amount_each <= 0:
        raise ConfigurationError("amount_each must be positive")
    avail = dataset.avail(int(avail_id))
    rng = np.random.default_rng(seed)
    create_day = int(avail.act_start + at_t_star / 100.0 * avail.planned_duration)
    next_id = int(dataset.rccs["rcc_id"].max()) + 1
    new = ColumnTable(
        {
            "rcc_id": np.arange(next_id, next_id + n_new, dtype=np.int64),
            "avail_id": np.full(n_new, int(avail_id), dtype=np.int64),
            "rcc_type": np.array([rcc_type] * n_new, dtype=object),
            "swlin": np.array(
                [
                    f"{rng.integers(1, 10)}{rng.integers(0, 100):02d}-"
                    f"{rng.integers(0, 100):02d}-{rng.integers(0, 1000):03d}"
                    for _ in range(n_new)
                ],
                dtype=object,
            ),
            "create_date": np.full(n_new, create_day, dtype=np.int64),
            "settle_date": np.full(
                n_new, create_day + max(settle_after_days, 1), dtype=np.int64
            ),
            "status": np.array(["settled"] * n_new, dtype=object),
            "amount": rng.lognormal(np.log(amount_each), 0.4, n_new).round(2),
        }
    )
    return NavyMaintenanceDataset(
        ships=dataset.ships,
        avails=dataset.avails,
        rccs=ColumnTable.concat([dataset.rccs, new]),
        seed=dataset.seed,
        scaling_factor=dataset.scaling_factor,
    )


@dataclass(frozen=True)
class WhatIfResult:
    """Baseline vs counterfactual estimate for one intervention."""

    avail_id: int
    t_star: float
    baseline: float
    counterfactual: float
    n_new: int
    amount_each: float
    rcc_type: str

    @property
    def delta_days(self) -> float:
        return self.counterfactual - self.baseline

    @property
    def delta_cost(self) -> float:
        """Delta priced at the paper's $250k per delay-day."""
        return self.delta_days * 250_000.0


def surge_analysis(
    estimator: DomdEstimator,
    avail_id: int,
    t_star: float,
    scenarios: list[tuple[int, float]],
    rcc_type: str = "G",
    seed: int = 0,
) -> list[WhatIfResult]:
    """Evaluate a list of ``(n_new, amount_each)`` RCC-surge scenarios.

    Each scenario re-extracts features on the modified snapshot and
    queries the shared fitted models via :meth:`DomdEstimator.serve`.
    """
    if estimator._dataset is None:
        raise ConfigurationError("estimator must be fitted before what-if analysis")
    baseline = estimator.query([int(avail_id)], t_star=t_star)[0].current_estimate
    results = []
    for n_new, amount_each in scenarios:
        surged = inject_rccs(
            estimator._dataset,
            avail_id=int(avail_id),
            n_new=int(n_new),
            amount_each=float(amount_each),
            at_t_star=t_star,
            rcc_type=rcc_type,
            seed=seed,
        )
        counterfactual = (
            estimator.serve(surged)
            .query([int(avail_id)], t_star=t_star)[0]
            .current_estimate
        )
        results.append(
            WhatIfResult(
                avail_id=int(avail_id),
                t_star=float(t_star),
                baseline=baseline,
                counterfactual=counterfactual,
                n_new=int(n_new),
                amount_each=float(amount_each),
                rcc_type=rcc_type,
            )
        )
    return results
