"""The DoMD estimation framework (paper Sections 2, 3.2, 5.2).

Public API::

    from repro.core import (
        PipelineConfig, paper_final_config,
        PipelineOptimizer, OptimizationReport, StageResult,
        TimelineModelSet, LogicalTimeline,
        DomdEstimator, DomdEstimate, FeatureContribution,
        DomdService, ServicePool, PoolFuture,
        fuse, fuse_progressive, FUSION_METHODS,
        make_model, MODEL_FAMILIES, ARCHITECTURES,
    )
"""

from repro.core.config import ARCHITECTURES, PipelineConfig, paper_final_config
from repro.core.estimator import DomdEstimate, DomdEstimator, FeatureContribution
from repro.core.fusion import FUSION_METHODS, fuse, fuse_progressive
from repro.core.models import (
    MODEL_FAMILIES,
    BaseModelAdapter,
    GbmAdapter,
    LinearAdapter,
    make_model,
)
from repro.core.conformal import ConformalDomdEstimator, DomdInterval
from repro.core.interpret import (
    GlobalFeatureReport,
    format_sme_report,
    global_feature_report,
    window_importances,
)
from repro.core.retrain import RetrainDecision, RetrainManager
from repro.core.server import PoolFuture, ServicePool
from repro.core.service import ERROR_CODES, RETRYABLE_CODES, DomdService, error_envelope
from repro.core.pipeline import (
    DEFAULT_K_GRID,
    DEFAULT_TRIAL_COUNTS,
    STAGES,
    OptimizationReport,
    PipelineOptimizer,
    StageResult,
)
from repro.core.timeline import LogicalTimeline
from repro.core.whatif import WhatIfResult, inject_rccs, surge_analysis
from repro.core.timeline_models import STATIC_BASE_PRED, TimelineModelSet, WindowModel

__all__ = [
    "PipelineConfig",
    "paper_final_config",
    "ARCHITECTURES",
    "PipelineOptimizer",
    "OptimizationReport",
    "StageResult",
    "STAGES",
    "DEFAULT_K_GRID",
    "DEFAULT_TRIAL_COUNTS",
    "TimelineModelSet",
    "WindowModel",
    "STATIC_BASE_PRED",
    "LogicalTimeline",
    "DomdEstimator",
    "DomdService",
    "ServicePool",
    "PoolFuture",
    "error_envelope",
    "ERROR_CODES",
    "RETRYABLE_CODES",
    "RetrainManager",
    "ConformalDomdEstimator",
    "DomdInterval",
    "GlobalFeatureReport",
    "global_feature_report",
    "window_importances",
    "format_sme_report",
    "WhatIfResult",
    "inject_rccs",
    "surge_analysis",
    "RetrainDecision",
    "DomdEstimate",
    "FeatureContribution",
    "fuse",
    "fuse_progressive",
    "FUSION_METHODS",
    "make_model",
    "MODEL_FAMILIES",
    "BaseModelAdapter",
    "GbmAdapter",
    "LinearAdapter",
]
