"""Logical timeline discretisation (paper Section 2).

The planned maintenance duration is discretised into windows of width
``x``%; one model is trained per window boundary, giving
``1 + ceil(100 / x)`` models over 0..100%.  A DoMD query at logical time
``t*`` is answered by every model whose boundary does not exceed ``t*``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.dates import logical_time
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class LogicalTimeline:
    """The model grid over logical time.

    Attributes
    ----------
    window_pct:
        Window width ``x`` in percent of planned duration.
    """

    window_pct: float = 10.0
    t_stars: np.ndarray = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not 0 < self.window_pct <= 100:
            raise ConfigurationError(
                f"window_pct must be in (0, 100], got {self.window_pct}"
            )
        n_steps = int(np.ceil(100.0 / self.window_pct))
        object.__setattr__(
            self, "t_stars", np.round(np.linspace(0.0, 100.0, n_steps + 1), 6)
        )

    @property
    def n_models(self) -> int:
        """``1 + ceil(100 / x)`` — one model per window boundary."""
        return len(self.t_stars)

    def window_index(self, t_star: float) -> int:
        """Index of the last model boundary not exceeding ``t_star``.

        Values beyond 100% clamp to the final model (the paper's models
        stop at 100% of planned duration).
        """
        if t_star < 0:
            raise ConfigurationError(f"t* must be non-negative, got {t_star}")
        return int(np.searchsorted(self.t_stars, min(t_star, 100.0), side="right") - 1)

    def boundaries_upto(self, t_star: float) -> np.ndarray:
        """All model boundaries at or before ``t_star``."""
        return self.t_stars[: self.window_index(t_star) + 1]

    def logical_of(self, physical_day: float, act_start: float, planned_duration: float) -> float:
        """Physical day -> logical time for one avail (Equation 1)."""
        if planned_duration <= 0:
            raise ConfigurationError("planned duration must be positive")
        return float(logical_time(physical_day, act_start, planned_duration))
