"""Base-model adapters: one interface over GBM and Elastic-Net.

Task 3 of the paper compares model families (XGBoost vs linear
regression with Elastic-Net regularisation).  The adapters normalise
fit / predict / importances / per-sample contributions so the rest of
the pipeline is family-agnostic.
"""

from __future__ import annotations

import abc
from dataclasses import replace

import numpy as np

from repro.errors import ConfigurationError, NotFittedError
from repro.ml.gbm import GbmParams, GradientBoostedTrees
from repro.ml.linear import ElasticNet

MODEL_FAMILIES = ("gbm", "linear")


class BaseModelAdapter(abc.ABC):
    """Common interface over the base-model families."""

    family: str = "abstract"

    @abc.abstractmethod
    def fit(self, X: np.ndarray, y: np.ndarray) -> "BaseModelAdapter":
        """Fit on a design matrix."""

    @abc.abstractmethod
    def predict(self, X: np.ndarray) -> np.ndarray:
        """Point predictions."""

    @abc.abstractmethod
    def feature_importances(self) -> np.ndarray:
        """Non-negative importances, normalised to sum to 1 when possible."""

    @abc.abstractmethod
    def contributions(self, X: np.ndarray) -> np.ndarray:
        """(n, p + 1) per-sample additive contributions; last column bias.

        Rows sum to :meth:`predict`.
        """

    @abc.abstractmethod
    def clone(self) -> "BaseModelAdapter":
        """Fresh unfitted copy with identical hyperparameters."""


class GbmAdapter(BaseModelAdapter):
    """Gradient-boosted trees with a configurable robust loss."""

    family = "gbm"

    def __init__(self, params: GbmParams | None = None):
        self.params = params or GbmParams()
        self._model: GradientBoostedTrees | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "GbmAdapter":
        self._model = GradientBoostedTrees(self.params).fit(X, y)
        return self

    def _fitted(self) -> GradientBoostedTrees:
        if self._model is None:
            raise NotFittedError("GbmAdapter is not fitted")
        return self._model

    def predict(self, X: np.ndarray) -> np.ndarray:
        return self._fitted().predict(X)

    def feature_importances(self) -> np.ndarray:
        return self._fitted().feature_importances()

    def contributions(self, X: np.ndarray) -> np.ndarray:
        return self._fitted().contributions(X)

    def clone(self) -> "GbmAdapter":
        return GbmAdapter(self.params)

    def with_loss(self, loss: str, delta: float = 18.0) -> "GbmAdapter":
        """Copy with a different training loss."""
        return GbmAdapter(replace(self.params, loss=loss, huber_delta=delta))


class LinearAdapter(BaseModelAdapter):
    """Elastic-Net linear regression."""

    family = "linear"

    def __init__(self, alpha: float = 1.0, l1_ratio: float = 0.5):
        self.alpha = alpha
        self.l1_ratio = l1_ratio
        self._model: ElasticNet | None = None
        self._train_mean: np.ndarray | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LinearAdapter":
        self._model = ElasticNet(alpha=self.alpha, l1_ratio=self.l1_ratio).fit(X, y)
        self._train_mean = np.asarray(X, dtype=np.float64).mean(axis=0)
        return self

    def _fitted(self) -> ElasticNet:
        if self._model is None:
            raise NotFittedError("LinearAdapter is not fitted")
        return self._model

    def predict(self, X: np.ndarray) -> np.ndarray:
        return self._fitted().predict(X)

    def feature_importances(self) -> np.ndarray:
        coef = np.abs(self._fitted().coef_)
        total = coef.sum()
        return coef / total if total > 0 else coef

    def contributions(self, X: np.ndarray) -> np.ndarray:
        """Centered linear attributions: ``(x_j - mean_j) * coef_j``."""
        model = self._fitted()
        assert self._train_mean is not None
        X = np.asarray(X, dtype=np.float64)
        centered = X - self._train_mean
        contrib = centered * model.coef_
        bias = model.intercept_ + float(self._train_mean @ model.coef_)
        out = np.empty((len(X), X.shape[1] + 1))
        out[:, :-1] = contrib
        out[:, -1] = bias
        return out

    def clone(self) -> "LinearAdapter":
        return LinearAdapter(self.alpha, self.l1_ratio)


def make_model(
    family: str,
    loss: str = "l2",
    huber_delta: float = 18.0,
    gbm_params: GbmParams | None = None,
    alpha: float = 1.0,
    l1_ratio: float = 0.5,
) -> BaseModelAdapter:
    """Build a base-model adapter.

    For the GBM family, ``loss``/``huber_delta`` override the params'
    loss; the linear family always trains with squared loss (its
    regularisation — not its loss — is the tunable part, as in the
    paper's Elastic-Net setup).
    """
    if family == "gbm":
        params = gbm_params or GbmParams()
        params = replace(params, loss=loss, huber_delta=huber_delta)
        return GbmAdapter(params)
    if family == "linear":
        return LinearAdapter(alpha=alpha, l1_ratio=l1_ratio)
    raise ConfigurationError(
        f"unknown model family {family!r}; expected one of {MODEL_FAMILIES}"
    )
