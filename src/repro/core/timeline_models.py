"""The per-window model set: ``1 + ceil(100/x)`` supervised models.

Each window boundary ``t*`` on the logical timeline owns one model.
Every window model gets its own feature selection (applied to generated
features only — static features are always included, per Section 3.2.1)
and its own fit.  Two architectures are supported (Task 3):

* **flat** ("non-stacked"): one model per window over
  ``[static | selected dynamic]`` features.
* **stacked**: a shared *base* model is trained on static features only;
  each window model is trained on ``[selected dynamic | base prediction]``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import PipelineConfig
from repro.core.fusion import fuse_progressive
from repro.core.models import BaseModelAdapter, make_model
from repro.core.timeline import LogicalTimeline
from repro.errors import ConfigurationError, NotFittedError
from repro.features.selection import score_ranking
from repro.runtime import ExecutionContext, ensure_context

#: Name of the synthetic feature carrying the base model's prediction in
#: the stacked architecture.
STATIC_BASE_PRED = "STATIC_BASE_PRED"


@dataclass
class WindowModel:
    """One fitted model at a timeline boundary."""

    t_star: float
    selected: np.ndarray  # indices into the dynamic feature axis
    model: BaseModelAdapter
    design_names: list[str]


@dataclass
class TimelineModelSet:
    """All window models for one pipeline configuration.

    Parameters
    ----------
    config:
        Pipeline configuration (selection, family, architecture, loss...).
    dyn_feature_names:
        Names along the dynamic-feature axis of the tensor.
    static_feature_names:
        Names of the static design columns.
    selection_rankings:
        Optional precomputed full rankings (best first) per window index;
        when provided the expensive scoring step is skipped — the
        pipeline optimizer uses this to sweep ``k`` cheaply.
    context:
        Optional :class:`~repro.runtime.ExecutionContext` receiving
        ``select`` / ``fuse`` spans and fit counters.
    """

    config: PipelineConfig
    dyn_feature_names: list[str]
    static_feature_names: list[str]
    selection_rankings: list[np.ndarray] | None = None
    context: ExecutionContext | None = None
    timeline: LogicalTimeline = field(init=False)

    def __post_init__(self) -> None:
        self.timeline = LogicalTimeline(self.config.window_pct)
        self.context = ensure_context(self.context, seed=self.config.seed)
        self._windows: list[WindowModel] = []
        self._base_model: BaseModelAdapter | None = None

    # ------------------------------------------------------------------
    def _new_model(self) -> BaseModelAdapter:
        return make_model(
            self.config.model_family,
            loss=self.config.loss,
            huber_delta=self.config.huber_delta,
            gbm_params=self.config.gbm,
            alpha=self.config.linear_alpha,
            l1_ratio=self.config.linear_l1_ratio,
        )

    def fit(
        self,
        X_static: np.ndarray,
        dyn_tensor: np.ndarray,
        y: np.ndarray,
    ) -> "TimelineModelSet":
        """Fit every window model.

        Parameters
        ----------
        X_static:
            (n, n_static) static design matrix of the training avails.
        dyn_tensor:
            (n, n_windows, n_dyn) dynamic feature tensor slice for the
            training avails, aligned with ``self.timeline.t_stars``.
        y:
            Delay targets.
        """
        X_static = np.asarray(X_static, dtype=np.float64)
        dyn_tensor = np.asarray(dyn_tensor, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        n_windows = self.timeline.n_models
        if dyn_tensor.ndim != 3 or dyn_tensor.shape[1] != n_windows:
            raise ConfigurationError(
                f"dyn_tensor must be (n, {n_windows}, p), got {dyn_tensor.shape}"
            )
        if self.selection_rankings is not None and len(self.selection_rankings) != n_windows:
            raise ConfigurationError("selection_rankings must have one entry per window")
        k = min(self.config.k, dyn_tensor.shape[2])
        self._windows = []
        self._base_model = None
        base_pred: np.ndarray | None = None
        if self.config.architecture == "stacked":
            self._base_model = self._new_model().fit(X_static, y)
            base_pred = self._base_model.predict(X_static)
        assert self.context is not None
        for ti, t_star in enumerate(self.timeline.t_stars):
            X_dyn = dyn_tensor[:, ti, :]
            if self.selection_rankings is not None:
                selected = np.asarray(self.selection_rankings[ti][:k], dtype=np.int64)
            else:
                with self.context.span("select"):
                    ranking = score_ranking(
                        self.config.selection_method, X_dyn, y, seed=self.config.seed
                    )
                selected = ranking[:k]
            design, names = self._design(X_static, X_dyn, selected, base_pred)
            with self.context.span("fit_window"):
                model = self._new_model().fit(design, y)
            self.context.counter("models.windows_fitted")
            self._windows.append(
                WindowModel(
                    t_star=float(t_star),
                    selected=selected,
                    model=model,
                    design_names=names,
                )
            )
        return self

    def _design(
        self,
        X_static: np.ndarray,
        X_dyn: np.ndarray,
        selected: np.ndarray,
        base_pred: np.ndarray | None,
    ) -> tuple[np.ndarray, list[str]]:
        dyn_selected = X_dyn[:, selected]
        dyn_names = [self.dyn_feature_names[i] for i in selected]
        if self.config.architecture == "stacked":
            assert base_pred is not None
            design = np.column_stack([dyn_selected, base_pred])
            return design, dyn_names + [STATIC_BASE_PRED]
        design = np.column_stack([X_static, dyn_selected])
        return design, list(self.static_feature_names) + dyn_names

    # ------------------------------------------------------------------
    def _check_fitted(self) -> None:
        if not self._windows:
            raise NotFittedError("TimelineModelSet is not fitted")

    @property
    def windows(self) -> list[WindowModel]:
        self._check_fitted()
        return self._windows

    def predict_window(
        self, X_static: np.ndarray, X_dyn: np.ndarray, window_index: int
    ) -> np.ndarray:
        """Raw prediction of one window's model (no fusion)."""
        self._check_fitted()
        window = self._windows[window_index]
        base_pred = (
            self._base_model.predict(X_static) if self._base_model is not None else None
        )
        design, _ = self._design(X_static, X_dyn, window.selected, base_pred)
        return window.model.predict(design)

    def predict_matrix(self, X_static: np.ndarray, dyn_tensor: np.ndarray) -> np.ndarray:
        """Raw per-window predictions, shape (n, n_windows)."""
        self._check_fitted()
        dyn_tensor = np.asarray(dyn_tensor, dtype=np.float64)
        out = np.empty((len(X_static), len(self._windows)))
        for ti in range(len(self._windows)):
            out[:, ti] = self.predict_window(X_static, dyn_tensor[:, ti, :], ti)
        return out

    def predict_fused(self, X_static: np.ndarray, dyn_tensor: np.ndarray) -> np.ndarray:
        """Fused estimate at every window, shape (n, n_windows).

        Column ``j`` fuses the predictions of windows ``0..j`` with the
        configured fusion method — this is what a DoMD query at window
        ``j`` returns.
        """
        raw = self.predict_matrix(X_static, dyn_tensor)
        assert self.context is not None
        with self.context.span("fuse"):
            return fuse_progressive(raw, self.config.fusion)

    def contributions_at(
        self, X_static: np.ndarray, X_dyn: np.ndarray, window_index: int
    ) -> tuple[np.ndarray, list[str]]:
        """Per-sample feature contributions of one window's model.

        Returns ``(contributions (n, p_design + 1), design names)``; the
        last contribution column is the bias.
        """
        self._check_fitted()
        window = self._windows[window_index]
        base_pred = (
            self._base_model.predict(X_static) if self._base_model is not None else None
        )
        design, names = self._design(X_static, X_dyn, window.selected, base_pred)
        return window.model.contributions(design), names
